// libFuzzer harness for the wire-protocol decoders and the incremental
// framer — the two parsers that face raw, attacker-controlled bytes off a
// socket. Invariants under fuzz (ASan/UBSan catch the rest):
//
//   * decode_request / decode_response never crash, over-read, or succeed
//     while leaving `error` unset on failure;
//   * the Framer never yields a payload longer than kMaxFramePayload, and
//     once fatal() it stays fatal and yields nothing;
//   * any frame the Framer yields carries a payload whose CRC matched, so
//     re-framing and re-feeding it must yield the identical payload.
//
// Build with -DFSDL_FUZZ=ON (clang only); run via fuzz/run_fuzzers.sh or
//   ./fuzz_protocol fuzz/corpus/protocol -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace fsdl::server;

  Request req;
  std::string error;
  if (decode_request(data, size, req, error)) {
    // A structurally valid request must re-encode without crashing (the
    // re-encoding need not be byte-identical: fault-set order is canonical).
    (void)encode_request(req);
  } else if (error.empty()) {
    __builtin_trap();  // failure without a reason is a reporting bug
  }

  Response resp;
  error.clear();
  if (decode_response(data, size, resp, error)) {
    (void)encode_response(resp);
  } else if (error.empty()) {
    __builtin_trap();
  }

  // Incremental framing: feed the same bytes in fuzz-chosen chunk sizes
  // (first byte picks the chunk length) and drain frames as they complete.
  Framer framer;
  const std::size_t chunk = size == 0 ? 1 : 1 + (data[0] & 0x3F);
  std::vector<std::uint8_t> payload;
  for (std::size_t pos = 0; pos < size; pos += chunk) {
    const std::size_t n = pos + chunk <= size ? chunk : size - pos;
    framer.feed(data + pos, n);
    while (framer.next(payload)) {
      if (payload.size() > kMaxFramePayload) __builtin_trap();
      // The framer verified the CRC; a round trip must reproduce it.
      Framer again;
      const auto wire = frame(payload);
      again.feed(wire.data(), wire.size());
      std::vector<std::uint8_t> back;
      if (!again.next(back) || back != payload) __builtin_trap();
    }
    if (framer.fatal()) {
      // Fatal is sticky: more bytes must never produce frames again.
      framer.feed(data, size < 16 ? size : 16);
      if (framer.next(payload)) __builtin_trap();
      break;
    }
  }
  return 0;
}
