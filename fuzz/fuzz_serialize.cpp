// libFuzzer harness for the labeling-file loader — the parser that faces
// bytes from disk (which rot, truncate, and tear). load_labeling must
// either return a structurally valid scheme or throw std::runtime_error;
// any crash, over-read, or unbounded allocation is a bug. The v2 format's
// CRC trailer means almost every mutation is rejected by the checksum, so
// the interesting paths are the pre-CRC header checks (magic, version,
// body size) — and mutants that fix up the CRC, which the fuzzer finds via
// the seed corpus containing a real, valid file.
//
// Build with -DFSDL_FUZZ=ON (clang only); run via fuzz/run_fuzzers.sh or
//   ./fuzz_serialize fuzz/corpus/serialize -max_total_time=60
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/serialize.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::stringstream ss(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const auto scheme = fsdl::load_labeling(ss);
    // A file that loads must be structurally sound: the size accounting and
    // a save round-trip walk every label buffer the loader accepted.
    (void)scheme.total_bits();
    std::stringstream out;
    fsdl::save_labeling(scheme, out);
  } catch (const std::runtime_error&) {
    // Expected for malformed input: a clean, typed rejection.
  }
  return 0;
}
