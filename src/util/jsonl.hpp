// Minimal JSON-lines toolkit for the observability plane: one flat JSON
// object per line, stable keys, no nesting. Shared by
//
//   * the obs event log (span records from router/shard processes),
//   * the server's slow-query log (same schema, same parser),
//   * fsdl_loadgen's client-side trace events,
//   * fsdl_trace --stitch, which parses all of the above.
//
// Deliberately NOT in fsdl::obs — JSON formatting must exist in
// FSDL_TRACE=OFF builds too (the slow-query log is an always-on feature and
// the CI symbol guard forbids fsdl::obs:: symbols in default builds), so it
// lives in plain fsdl:: next to the other utilities.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fsdl {

/// Escape a string for use inside a JSON string literal (quotes, backslash,
/// control characters; everything else passes through byte-for-byte).
std::string json_escape(const std::string& s);

/// Builder for one flat JSON object. Field order is insertion order, so a
/// writer that always emits keys in the same order produces stable,
/// greppable lines.
class JsonlWriter {
 public:
  JsonlWriter& field(const char* key, const std::string& value);
  JsonlWriter& field(const char* key, const char* value);
  JsonlWriter& field_u64(const char* key, std::uint64_t value);
  JsonlWriter& field_double(const char* key, double value);
  /// 16-hex-digit encoding of a 64-bit id (span / parent ids).
  JsonlWriter& field_hex64(const char* key, std::uint64_t value);
  /// 32-hex-digit encoding of a 128-bit id (trace ids).
  JsonlWriter& field_hex128(const char* key, std::uint64_t hi,
                            std::uint64_t lo);

  /// The finished object, e.g. `{"a":"x","n":3}` (no trailing newline).
  std::string line() const;

 private:
  std::string body_;
};

/// One parsed line: flat key → raw value pairs. String values are
/// unescaped; numbers/booleans keep their literal spelling (the caller
/// strtod/strtoulls what it needs).
struct JsonlRecord {
  std::vector<std::pair<std::string, std::string>> fields;

  /// Value of `key`, or `fallback` when absent.
  const std::string& get(const std::string& key,
                         const std::string& fallback = kEmpty) const;
  bool has(const std::string& key) const;

  static const std::string kEmpty;
};

/// Parse one flat JSON object line. Returns false (and sets `error`) on
/// malformed input — including nested objects/arrays, which the event-log
/// schema never produces. Blank lines are rejected; skip them first.
bool parse_jsonl(const std::string& line, JsonlRecord& out,
                 std::string& error);

}  // namespace fsdl
