// Summary statistics over a sample of doubles: min / max / mean / percentiles.
#pragma once

#include <cstddef>
#include <vector>

namespace fsdl {

/// Accumulates samples; computes order statistics on demand.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// p in [0, 100]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  // Sorted lazily; mutable so accessors stay logically const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

}  // namespace fsdl
