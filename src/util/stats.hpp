// Summary statistics over a sample of doubles: min / max / mean / percentiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fsdl {

/// Accumulates samples; computes order statistics on demand.
class Summary {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  /// p in [0, 100]; nearest-rank percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  // Sorted lazily; mutable so accessors stay logically const.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void ensure_sorted() const;
};

/// Streaming histogram with geometric buckets: O(1) memory regardless of
/// sample count, O(1) add, percentile estimates with bounded relative error
/// (one bucket width, i.e. a factor of `growth`). Built for long-running
/// latency tracking — the server metrics registry keeps one per request
/// type — but equally usable by the benches in place of Summary when the
/// sample stream is unbounded.
///
/// Buckets cover (0, ∞) geometrically: bucket k holds x with
/// ref·growth^k <= x < ref·growth^{k+1}; a dedicated bucket holds x <= 0.
/// min/max/sum are tracked exactly, so min()/max()/mean() are not estimates.
class Histogram {
 public:
  /// growth: bucket width factor (> 1). 1.25 gives <= 25% percentile error
  /// over ~100 buckets per 9 decades; ref: lower edge of bucket 0.
  explicit Histogram(double growth = 1.25, double ref = 1.0);

  void add(double x);
  /// Add `n` samples of value `x` in one step. Equivalent to calling
  /// add(x) n times; exists for reconstructing a histogram from an
  /// exposition (bucket counts at representative values) in O(buckets)
  /// instead of O(samples). No-op when n == 0.
  void add_n(double x, std::uint64_t n);
  /// Combine another histogram's samples; requires identical (growth, ref).
  void merge(const Histogram& other);
  void reset();

  std::uint64_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }
  double sum() const noexcept { return sum_; }
  double min() const;   // exact
  double max() const;   // exact
  double mean() const;  // exact
  /// p in [0, 100]; returns the upper edge of the bucket holding the
  /// nearest-rank sample, clamped to the exact [min, max] range.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// One non-empty bucket of the exposition view: `count` samples with
  /// value <= `upper` and > the previous bucket's upper edge.
  struct Bucket {
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  /// Non-cumulative buckets in increasing `upper` order, empty buckets
  /// skipped. Samples <= 0 appear as a leading bucket with upper = 0.
  /// A Prometheus-style renderer turns these into cumulative `le` buckets;
  /// the counts sum to count().
  std::vector<Bucket> buckets() const;

  double growth() const noexcept { return growth_; }

 private:
  int bucket_index(double x) const;

  double growth_;
  double log_growth_;
  double ref_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t underflow_ = 0;  // x <= 0
  int offset_ = 0;               // buckets_[0] is bucket index offset_
  std::vector<std::uint64_t> buckets_;
};

}  // namespace fsdl
