// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) — the integrity
// check behind both corruption-proof layers of the serving stack:
//
//   * every wire frame carries crc32(payload) in its header, so a bit flip
//     anywhere between client and server is detected instead of silently
//     answering a different question (see server/protocol.hpp);
//   * the FSDL label file format (v2) appends crc32(body) so a corrupted
//     label table is rejected at load rather than decoded into garbage
//     distances (see core/serialize.hpp).
//
// Table-driven, one 1 KiB table built at static init; ~1 byte/cycle, which
// is far below both consumers' I/O cost. Incremental use: seed the next
// call with the previous return value.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fsdl {

/// CRC-32 of `size` bytes at `data`. Pass the previous return value as
/// `seed` to continue a running checksum across chunks; the default seed
/// starts a fresh one. crc32(p, 0, s) == s for all s.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0) noexcept;

}  // namespace fsdl
