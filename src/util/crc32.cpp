#include "util/crc32.hpp"

#include <array>

namespace fsdl {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE 802.3

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t b = 0; b < 256; ++b) {
    std::uint32_t c = b;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (c >> 1) ^ kPoly : c >> 1;
    }
    table[b] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = ~seed;
  for (std::size_t k = 0; k < size; ++k) {
    c = kTable[(c ^ p[k]) & 0xFFu] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace fsdl
