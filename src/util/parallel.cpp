#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace fsdl {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FSDL_BUILD_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(unsigned, std::size_t)>& body) {
  if (threads > count) threads = static_cast<unsigned>(count);
  if (threads <= 1 || count < 2) {
    for (std::size_t k = 0; k < count; ++k) body(0, k);
    return;
  }

  // Chunks of ~1/8 of a fair share per grab: coarse enough that the shared
  // counter is cold, fine enough to rebalance skewed iterations.
  const std::size_t chunk =
      std::max<std::size_t>(1, count / (std::size_t{threads} * 8));
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&](unsigned worker_id) {
    try {
      for (;;) {
        const std::size_t begin =
            next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count || failed.load(std::memory_order_relaxed)) return;
        const std::size_t end = std::min(count, begin + chunk);
        for (std::size_t k = begin; k < end; ++k) body(worker_id, k);
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (unsigned t = 1; t < threads; ++t) workers.emplace_back(worker, t);
  worker(0);
  for (auto& w : workers) w.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace fsdl
