// Fundamental scalar types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace fsdl {

/// Vertex identifier. Graphs are laptop-scale, so 32 bits suffice.
using Vertex = std::uint32_t;

/// Unweighted hop distance (and sketch-graph path length).
using Dist = std::uint32_t;

/// Sentinel meaning "unreachable".
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// Sentinel vertex meaning "none".
inline constexpr Vertex kNoVertex = std::numeric_limits<Vertex>::max();

}  // namespace fsdl
