#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace fsdl {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

Table& Table::cell(unsigned long long value) {
  return cell(std::to_string(value));
}

Table& Table::cell(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return cell(os.str());
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  os << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      os << "  " << std::setw(static_cast<int>(widths[c])) << s;
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& r : rows_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace fsdl
