#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fsdl {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error) {
  // Unique temp name per writer: if two processes save the same target
  // concurrently, a shared fixed tmp path would make them write into the
  // same inode and one rename could publish the other's half-written
  // bytes, defeating the torn-file guarantee.
  std::string tmp = path + ".tmp.XXXXXX";
  const int fd = ::mkstemp(tmp.data());
  if (fd < 0) {
    set_error(error, "cannot create temp file " + tmp);
    return false;
  }
  // mkstemp creates 0600; widen to the 0644 a plain create would ask for,
  // so the published file stays readable by scrapers and other processes.
  ::fchmod(fd, 0644);
  if (!write_all(fd, static_cast<const char*>(data), size)) {
    set_error(error, "write to " + tmp + " failed");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  // The data must be durable *before* the rename publishes it: otherwise a
  // power cut after the rename could expose a new name with old/empty
  // blocks behind it.
  if (::fsync(fd) != 0) {
    set_error(error, "fsync of " + tmp + " failed");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    set_error(error, "close of " + tmp + " failed");
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed");
    ::unlink(tmp.c_str());
    return false;
  }
  // Best effort: persist the directory entry so the rename itself survives
  // a crash. Failure here is not fatal — the file content is already safe.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

}  // namespace fsdl
