#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/failpoint.hpp"

namespace fsdl {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

/// One simulated-or-real write(2). A kErrno hit replaces the syscall with
/// its errno; a kShort hit clamps the request so the caller's partial-write
/// handling is exercised.
ssize_t write_at_point(int fd, const char* data, std::size_t size) {
  const auto hit = FSDL_FAILPOINT("atomic_file.write");
  if (hit.kind == failpoint::HitKind::kErrno) {
    errno = hit.err;
    return -1;
  }
  return ::write(fd, data, hit.clamp(size));
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = write_at_point(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// fsync(2) with EINTR retry (POSIX allows fsync to be interrupted; giving
/// up there would fail a save that was one retry away from durable).
int fsync_retry(int fd, const char* point) {
  for (;;) {
    const auto hit = FSDL_FAILPOINT(point);
    int rc;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      rc = -1;
    } else {
      rc = ::fsync(fd);
    }
    if (rc == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

}  // namespace

bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error) {
  // Unique temp name per writer: if two processes save the same target
  // concurrently, a shared fixed tmp path would make them write into the
  // same inode and one rename could publish the other's half-written
  // bytes, defeating the torn-file guarantee.
  std::string tmp = path + ".tmp.XXXXXX";
  int fd;
  const auto mkstemp_hit = FSDL_FAILPOINT("atomic_file.mkstemp");
  if (mkstemp_hit.kind == failpoint::HitKind::kErrno) {
    errno = mkstemp_hit.err;
    fd = -1;
  } else {
    fd = ::mkstemp(tmp.data());
  }
  if (fd < 0) {
    set_error(error, "cannot create temp file " + tmp);
    return false;
  }
  // mkstemp creates 0600; widen to the 0644 a plain create would ask for,
  // so the published file stays readable by scrapers and other processes.
  ::fchmod(fd, 0644);
  if (!write_all(fd, static_cast<const char*>(data), size)) {
    set_error(error, "write to " + tmp + " failed");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  // The data must be durable *before* the rename publishes it: otherwise a
  // power cut after the rename could expose a new name with old/empty
  // blocks behind it.
  if (fsync_retry(fd, "atomic_file.fsync") != 0) {
    set_error(error, "fsync of " + tmp + " failed");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  int close_rc;
  const auto close_hit = FSDL_FAILPOINT("atomic_file.close");
  if (close_hit.kind == failpoint::HitKind::kErrno) {
    errno = close_hit.err;
    close_rc = -1;
    ::close(fd);  // the real fd must not leak even when simulating failure
  } else {
    close_rc = ::close(fd);
  }
  if (close_rc != 0) {
    set_error(error, "close of " + tmp + " failed");
    ::unlink(tmp.c_str());
    return false;
  }
  int rename_rc;
  const auto rename_hit = FSDL_FAILPOINT("atomic_file.rename");
  if (rename_hit.kind == failpoint::HitKind::kErrno) {
    errno = rename_hit.err;
    rename_rc = -1;
  } else {
    rename_rc = ::rename(tmp.c_str(), path.c_str());
  }
  if (rename_rc != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed");
    ::unlink(tmp.c_str());
    return false;
  }
  // Best effort: persist the directory entry so the rename itself survives
  // a crash. Failure is not fatal — the file content is already safe — but
  // it narrows the crash-durability window, so say so once per process
  // instead of swallowing it forever.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const auto dir_hit = FSDL_FAILPOINT("atomic_file.dir_fsync");
  int dfd;
  if (dir_hit.kind == failpoint::HitKind::kErrno) {
    errno = dir_hit.err;
    dfd = -1;
  } else {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  }
  bool dir_synced = false;
  if (dfd >= 0) {
    dir_synced = fsync_retry(dfd, "atomic_file.dir_fsync.sync") == 0;
    ::close(dfd);
  }
  if (!dir_synced) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "fsdl: warning: fsync of directory %s failed (%s); "
                   "renames may not survive power loss (reported once)\n",
                   dir.c_str(), std::strerror(errno));
    }
  }
  FSDL_FAILPOINT("atomic_file.done");
  return true;
}

}  // namespace fsdl
