// Console table printer used by every bench binary so experiment output has
// one consistent, paper-table-like format. Also emits CSV for post-processing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fsdl {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& value);
  Table& cell(long long value);
  Table& cell(unsigned long long value);
  Table& cell(double value, int precision = 3);

  /// Render with aligned columns, a header rule, and a title line.
  void print(std::ostream& os, const std::string& title) const;

  /// Comma-separated form (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fsdl
