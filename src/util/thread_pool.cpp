#include "util/thread_pool.hpp"

namespace fsdl {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned k = 0; k < num_threads; ++k) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  std::call_once(join_once_, [this] {
    for (auto& w : workers_) w.join();
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace fsdl
