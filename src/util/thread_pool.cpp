#include "util/thread_pool.hpp"

namespace fsdl {

ThreadPool::ThreadPool(unsigned num_threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (unsigned k = 0; k < num_threads; ++k) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

bool ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    // Saturated: the waiting line is at its bound after the idle workers
    // absorb the jobs already queued ahead of them. Jobs queued but not yet
    // claimed must count against the idle capacity, or a burst submitted
    // before any worker wakes bypasses the bound entirely. Reject
    // synchronously (the caller sheds) instead of hiding the overload as
    // unbounded queueing delay.
    if (max_queue_ != kUnboundedQueue &&
        queue_.size() >= idle_workers_ + max_queue_) {
      return false;
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
  std::call_once(join_once_, [this] {
    for (auto& w : workers_) w.join();
  });
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t ThreadPool::active_jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++idle_workers_;
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      --idle_workers_;
      if (queue_.empty()) return;  // closed_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
  }
}

}  // namespace fsdl
