#include "util/jsonl.hpp"

#include <cctype>
#include <cstdio>

namespace fsdl {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char ch : s) {
    const unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
}

const char kHexDigits[] = "0123456789abcdef";

void append_hex64(std::string& out, std::uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHexDigits[(v >> shift) & 0xF];
  }
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

JsonlWriter& JsonlWriter::field(const char* key, const std::string& value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":\"";
  append_escaped(body_, value);
  body_ += '"';
  return *this;
}

JsonlWriter& JsonlWriter::field(const char* key, const char* value) {
  return field(key, std::string(value));
}

JsonlWriter& JsonlWriter::field_u64(const char* key, std::uint64_t value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

JsonlWriter& JsonlWriter::field_double(const char* key, double value) {
  if (!body_.empty()) body_ += ',';
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.1f", key, value);
  body_ += buf;
  return *this;
}

JsonlWriter& JsonlWriter::field_hex64(const char* key, std::uint64_t value) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":\"";
  append_hex64(body_, value);
  body_ += '"';
  return *this;
}

JsonlWriter& JsonlWriter::field_hex128(const char* key, std::uint64_t hi,
                                       std::uint64_t lo) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":\"";
  append_hex64(body_, hi);
  append_hex64(body_, lo);
  body_ += '"';
  return *this;
}

std::string JsonlWriter::line() const { return "{" + body_ + "}"; }

const std::string JsonlRecord::kEmpty;

const std::string& JsonlRecord::get(const std::string& key,
                                    const std::string& fallback) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return fallback;
}

bool JsonlRecord::has(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

namespace {

// Hand-rolled recursive-descent-minus-the-recursion parser for the flat
// object grammar the writer produces. Accepts arbitrary whitespace between
// tokens so hand-edited logs still parse.
struct LineCursor {
  const std::string& s;
  std::size_t i = 0;

  void skip_ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return i < s.size() && s[i] == c;
  }
};

bool parse_string(LineCursor& c, std::string& out, std::string& error) {
  if (!c.eat('"')) {
    error = "expected string";
    return false;
  }
  out.clear();
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.i >= c.s.size()) break;
    const char esc = c.s[c.i++];
    switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case 't':
        out += '\t';
        break;
      case 'u': {
        if (c.i + 4 > c.s.size()) {
          error = "truncated \\u escape";
          return false;
        }
        unsigned code = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = c.s[c.i++];
          code <<= 4;
          if (h >= '0' && h <= '9') {
            code |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            code |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            code |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            error = "bad \\u escape";
            return false;
          }
        }
        // Event-log escapes are always < 0x20; encode anything in the BMP
        // as UTF-8 so round trips are lossless.
        if (code < 0x80) {
          out += static_cast<char>(code);
        } else if (code < 0x800) {
          out += static_cast<char>(0xC0 | (code >> 6));
          out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (code >> 12));
          out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (code & 0x3F));
        }
        break;
      }
      default:
        error = "unknown escape";
        return false;
    }
  }
  error = "unterminated string";
  return false;
}

bool parse_scalar(LineCursor& c, std::string& out, std::string& error) {
  c.skip_ws();
  if (c.i < c.s.size() && (c.s[c.i] == '{' || c.s[c.i] == '[')) {
    error = "nested values are not part of the event-log schema";
    return false;
  }
  const std::size_t start = c.i;
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i];
    if (ch == ',' || ch == '}' ||
        std::isspace(static_cast<unsigned char>(ch))) {
      break;
    }
    ++c.i;
  }
  if (c.i == start) {
    error = "expected value";
    return false;
  }
  out.assign(c.s, start, c.i - start);
  return true;
}

}  // namespace

bool parse_jsonl(const std::string& line, JsonlRecord& out,
                 std::string& error) {
  out.fields.clear();
  error.clear();
  LineCursor c{line};
  if (!c.eat('{')) {
    error = "expected '{'";
    return false;
  }
  if (c.eat('}')) {
    c.skip_ws();
    if (c.i != line.size()) {
      error = "trailing bytes after object";
      return false;
    }
    return true;
  }
  for (;;) {
    std::string key;
    if (!parse_string(c, key, error)) return false;
    if (!c.eat(':')) {
      error = "expected ':' after key";
      return false;
    }
    std::string value;
    if (c.peek('"')) {
      if (!parse_string(c, value, error)) return false;
    } else {
      if (!parse_scalar(c, value, error)) return false;
    }
    out.fields.emplace_back(std::move(key), std::move(value));
    if (c.eat(',')) continue;
    if (c.eat('}')) break;
    error = "expected ',' or '}'";
    return false;
  }
  c.skip_ws();
  if (c.i != line.size()) {
    error = "trailing bytes after object";
    return false;
  }
  return true;
}

}  // namespace fsdl
