#include "util/failpoint.hpp"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace fsdl::failpoint {

namespace detail {
std::atomic<std::uint32_t> g_armed_points{0};
}  // namespace detail

namespace {

enum class Action : std::uint8_t { kOff, kErrno, kShort, kDelay, kAbort };
enum class Trigger : std::uint8_t { kAlways, kNth, kEvery, kProb };

struct State {
  Action action = Action::kOff;
  Trigger trigger = Trigger::kAlways;
  int err = EIO;             // kErrno
  std::size_t bytes = 1;     // kShort clamp
  std::uint64_t delay_ms = 0;  // kDelay
  std::uint64_t n = 1;       // kNth / kEvery operand
  double p = 1.0;            // kProb probability
  Rng rng{0};                // kProb stream (seeded at arm time)
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::string spec;          // "action@trigger" as armed, for reporting
};

/// Registry: point name -> state. An ordered map keeps stats() output
/// deterministic. All access (including every armed evaluate) is behind
/// one mutex — the armed path is a test path; the disarmed path never
/// gets here.
struct Registry {
  std::mutex mu;
  std::map<std::string, State> points;
};

Registry& registry() {
  // Leaky singleton: failpoints may be evaluated during static destruction
  // (e.g. an atexit metrics dump calling atomic_write_file).
  static Registry* r = new Registry();
  return *r;
}

/// The errno names the durability/I-O sites actually simulate. Anything
/// else can be given numerically.
int parse_errno(const std::string& name, bool& ok) {
  ok = true;
  if (name == "EIO") return EIO;
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EINTR") return EINTR;
  if (name == "EAGAIN") return EAGAIN;
  if (name == "ENOMEM") return ENOMEM;
  if (name == "EMFILE") return EMFILE;
  if (name == "EPIPE") return EPIPE;
  if (name == "ECONNRESET") return ECONNRESET;
  if (name == "ECONNREFUSED") return ECONNREFUSED;
  if (name == "ETIMEDOUT") return ETIMEDOUT;
  if (name == "EBADF") return EBADF;
  if (name == "ENOENT") return ENOENT;
  if (name == "EACCES") return EACCES;
  char* end = nullptr;
  const long v = std::strtol(name.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && !name.empty() && v > 0) {
    return static_cast<int>(v);
  }
  ok = false;
  return 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

/// Parse one `point=action[@trigger]` spec into (name, state). Returns ""
/// or an error message.
std::string parse_spec(const std::string& raw, std::string& name,
                       State& st) {
  const std::string spec = trim(raw);
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    return "bad failpoint spec \"" + spec + "\": want point=action[@trigger]";
  }
  name = trim(spec.substr(0, eq));
  if (name.empty()) {
    return "bad failpoint spec \"" + spec + "\": empty point name";
  }
  std::string rest = trim(spec.substr(eq + 1));
  st.spec = rest;
  std::string trigger_str;
  const std::size_t at = rest.find('@');
  if (at != std::string::npos) {
    trigger_str = trim(rest.substr(at + 1));
    rest = trim(rest.substr(0, at));
  }

  // Action.
  if (rest == "off") {
    st.action = Action::kOff;
  } else if (rest == "abort") {
    st.action = Action::kAbort;
  } else if (rest == "short" || rest.rfind("short:", 0) == 0) {
    st.action = Action::kShort;
    st.bytes = 1;
    if (rest.size() > 6) {
      std::uint64_t b = 0;
      if (!parse_u64(rest.substr(6), b) || b == 0) {
        return "bad failpoint spec \"" + spec +
               "\": short wants a positive byte count";
      }
      st.bytes = static_cast<std::size_t>(b);
    }
  } else if (rest.rfind("errno:", 0) == 0) {
    st.action = Action::kErrno;
    bool ok = false;
    st.err = parse_errno(rest.substr(6), ok);
    if (!ok) {
      return "bad failpoint spec \"" + spec + "\": unknown errno \"" +
             rest.substr(6) + "\"";
    }
  } else if (rest.rfind("delay:", 0) == 0) {
    st.action = Action::kDelay;
    if (!parse_u64(rest.substr(6), st.delay_ms)) {
      return "bad failpoint spec \"" + spec +
             "\": delay wants milliseconds";
    }
  } else {
    return "bad failpoint spec \"" + spec + "\": unknown action \"" + rest +
           "\" (want off|errno:E|short[:N]|delay:MS|abort)";
  }

  // Trigger.
  if (trigger_str.empty()) {
    st.trigger = Trigger::kAlways;
  } else if (trigger_str.rfind("nth:", 0) == 0) {
    st.trigger = Trigger::kNth;
    if (!parse_u64(trigger_str.substr(4), st.n) || st.n == 0) {
      return "bad failpoint spec \"" + spec +
             "\": nth wants a positive hit index";
    }
  } else if (trigger_str.rfind("every:", 0) == 0) {
    st.trigger = Trigger::kEvery;
    if (!parse_u64(trigger_str.substr(6), st.n) || st.n == 0) {
      return "bad failpoint spec \"" + spec +
             "\": every wants a positive period";
    }
  } else if (trigger_str.rfind("prob:", 0) == 0) {
    st.trigger = Trigger::kProb;
    const std::string args = trigger_str.substr(5);
    const std::size_t colon = args.find(':');
    const std::string p_str =
        colon == std::string::npos ? args : args.substr(0, colon);
    char* end = nullptr;
    st.p = std::strtod(p_str.c_str(), &end);
    if (p_str.empty() || end == nullptr || *end != '\0' || st.p < 0.0 ||
        st.p > 1.0) {
      return "bad failpoint spec \"" + spec +
             "\": prob wants a probability in [0,1]";
    }
    std::uint64_t seed = 0x5eedULL;
    if (colon != std::string::npos &&
        !parse_u64(args.substr(colon + 1), seed)) {
      return "bad failpoint spec \"" + spec + "\": bad prob seed";
    }
    st.rng = Rng(seed);
  } else {
    return "bad failpoint spec \"" + spec + "\": unknown trigger \"" +
           trigger_str + "\" (want nth:N|every:K|prob:P[:SEED])";
  }
  return {};
}

}  // namespace

Hit evaluate(const char* point) noexcept {
  std::uint64_t delay_ms = 0;
  bool abort_self = false;
  Hit hit;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const auto it = reg.points.find(point);
    if (it == reg.points.end()) return hit;
    State& st = it->second;
    st.hits += 1;
    bool fire = true;
    switch (st.trigger) {
      case Trigger::kAlways:
        break;
      case Trigger::kNth:
        fire = st.hits == st.n;
        break;
      case Trigger::kEvery:
        fire = st.hits % st.n == 0;
        break;
      case Trigger::kProb:
        fire = st.rng.uniform() < st.p;
        break;
    }
    if (!fire) return hit;
    st.fires += 1;
    switch (st.action) {
      case Action::kOff:
        break;
      case Action::kErrno:
        hit.kind = HitKind::kErrno;
        hit.err = st.err;
        break;
      case Action::kShort:
        hit.kind = HitKind::kShort;
        hit.max_bytes = st.bytes;
        break;
      case Action::kDelay:
        delay_ms = st.delay_ms;
        break;
      case Action::kAbort:
        abort_self = true;
        break;
    }
  }
  // Perform delay/abort outside the registry lock so a sleeping point never
  // blocks other points (or arm/disarm) and the SIGKILL needs no cleanup.
  if (abort_self) {
    ::kill(::getpid(), SIGKILL);
    // SIGKILL cannot be caught; pause until it lands.
    for (;;) ::pause();
  }
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  return hit;
}

std::string arm(const std::string& spec_list) {
  // Parse the whole list before touching the registry: a bad spec must not
  // leave a half-armed process.
  std::vector<std::pair<std::string, State>> parsed;
  std::size_t pos = 0;
  while (pos <= spec_list.size()) {
    const std::size_t semi = spec_list.find(';', pos);
    const std::string item = spec_list.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec_list.size() + 1 : semi + 1;
    if (trim(item).empty()) continue;  // tolerate trailing/doubled ';'
    std::string name;
    State st;
    const std::string error = parse_spec(item, name, st);
    if (!error.empty()) return error;
    parsed.emplace_back(std::move(name), std::move(st));
  }
  if (parsed.empty()) {
    return spec_list.empty() ? std::string{}
                             : "bad failpoint spec list \"" + spec_list +
                                   "\": no specs found";
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, st] : parsed) {
    reg.points[name] = std::move(st);  // re-arm replaces + resets counters
  }
  detail::g_armed_points.store(
      static_cast<std::uint32_t>(reg.points.size()),
      std::memory_order_relaxed);
  return {};
}

std::string arm_from_env() {
  const char* env = std::getenv("FSDL_FAILPOINTS");
  if (env == nullptr || *env == '\0') return {};
  return arm(env);
}

void disarm(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.erase(point);
  detail::g_armed_points.store(
      static_cast<std::uint32_t>(reg.points.size()),
      std::memory_order_relaxed);
}

void disarm_all() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
  detail::g_armed_points.store(0, std::memory_order_relaxed);
}

std::vector<PointStats> stats() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<PointStats> out;
  out.reserve(reg.points.size());
  for (const auto& [name, st] : reg.points) {
    out.push_back({name, st.spec, st.hits, st.fires});
  }
  return out;
}

std::uint64_t hits(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.hits;
}

std::uint64_t fires(const std::string& point) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const auto it = reg.points.find(point);
  return it == reg.points.end() ? 0 : it->second.fires;
}

}  // namespace fsdl::failpoint
