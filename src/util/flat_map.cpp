#include "util/flat_map.hpp"

namespace fsdl {
namespace {

/// splitmix64 finalizer — avalanches the packed (x, y) endpoint pairs,
/// whose low bits alone are heavily clustered.
inline std::size_t hash_key(std::uint64_t key) noexcept {
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return static_cast<std::size_t>(key ^ (key >> 31));
}

}  // namespace

FlatDistMap::FlatDistMap(const std::vector<std::pair<Vertex, Dist>>& entries) {
  if (entries.empty()) return;
  std::size_t cap = 16;
  while (cap < entries.size() * 2) cap <<= 1;
  keys_.assign(cap, kNoVertex);
  vals_.resize(cap);
  mask_ = cap - 1;
  for (const auto& [k, v] : entries) {
    std::size_t slot = hash_key(k) & mask_;
    while (keys_[slot] != kNoVertex && keys_[slot] != k) {
      slot = (slot + 1) & mask_;
    }
    if (keys_[slot] == k) continue;  // first insertion wins
    keys_[slot] = k;
    vals_[slot] = v;
    ++size_;
  }
}

const Dist* FlatDistMap::find(Vertex key) const noexcept {
  if (size_ == 0) return nullptr;
  std::size_t slot = hash_key(key) & mask_;
  while (keys_[slot] != kNoVertex) {
    if (keys_[slot] == key) return &vals_[slot];
    slot = (slot + 1) & mask_;
  }
  return nullptr;
}

void EdgeAccumulator::grow(std::size_t min_slots) {
  std::size_t cap = 16;
  while (cap < min_slots) cap <<= 1;
  keys_.assign(cap, 0);
  pos_.assign(cap, 0);
  tags_.assign(cap, 0);
  mask_ = cap - 1;
  for (std::size_t e = 0; e < entries_.size(); ++e) {
    std::size_t slot = hash_key(entries_[e].first) & mask_;
    while (tags_[slot] == epoch_) slot = (slot + 1) & mask_;
    tags_[slot] = epoch_;
    keys_[slot] = entries_[e].first;
    pos_[slot] = static_cast<std::uint32_t>(e);
  }
}

void EdgeAccumulator::reserve(std::size_t n) {
  entries_.reserve(n);
  if (n * 2 > mask_ + 1) grow(n * 2);
}

void EdgeAccumulator::keep_min(std::uint64_t key, Dist w) {
  if ((entries_.size() + 1) * 2 > mask_ + 1) {
    grow(mask_ == 0 ? 16 : (mask_ + 1) * 2);
  }
  std::size_t slot = hash_key(key) & mask_;
  while (tags_[slot] == epoch_) {
    if (keys_[slot] == key) {
      Dist& val = entries_[pos_[slot]].second;
      if (w < val) val = w;
      return;
    }
    slot = (slot + 1) & mask_;
  }
  tags_[slot] = epoch_;
  keys_[slot] = key;
  pos_[slot] = static_cast<std::uint32_t>(entries_.size());
  entries_.emplace_back(key, w);
}

}  // namespace fsdl
