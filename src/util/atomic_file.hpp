// Crash-safe whole-file replacement: write to a unique temp file next to
// the target (mkstemp on `path + ".tmp.XXXXXX"` — per-writer, so two
// concurrent savers of the same target never share a tmp inode), fsync the
// data, then rename(2) over the target. POSIX rename is atomic within a
// filesystem, so at every instant `path` is either the complete old file or
// the complete new file — a crash (or SIGKILL) mid-write can leave a stale
// `.tmp.*` behind but can never leave `path` missing, truncated, or torn.
//
// Two consumers with the same failure story:
//   * label persistence (core/serialize.cpp): a crash mid-save must not
//     destroy the previous good `.fsdl` file the serving fleet restarts
//     from;
//   * metrics exposition dumps (fsdl_serve / fsdl_loadgen --metrics-dump):
//     a file scraper must never read a half-written exposition.
#pragma once

#include <cstddef>
#include <string>

namespace fsdl {

/// Atomically replace the contents of `path` with `size` bytes of `data`.
/// On success returns true. On failure returns false, sets `*error` (when
/// non-null) to a human-readable reason, removes the temporary file, and
/// leaves any existing file at `path` untouched.
bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error = nullptr);

inline bool atomic_write_file(const std::string& path, const std::string& text,
                              std::string* error = nullptr) {
  return atomic_write_file(path, text.data(), text.size(), error);
}

}  // namespace fsdl
