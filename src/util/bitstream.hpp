// Bit-granular serialization.
//
// Label length is the headline quantity of the paper (Lemma 2.5), so labels
// are serialized to an actual bit stream and their size reported in bits,
// rather than estimated from in-memory struct sizes.
//
// Encodings provided:
//   - fixed-width unsigned fields,
//   - Elias gamma (for small positive integers of unknown magnitude),
//   - unsigned varint-style gamma for values that may be zero.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace fsdl {

/// Append-only bit buffer.
class BitWriter {
 public:
  /// Append the low `width` bits of `value` (LSB first). width in [0, 64].
  void write_bits(std::uint64_t value, unsigned width);

  /// Elias gamma code for value >= 1.
  void write_gamma(std::uint64_t value);

  /// Gamma code shifted to accept 0 (encodes value + 1).
  void write_gamma0(std::uint64_t value) { write_gamma(value + 1); }

  std::size_t bit_size() const noexcept { return bit_size_; }
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

  /// Drop slack capacity; call once a label is fully written.
  void shrink_to_fit() { words_.shrink_to_fit(); }

  /// Reconstitute a buffer from persisted words (scheme deserialization).
  static BitWriter from_words(std::vector<std::uint64_t> words,
                              std::size_t bit_size) {
    BitWriter w;
    w.words_ = std::move(words);
    w.bit_size_ = bit_size;
    return w;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t bit_size_ = 0;
};

/// Sequential reader over a BitWriter's buffer.
class BitReader {
 public:
  explicit BitReader(const BitWriter& writer) noexcept
      : words_(&writer.words()), bit_size_(writer.bit_size()) {}

  std::uint64_t read_bits(unsigned width);
  std::uint64_t read_gamma();
  std::uint64_t read_gamma0() { return read_gamma() - 1; }

  std::size_t position() const noexcept { return pos_; }
  bool exhausted() const noexcept { return pos_ >= bit_size_; }

 private:
  const std::vector<std::uint64_t>* words_;
  std::size_t bit_size_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to store values in [0, n), at least 1.
unsigned bits_for(std::uint64_t n) noexcept;

}  // namespace fsdl
