// Deterministic failpoint injection for the persistence and I/O paths.
//
// Every external-failure test this repo had before this file injected
// faults from *outside* the process (chaos proxy byte mangling, SIGKILL in
// fsdl_chaosfleet). A failpoint injects the failure at the exact syscall or
// allocation site where the durability story can actually break: the
// fsync(2) between a label write and its rename, the chunked read in the
// label loader, the recv(2) a reactor retries on EINTR. The crash-
// consistency torture harness (tools/fsdl_crashtest.cpp) sweeps SIGKILL
// across every one of these points and asserts the invariants the stack
// promises (atomic publish, old-snapshot-keeps-serving, verified answers
// under EINTR storms) hold at all of them.
//
// Cost contract: a *disarmed* failpoint is one relaxed atomic load and a
// predictable branch — no string compare, no lock, no map lookup, no
// per-site static state (the CI nm guard asserts the registry's symbol
// surface stays exactly the flat API below). The slow path behind
// evaluate() only runs while at least one point is armed, which only
// happens in test/torture runs.
//
// Arming, from outside the process:
//   FSDL_FAILPOINTS='atomic_file.fsync=errno:EIO@nth:2;reactor.send=short:1'
// (tools call arm_from_env() explicitly at startup; the library never reads
// the environment on its own), or `--failpoints SPEC` on fsdl_serve /
// fsdl_router. Spec grammar (list separated by ';'):
//
//   spec    := point '=' action ['@' trigger]
//   action  := 'off'                 count hits, inject nothing
//            | 'errno:' E            fail the op with errno E (name or int);
//                                    allocation sites map any fire to a
//                                    thrown std::bad_alloc
//            | 'short' [':' BYTES]   clamp the I/O request to BYTES (def. 1)
//            | 'delay:' MS           sleep MS milliseconds, then proceed
//            | 'abort'               SIGKILL the process at the point
//   trigger := (none)                fire on every hit
//            | 'nth:' N              fire exactly on the N-th hit (1-based)
//            | 'every:' K            fire on every K-th hit (K, 2K, ...)
//            | 'prob:' P [':' SEED]  fire with probability P from a seeded
//                                    per-point stream (deterministic across
//                                    reruns with the same seed)
//
// Beware self-sustaining specs: a site that *retries* EINTR (that is the
// correct behavior being tested) will spin forever under
// `errno:EINTR@every:1` — storm with every:2 or bound with nth:N.
//
// Observability: while armed, hit and fire counts per point are exported as
// fsdl_failpoint_hits_total{point} / fsdl_failpoint_fires_total{point} in
// the server's Prometheus exposition, so a torture run can assert its
// faults actually happened. The point catalog lives in DESIGN.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fsdl::failpoint {

namespace detail {
/// Number of currently armed points. Nonzero is the only signal the fast
/// path reads; everything else lives behind the registry mutex.
extern std::atomic<std::uint32_t> g_armed_points;
}  // namespace detail

/// What an armed, triggered failpoint asks the site to do. Delay and abort
/// are performed inside evaluate() (the site never sees them); errno and
/// short injection must be applied by the site because only it knows what
/// "fail" and "clamp" mean for its operation.
enum class HitKind : std::uint8_t { kNone = 0, kErrno, kShort };

struct Hit {
  HitKind kind = HitKind::kNone;
  /// errno value to simulate (kErrno). Allocation-failure sites treat any
  /// kErrno fire as "throw std::bad_alloc".
  int err = 0;
  /// Byte clamp for short-read/short-write injection (kShort).
  std::size_t max_bytes = 0;

  explicit operator bool() const noexcept { return kind != HitKind::kNone; }

  /// Clamp an I/O request size for short injection; identity otherwise.
  std::size_t clamp(std::size_t want) const noexcept {
    if (kind != HitKind::kShort || want <= max_bytes) return want;
    return max_bytes == 0 ? 1 : max_bytes;
  }
};

/// True while any point is armed — one relaxed load, the whole disarmed
/// cost of the subsystem.
inline bool armed() noexcept {
  return detail::g_armed_points.load(std::memory_order_relaxed) != 0;
}

/// Slow path: look `point` up in the registry, count the hit, run its
/// trigger, perform delay/abort actions, and return what the site must
/// inject. Unarmed points return kNone (and are not counted). Thread-safe
/// against concurrent evaluate/arm/disarm.
Hit evaluate(const char* point) noexcept;

/// The one macro sites use. Disarmed: one relaxed atomic load.
#define FSDL_FAILPOINT(point)                                      \
  (::fsdl::failpoint::armed() ? ::fsdl::failpoint::evaluate(point) \
                              : ::fsdl::failpoint::Hit{})

/// Parse and arm a spec list (grammar above). Re-arming a point replaces
/// its action/trigger and resets its counters. Returns "" on success or a
/// human-readable parse error naming the offending spec; on error nothing
/// is armed or changed.
std::string arm(const std::string& spec_list);

/// Arm from the FSDL_FAILPOINTS environment variable. Unset or empty is a
/// no-op success. Returns "" or the parse error.
std::string arm_from_env();

/// Disarm one point (no-op when not armed) / every point.
void disarm(const std::string& point);
void disarm_all();

struct PointStats {
  std::string point;
  std::string spec;     ///< the action@trigger this point was armed with
  std::uint64_t hits;   ///< evaluations while armed
  std::uint64_t fires;  ///< evaluations whose trigger fired
};

/// Snapshot of every armed point, sorted by name (deterministic output for
/// tests and the metrics renderer).
std::vector<PointStats> stats();

/// Hit/fire counters for one point; 0 when it is not armed.
std::uint64_t hits(const std::string& point);
std::uint64_t fires(const std::string& point);

}  // namespace fsdl::failpoint
