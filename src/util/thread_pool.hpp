// Fixed-size worker pool with a blocking job queue.
//
// Lived in src/server/ originally; hoisted into util/ so it sits next to
// parallel_for as the long-lived-job half of the threading toolkit. The
// server's dispatch layer (fsdl::server::ThreadPool) is an alias of this
// class and keeps its submit/shutdown queue semantics unchanged.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsdl {

class ThreadPool {
 public:
  /// No queue bound (the historical behavior).
  static constexpr std::size_t kUnboundedQueue = static_cast<std::size_t>(-1);

  /// `max_queue` bounds the number of *waiting* jobs (jobs submitted while
  /// every worker is busy); 0 means a job is only accepted when a worker is
  /// free to take it. A bounded queue is the admission-control half of load
  /// shedding: the caller learns synchronously that the pool is saturated
  /// instead of queueing latency invisibly.
  explicit ThreadPool(unsigned num_threads,
                      std::size_t max_queue = kUnboundedQueue);
  /// Drains outstanding jobs, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Returns false (job dropped) after shutdown() began or
  /// when a bounded queue is full.
  bool submit(std::function<void()> job);

  /// Stop accepting jobs, finish queued ones, join all workers. Idempotent.
  void shutdown();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Jobs submitted but not yet picked up by a worker.
  std::size_t queue_depth() const;

  /// Workers currently inside a job.
  std::size_t active_jobs() const;

  /// Jobs that have finished, ever. A liveness signal, not an accounting
  /// one: a watchdog seeing every worker busy *and* this number frozen
  /// across its stall window knows the pool is wedged, not merely full.
  std::uint64_t jobs_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t max_queue_ = 0;
  std::size_t idle_workers_ = 0;
  std::size_t active_ = 0;
  std::atomic<std::uint64_t> completed_{0};
  bool closed_ = false;
  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace fsdl
