// Fixed-size worker pool with a blocking job queue.
//
// Lived in src/server/ originally; hoisted into util/ so it sits next to
// parallel_for as the long-lived-job half of the threading toolkit. The
// server's dispatch layer (fsdl::server::ThreadPool) is an alias of this
// class and keeps its submit/shutdown queue semantics unchanged.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fsdl {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  /// Drains outstanding jobs, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Returns false (job dropped) after shutdown() began.
  bool submit(std::function<void()> job);

  /// Stop accepting jobs, finish queued ones, join all workers. Idempotent.
  void shutdown();

  unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool closed_ = false;
  std::once_flag join_once_;
  std::vector<std::thread> workers_;
};

}  // namespace fsdl
