// Flat containers for the decoder's query hot path.
//
// Lemma 2.6 charges a query |F|²·2^O(α)·log n units of certification and
// Dijkstra work; the node-based std::unordered_{map,set} the decoder first
// shipped with spent comparable time in the allocator. These replacements
// keep the same contracts with contiguous storage:
//   - FlatDistMap: protected-ball lookup tables, built once per
//     PreparedFaults and then probed on every certification check — the
//     single hottest lookup of the decoder. Open addressing keeps it at
//     O(1) probes over two flat arrays (a binary search over a faithful
//     ball of 10^5 points costs ~17 dependent cache misses per check and
//     was measured 2-3x slower end to end).
//   - SortedSet: small fault/owner membership sets, binary-searched.
//   - EdgeAccumulator: the per-query min-merge of surviving sketch edges;
//     open-addressing index over a dense entry vector, O(1) epoch-based
//     clear, capacity retained across queries so a reused (thread_local)
//     instance stops allocating in steady state. Iteration is in
//     first-insertion order — deterministic given a deterministic insertion
//     sequence, which keeps repeated queries bit-identical (unordered_map
//     offered no such order).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace fsdl {

/// Immutable Vertex -> Dist map with an open-addressing probe table.
/// First insertion of a key wins (entries hold distinct keys in practice).
/// kNoVertex marks empty slots, so it is not a valid key.
class FlatDistMap {
 public:
  FlatDistMap() = default;
  explicit FlatDistMap(const std::vector<std::pair<Vertex, Dist>>& entries);

  /// Pointer to the mapped distance, or nullptr when absent.
  const Dist* find(Vertex key) const noexcept;

  std::size_t size() const noexcept { return size_; }

 private:
  // Parallel slot arrays; load factor <= 1/2, linear probing.
  std::vector<Vertex> keys_;
  std::vector<Dist> vals_;
  std::size_t mask_ = 0;  // slot count - 1 when non-empty, else 0
  std::size_t size_ = 0;
};

/// Immutable sorted membership set.
template <typename Key>
class SortedSet {
 public:
  SortedSet() = default;
  explicit SortedSet(std::vector<Key> keys) : keys_(std::move(keys)) {
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  }

  bool contains(Key key) const noexcept {
    return std::binary_search(keys_.begin(), keys_.end(), key);
  }
  bool empty() const noexcept { return keys_.empty(); }
  std::size_t size() const noexcept { return keys_.size(); }

 private:
  std::vector<Key> keys_;
};

/// Reusable min-merging accumulator: packed edge key -> smallest weight.
class EdgeAccumulator {
 public:
  /// Forget all entries in O(1); keeps every allocation.
  void clear() noexcept {
    entries_.clear();
    if (++epoch_ == 0) {  // tag wrapped: hard-reset so stale slots can't match
      std::fill(tags_.begin(), tags_.end(), 0u);
      epoch_ = 1;
    }
  }

  /// Pre-size for ~n distinct keys.
  void reserve(std::size_t n);

  /// Insert key -> w, keeping the minimum weight on repeated keys.
  void keep_min(std::uint64_t key, Dist w);

  /// Entries in first-insertion order.
  const std::vector<std::pair<std::uint64_t, Dist>>& entries() const noexcept {
    return entries_;
  }
  std::size_t size() const noexcept { return entries_.size(); }

 private:
  void grow(std::size_t min_slots);

  // Open-addressing index: slot s holds entry index pos_[s] for key keys_[s],
  // live iff tags_[s] == epoch_. Load factor kept <= 1/2.
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> pos_;
  std::vector<std::uint32_t> tags_;
  std::vector<std::pair<std::uint64_t, Dist>> entries_;
  std::size_t mask_ = 0;  // slot count - 1 when non-empty, else 0
  std::uint32_t epoch_ = 1;
};

}  // namespace fsdl
