#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fsdl {

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty sample");
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty sample");
  ensure_sorted();
  return samples_.back();
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty sample");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("Summary::percentile on empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile must be in [0, 100]");
  }
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double growth, double ref)
    : growth_(growth), log_growth_(std::log(growth)), ref_(ref) {
  if (!(growth > 1.0)) throw std::invalid_argument("Histogram growth must be > 1");
  if (!(ref > 0.0)) throw std::invalid_argument("Histogram ref must be > 0");
}

int Histogram::bucket_index(double x) const {
  return static_cast<int>(std::floor(std::log(x / ref_) / log_growth_));
}

void Histogram::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  if (x <= 0.0) {
    ++underflow_;
    return;
  }
  const int k = bucket_index(x);
  if (buckets_.empty()) {
    offset_ = k;
    buckets_.assign(1, 0);
  } else if (k < offset_) {
    buckets_.insert(buckets_.begin(), static_cast<std::size_t>(offset_ - k), 0);
    offset_ = k;
  } else if (k >= offset_ + static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<std::size_t>(k - offset_) + 1, 0);
  }
  ++buckets_[static_cast<std::size_t>(k - offset_)];
}

void Histogram::add_n(double x, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  count_ += n;
  sum_ += x * static_cast<double>(n);
  if (x <= 0.0) {
    underflow_ += n;
    return;
  }
  const int k = bucket_index(x);
  if (buckets_.empty()) {
    offset_ = k;
    buckets_.assign(1, 0);
  } else if (k < offset_) {
    buckets_.insert(buckets_.begin(), static_cast<std::size_t>(offset_ - k), 0);
    offset_ = k;
  } else if (k >= offset_ + static_cast<int>(buckets_.size())) {
    buckets_.resize(static_cast<std::size_t>(k - offset_) + 1, 0);
  }
  buckets_[static_cast<std::size_t>(k - offset_)] += n;
}

void Histogram::merge(const Histogram& other) {
  if (growth_ != other.growth_ || ref_ != other.ref_) {
    throw std::invalid_argument("Histogram::merge requires identical scales");
  }
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  underflow_ += other.underflow_;
  for (std::size_t j = 0; j < other.buckets_.size(); ++j) {
    if (other.buckets_[j] == 0) continue;
    const int k = other.offset_ + static_cast<int>(j);
    if (buckets_.empty()) {
      offset_ = k;
      buckets_.assign(1, 0);
    } else if (k < offset_) {
      buckets_.insert(buckets_.begin(), static_cast<std::size_t>(offset_ - k),
                      0);
      offset_ = k;
    } else if (k >= offset_ + static_cast<int>(buckets_.size())) {
      buckets_.resize(static_cast<std::size_t>(k - offset_) + 1, 0);
    }
    buckets_[static_cast<std::size_t>(k - offset_)] += other.buckets_[j];
  }
}

void Histogram::reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
  underflow_ = 0;
  offset_ = 0;
  buckets_.clear();
}

double Histogram::min() const {
  if (count_ == 0) throw std::logic_error("Histogram::min on empty sample");
  return min_;
}

double Histogram::max() const {
  if (count_ == 0) throw std::logic_error("Histogram::max on empty sample");
  return max_;
}

double Histogram::mean() const {
  if (count_ == 0) throw std::logic_error("Histogram::mean on empty sample");
  return sum_ / static_cast<double>(count_);
}

std::vector<Histogram::Bucket> Histogram::buckets() const {
  std::vector<Bucket> out;
  if (underflow_ > 0) out.push_back({0.0, underflow_});
  for (std::size_t j = 0; j < buckets_.size(); ++j) {
    if (buckets_[j] == 0) continue;
    const int k = offset_ + static_cast<int>(j);
    out.push_back({ref_ * std::pow(growth_, k + 1), buckets_[j]});
  }
  return out;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) {
    throw std::logic_error("Histogram::percentile on empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile must be in [0, 100]");
  }
  // Nearest-rank, matching Summary::percentile.
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  // The extreme ranks are tracked exactly.
  if (rank == 1) return min_;
  if (rank == count_) return max_;
  if (rank <= underflow_) return min_;
  std::uint64_t seen = underflow_;
  for (std::size_t j = 0; j < buckets_.size(); ++j) {
    seen += buckets_[j];
    if (seen >= rank) {
      const int k = offset_ + static_cast<int>(j);
      const double upper = ref_ * std::pow(growth_, k + 1);
      return std::min(std::max(upper, min_), max_);
    }
  }
  return max_;
}

}  // namespace fsdl
