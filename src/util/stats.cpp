#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace fsdl {

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  if (samples_.empty()) throw std::logic_error("Summary::min on empty sample");
  ensure_sorted();
  return samples_.front();
}

double Summary::max() const {
  if (samples_.empty()) throw std::logic_error("Summary::max on empty sample");
  ensure_sorted();
  return samples_.back();
}

double Summary::mean() const {
  if (samples_.empty()) throw std::logic_error("Summary::mean on empty sample");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("Summary::percentile on empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile must be in [0, 100]");
  }
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

}  // namespace fsdl
