// Fork-join parallelism for CPU-bound loops (the label builder's two
// per-level fan-outs; usable by any caller with independent iterations).
//
// Split out of the server's ThreadPool (now util/thread_pool.*): the pool
// keeps its blocking-queue semantics for long-lived connection jobs, while
// parallel_for is the fire-and-join shape construction wants — no queue, no
// std::function per item in the steady state, workers die with the call.
#pragma once

#include <cstddef>
#include <functional>

namespace fsdl {

/// Resolve a thread-count knob: n > 0 is taken literally; 0 means "auto" —
/// the FSDL_BUILD_THREADS environment variable if set to a positive value
/// (CI pins its matrix legs through this), else hardware concurrency
/// (at least 1).
unsigned resolve_threads(unsigned requested) noexcept;

/// Invoke body(worker_id, index) for every index in [0, count), spreading
/// indices over `threads` workers in dynamically scheduled chunks (per-index
/// cost may be lopsided — a truncated BFS ball is as big as the net is
/// locally dense). worker_id < threads lets the caller hand out per-worker
/// scratch. Runs inline (worker_id 0) when threads <= 1 or count < 2.
/// Iterations must be independent; the first exception thrown by any worker
/// is rethrown in the caller after all workers join.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(unsigned, std::size_t)>& body);

}  // namespace fsdl
