// Small, fast, reproducible PRNG (xoshiro256**) plus convenience helpers.
//
// We avoid std::mt19937 for speed and to guarantee cross-platform
// reproducibility of every experiment from a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace fsdl {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless method would be overkill; plain rejection
    // sampling keeps the distribution exactly uniform.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Uniform vertex in [0, n).
  Vertex vertex(Vertex n) noexcept { return static_cast<Vertex>(below(n)); }

  /// k distinct values sampled uniformly from [0, n) (k <= n).
  std::vector<Vertex> sample_distinct(Vertex n, std::size_t k) {
    std::vector<Vertex> out;
    out.reserve(k);
    // Floyd's algorithm: O(k) expected, no O(n) scratch.
    for (Vertex j = static_cast<Vertex>(n - k); j < n; ++j) {
      Vertex t = vertex(j + 1);
      bool seen = false;
      for (Vertex v : out) {
        if (v == t) {
          seen = true;
          break;
        }
      }
      out.push_back(seen ? j : t);
    }
    return out;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace fsdl
