#include "util/bitstream.hpp"

#include <bit>
#include <stdexcept>

namespace fsdl {

void BitWriter::write_bits(std::uint64_t value, unsigned width) {
  if (width > 64) throw std::invalid_argument("BitWriter: width > 64");
  if (width == 0) return;
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;

  const std::size_t word_index = bit_size_ / 64;
  const unsigned offset = static_cast<unsigned>(bit_size_ % 64);
  if (word_index >= words_.size()) words_.push_back(0);
  words_[word_index] |= value << offset;
  if (offset + width > 64) {
    words_.push_back(value >> (64 - offset));
  }
  bit_size_ += width;
}

void BitWriter::write_gamma(std::uint64_t value) {
  if (value == 0) throw std::invalid_argument("gamma code requires value >= 1");
  const unsigned len = 64 - static_cast<unsigned>(std::countl_zero(value));
  write_bits(0, len - 1);          // len-1 zeros
  write_bits(1, 1);                // stop bit
  write_bits(value, len - 1);      // remaining bits below the leading one
}

std::uint64_t BitReader::read_bits(unsigned width) {
  if (width > 64) throw std::invalid_argument("BitReader: width > 64");
  if (width == 0) return 0;
  if (pos_ + width > bit_size_) throw std::out_of_range("BitReader: past end");

  const std::size_t word_index = pos_ / 64;
  const unsigned offset = static_cast<unsigned>(pos_ % 64);
  std::uint64_t value = (*words_)[word_index] >> offset;
  if (offset + width > 64) {
    value |= (*words_)[word_index + 1] << (64 - offset);
  }
  pos_ += width;
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  return value;
}

std::uint64_t BitReader::read_gamma() {
  unsigned zeros = 0;
  while (read_bits(1) == 0) {
    ++zeros;
    if (zeros > 64) throw std::runtime_error("gamma code corrupt");
  }
  const std::uint64_t low = zeros == 0 ? 0 : read_bits(zeros);
  return (std::uint64_t{1} << zeros) | low;
}

unsigned bits_for(std::uint64_t n) noexcept {
  if (n <= 2) return 1;
  return 64 - static_cast<unsigned>(std::countl_zero(n - 1));
}

}  // namespace fsdl
