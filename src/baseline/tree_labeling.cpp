#include "baseline/tree_labeling.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/components.hpp"

namespace fsdl {
namespace {

/// depth(lca(s, t)) from the chain descriptors: both root paths share a
/// prefix of chains; on the last shared chain, the common part reaches the
/// shallower leave-depth.
Dist lca_depth(const TreeLabel& s, const TreeLabel& t) {
  std::size_t k = 0;
  const std::size_t limit = std::min(s.chains.size(), t.chains.size());
  while (k < limit && s.chains[k].first == t.chains[k].first) ++k;
  if (k == 0) {
    throw std::logic_error("tree labels from different trees (no common root)");
  }
  return std::min(s.chains[k - 1].second, t.chains[k - 1].second);
}

bool on_path(const TreeLabel& s, const TreeLabel& t, const TreeLabel& f,
             Dist dst) {
  const Dist dsf = TreeDistanceLabeling::decode_distance(s, f);
  const Dist dft = TreeDistanceLabeling::decode_distance(f, t);
  return dsf + dft == dst;
}

}  // namespace

TreeDistanceLabeling TreeDistanceLabeling::build(const Graph& tree) {
  const Vertex n = tree.num_vertices();
  if (n == 0) throw std::invalid_argument("empty graph");
  if (tree.num_edges() != static_cast<std::size_t>(n) - 1 || !is_connected(tree)) {
    throw std::invalid_argument("TreeDistanceLabeling: input is not a tree");
  }

  // Root at 0; iterative DFS order for parent/depth/subtree size.
  std::vector<Vertex> parent(n, kNoVertex);
  std::vector<Dist> depth(n, 0);
  std::vector<Vertex> order;
  order.reserve(n);
  {
    std::vector<Vertex> stack{0};
    std::vector<char> seen(n, 0);
    seen[0] = 1;
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      order.push_back(u);
      for (Vertex w : tree.neighbors(u)) {
        if (!seen[w]) {
          seen[w] = 1;
          parent[w] = u;
          depth[w] = depth[u] + 1;
          stack.push_back(w);
        }
      }
    }
  }

  std::vector<std::size_t> subtree(n, 1);
  for (std::size_t k = order.size(); k-- > 1;) {
    subtree[parent[order[k]]] += subtree[order[k]];
  }

  // Heavy child per vertex: the child with the largest subtree.
  std::vector<Vertex> heavy(n, kNoVertex);
  for (Vertex v = 0; v < n; ++v) {
    if (v != 0) {
      const Vertex p = parent[v];
      if (heavy[p] == kNoVertex || subtree[v] > subtree[heavy[p]]) {
        heavy[p] = v;
      }
    }
  }

  // Chain head per vertex (processing in DFS order keeps parents first).
  std::vector<Vertex> head(n);
  head[0] = 0;
  for (Vertex v : order) {
    if (v == 0) continue;
    head[v] = heavy[parent[v]] == v ? head[parent[v]] : v;
  }

  TreeDistanceLabeling scheme;
  scheme.vertex_bits_ = bits_for(n);
  scheme.labels_.resize(n);
  std::vector<std::pair<Vertex, Dist>> chains;
  for (Vertex v = 0; v < n; ++v) {
    chains.clear();
    // Walk chain heads up to the root, then reverse.
    Vertex cur = v;
    Dist leave = depth[v];
    while (true) {
      const Vertex h = head[cur];
      chains.emplace_back(h, leave);
      if (h == 0) break;
      cur = parent[h];
      leave = depth[cur];
    }
    std::reverse(chains.begin(), chains.end());

    BitWriter& out = scheme.labels_[v];
    out.write_bits(v, scheme.vertex_bits_);
    out.write_gamma0(depth[v]);
    out.write_gamma0(chains.size());
    for (const auto& [h, d] : chains) {
      out.write_bits(h, scheme.vertex_bits_);
      out.write_gamma0(d);
    }
    out.shrink_to_fit();
  }
  return scheme;
}

TreeLabel TreeDistanceLabeling::label(Vertex v) const {
  BitReader in(labels_.at(v));
  TreeLabel l;
  l.owner = static_cast<Vertex>(in.read_bits(vertex_bits_));
  l.depth = static_cast<Dist>(in.read_gamma0());
  l.chains.resize(in.read_gamma0());
  for (auto& [h, d] : l.chains) {
    h = static_cast<Vertex>(in.read_bits(vertex_bits_));
    d = static_cast<Dist>(in.read_gamma0());
  }
  return l;
}

Dist TreeDistanceLabeling::decode_distance(const TreeLabel& s,
                                           const TreeLabel& t) {
  if (s.owner == t.owner) return 0;
  return s.depth + t.depth - 2 * lca_depth(s, t);
}

Dist TreeDistanceLabeling::decode_distance(
    const TreeLabel& s, const TreeLabel& t,
    const std::vector<const TreeLabel*>& fault_vertices,
    const std::vector<std::pair<const TreeLabel*, const TreeLabel*>>&
        fault_edges) {
  for (const TreeLabel* f : fault_vertices) {
    if (f->owner == s.owner || f->owner == t.owner) return kInfDist;
  }
  const Dist d = decode_distance(s, t);
  for (const TreeLabel* f : fault_vertices) {
    if (on_path(s, t, *f, d)) return kInfDist;
  }
  for (const auto& [a, b] : fault_edges) {
    // A tree edge with both endpoints on the unique s-t path lies on it.
    // (The adjacency check guards against forbidden non-edges.)
    if (decode_distance(*a, *b) == 1 && on_path(s, t, *a, d) &&
        on_path(s, t, *b, d)) {
      return kInfDist;
    }
  }
  return d;
}

Dist TreeDistanceLabeling::distance(Vertex s, Vertex t) const {
  const TreeLabel ls = label(s), lt = label(t);
  return decode_distance(ls, lt);
}

Dist TreeDistanceLabeling::distance(Vertex s, Vertex t,
                                    const FaultSet& faults) const {
  const TreeLabel ls = label(s), lt = label(t);
  std::vector<TreeLabel> storage;
  storage.reserve(faults.vertices().size() + 2 * faults.edges().size());
  std::vector<const TreeLabel*> fv;
  std::vector<std::pair<const TreeLabel*, const TreeLabel*>> fe;
  for (Vertex f : faults.vertices()) {
    storage.push_back(label(f));
    fv.push_back(&storage.back());
  }
  for (const auto& [a, b] : faults.edges()) {
    storage.push_back(label(a));
    storage.push_back(label(b));
    fe.emplace_back(&storage[storage.size() - 2], &storage.back());
  }
  return decode_distance(ls, lt, fv, fe);
}

std::size_t TreeDistanceLabeling::max_label_bits() const {
  std::size_t best = 0;
  for (const auto& w : labels_) best = std::max(best, w.bit_size());
  return best;
}

std::size_t TreeDistanceLabeling::total_bits() const {
  std::size_t sum = 0;
  for (const auto& w : labels_) sum += w.bit_size();
  return sum;
}

}  // namespace fsdl
