// Baseline: single-fault sensitivity oracle (Demetrescu–Thorup-flavoured
// comparator for the related-work experiment E6).
//
// Stores one BFS tree per source (O(n²) words total). A query (s, t, {f})
// walks the stored tree path from t to s: if f is not on it, that path is a
// fault-free shortest path and d_{G\{f}}(s,t) = d_G(s,t) is returned in
// O(path length); otherwise it falls back to a fresh BFS on G\{f}.
// Exact, but only for a single vertex fault — the contrast with the
// labeling scheme, whose size is independent of the number of faults.
#pragma once

#include <vector>

#include "graph/fault_view.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

class SensitivityOracle {
 public:
  explicit SensitivityOracle(const Graph& g);

  /// Exact d_{G\{f}}(s, t); f must differ from s and t.
  Dist distance_avoiding_vertex(Vertex s, Vertex t, Vertex f) const;

  /// Fraction of recent queries that needed the BFS fallback.
  double fallback_rate() const;

  std::size_t size_bits() const {
    return parent_.size() * (sizeof(Vertex) + sizeof(Dist)) * 8;
  }

 private:
  const Graph* g_;
  std::size_t n_;
  // parent_[s*n + v] = parent of v in s's BFS tree; dist_ likewise.
  std::vector<Vertex> parent_;
  std::vector<Dist> dist_;
  mutable std::size_t queries_ = 0;
  mutable std::size_t fallbacks_ = 0;
};

}  // namespace fsdl
