// Exact 2-hop (hub) distance labeling via pruned landmark labeling
// (Akiba–Iwata–Yoshida, SIGMOD 2013).
//
// The paper's application section argues its forbidden-set labels extend
// the hub-label line of work (Abraham–Delling–Goldberg–Werneck) toward
// failures; this class is that line's failure-free representative: exact
// distances, labels empirically small on low-dimension graphs, but no
// fault tolerance whatsoever. Benchmark E13 compares it against both of
// our schemes.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

class HubLabeling {
 public:
  /// Pruned landmark labeling: processes vertices in decreasing-degree
  /// order; each BFS is pruned wherever existing hubs already certify the
  /// tentative distance. Exact for connected and disconnected graphs.
  static HubLabeling build(const Graph& g);

  /// Exact d_G(u, v) by merging the two sorted hub lists.
  Dist distance(Vertex u, Vertex v) const;

  /// Hubs of one vertex: (hub id, distance) sorted by hub id.
  const std::vector<std::pair<Vertex, Dist>>& hubs(Vertex v) const {
    return labels_[v];
  }

  double mean_hubs() const;
  std::size_t max_hubs() const;

  /// Bit accounting comparable to the other schemes: per entry, a fixed
  /// ⌈log₂ n⌉-bit hub id plus a gamma-coded distance.
  std::size_t label_bits(Vertex v) const;
  std::size_t total_bits() const;

 private:
  unsigned vertex_bits_ = 1;
  std::vector<std::vector<std::pair<Vertex, Dist>>> labels_;
};

}  // namespace fsdl
