// Baseline: precomputed all-pairs shortest paths (failure-free).
//
// O(n²) space, O(1) queries, exact — but cannot handle faults at all.
// Used as the exact denominator for stretch measurements and as the
// space/time contrast case in the failure-free experiment (E2).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

class ApspOracle {
 public:
  /// n BFS runs; use on graphs where n² distances fit comfortably.
  explicit ApspOracle(const Graph& g);

  Dist distance(Vertex s, Vertex t) const {
    return matrix_[static_cast<std::size_t>(s) * n_ + t];
  }

  std::size_t size_bits() const { return matrix_.size() * sizeof(Dist) * 8; }

 private:
  std::size_t n_;
  std::vector<Dist> matrix_;
};

}  // namespace fsdl
