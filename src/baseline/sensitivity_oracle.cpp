#include "baseline/sensitivity_oracle.hpp"

#include <stdexcept>

namespace fsdl {

SensitivityOracle::SensitivityOracle(const Graph& g)
    : g_(&g), n_(g.num_vertices()) {
  parent_.assign(n_ * n_, kNoVertex);
  dist_.assign(n_ * n_, kInfDist);
  std::vector<Vertex> queue;
  for (Vertex s = 0; s < n_; ++s) {
    auto* parent = parent_.data() + s * n_;
    auto* dist = dist_.data() + s * n_;
    queue.clear();
    queue.push_back(s);
    dist[s] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      for (Vertex w : g.neighbors(u)) {
        if (dist[w] == kInfDist) {
          dist[w] = dist[u] + 1;
          parent[w] = u;
          queue.push_back(w);
        }
      }
    }
  }
}

Dist SensitivityOracle::distance_avoiding_vertex(Vertex s, Vertex t,
                                                 Vertex f) const {
  if (f == s || f == t) throw std::invalid_argument("fault equals endpoint");
  ++queries_;
  const auto* parent = parent_.data() + static_cast<std::size_t>(s) * n_;
  const auto* dist = dist_.data() + static_cast<std::size_t>(s) * n_;
  if (dist[t] == kInfDist) return kInfDist;
  bool tree_path_hits_fault = false;
  for (Vertex v = t; v != s; v = parent[v]) {
    if (v == f) {
      tree_path_hits_fault = true;
      break;
    }
  }
  if (!tree_path_hits_fault) return dist[t];
  ++fallbacks_;
  FaultSet faults;
  faults.add_vertex(f);
  return distance_avoiding(*g_, s, t, faults);
}

double SensitivityOracle::fallback_rate() const {
  return queries_ == 0
             ? 0.0
             : static_cast<double>(fallbacks_) / static_cast<double>(queries_);
}

}  // namespace fsdl
