// Exact forbidden-set distance labeling for trees — the Courcelle–Twigg
// (STACS 2007) approach instantiated at treewidth 1.
//
// On a tree the s-t path is unique, so d_{T\F}(s,t) is d_T(s,t) if no
// forbidden element lies on the path and ∞ otherwise. Labels of
// O(log² n) bits suffice for exactness:
//   - heavy-path decomposition gives every vertex a root-path descriptor of
//     at most ⌈log₂ n⌉ (chain head, leave-depth) entries;
//   - two descriptors yield depth(lca) and hence the exact distance;
//   - a fault vertex f is on the path iff d(s,f) + d(f,t) = d(s,t), and a
//     fault edge (a,b) is on it iff both endpoints are.
// Query time O(|F| log n).
//
// This is the comparison point the paper positions itself against: exact
// answers with comparable label length, but only for width-1 graphs —
// against (1+ε) answers for every bounded-doubling graph.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/fault_view.hpp"
#include "graph/graph.hpp"
#include "util/bitstream.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Decoded tree label.
struct TreeLabel {
  Vertex owner = kNoVertex;
  Dist depth = 0;
  /// Root-to-owner chain descriptor: (chain head, depth at which the root
  /// path leaves the chain). The last entry's leave-depth equals `depth`.
  std::vector<std::pair<Vertex, Dist>> chains;
};

class TreeDistanceLabeling {
 public:
  /// Preprocess a tree (connected, m = n - 1); throws otherwise.
  static TreeDistanceLabeling build(const Graph& tree);

  TreeLabel label(Vertex v) const;
  std::size_t label_bits(Vertex v) const { return labels_[v].bit_size(); }
  std::size_t max_label_bits() const;
  std::size_t total_bits() const;

  /// Exact d_T(s, t) from two labels.
  static Dist decode_distance(const TreeLabel& s, const TreeLabel& t);

  /// Exact d_{T\F}(s, t) from the labels of s, t and every fault.
  static Dist decode_distance(
      const TreeLabel& s, const TreeLabel& t,
      const std::vector<const TreeLabel*>& fault_vertices,
      const std::vector<std::pair<const TreeLabel*, const TreeLabel*>>&
          fault_edges);

  /// Convenience wrappers decoding on the fly.
  Dist distance(Vertex s, Vertex t) const;
  Dist distance(Vertex s, Vertex t, const FaultSet& faults) const;

 private:
  unsigned vertex_bits_ = 1;
  std::vector<BitWriter> labels_;
};

}  // namespace fsdl
