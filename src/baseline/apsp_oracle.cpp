#include "baseline/apsp_oracle.hpp"

#include "graph/bfs.hpp"

namespace fsdl {

ApspOracle::ApspOracle(const Graph& g) : n_(g.num_vertices()) {
  matrix_.reserve(n_ * n_);
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    const auto dist = bfs_distances(g, s);
    matrix_.insert(matrix_.end(), dist.begin(), dist.end());
  }
}

}  // namespace fsdl
