#include "baseline/hub_labeling.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "graph/bfs.hpp"
#include "nets/net_hierarchy.hpp"
#include "util/bitstream.hpp"

namespace fsdl {

HubLabeling HubLabeling::build(const Graph& g) {
  const Vertex n = g.num_vertices();
  HubLabeling scheme;
  scheme.vertex_bits_ = bits_for(n);
  scheme.labels_.resize(n);

  // Ordering heuristic: hierarchical landmarks first. Degree ordering (the
  // textbook choice) degenerates on regular graphs (paths, grids); instead
  // we reuse the repository's net hierarchy — vertices of high net level
  // are 2^j-separated dominators, so processing them first makes every
  // scale contribute O(2^{O(α)}) hubs per vertex (the classic hub-label
  // bound for low doubling dimension). On a path this reproduces the
  // binary-midpoint order, giving O(log n) hubs.
  std::vector<Vertex> order(n);
  std::iota(order.begin(), order.end(), 0);
  {
    const NetHierarchy nets = build_net_hierarchy(g, default_top_level(n));
    std::sort(order.begin(), order.end(), [&](Vertex a, Vertex b) {
      if (nets.max_level_of(a) != nets.max_level_of(b)) {
        return nets.max_level_of(a) > nets.max_level_of(b);
      }
      if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
      return a < b;
    });
  }

  // Scratch for the pruned BFS and for O(1) lookups of the current root's
  // label during pruning queries.
  std::vector<Dist> dist(n, kInfDist);
  std::vector<Dist> root_hub_dist(n, kInfDist);
  std::vector<Vertex> queue;

  for (const Vertex root : order) {
    // Index the root's own label: hub -> distance.
    for (const auto& [h, d] : scheme.labels_[root]) root_hub_dist[h] = d;
    root_hub_dist[root] = 0;

    queue.clear();
    queue.push_back(root);
    dist[root] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      const Dist du = dist[u];
      // Prune: if some earlier hub already certifies d(root, u) <= du,
      // adding (root, du) to u is useless, and so is expanding u.
      bool pruned = false;
      for (const auto& [h, d] : scheme.labels_[u]) {
        const Dist via = root_hub_dist[h];
        if (via != kInfDist && via + d <= du) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      scheme.labels_[u].emplace_back(root, du);
      for (Vertex w : g.neighbors(u)) {
        if (dist[w] == kInfDist) {
          dist[w] = du + 1;
          queue.push_back(w);
        }
      }
    }
    for (Vertex v : queue) dist[v] = kInfDist;
    for (const auto& [h, d] : scheme.labels_[root]) root_hub_dist[h] = kInfDist;
    root_hub_dist[root] = kInfDist;
  }

  // Hub entries were appended in processing order; queries merge by id.
  for (auto& label : scheme.labels_) {
    std::sort(label.begin(), label.end());
  }
  return scheme;
}

Dist HubLabeling::distance(Vertex u, Vertex v) const {
  if (u == v) return 0;
  const auto& a = labels_[u];
  const auto& b = labels_[v];
  Dist best = kInfDist;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first == b[j].first) {
      best = std::min(best, static_cast<Dist>(a[i].second + b[j].second));
      ++i;
      ++j;
    } else if (a[i].first < b[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

double HubLabeling::mean_hubs() const {
  std::size_t sum = 0;
  for (const auto& l : labels_) sum += l.size();
  return labels_.empty() ? 0.0
                         : static_cast<double>(sum) / static_cast<double>(labels_.size());
}

std::size_t HubLabeling::max_hubs() const {
  std::size_t best = 0;
  for (const auto& l : labels_) best = std::max(best, l.size());
  return best;
}

std::size_t HubLabeling::label_bits(Vertex v) const {
  std::size_t bits = 0;
  for (const auto& [h, d] : labels_[v]) {
    (void)h;
    const std::uint64_t value = d + 1;  // gamma needs >= 1
    const unsigned len = 64 - static_cast<unsigned>(std::countl_zero(value));
    bits += vertex_bits_ + 2 * len - 1;
  }
  return bits;
}

std::size_t HubLabeling::total_bits() const {
  std::size_t sum = 0;
  for (Vertex v = 0; v < labels_.size(); ++v) sum += label_bits(v);
  return sum;
}

}  // namespace fsdl
