// Baseline: recompute-from-scratch exact oracle.
//
// Answers every forbidden-set query by running BFS on G\F. Zero space
// beyond the graph, exact answers, O(m) per query — the "no data structure"
// end of the trade-off every labeling-scheme experiment compares against.
#pragma once

#include "graph/fault_view.hpp"
#include "graph/graph.hpp"

namespace fsdl {

class ExactOracle {
 public:
  explicit ExactOracle(const Graph& g) : g_(&g) {}

  Dist distance(Vertex s, Vertex t, const FaultSet& faults) const {
    return distance_avoiding(*g_, s, t, faults);
  }

  /// Size of the representation this baseline needs at query time.
  std::size_t size_bits() const { return g_->memory_bytes() * 8; }

 private:
  const Graph* g_;
};

}  // namespace fsdl
