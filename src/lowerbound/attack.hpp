// The "everywhere failure" reconstruction attack from Theorem 3.1's proof.
//
// For every vertex pair (i, j), query connectivity with F = V \ {i, j}:
// the surviving graph is either the single edge (i, j) or two isolated
// vertices, so the answers determine the input graph exactly. Running the
// attack through our own labeling scheme demonstrates constructively that
// the labels encode at least |E| bits collectively — the information the
// lower bound counts.
#pragma once

#include "core/connectivity.hpp"
#include "graph/graph.hpp"

namespace fsdl {

/// Rebuild the graph edge-by-edge from connectivity queries. O(n²) queries
/// with |F| = n - 2 each — use only on small graphs.
Graph reconstruct_via_connectivity(const ConnectivityOracle& oracle, Vertex n);

/// True iff the two graphs have identical vertex counts and edge sets.
bool same_graph(const Graph& a, const Graph& b);

}  // namespace fsdl
