#include "lowerbound/attack.hpp"

#include "graph/fault_view.hpp"

namespace fsdl {

Graph reconstruct_via_connectivity(const ConnectivityOracle& oracle,
                                   Vertex n) {
  GraphBuilder builder(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) {
      FaultSet everywhere;
      for (Vertex v = 0; v < n; ++v) {
        if (v != i && v != j) everywhere.add_vertex(v);
      }
      if (oracle.connected(i, j, everywhere)) builder.add_edge(i, j);
    }
  }
  return builder.build();
}

bool same_graph(const Graph& a, const Graph& b) {
  if (a.num_vertices() != b.num_vertices()) return false;
  if (a.num_edges() != b.num_edges()) return false;
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    if (na.size() != nb.size()) return false;
    for (std::size_t k = 0; k < na.size(); ++k) {
      if (na[k] != nb[k]) return false;
    }
  }
  return true;
}

}  // namespace fsdl
