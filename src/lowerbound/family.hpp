// The Theorem 3.1 lower-bound family F_{n,α}.
//
// F_{n,α} consists of all subgraphs of G_{p,d} that contain H_{p,d}, where
// n = p^d and α = 2d. Each "free" edge of E(G_{p,d}) \ E(H_{p,d}) is an
// independent bit, so |F_{n,α}| = 2^{free} and any forbidden-set
// connectivity labeling scheme needs a label of at least free/n =
// Ω(2^{α/2}) bits somewhere (plus the Ω(log n) counting argument).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fsdl {

struct FamilyStats {
  Vertex p = 0;
  unsigned d = 0;
  std::size_t n = 0;           // p^d
  unsigned alpha = 0;          // 2d (doubling dimension bound of the family)
  std::size_t edges_full = 0;  // |E(G_{p,d})|
  std::size_t edges_half = 0;  // |E(H_{p,d})|
  std::size_t free_edges = 0;  // log₂|F_{n,α}|
  double bits_per_vertex = 0;  // free_edges / n — the label-length lower bound
};

/// Exact counts for the (p, d) family instance.
FamilyStats family_stats(Vertex p, unsigned d);

/// A uniformly random member of F_{n,α} (every free edge kept w.p. 1/2).
Graph sample_family_member(Vertex p, unsigned d, Rng& rng);

}  // namespace fsdl
