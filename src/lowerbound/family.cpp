#include "lowerbound/family.hpp"

#include "graph/generators.hpp"

namespace fsdl {

FamilyStats family_stats(Vertex p, unsigned d) {
  const Graph full = make_full_grid(p, d);
  const Graph half = make_half_grid(p, d);
  FamilyStats s;
  s.p = p;
  s.d = d;
  s.n = full.num_vertices();
  s.alpha = 2 * d;
  s.edges_full = full.num_edges();
  s.edges_half = half.num_edges();
  s.free_edges = s.edges_full - s.edges_half;
  s.bits_per_vertex = static_cast<double>(s.free_edges) / static_cast<double>(s.n);
  return s;
}

Graph sample_family_member(Vertex p, unsigned d, Rng& rng) {
  return make_between_grid(p, d, 0.5, rng);
}

}  // namespace fsdl
