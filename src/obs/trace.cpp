#include "obs/trace.hpp"

// The whole implementation vanishes in FSDL_TRACE=OFF builds: trace.cpp
// becomes an empty translation unit and the header's inline no-ops are all
// that exists of fsdl::obs (CI's symbol guard relies on this).
#if FSDL_TRACE_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace fsdl::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kCounters)};

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread counter block. Owner thread writes with plain relaxed stores
/// (no RMW: the owner is the only writer); snapshotters read relaxed. The
/// registry keeps ownership after thread exit so totals never go backwards.
struct CounterBlock {
  std::array<std::atomic<std::uint64_t>, kNumCounters> slots{};

  void add(Counter c, std::uint64_t n) noexcept {
    auto& slot = slots[static_cast<unsigned>(c)];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<CounterBlock*> blocks;  // never removed; leak bounded by
                                      // peak thread count, freed at exit
  ~Registry() {
    for (CounterBlock* b : blocks) delete b;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

CounterBlock& local_block() {
  thread_local CounterBlock* block = [] {
    auto* b = new CounterBlock();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(b);
    return b;
  }();
  return *block;
}

/// Fixed-capacity single-writer span ring; one per thread, drained only by
/// its owner (see header), so no synchronization whatsoever.
constexpr std::size_t kRingCapacity = 1024;  // power of two

struct SpanRing {
  std::array<SpanEvent, kRingCapacity> events;
  std::uint64_t seq = 0;   // total spans ever completed on this thread
  std::uint32_t depth = 0; // current nesting depth

  void push(const SpanEvent& e) noexcept {
    events[seq % kRingCapacity] = e;
    ++seq;
  }
};

SpanRing& local_ring() {
  thread_local SpanRing ring;
  return ring;
}

}  // namespace

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void set_level(Level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void count(Counter c, std::uint64_t n) noexcept {
  if (level() < Level::kCounters || n == 0) return;
  local_block().add(c, n);
}

CounterSnapshot snapshot_counters() {
  CounterSnapshot out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const CounterBlock* b : r.blocks) {
    for (unsigned k = 0; k < kNumCounters; ++k) {
      out.values[k] += b->slots[k].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset_counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (CounterBlock* b : r.blocks) {
    for (auto& slot : b->slots) slot.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t span_mark() noexcept { return local_ring().seq; }

std::vector<SpanEvent> spans_since(std::uint64_t mark) {
  const SpanRing& ring = local_ring();
  std::vector<SpanEvent> out;
  if (ring.seq <= mark) return out;
  std::uint64_t first = mark;
  if (ring.seq - first > kRingCapacity) first = ring.seq - kRingCapacity;
  out.reserve(static_cast<std::size_t>(ring.seq - first));
  for (std::uint64_t s = first; s < ring.seq; ++s) {
    out.push_back(ring.events[s % kRingCapacity]);
  }
  return out;
}

Span::Span(const char* name) noexcept
    : name_(name), start_us_(0.0), active_(level() >= Level::kSpans) {
  if (!active_) return;
  ++local_ring().depth;
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  SpanRing& ring = local_ring();
  --ring.depth;
  ring.push(SpanEvent{name_, ring.depth, start_us_, now_us() - start_us_});
}

std::string format_span_tree(const std::vector<SpanEvent>& events) {
  // Completion order interleaves parents after children; start order plus
  // recorded depth reproduces the call tree.
  std::vector<const SpanEvent*> ordered;
  ordered.reserve(events.size());
  for (const SpanEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanEvent* a, const SpanEvent* b) {
                     return a->start_us < b->start_us;
                   });
  std::string out;
  char line[160];
  for (const SpanEvent* e : ordered) {
    std::snprintf(line, sizeof line, "%*s%s %.1fus\n",
                  static_cast<int>(2 * e->depth), "",
                  e->name != nullptr ? e->name : "?", e->dur_us);
    out += line;
  }
  return out;
}

}  // namespace fsdl::obs

#endif  // FSDL_TRACE_ENABLED
