#include "obs/trace.hpp"

// The whole implementation vanishes in FSDL_TRACE=OFF builds: trace.cpp
// becomes an empty translation unit and the header's inline no-ops are all
// that exists of fsdl::obs (CI's symbol guard relies on this).
#if FSDL_TRACE_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>

#include "util/jsonl.hpp"

#if defined(_WIN32)
#include <process.h>
#define FSDL_GETPID _getpid
#else
#include <unistd.h>
#define FSDL_GETPID getpid
#endif

namespace fsdl::obs {

namespace {

std::atomic<int> g_level{static_cast<int>(Level::kCounters)};

double now_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-thread counter block. Owner thread writes with plain relaxed stores
/// (no RMW: the owner is the only writer); snapshotters read relaxed. The
/// registry keeps ownership after thread exit so totals never go backwards.
struct CounterBlock {
  std::array<std::atomic<std::uint64_t>, kNumCounters> slots{};

  void add(Counter c, std::uint64_t n) noexcept {
    auto& slot = slots[static_cast<unsigned>(c)];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<CounterBlock*> blocks;  // never removed; leak bounded by
                                      // peak thread count, freed at exit
  ~Registry() {
    for (CounterBlock* b : blocks) delete b;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

CounterBlock& local_block() {
  thread_local CounterBlock* block = [] {
    auto* b = new CounterBlock();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.blocks.push_back(b);
    return b;
  }();
  return *block;
}

/// Fixed-capacity single-writer span ring; one per thread, drained only by
/// its owner (see header), so no synchronization whatsoever.
constexpr std::size_t kRingCapacity = 1024;  // power of two

struct SpanRing {
  std::array<SpanEvent, kRingCapacity> events;
  std::uint64_t seq = 0;   // total spans ever completed on this thread
  std::uint32_t depth = 0; // current nesting depth

  void push(const SpanEvent& e) noexcept {
    events[seq % kRingCapacity] = e;
    ++seq;
  }
};

SpanRing& local_ring() {
  thread_local SpanRing ring;
  return ring;
}

}  // namespace

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void set_level(Level level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void count(Counter c, std::uint64_t n) noexcept {
  if (level() < Level::kCounters || n == 0) return;
  local_block().add(c, n);
}

CounterSnapshot snapshot_counters() {
  CounterSnapshot out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const CounterBlock* b : r.blocks) {
    for (unsigned k = 0; k < kNumCounters; ++k) {
      out.values[k] += b->slots[k].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void reset_counters() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (CounterBlock* b : r.blocks) {
    for (auto& slot : b->slots) slot.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t span_mark() noexcept { return local_ring().seq; }

std::vector<SpanEvent> spans_since(std::uint64_t mark) {
  const SpanRing& ring = local_ring();
  std::vector<SpanEvent> out;
  if (ring.seq <= mark) return out;
  std::uint64_t first = mark;
  if (ring.seq - first > kRingCapacity) first = ring.seq - kRingCapacity;
  out.reserve(static_cast<std::size_t>(ring.seq - first));
  for (std::uint64_t s = first; s < ring.seq; ++s) {
    out.push_back(ring.events[s % kRingCapacity]);
  }
  return out;
}

Span::Span(const char* name) noexcept
    : name_(name), start_us_(0.0), active_(level() >= Level::kSpans) {
  if (!active_) return;
  ++local_ring().depth;
  start_us_ = now_us();
}

Span::~Span() {
  if (!active_) return;
  SpanRing& ring = local_ring();
  --ring.depth;
  ring.push(SpanEvent{name_, ring.depth, start_us_, now_us() - start_us_});
}

namespace {

/// The process-wide event-log sink. Lines are written whole under one lock
/// (fprintf of a pre-built line), so concurrent flushers interleave at line
/// granularity only — a requirement for a parseable JSON-lines file.
struct EventLog {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::string service;
  std::uint64_t pid = 0;
  std::atomic<bool> open{false};
};

EventLog& event_log() {
  static EventLog log;
  return log;
}

}  // namespace

bool open_event_log(const std::string& path, const std::string& service) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  EventLog& log = event_log();
  std::lock_guard<std::mutex> lock(log.mu);
  if (log.file != nullptr) std::fclose(log.file);
  log.file = f;
  log.service = service;
  log.pid = static_cast<std::uint64_t>(FSDL_GETPID());
  log.open.store(true, std::memory_order_release);
  return true;
}

void close_event_log() {
  EventLog& log = event_log();
  std::lock_guard<std::mutex> lock(log.mu);
  log.open.store(false, std::memory_order_release);
  if (log.file != nullptr) {
    std::fclose(log.file);
    log.file = nullptr;
  }
}

bool event_log_enabled() noexcept {
  return event_log().open.load(std::memory_order_acquire);
}

std::uint64_t random_id() {
  // splitmix64 per thread, seeded from entropy + the thread id so forks of
  // one process and parallel workers never collide on span ids.
  thread_local std::uint64_t state = [] {
    std::random_device rd;
    std::uint64_t seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    return seed;
  }();
  std::uint64_t id = 0;
  while (id == 0) {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    id = z ^ (z >> 31);
  }
  return id;
}

std::uint64_t epoch_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

TraceRecorder::TraceRecorder(std::uint64_t trace_hi, std::uint64_t trace_lo,
                             std::uint64_t parent_span, bool sampled)
    : active_(event_log_enabled()),
      sampled_(sampled),
      trace_hi_(trace_hi),
      trace_lo_(trace_lo),
      parent_span_(parent_span) {
  if (!active_) return;
  if (trace_hi_ == 0 && trace_lo_ == 0) {
    // No incoming context: mint a local trace id so the always-on slow
    // path still produces a greppable trace. Not sampled — only a slow
    // flush writes it.
    trace_hi_ = random_id();
    trace_lo_ = random_id();
    parent_span_ = 0;
  }
}

std::uint64_t TraceRecorder::new_span() { return active_ ? random_id() : 0; }

void TraceRecorder::add(const char* name, std::uint64_t span,
                        std::uint64_t parent, std::uint64_t start_us,
                        double dur_us, int shard) {
  if (!active_) return;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(Buffered{name, span, parent, start_us, dur_us, shard});
}

void TraceRecorder::flush(bool always) {
  if (!active_ || !(sampled_ || always)) return;
  std::vector<Buffered> spans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans.swap(spans_);
  }
  if (spans.empty()) return;
  EventLog& log = event_log();
  std::lock_guard<std::mutex> lock(log.mu);
  if (log.file == nullptr) return;
  for (const Buffered& s : spans) {
    JsonlWriter w;
    w.field_u64("ts", s.start_us)
        .field("svc", log.service)
        .field_u64("pid", log.pid)
        .field_hex128("trace", trace_hi_, trace_lo_)
        .field_hex64("span", s.span)
        .field_hex64("parent", s.parent)
        .field("name", s.name)
        .field_double("dur_us", s.dur_us)
        .field("kind", "span");
    if (s.shard >= 0) w.field_u64("shard", static_cast<std::uint64_t>(s.shard));
    std::fprintf(log.file, "%s\n", w.line().c_str());
  }
  std::fflush(log.file);
}

std::string format_span_tree(const std::vector<SpanEvent>& events) {
  // Completion order interleaves parents after children; start order plus
  // recorded depth reproduces the call tree.
  std::vector<const SpanEvent*> ordered;
  ordered.reserve(events.size());
  for (const SpanEvent& e : events) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanEvent* a, const SpanEvent* b) {
                     return a->start_us < b->start_us;
                   });
  std::string out;
  char line[160];
  for (const SpanEvent* e : ordered) {
    std::snprintf(line, sizeof line, "%*s%s %.1fus\n",
                  static_cast<int>(2 * e->depth), "",
                  e->name != nullptr ? e->name : "?", e->dur_us);
    out += line;
  }
  return out;
}

}  // namespace fsdl::obs

#endif  // FSDL_TRACE_ENABLED
