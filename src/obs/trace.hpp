// Query-engine observability: stage counters and a thread-local span tracer.
//
// Two cost regimes, selected at configure time by -DFSDL_TRACE=ON|OFF:
//
//   * FSDL_TRACE=OFF (default): every entry point in this header collapses
//     to an empty inline function and trace.cpp compiles to an empty
//     translation unit. No fsdl::obs:: symbol survives in any binary (CI
//     asserts this with nm), no branch is paid on any hot path.
//   * FSDL_TRACE=ON (-DFSDL_TRACE_ENABLED=1): a global runtime level picks
//     between kOff / kCounters / kSpans, so one binary can measure its own
//     overhead (bench_trace_overhead, E17).
//
// Counters are owned per thread (plain stores, no RMW on the hot path) and
// registered with a process-wide registry; snapshot_counters() sums every
// live and retired thread's block. Instrumented code batches increments —
// one count() per decoded stage, never one per edge — so the counters-only
// level stays within the <5% overhead budget.
//
// Spans are recorded into a fixed-size per-thread ring buffer. Each thread
// writes and drains only its own ring (the server's slow-query log drains
// on the worker thread that ran the offending request), so the ring needs
// no synchronization at all: single producer, same-thread consumer.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#ifndef FSDL_TRACE_ENABLED
#define FSDL_TRACE_ENABLED 0
#endif

namespace fsdl::obs {

/// Stage counters, one slot per lemma-aligned unit of decoder work (the
/// mapping to the paper's lemmas is tabulated in DESIGN.md §Instrumentation).
enum class Counter : unsigned {
  kSketchVertices = 0,    // |V(H)| summed over queries (Lemma 2.4)
  kSketchEdges,           // |E(H)| summed over queries
  kEdgesConsidered,       // virtual edges tested for certification
  kSafeEdgeChecks,        // protected-ball membership probes (Lemma 2.3)
  kDijkstraRelaxations,   // arc scans in the sketch Dijkstra (Lemma 2.6)
  kLabelCacheHit,         // oracle label table: decoded label reused
  kLabelCacheMiss,        // oracle label table: decode performed
  kPreparedCacheHit,      // server PreparedFaults LRU hit
  kPreparedCacheMiss,     // server PreparedFaults LRU miss (|F|² build paid)
  kCount_
};
inline constexpr unsigned kNumCounters = static_cast<unsigned>(Counter::kCount_);

constexpr const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kSketchVertices: return "sketch_vertices";
    case Counter::kSketchEdges: return "sketch_edges";
    case Counter::kEdgesConsidered: return "edges_considered";
    case Counter::kSafeEdgeChecks: return "safe_edge_checks";
    case Counter::kDijkstraRelaxations: return "dijkstra_relaxations";
    case Counter::kLabelCacheHit: return "label_cache_hit";
    case Counter::kLabelCacheMiss: return "label_cache_miss";
    case Counter::kPreparedCacheHit: return "prepared_cache_hit";
    case Counter::kPreparedCacheMiss: return "prepared_cache_miss";
    case Counter::kCount_: break;
  }
  return "?";
}

struct CounterSnapshot {
  std::array<std::uint64_t, kNumCounters> values{};
  std::uint64_t operator[](Counter c) const {
    return values[static_cast<unsigned>(c)];
  }
};

enum class Level : int { kOff = 0, kCounters = 1, kSpans = 2 };

/// One completed span. Emitted on scope exit, so a drained ring lists spans
/// in completion order; rebuild the tree from (start_us, depth).
struct SpanEvent {
  const char* name = nullptr;  // static string owned by the instrumentation
  std::uint32_t depth = 0;     // nesting depth at entry (0 = root)
  double start_us = 0.0;       // relative to an arbitrary thread-local epoch
  double dur_us = 0.0;
};

/// Render drained events as an indented tree, one line per span:
/// "  name 123.4us". Works in both modes (pure formatting, no state).
std::string format_span_tree(const std::vector<SpanEvent>& events);

#if FSDL_TRACE_ENABLED

Level level() noexcept;
void set_level(Level level) noexcept;

/// Add `n` to this thread's slot for `c` (no-op below kCounters).
void count(Counter c, std::uint64_t n) noexcept;

/// Sum of every thread's counters (live and exited threads both included).
CounterSnapshot snapshot_counters();

/// Zero every registered block. Test/bench helper; racy against concurrent
/// writers by design.
void reset_counters();

/// Monotonic per-thread sequence of completed spans; pass to spans_since()
/// to drain only what happened after the mark (same thread only).
std::uint64_t span_mark() noexcept;

/// Completed spans of *this thread* since `mark`, oldest first. If more
/// than the ring capacity completed since the mark, the oldest are gone
/// (bounded memory beats completeness in a slow-query log).
std::vector<SpanEvent> spans_since(std::uint64_t mark);

/// RAII span: records a SpanEvent on destruction when level() >= kSpans at
/// construction time.
class Span {
 public:
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  double start_us_;
  bool active_;
};

// --- distributed tracing: process-wide JSON-lines event log ---
//
// One append-only file per process (fsdl_serve/fsdl_router --trace-log).
// Each line is a flat JSON object with stable keys:
//   ts (start, wall-clock epoch micros — cross-process alignable),
//   svc ("router"/"shard"/...), pid, trace (32 hex), span (16 hex),
//   parent (16 hex, "0"*16 = root), name, dur_us, kind ("span"), and
//   shard (router fetch spans only). fsdl_trace --stitch joins lines from
//   N processes by trace id into one tree.

/// Open (append) the event log; `service` becomes every line's `svc`.
/// Returns false if the file cannot be opened. Reopening replaces the log.
bool open_event_log(const std::string& path, const std::string& service);
/// Close the log (tests / clean shutdown); recorders go inert.
void close_event_log();
bool event_log_enabled() noexcept;

/// Nonzero pseudo-random 64-bit id for spans/traces (per-thread generator,
/// seeded from std::random_device — ids must differ *across processes*).
std::uint64_t random_id();
/// Wall-clock microseconds since the Unix epoch. The event log uses wall
/// time, unlike the steady-clock span ring, so timestamps from different
/// machines/processes can be laid on one axis.
std::uint64_t epoch_us();

/// Per-request span buffer for the event log. Construct from the incoming
/// wire TraceContext fields; `add()` completed spans (safe from the
/// router's parallel fetch threads — internally locked); `flush()` writes
/// them as JSON lines if the request was sampled, or unconditionally when
/// `always` (the slow-query path) is set. Inert unless the event log is
/// open. A request with no incoming trace id gets a locally generated one,
/// so slow queries are traceable even when the client sent no context.
class TraceRecorder {
 public:
  TraceRecorder(std::uint64_t trace_hi, std::uint64_t trace_lo,
                std::uint64_t parent_span, bool sampled);

  bool active() const noexcept { return active_; }
  bool sampled() const noexcept { return sampled_; }
  std::uint64_t trace_hi() const noexcept { return trace_hi_; }
  std::uint64_t trace_lo() const noexcept { return trace_lo_; }
  /// Span id of the incoming parent (0 when this hop is the root).
  std::uint64_t parent_span() const noexcept { return parent_span_; }
  /// Fresh span id (0 when inactive — the zero id is never logged).
  std::uint64_t new_span();

  /// Record one completed span. `start_us` is epoch_us() at span start;
  /// `shard` >= 0 tags scatter-gather fetch spans with the shard index.
  void add(const char* name, std::uint64_t span, std::uint64_t parent,
           std::uint64_t start_us, double dur_us, int shard = -1);

  /// Write buffered spans to the event log when sampled() || always.
  void flush(bool always);

 private:
  struct Buffered {
    const char* name;
    std::uint64_t span, parent, start_us;
    double dur_us;
    int shard;
  };
  bool active_ = false;
  bool sampled_ = false;
  std::uint64_t trace_hi_ = 0, trace_lo_ = 0, parent_span_ = 0;
  std::mutex mu_;
  std::vector<Buffered> spans_;
};

#else  // FSDL_TRACE_ENABLED == 0: everything folds to nothing.

inline Level level() noexcept { return Level::kOff; }
inline void set_level(Level) noexcept {}
inline void count(Counter, std::uint64_t) noexcept {}
inline CounterSnapshot snapshot_counters() { return {}; }
inline void reset_counters() {}
inline std::uint64_t span_mark() noexcept { return 0; }
inline std::vector<SpanEvent> spans_since(std::uint64_t) { return {}; }

class Span {
 public:
  explicit Span(const char*) noexcept {}
};

inline std::string format_span_tree(const std::vector<SpanEvent>&) {
  return {};
}

inline bool open_event_log(const std::string&, const std::string&) {
  return false;
}
inline void close_event_log() {}
inline bool event_log_enabled() noexcept { return false; }
inline std::uint64_t random_id() { return 0; }
inline std::uint64_t epoch_us() { return 0; }

class TraceRecorder {
 public:
  TraceRecorder(std::uint64_t, std::uint64_t, std::uint64_t, bool) noexcept {}
  bool active() const noexcept { return false; }
  bool sampled() const noexcept { return false; }
  std::uint64_t trace_hi() const noexcept { return 0; }
  std::uint64_t trace_lo() const noexcept { return 0; }
  std::uint64_t parent_span() const noexcept { return 0; }
  std::uint64_t new_span() noexcept { return 0; }
  void add(const char*, std::uint64_t, std::uint64_t, std::uint64_t, double,
           int = -1) noexcept {}
  void flush(bool) noexcept {}
};

#endif  // FSDL_TRACE_ENABLED

}  // namespace fsdl::obs

/// Convenience macros so call sites read identically in both modes.
/// FSDL_SPAN needs a unique local name to allow several per scope.
#if FSDL_TRACE_ENABLED
#define FSDL_OBS_CONCAT2(a, b) a##b
#define FSDL_OBS_CONCAT(a, b) FSDL_OBS_CONCAT2(a, b)
#define FSDL_SPAN(name) ::fsdl::obs::Span FSDL_OBS_CONCAT(fsdl_span_, __LINE__)(name)
#define FSDL_COUNT(counter, n) ::fsdl::obs::count(::fsdl::obs::Counter::counter, (n))
#else
// The OFF forms still evaluate `n` (a side-effect-free counter expression
// at every call site) so instrumented code compiles identically and no
// unused-variable warnings appear; the value is discarded and optimized out.
#define FSDL_SPAN(name) ((void)0)
#define FSDL_COUNT(counter, n) ((void)(n))
#endif
