#include "graph/wsearch.hpp"

#include <queue>
#include <stdexcept>

namespace fsdl {

std::vector<Dist> dijkstra_distances(const WeightedGraph& g, Vertex src) {
  if (src >= g.num_vertices()) throw std::out_of_range("dijkstra src");
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[src] = 0;
  heap.emplace(0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    for (const auto& arc : g.arcs(u)) {
      const std::uint64_t nd = static_cast<std::uint64_t>(d) + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = static_cast<Dist>(nd);
        heap.emplace(dist[arc.to], arc.to);
      }
    }
  }
  return dist;
}

void multi_source_dijkstra(const WeightedGraph& g,
                           std::span<const Vertex> sources,
                           std::vector<Dist>& dist,
                           std::vector<Vertex>& owner) {
  dist.assign(g.num_vertices(), kInfDist);
  owner.assign(g.num_vertices(), kNoVertex);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  for (Vertex s : sources) {
    if (s >= g.num_vertices()) throw std::out_of_range("multi_source src");
    dist[s] = 0;
    owner[s] = s;
    heap.emplace(0, s);
  }
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    for (const auto& arc : g.arcs(u)) {
      const std::uint64_t nd = static_cast<std::uint64_t>(d) + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = static_cast<Dist>(nd);
        owner[arc.to] = owner[u];
        heap.emplace(dist[arc.to], arc.to);
      }
    }
  }
}

}  // namespace fsdl
