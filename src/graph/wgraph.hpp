// Weighted undirected graphs (positive integer edge weights) in CSR form.
//
// The paper treats unweighted graphs; this is the library's extension
// (following the weighted planar variant of Abraham–Chechik–Gavoille 2012).
// Weights are small positive integers, which keeps truncated searches
// bucket-queue friendly and the level hierarchy logarithmic in n·W.
#pragma once

#include <cstddef>
#include <span>
#include <tuple>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Edge weight; positive integers.
using Weight = std::uint32_t;

class WeightedGraph {
 public:
  struct Arc {
    Vertex to;
    Weight weight;
  };

  WeightedGraph() = default;

  Vertex num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
  }
  std::size_t num_edges() const noexcept { return arcs_.size() / 2; }

  std::span<const Arc> arcs(Vertex v) const noexcept {
    return {arcs_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  Vertex degree(Vertex v) const noexcept {
    return static_cast<Vertex>(offsets_[v + 1] - offsets_[v]);
  }

  /// Weight of edge {u, v}, or 0 if absent. O(log deg).
  Weight edge_weight(Vertex u, Vertex v) const noexcept;
  bool has_edge(Vertex u, Vertex v) const noexcept {
    return edge_weight(u, v) != 0;
  }

  Weight max_weight() const noexcept { return max_weight_; }

 private:
  friend class WeightedGraphBuilder;

  std::vector<std::size_t> offsets_;
  std::vector<Arc> arcs_;  // sorted by target within each vertex
  Weight max_weight_ = 0;
};

class WeightedGraphBuilder {
 public:
  explicit WeightedGraphBuilder(Vertex num_vertices) : n_(num_vertices) {}

  /// Add undirected edge {u, v} with weight >= 1. Duplicates keep the
  /// lighter weight.
  void add_edge(Vertex u, Vertex v, Weight w);

  WeightedGraph build();

 private:
  Vertex n_;
  std::vector<std::tuple<Vertex, Vertex, Weight>> edges_;
};

/// Copy an unweighted graph, assigning every edge weight 1.
WeightedGraph weighted_from(const Graph& g);

/// Copy an unweighted graph with i.i.d. uniform weights in [1, max_weight].
WeightedGraph weighted_from(const Graph& g, Weight max_weight, Rng& rng);

/// Forget weights: the underlying unweighted graph.
Graph unweighted_skeleton(const WeightedGraph& g);

}  // namespace fsdl
