// Breadth-first search variants.
//
// The label constructor performs very many radius-truncated BFS runs, so
// BfsRunner keeps its per-run scratch (distance array + queue) allocated
// across calls and resets only the entries it touched.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Distances from `src` to every vertex (kInfDist if unreachable).
std::vector<Dist> bfs_distances(const Graph& g, Vertex src);

/// For every vertex: distance to the nearest source and which source it is.
/// Ties broken toward the source dequeued first (deterministic given order).
void multi_source_bfs(const Graph& g, std::span<const Vertex> sources,
                      std::vector<Dist>& dist, std::vector<Vertex>& owner);

/// Reusable truncated-BFS engine.
class BfsRunner {
 public:
  explicit BfsRunner(const Graph& g)
      : g_(&g), dist_(g.num_vertices(), kInfDist) {}

  /// Visit every vertex v with d_G(src, v) <= radius, in nondecreasing
  /// distance order, invoking visit(v, d). Includes src at distance 0.
  template <typename Visit>
  void run(Vertex src, Dist radius, Visit&& visit) {
    queue_.clear();
    queue_.push_back(src);
    dist_[src] = 0;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const Vertex u = queue_[head];
      const Dist du = dist_[u];
      visit(u, du);
      if (du == radius) continue;
      for (Vertex w : g_->neighbors(u)) {
        if (dist_[w] == kInfDist) {
          dist_[w] = du + 1;
          queue_.push_back(w);
        }
      }
    }
    for (Vertex v : queue_) dist_[v] = kInfDist;
  }

  /// As run(), but also reports each vertex's BFS-tree parent (the neighbor
  /// through which it was discovered — one hop closer to src; src reports
  /// kNoVertex). Used to derive routing ports toward src.
  template <typename Visit>
  void run_with_parents(Vertex src, Dist radius, Visit&& visit) {
    queue_.clear();
    parent_.resize(dist_.size());
    queue_.push_back(src);
    dist_[src] = 0;
    parent_[src] = kNoVertex;
    for (std::size_t head = 0; head < queue_.size(); ++head) {
      const Vertex u = queue_[head];
      const Dist du = dist_[u];
      visit(u, du, parent_[u]);
      if (du == radius) continue;
      for (Vertex w : g_->neighbors(u)) {
        if (dist_[w] == kInfDist) {
          dist_[w] = du + 1;
          parent_[w] = u;
          queue_.push_back(w);
        }
      }
    }
    for (Vertex v : queue_) dist_[v] = kInfDist;
  }

  /// Distance between two vertices if <= radius, else kInfDist.
  Dist bounded_distance(Vertex src, Vertex dst, Dist radius) {
    Dist found = kInfDist;
    run(src, radius, [&](Vertex v, Dist d) {
      if (v == dst) found = d;
    });
    return found;
  }

 private:
  const Graph* g_;
  std::vector<Dist> dist_;
  std::vector<Vertex> queue_;
  std::vector<Vertex> parent_;
};

}  // namespace fsdl
