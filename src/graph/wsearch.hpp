// Radius-truncated Dijkstra over weighted graphs, with reusable scratch —
// the weighted counterpart of BfsRunner (the weighted label constructor
// runs one of these per net point per level).
#pragma once

#include <algorithm>
#include <vector>

#include "graph/wgraph.hpp"
#include "util/types.hpp"

namespace fsdl {

class DijkstraRunner {
 public:
  explicit DijkstraRunner(const WeightedGraph& g)
      : g_(&g), dist_(g.num_vertices(), kInfDist),
        parent_(g.num_vertices(), kNoVertex) {}

  /// Visit every vertex v with d_G(src, v) <= radius in nondecreasing
  /// distance order; visit(v, d). Includes src at distance 0.
  template <typename Visit>
  void run(Vertex src, Dist radius, Visit&& visit) {
    run_impl(src, radius, [&](Vertex v, Dist d, Vertex) { visit(v, d); });
  }

  /// As run(), also reporting the Dijkstra-tree parent (kNoVertex for src).
  template <typename Visit>
  void run_with_parents(Vertex src, Dist radius, Visit&& visit) {
    run_impl(src, radius, std::forward<Visit>(visit));
  }

  Dist bounded_distance(Vertex src, Vertex dst, Dist radius) {
    Dist found = kInfDist;
    run(src, radius, [&](Vertex v, Dist d) {
      if (v == dst) found = d;
    });
    return found;
  }

 private:
  template <typename Visit>
  void run_impl(Vertex src, Dist radius, Visit&& visit) {
    heap_.clear();
    touched_.clear();
    settled_.clear();
    dist_[src] = 0;
    parent_[src] = kNoVertex;
    touched_.push_back(src);
    push(0, src);
    while (!heap_.empty()) {
      const auto [d, u] = pop();
      if (d != dist_[u] || settled_marker(u)) continue;
      mark_settled(u);
      visit(u, d, parent_[u]);
      for (const auto& arc : g_->arcs(u)) {
        const std::uint64_t nd = static_cast<std::uint64_t>(d) + arc.weight;
        if (nd > radius) continue;
        if (nd < dist_[arc.to]) {
          if (dist_[arc.to] == kInfDist) touched_.push_back(arc.to);
          dist_[arc.to] = static_cast<Dist>(nd);
          parent_[arc.to] = u;
          push(static_cast<Dist>(nd), arc.to);
        }
      }
    }
    for (Vertex v : touched_) dist_[v] = kInfDist;
    for (Vertex v : settled_) settled_flag_[v] = 0;
  }

  void push(Dist d, Vertex v) {
    heap_.emplace_back(d, v);
    std::push_heap(heap_.begin(), heap_.end(), cmp);
  }
  std::pair<Dist, Vertex> pop() {
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const auto top = heap_.back();
    heap_.pop_back();
    return top;
  }

  bool settled_marker(Vertex v) {
    if (settled_flag_.empty()) settled_flag_.assign(g_->num_vertices(), 0);
    return settled_flag_[v] != 0;
  }
  void mark_settled(Vertex v) {
    settled_flag_[v] = 1;
    settled_.push_back(v);
  }

  static bool cmp(const std::pair<Dist, Vertex>& a,
                  const std::pair<Dist, Vertex>& b) {
    return a.first > b.first;  // min-heap
  }

  const WeightedGraph* g_;
  std::vector<Dist> dist_;
  std::vector<Vertex> parent_;
  std::vector<Vertex> touched_;
  std::vector<Vertex> settled_;
  std::vector<char> settled_flag_;
  std::vector<std::pair<Dist, Vertex>> heap_;
};

/// Full single-source distances (unbounded radius).
std::vector<Dist> dijkstra_distances(const WeightedGraph& g, Vertex src);

/// For every vertex: distance to the nearest source and that source.
void multi_source_dijkstra(const WeightedGraph& g,
                           std::span<const Vertex> sources,
                           std::vector<Dist>& dist, std::vector<Vertex>& owner);

}  // namespace fsdl
