#include "graph/bfs.hpp"

#include <stdexcept>

namespace fsdl {

std::vector<Dist> bfs_distances(const Graph& g, Vertex src) {
  if (src >= g.num_vertices()) throw std::out_of_range("bfs_distances: src");
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  std::vector<Vertex> queue;
  queue.reserve(g.num_vertices());
  dist[src] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    for (Vertex w : g.neighbors(u)) {
      if (dist[w] == kInfDist) {
        dist[w] = dist[u] + 1;
        queue.push_back(w);
      }
    }
  }
  return dist;
}

void multi_source_bfs(const Graph& g, std::span<const Vertex> sources,
                      std::vector<Dist>& dist, std::vector<Vertex>& owner) {
  dist.assign(g.num_vertices(), kInfDist);
  owner.assign(g.num_vertices(), kNoVertex);
  std::vector<Vertex> queue;
  queue.reserve(g.num_vertices());
  for (Vertex s : sources) {
    if (s >= g.num_vertices()) throw std::out_of_range("multi_source_bfs");
    if (dist[s] == 0 && owner[s] != kNoVertex) continue;  // duplicate source
    dist[s] = 0;
    owner[s] = s;
    queue.push_back(s);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    for (Vertex w : g.neighbors(u)) {
      if (dist[w] == kInfDist) {
        dist[w] = dist[u] + 1;
        owner[w] = owner[u];
        queue.push_back(w);
      }
    }
  }
}

}  // namespace fsdl
