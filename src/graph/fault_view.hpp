// Fault sets F ⊆ V(G) ∪ E(G) and exact shortest paths on G \ F.
//
// The BFS here is the ground truth every approximate answer is judged
// against in tests and benchmarks, and also the "recompute from scratch"
// baseline the oracle competes with.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// A set of forbidden vertices and/or edges.
class FaultSet {
 public:
  void add_vertex(Vertex v);
  void add_edge(Vertex a, Vertex b);

  /// Removal supports the fully-dynamic oracle wrapper; O(|F|) per call.
  void remove_vertex(Vertex v);
  void remove_edge(Vertex a, Vertex b);

  bool vertex_faulty(Vertex v) const {
    return vertex_set_.find(v) != vertex_set_.end();
  }
  bool edge_faulty(Vertex a, Vertex b) const {
    return edge_set_.find(edge_key(a, b)) != edge_set_.end();
  }

  const std::vector<Vertex>& vertices() const noexcept { return vertices_; }
  const std::vector<std::pair<Vertex, Vertex>>& edges() const noexcept {
    return edges_;
  }

  /// |F| — total number of forbidden elements.
  std::size_t size() const noexcept { return vertices_.size() + edges_.size(); }
  bool empty() const noexcept { return size() == 0; }

  static std::uint64_t edge_key(Vertex a, Vertex b) noexcept {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

 private:
  std::vector<Vertex> vertices_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
  std::unordered_set<Vertex> vertex_set_;
  std::unordered_set<std::uint64_t> edge_set_;
};

/// BFS distances from src in G \ F. Distances for faulty vertices are
/// kInfDist; if src itself is faulty, everything is kInfDist.
std::vector<Dist> bfs_distances_avoiding(const Graph& g, Vertex src,
                                         const FaultSet& faults);

/// d_{G\F}(s, t), kInfDist if disconnected (or either endpoint faulty).
Dist distance_avoiding(const Graph& g, Vertex s, Vertex t,
                       const FaultSet& faults);

/// An actual shortest path in G\F (vertex sequence s..t), empty if none.
std::vector<Vertex> shortest_path_avoiding(const Graph& g, Vertex s, Vertex t,
                                           const FaultSet& faults);

/// Materialize G \ F as a graph: same vertex ids, forbidden vertices left
/// isolated, forbidden edges removed. Used by the rebuilding dynamic oracle.
Graph apply_faults(const Graph& g, const FaultSet& faults);

}  // namespace fsdl
