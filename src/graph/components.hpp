// Connected components and component-based subgraph extraction.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Component id per vertex (ids are 0..count-1 in discovery order) and the
/// number of components.
struct Components {
  std::vector<Vertex> id;
  Vertex count = 0;
};

Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

/// The induced subgraph on the largest connected component, with vertices
/// renumbered densely. If `old_to_new` is non-null it receives the mapping
/// (kNoVertex for dropped vertices).
Graph largest_component_subgraph(const Graph& g,
                                 std::vector<Vertex>* old_to_new = nullptr);

}  // namespace fsdl
