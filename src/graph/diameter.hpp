// Diameter and eccentricity helpers.
//
// The level hierarchy tops out at ⌈log₂ n⌉ in the paper; capping it at the
// graph's diameter instead is a pure optimization (levels above the diameter
// all contain a single net covering everything), so exact/approximate
// diameter computations are provided here.
#pragma once

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// max_v d(src, v); kInfDist if the graph is disconnected from src.
Dist eccentricity(const Graph& g, Vertex src);

/// Exact diameter via n BFS runs. O(nm) — use on small graphs only.
Dist exact_diameter(const Graph& g);

/// Lower bound on the diameter from a double BFS sweep. O(m).
Dist double_sweep_lower_bound(const Graph& g);

}  // namespace fsdl
