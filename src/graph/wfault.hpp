// Exact shortest paths on weighted G \ F — ground truth for the weighted
// extension's tests and benchmarks.
#pragma once

#include "graph/fault_view.hpp"
#include "graph/wgraph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Dijkstra distance from s to t in G \ F; kInfDist when disconnected or an
/// endpoint is forbidden.
Dist weighted_distance_avoiding(const WeightedGraph& g, Vertex s, Vertex t,
                                const FaultSet& faults);

}  // namespace fsdl
