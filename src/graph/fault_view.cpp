#include "graph/fault_view.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsdl {

void FaultSet::add_vertex(Vertex v) {
  if (vertex_set_.insert(v).second) vertices_.push_back(v);
}

void FaultSet::add_edge(Vertex a, Vertex b) {
  if (a == b) throw std::invalid_argument("FaultSet: self-loop edge");
  if (a > b) std::swap(a, b);
  if (edge_set_.insert(edge_key(a, b)).second) edges_.emplace_back(a, b);
}

void FaultSet::remove_vertex(Vertex v) {
  if (vertex_set_.erase(v) == 0) return;
  vertices_.erase(std::find(vertices_.begin(), vertices_.end(), v));
}

void FaultSet::remove_edge(Vertex a, Vertex b) {
  if (a > b) std::swap(a, b);
  if (edge_set_.erase(edge_key(a, b)) == 0) return;
  edges_.erase(std::find(edges_.begin(), edges_.end(), std::make_pair(a, b)));
}

std::vector<Dist> bfs_distances_avoiding(const Graph& g, Vertex src,
                                         const FaultSet& faults) {
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  if (src >= g.num_vertices()) throw std::out_of_range("src");
  if (faults.vertex_faulty(src)) return dist;
  std::vector<Vertex> queue;
  dist[src] = 0;
  queue.push_back(src);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    for (Vertex w : g.neighbors(u)) {
      if (dist[w] != kInfDist) continue;
      if (faults.vertex_faulty(w)) continue;
      if (!faults.edges().empty() && faults.edge_faulty(u, w)) continue;
      dist[w] = dist[u] + 1;
      queue.push_back(w);
    }
  }
  return dist;
}

Dist distance_avoiding(const Graph& g, Vertex s, Vertex t,
                       const FaultSet& faults) {
  if (faults.vertex_faulty(s) || faults.vertex_faulty(t)) return kInfDist;
  if (s == t) return 0;
  // Plain BFS with early exit at t.
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  std::vector<Vertex> queue;
  dist[s] = 0;
  queue.push_back(s);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    for (Vertex w : g.neighbors(u)) {
      if (dist[w] != kInfDist) continue;
      if (faults.vertex_faulty(w)) continue;
      if (!faults.edges().empty() && faults.edge_faulty(u, w)) continue;
      dist[w] = dist[u] + 1;
      if (w == t) return dist[w];
      queue.push_back(w);
    }
  }
  return kInfDist;
}

std::vector<Vertex> shortest_path_avoiding(const Graph& g, Vertex s, Vertex t,
                                           const FaultSet& faults) {
  std::vector<Vertex> path;
  if (faults.vertex_faulty(s) || faults.vertex_faulty(t)) return path;
  std::vector<Vertex> parent(g.num_vertices(), kNoVertex);
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  std::vector<Vertex> queue;
  dist[s] = 0;
  queue.push_back(s);
  bool found = (s == t);
  for (std::size_t head = 0; head < queue.size() && !found; ++head) {
    const Vertex u = queue[head];
    for (Vertex w : g.neighbors(u)) {
      if (dist[w] != kInfDist) continue;
      if (faults.vertex_faulty(w)) continue;
      if (!faults.edges().empty() && faults.edge_faulty(u, w)) continue;
      dist[w] = dist[u] + 1;
      parent[w] = u;
      if (w == t) {
        found = true;
        break;
      }
      queue.push_back(w);
    }
  }
  if (!found) return path;
  for (Vertex v = t; v != kNoVertex; v = parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

Graph apply_faults(const Graph& g, const FaultSet& faults) {
  GraphBuilder builder(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (faults.vertex_faulty(v)) continue;
    for (Vertex w : g.neighbors(v)) {
      if (v >= w) continue;
      if (faults.vertex_faulty(w)) continue;
      if (!faults.edges().empty() && faults.edge_faulty(v, w)) continue;
      builder.add_edge(v, w);
    }
  }
  return builder.build();
}

}  // namespace fsdl
