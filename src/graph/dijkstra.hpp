// Weighted sketch graphs and shortest paths on them.
//
// The decoder materializes, per query, a small weighted graph H whose
// vertices are net points (plus s, t and fault centers) identified by their
// ids in the *original* graph. SketchGraph maps those external ids to dense
// indices and stores an adjacency list; sketch_shortest_path is a plain
// binary-heap Dijkstra, which matches the paper's query-time analysis.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace fsdl {

class SketchGraph {
 public:
  using Index = std::uint32_t;
  static constexpr Index kNoIndex = static_cast<Index>(-1);

  /// Dense index for external vertex id, inserting it if new.
  Index intern(Vertex external_id);

  /// Dense index if present, kNoIndex otherwise.
  Index find(Vertex external_id) const;

  /// Add undirected weighted edge between two *interned* indices.
  /// Parallel edges are allowed; Dijkstra takes the cheapest.
  void add_edge(Index a, Index b, Dist weight);

  /// Pre-size the intern table for ~n vertices (one rehash, not log n).
  void reserve(std::size_t n);

  /// Reset to empty while keeping every allocation (hash buckets, id and
  /// adjacency storage), so a reused instance interns without allocating
  /// once it has seen a query of each size.
  void clear() noexcept;

  std::size_t num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return num_edges_; }
  Vertex external_id(Index i) const { return external_ids_[i]; }

  struct Arc {
    Index to;
    Dist weight;
  };
  const std::vector<Arc>& arcs(Index i) const { return adjacency_[i]; }

 private:
  std::unordered_map<Vertex, Index> index_of_;
  // external_ids_/adjacency_ act as high-water-mark pools: slots at index
  // >= num_vertices_ are retired but keep their heap buffers for reuse.
  std::vector<Vertex> external_ids_;
  std::vector<std::vector<Arc>> adjacency_;
  std::size_t num_vertices_ = 0;
  std::size_t num_edges_ = 0;
};

/// Shortest-path length from s to t in the sketch graph; kInfDist if
/// disconnected. If `path` is non-null it receives the vertex sequence
/// (dense indices) of one shortest path, s first. If `relaxations` is
/// non-null it receives the number of arc scans performed — the unit of
/// Lemma 2.6's query-time bound, surfaced for the stage-cost accounting.
Dist sketch_shortest_path(const SketchGraph& h, SketchGraph::Index s,
                          SketchGraph::Index t,
                          std::vector<SketchGraph::Index>* path = nullptr,
                          std::size_t* relaxations = nullptr);

}  // namespace fsdl
