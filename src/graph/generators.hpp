// Synthetic graph families.
//
// The paper's input model is "unweighted graph of doubling dimension α";
// these generators realize a spread of α values at laptop scale:
//   α ≈ 1 : path, cycle, caterpillar
//   α ≈ 2 : 2-D grid, torus, king grid, unit-disk, perturbed grid ("roads")
//   α ≈ d : d-dimensional grids G_{p,d} / H_{p,d} (the Theorem 3.1 family)
// plus trees and Erdős–Rényi graphs as non-doubling contrast cases.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace fsdl {

Graph make_path(Vertex n);
Graph make_cycle(Vertex n);

/// Axis-neighbor rows×cols grid (doubling dimension ≈ 2).
Graph make_grid2d(Vertex rows, Vertex cols);

/// rows×cols grid with wraparound in both dimensions.
Graph make_torus2d(Vertex rows, Vertex cols);

/// Grid with the 8-neighborhood (equals G_{p,2} when rows == cols == p).
Graph make_king_grid(Vertex rows, Vertex cols);

Graph make_grid3d(Vertex nx, Vertex ny, Vertex nz);

/// The paper's G_{p,d}: vertices are d-tuples over {0..p-1}; x ~ y iff
/// max_i |x_i - y_i| = 1. n = p^d, minimum degree 2^d - 1.
Graph make_full_grid(Vertex p, unsigned d);

/// The paper's H_{p,d}: x ~ y iff max_i |x_i - y_i| = 1 and
/// Σ_i |x_i - y_i| <= d/2 (d even in the paper; we require d >= 2 and use
/// ⌊d/2⌋). H_{p,d} is a 2-spanner of G_{p,d}.
Graph make_half_grid(Vertex p, unsigned d);

/// A member of the Theorem 3.1 family F_{n,α}: contains every H_{p,d} edge
/// and each remaining G_{p,d} edge independently with probability keep_prob.
Graph make_between_grid(Vertex p, unsigned d, double keep_prob, Rng& rng);

/// Complete `arity`-ary tree with `depth` levels below the root.
Graph make_balanced_tree(unsigned arity, unsigned depth);

/// Path of `spine` vertices, each with `legs` pendant vertices.
Graph make_caterpillar(Vertex spine, Vertex legs);

/// n points uniform in the unit square, edge iff Euclidean distance <= radius.
/// The returned graph may be disconnected; callers usually take the largest
/// component. If `points` is non-null it receives the coordinates.
Graph make_unit_disk(Vertex n, double radius, Rng& rng,
                     std::vector<std::pair<double, double>>* points = nullptr);

/// "Road network" stand-in: 2-D grid with each edge deleted independently
/// with probability drop_prob, restricted to its largest component.
Graph make_perturbed_grid(Vertex rows, Vertex cols, double drop_prob,
                          Rng& rng);

/// Erdős–Rényi G(n, p). Not doubling; contrast case only.
Graph make_er(Vertex n, double p, Rng& rng);

/// Coordinate helpers for d-dimensional grid vertex ids (row-major,
/// mixed-radix base p).
std::vector<int> grid_coords(Vertex id, Vertex p, unsigned d);
Vertex grid_id(const std::vector<int>& coords, Vertex p);

}  // namespace fsdl
