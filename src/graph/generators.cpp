#include "graph/generators.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "graph/components.hpp"

namespace fsdl {
namespace {

Vertex checked_pow(Vertex p, unsigned d) {
  std::uint64_t n = 1;
  for (unsigned i = 0; i < d; ++i) {
    n *= p;
    if (n > (std::uint64_t{1} << 31)) {
      throw std::invalid_argument("grid family too large: p^d over 2^31");
    }
  }
  return static_cast<Vertex>(n);
}

/// Enumerate neighbors of `id` in the d-dimensional p-grid under the
/// predicate accept(l1) where l1 = Σ|Δ| (and max|Δ| = 1 always holds).
template <typename Accept, typename Emit>
void for_grid_neighbors(Vertex id, Vertex p, unsigned d, Accept&& accept,
                        Emit&& emit) {
  std::vector<int> coords = grid_coords(id, p, d);
  std::vector<int> delta(d, -1);
  // Iterate over all offset vectors in {-1,0,1}^d except all-zero.
  for (;;) {
    int l1 = 0;
    bool in_range = true;
    for (unsigned i = 0; i < d && in_range; ++i) {
      l1 += std::abs(delta[i]);
      const int c = coords[i] + delta[i];
      in_range = c >= 0 && c < static_cast<int>(p);
    }
    if (in_range && l1 > 0 && accept(l1)) {
      std::vector<int> other(d);
      for (unsigned i = 0; i < d; ++i) other[i] = coords[i] + delta[i];
      emit(grid_id(other, p));
    }
    // Odometer increment over {-1,0,1}^d.
    unsigned pos = 0;
    while (pos < d && delta[pos] == 1) delta[pos++] = -1;
    if (pos == d) break;
    ++delta[pos];
  }
}

}  // namespace

std::vector<int> grid_coords(Vertex id, Vertex p, unsigned d) {
  std::vector<int> coords(d);
  for (unsigned i = 0; i < d; ++i) {
    coords[i] = static_cast<int>(id % p);
    id /= p;
  }
  return coords;
}

Vertex grid_id(const std::vector<int>& coords, Vertex p) {
  Vertex id = 0;
  for (std::size_t i = coords.size(); i-- > 0;) {
    id = id * p + static_cast<Vertex>(coords[i]);
  }
  return id;
}

Graph make_path(Vertex n) {
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_cycle(Vertex n) {
  if (n < 3) throw std::invalid_argument("cycle needs n >= 3");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph make_grid2d(Vertex rows, Vertex cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph make_torus2d(Vertex rows, Vertex cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus needs >= 3x3");
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph make_king_grid(Vertex rows, Vertex cols) {
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) {
        b.add_edge(id(r, c), id(r + 1, c));
        if (c + 1 < cols) b.add_edge(id(r, c), id(r + 1, c + 1));
        if (c > 0) b.add_edge(id(r, c), id(r + 1, c - 1));
      }
    }
  }
  return b.build();
}

Graph make_grid3d(Vertex nx, Vertex ny, Vertex nz) {
  GraphBuilder b(nx * ny * nz);
  auto id = [=](Vertex x, Vertex y, Vertex z) { return (z * ny + y) * nx + x; };
  for (Vertex z = 0; z < nz; ++z) {
    for (Vertex y = 0; y < ny; ++y) {
      for (Vertex x = 0; x < nx; ++x) {
        if (x + 1 < nx) b.add_edge(id(x, y, z), id(x + 1, y, z));
        if (y + 1 < ny) b.add_edge(id(x, y, z), id(x, y + 1, z));
        if (z + 1 < nz) b.add_edge(id(x, y, z), id(x, y, z + 1));
      }
    }
  }
  return b.build();
}

Graph make_full_grid(Vertex p, unsigned d) {
  if (p < 2 || d < 1) throw std::invalid_argument("full grid needs p,d >= 2,1");
  const Vertex n = checked_pow(p, d);
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for_grid_neighbors(
        v, p, d, [](int) { return true; },
        [&](Vertex w) {
          if (v < w) b.add_edge(v, w);
        });
  }
  return b.build();
}

Graph make_half_grid(Vertex p, unsigned d) {
  if (p < 2 || d < 2) throw std::invalid_argument("half grid needs p,d >= 2,2");
  const Vertex n = checked_pow(p, d);
  const int budget = static_cast<int>(d / 2);
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for_grid_neighbors(
        v, p, d, [budget](int l1) { return l1 <= budget; },
        [&](Vertex w) {
          if (v < w) b.add_edge(v, w);
        });
  }
  return b.build();
}

Graph make_between_grid(Vertex p, unsigned d, double keep_prob, Rng& rng) {
  if (p < 2 || d < 2) throw std::invalid_argument("between grid needs p,d >= 2");
  const Vertex n = checked_pow(p, d);
  const int budget = static_cast<int>(d / 2);
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for_grid_neighbors(
        v, p, d, [](int) { return true; },
        [&](Vertex w) {
          if (v >= w) return;
          // H edges are mandatory; the remaining G\H edges are the free
          // bits the lower-bound argument counts.
          bool is_h_edge = true;
          {
            const auto a = grid_coords(v, p, d);
            const auto c = grid_coords(w, p, d);
            int l1 = 0;
            for (unsigned i = 0; i < d; ++i) l1 += std::abs(a[i] - c[i]);
            is_h_edge = l1 <= budget;
          }
          if (is_h_edge || rng.chance(keep_prob)) b.add_edge(v, w);
        });
  }
  return b.build();
}

Graph make_balanced_tree(unsigned arity, unsigned depth) {
  if (arity < 1) throw std::invalid_argument("tree arity >= 1");
  std::uint64_t n = 1, layer = 1;
  for (unsigned i = 0; i < depth; ++i) {
    layer *= arity;
    n += layer;
    if (n > (std::uint64_t{1} << 31)) throw std::invalid_argument("tree too big");
  }
  GraphBuilder b(static_cast<Vertex>(n));
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / arity);
  return b.build();
}

Graph make_caterpillar(Vertex spine, Vertex legs) {
  if (spine < 1) throw std::invalid_argument("caterpillar spine >= 1");
  GraphBuilder b(spine * (legs + 1));
  for (Vertex s = 0; s + 1 < spine; ++s) b.add_edge(s, s + 1);
  for (Vertex s = 0; s < spine; ++s) {
    for (Vertex l = 0; l < legs; ++l) b.add_edge(s, spine + s * legs + l);
  }
  return b.build();
}

Graph make_unit_disk(Vertex n, double radius, Rng& rng,
                     std::vector<std::pair<double, double>>* points) {
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};

  // Bucket points on a cell grid of side `radius` so that neighbor search
  // only inspects the 9 surrounding cells.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  const double cell_size = 1.0 / cells;
  std::vector<std::vector<Vertex>> bucket(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](double x) {
    return std::min(cells - 1, static_cast<int>(x / cell_size));
  };
  for (Vertex v = 0; v < n; ++v) {
    bucket[static_cast<std::size_t>(cell_of(pts[v].second)) * cells +
           cell_of(pts[v].first)]
        .push_back(v);
  }

  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (Vertex v = 0; v < n; ++v) {
    const int cx = cell_of(pts[v].first);
    const int cy = cell_of(pts[v].second);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (Vertex w : bucket[static_cast<std::size_t>(ny) * cells + nx]) {
          if (w <= v) continue;
          const double ddx = pts[v].first - pts[w].first;
          const double ddy = pts[v].second - pts[w].second;
          if (ddx * ddx + ddy * ddy <= r2) b.add_edge(v, w);
        }
      }
    }
  }
  if (points != nullptr) *points = std::move(pts);
  return b.build();
}

Graph make_perturbed_grid(Vertex rows, Vertex cols, double drop_prob,
                          Rng& rng) {
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols && !rng.chance(drop_prob)) {
        b.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows && !rng.chance(drop_prob)) {
        b.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  return largest_component_subgraph(b.build());
}

Graph make_er(Vertex n, double p, Rng& rng) {
  GraphBuilder b(n);
  // Geometric skipping over the (n choose 2) edge slots: O(m) expected.
  if (p > 0) {
    const double log1mp = std::log1p(-p);
    std::uint64_t slot = 0;
    const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    while (slot < total) {
      if (p < 1.0) {
        const double u = rng.uniform();
        slot += static_cast<std::uint64_t>(std::log1p(-u) / log1mp);
      }
      if (slot >= total) break;
      // Invert slot -> (u, v) with u < v.
      const auto u64 = static_cast<std::uint64_t>(
          (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(slot))) / 2.0);
      std::uint64_t u = u64;
      while (u * (u - 1) / 2 > slot) --u;
      while ((u + 1) * u / 2 <= slot) ++u;
      const std::uint64_t v = slot - u * (u - 1) / 2;
      b.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(u));
      ++slot;
    }
  }
  return b.build();
}

}  // namespace fsdl
