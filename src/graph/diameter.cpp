#include "graph/diameter.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace fsdl {

Dist eccentricity(const Graph& g, Vertex src) {
  const auto dist = bfs_distances(g, src);
  Dist ecc = 0;
  for (Dist d : dist) {
    if (d == kInfDist) return kInfDist;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

Dist exact_diameter(const Graph& g) {
  Dist diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const Dist e = eccentricity(g, v);
    if (e == kInfDist) return kInfDist;
    diam = std::max(diam, e);
  }
  return diam;
}

Dist double_sweep_lower_bound(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  auto dist = bfs_distances(g, 0);
  Vertex far = 0;
  Dist best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != kInfDist && dist[v] > best) {
      best = dist[v];
      far = v;
    }
  }
  dist = bfs_distances(g, far);
  best = 0;
  for (Dist d : dist) {
    if (d != kInfDist) best = std::max(best, d);
  }
  return best;
}

}  // namespace fsdl
