#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace fsdl {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex w : g.neighbors(v)) {
      if (v < w) os << v << ' ' << w << '\n';
    }
  }
}

Graph read_edge_list(std::istream& is) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  if (!next_content_line()) throw std::runtime_error("edge list: empty input");
  std::istringstream header(line);
  std::size_t n = 0, m = 0;
  if (!(header >> n >> m)) throw std::runtime_error("edge list: bad header");

  GraphBuilder builder(static_cast<Vertex>(n));
  for (std::size_t i = 0; i < m; ++i) {
    if (!next_content_line()) throw std::runtime_error("edge list: truncated");
    std::istringstream edge(line);
    Vertex u = 0, v = 0;
    if (!(edge >> u >> v)) throw std::runtime_error("edge list: bad edge line");
    builder.add_edge(u, v);
  }
  return builder.build();
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_edge_list(g, os);
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return read_edge_list(is);
}

}  // namespace fsdl
