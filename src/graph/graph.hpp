// Immutable undirected unweighted graph in compressed-sparse-row form.
//
// All algorithms in the library run against this representation. The paper's
// input model is an unweighted undirected n-vertex graph, so edges carry no
// weights here; weighted graphs appear only as per-query *sketch* graphs
// (see graph/dijkstra.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace fsdl {

class Graph {
 public:
  Graph() = default;

  Vertex num_vertices() const noexcept {
    return offsets_.empty() ? 0 : static_cast<Vertex>(offsets_.size() - 1);
  }

  /// Number of undirected edges.
  std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  Vertex degree(Vertex v) const noexcept {
    return static_cast<Vertex>(offsets_[v + 1] - offsets_[v]);
  }

  /// O(log deg) membership test; adjacency lists are sorted.
  bool has_edge(Vertex u, Vertex v) const noexcept;

  /// Approximate heap footprint, for reporting.
  std::size_t memory_bytes() const noexcept {
    return offsets_.capacity() * sizeof(std::size_t) +
           adjacency_.capacity() * sizeof(Vertex);
  }

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Vertex> adjacency_;     // size 2m, sorted within each vertex
};

/// Accumulates edges, then produces a canonical Graph (sorted adjacency,
/// duplicates merged, self-loops rejected).
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex num_vertices) : n_(num_vertices) {}

  /// Add undirected edge {u, v}. Duplicate additions are merged at build().
  void add_edge(Vertex u, Vertex v);

  Vertex num_vertices() const noexcept { return n_; }

  /// Consumes the builder's edge list.
  Graph build();

 private:
  Vertex n_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
};

}  // namespace fsdl
