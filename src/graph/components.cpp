#include "graph/components.hpp"

#include <algorithm>

namespace fsdl {

Components connected_components(const Graph& g) {
  Components out;
  out.id.assign(g.num_vertices(), kNoVertex);
  std::vector<Vertex> queue;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (out.id[s] != kNoVertex) continue;
    const Vertex comp = out.count++;
    out.id[s] = comp;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (Vertex w : g.neighbors(queue[head])) {
        if (out.id[w] == kNoVertex) {
          out.id[w] = comp;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

Graph largest_component_subgraph(const Graph& g,
                                 std::vector<Vertex>* old_to_new) {
  const Components comps = connected_components(g);
  std::vector<std::size_t> sizes(comps.count, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++sizes[comps.id[v]];
  const Vertex best = static_cast<Vertex>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<Vertex> map(g.num_vertices(), kNoVertex);
  Vertex next = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (comps.id[v] == best) map[v] = next++;
  }
  GraphBuilder builder(next);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (map[v] == kNoVertex) continue;
    for (Vertex w : g.neighbors(v)) {
      if (v < w && map[w] != kNoVertex) builder.add_edge(map[v], map[w]);
    }
  }
  if (old_to_new != nullptr) *old_to_new = std::move(map);
  return builder.build();
}

}  // namespace fsdl
