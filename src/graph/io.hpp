// Plain-text edge-list graph I/O.
//
// Format:
//   line 1:  "<n> <m>"
//   then m lines "<u> <v>" with 0 <= u, v < n.
// Comment lines starting with '#' are skipped.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace fsdl {

void write_edge_list(const Graph& g, std::ostream& os);
Graph read_edge_list(std::istream& is);

void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

}  // namespace fsdl
