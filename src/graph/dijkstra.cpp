#include "graph/dijkstra.hpp"

#include <algorithm>
#include <queue>

namespace fsdl {

SketchGraph::Index SketchGraph::intern(Vertex external_id) {
  auto [it, inserted] =
      index_of_.try_emplace(external_id, static_cast<Index>(num_vertices_));
  if (inserted) {
    if (num_vertices_ == adjacency_.size()) {
      external_ids_.push_back(external_id);
      adjacency_.emplace_back();
    } else {
      external_ids_[num_vertices_] = external_id;
      adjacency_[num_vertices_].clear();
    }
    ++num_vertices_;
  }
  return it->second;
}

void SketchGraph::reserve(std::size_t n) {
  index_of_.reserve(n);
  external_ids_.reserve(n);
  adjacency_.reserve(n);
}

void SketchGraph::clear() noexcept {
  index_of_.clear();
  num_vertices_ = 0;
  num_edges_ = 0;
}

SketchGraph::Index SketchGraph::find(Vertex external_id) const {
  auto it = index_of_.find(external_id);
  return it == index_of_.end() ? kNoIndex : it->second;
}

void SketchGraph::add_edge(Index a, Index b, Dist weight) {
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++num_edges_;
}

Dist sketch_shortest_path(const SketchGraph& h, SketchGraph::Index s,
                          SketchGraph::Index t,
                          std::vector<SketchGraph::Index>* path,
                          std::size_t* relaxations) {
  using Index = SketchGraph::Index;
  const std::size_t n = h.num_vertices();
  std::size_t scans = 0;
  if (relaxations != nullptr) *relaxations = 0;
  if (s >= n || t >= n) return kInfDist;

  // 64-bit tentative distances guard against overflow from summed weights.
  std::vector<std::uint64_t> dist(n, ~std::uint64_t{0});
  std::vector<Index> parent(n, SketchGraph::kNoIndex);
  using Item = std::pair<std::uint64_t, Index>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[s] = 0;
  heap.emplace(0, s);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale entry
    if (u == t) break;
    for (const auto& arc : h.arcs(u)) {
      ++scans;
      const std::uint64_t nd = d + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        parent[arc.to] = u;
        heap.emplace(nd, arc.to);
      }
    }
  }
  if (relaxations != nullptr) *relaxations = scans;
  if (dist[t] == ~std::uint64_t{0}) return kInfDist;
  if (path != nullptr) {
    path->clear();
    for (Index v = t;; v = parent[v]) {
      path->push_back(v);
      if (v == s) break;
    }
    std::reverse(path->begin(), path->end());
  }
  return static_cast<Dist>(std::min<std::uint64_t>(dist[t], kInfDist - 1));
}

}  // namespace fsdl
