#include "graph/wfault.hpp"

#include <queue>

namespace fsdl {

Dist weighted_distance_avoiding(const WeightedGraph& g, Vertex s, Vertex t,
                                const FaultSet& faults) {
  if (faults.vertex_faulty(s) || faults.vertex_faulty(t)) return kInfDist;
  if (s == t) return 0;
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[s] = 0;
  heap.emplace(0, s);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    if (u == t) return d;
    for (const auto& arc : g.arcs(u)) {
      if (faults.vertex_faulty(arc.to)) continue;
      if (!faults.edges().empty() && faults.edge_faulty(u, arc.to)) continue;
      const std::uint64_t nd = static_cast<std::uint64_t>(d) + arc.weight;
      if (nd < dist[arc.to]) {
        dist[arc.to] = static_cast<Dist>(nd);
        heap.emplace(dist[arc.to], arc.to);
      }
    }
  }
  return dist[t];
}

}  // namespace fsdl
