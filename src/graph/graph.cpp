#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsdl {

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  const auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  if (u >= n_ || v >= n_) throw std::out_of_range("GraphBuilder: vertex id");
  if (u == v) throw std::invalid_argument("GraphBuilder: self-loop");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Each list was filled from a globally sorted edge list keyed on the lower
  // endpoint, so lists mixing lower- and higher-endpoint entries still need
  // a per-vertex sort.
  for (Vertex v = 0; v < n_; ++v) {
    auto begin = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end);
  }
  edges_.clear();
  return g;
}

}  // namespace fsdl
