#include "graph/wgraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsdl {

Weight WeightedGraph::edge_weight(Vertex u, Vertex v) const noexcept {
  const auto a = arcs(u);
  const auto it = std::lower_bound(
      a.begin(), a.end(), v,
      [](const Arc& arc, Vertex target) { return arc.to < target; });
  return it != a.end() && it->to == v ? it->weight : 0;
}

void WeightedGraphBuilder::add_edge(Vertex u, Vertex v, Weight w) {
  if (u >= n_ || v >= n_) throw std::out_of_range("WeightedGraphBuilder: id");
  if (u == v) throw std::invalid_argument("WeightedGraphBuilder: self-loop");
  if (w == 0) throw std::invalid_argument("WeightedGraphBuilder: zero weight");
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v, w);
}

WeightedGraph WeightedGraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end());
  // Duplicate endpoints: keep the lightest parallel edge.
  std::vector<std::tuple<Vertex, Vertex, Weight>> dedup;
  dedup.reserve(edges_.size());
  for (const auto& e : edges_) {
    if (!dedup.empty() && std::get<0>(dedup.back()) == std::get<0>(e) &&
        std::get<1>(dedup.back()) == std::get<1>(e)) {
      continue;  // sorted: the first copy has the smallest weight
    }
    dedup.push_back(e);
  }

  WeightedGraph g;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v, w] : dedup) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
    g.max_weight_ = std::max(g.max_weight_, w);
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.arcs_.resize(dedup.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v, w] : dedup) {
    g.arcs_[cursor[u]++] = {v, w};
    g.arcs_[cursor[v]++] = {u, w};
  }
  for (Vertex v = 0; v < n_; ++v) {
    auto begin = g.arcs_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]);
    auto end = g.arcs_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]);
    std::sort(begin, end, [](const WeightedGraph::Arc& a,
                             const WeightedGraph::Arc& b) { return a.to < b.to; });
  }
  edges_.clear();
  return g;
}

WeightedGraph weighted_from(const Graph& g) {
  WeightedGraphBuilder b(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex w : g.neighbors(v)) {
      if (v < w) b.add_edge(v, w, 1);
    }
  }
  return b.build();
}

WeightedGraph weighted_from(const Graph& g, Weight max_weight, Rng& rng) {
  if (max_weight == 0) throw std::invalid_argument("max_weight must be >= 1");
  WeightedGraphBuilder b(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex w : g.neighbors(v)) {
      if (v < w) {
        b.add_edge(v, w, 1 + static_cast<Weight>(rng.below(max_weight)));
      }
    }
  }
  return b.build();
}

Graph unweighted_skeleton(const WeightedGraph& g) {
  GraphBuilder b(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const auto& arc : g.arcs(v)) {
      if (v < arc.to) b.add_edge(v, arc.to);
    }
  }
  return b.build();
}

}  // namespace fsdl
