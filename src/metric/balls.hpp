// Ball queries over the shortest-path metric of an unweighted graph.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// All vertices within distance `radius` of `center` (including it),
/// sorted by id.
std::vector<Vertex> ball_vertices(const Graph& g, Vertex center, Dist radius);

/// |B(center, radius)|.
std::size_t ball_size(const Graph& g, Vertex center, Dist radius);

}  // namespace fsdl
