// Exact doubling dimension for small graphs.
//
// α(G) = ⌈log₂ max_{v,r} cover(v, r)⌉ where cover(v, r) is the minimum
// number of r-balls needed to cover B(v, 2r). The minimum cover is an exact
// set-cover computation (branch and bound), so this is exponential in the
// worst case — intended for n up to a few dozen, where it validates the
// sampling estimator (metric/doubling) and the lower-bound family's
// doubling-dimension claim (Theorem 3.1).
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Minimum number of r-balls (arbitrary centers) covering B(center, 2r).
std::size_t min_ball_cover(const Graph& g, Vertex center, Dist r);

struct ExactDoubling {
  double alpha = 0.0;            // log2 of the worst cover
  std::size_t worst_cover = 1;
  Vertex worst_center = 0;
  Dist worst_radius = 1;
};

/// Exact doubling dimension: maximizes min_ball_cover over every vertex and
/// every radius 1 <= r <= diameter.
ExactDoubling exact_doubling_dimension(const Graph& g);

}  // namespace fsdl
