#include "metric/balls.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace fsdl {

std::vector<Vertex> ball_vertices(const Graph& g, Vertex center, Dist radius) {
  std::vector<Vertex> out;
  BfsRunner bfs(g);
  bfs.run(center, radius, [&](Vertex v, Dist) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t ball_size(const Graph& g, Vertex center, Dist radius) {
  std::size_t count = 0;
  BfsRunner bfs(g);
  bfs.run(center, radius, [&](Vertex, Dist) { ++count; });
  return count;
}

}  // namespace fsdl
