#include "metric/exact_doubling.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/diameter.hpp"

namespace fsdl {
namespace {

/// Exact minimum set cover by branch and bound. `sets` are bitmasks over a
/// universe of <= 64 elements; `universe` is the target mask.
class SetCoverSolver {
 public:
  SetCoverSolver(std::vector<std::uint64_t> sets, std::uint64_t universe)
      : sets_(std::move(sets)), universe_(universe) {
    // Greedy first: provides the initial upper bound.
    best_ = greedy();
  }

  std::size_t solve() {
    branch(universe_, 0);
    return best_;
  }

 private:
  std::size_t greedy() const {
    std::uint64_t uncovered = universe_;
    std::size_t used = 0;
    while (uncovered != 0) {
      std::uint64_t best_gain = 0;
      std::size_t best_set = sets_.size();
      for (std::size_t k = 0; k < sets_.size(); ++k) {
        const auto gain = static_cast<std::uint64_t>(
            std::popcount(sets_[k] & uncovered));
        if (gain > best_gain) {
          best_gain = gain;
          best_set = k;
        }
      }
      if (best_set == sets_.size()) {
        throw std::logic_error("set cover infeasible");
      }
      uncovered &= ~sets_[best_set];
      ++used;
    }
    return used;
  }

  void branch(std::uint64_t uncovered, std::size_t used) {
    if (uncovered == 0) {
      best_ = std::min(best_, used);
      return;
    }
    if (used + 1 >= best_) return;  // even one more set cannot improve
    // Lower bound: remaining / largest set size.
    std::size_t max_size = 1;
    for (const auto s : sets_) {
      max_size = std::max<std::size_t>(max_size,
                                       std::popcount(s & uncovered));
    }
    const std::size_t remaining = std::popcount(uncovered);
    if (used + (remaining + max_size - 1) / max_size >= best_) return;

    // Branch on the uncovered element contained in the fewest sets.
    const int pivot = std::countr_zero(uncovered);
    const std::uint64_t pivot_bit = std::uint64_t{1} << pivot;
    for (std::size_t k = 0; k < sets_.size(); ++k) {
      if (sets_[k] & pivot_bit) {
        branch(uncovered & ~sets_[k], used + 1);
      }
    }
  }

  std::vector<std::uint64_t> sets_;
  std::uint64_t universe_;
  std::size_t best_;
};

}  // namespace

std::size_t min_ball_cover(const Graph& g, Vertex center, Dist r) {
  BfsRunner bfs(g);
  // Universe: B(center, 2r), indexed densely.
  std::vector<Vertex> ball;
  bfs.run(center, 2 * r, [&](Vertex v, Dist) { ball.push_back(v); });
  if (ball.size() > 64) {
    throw std::invalid_argument("min_ball_cover: ball exceeds 64 vertices");
  }
  std::vector<int> index(g.num_vertices(), -1);
  for (std::size_t k = 0; k < ball.size(); ++k) index[ball[k]] = static_cast<int>(k);
  const std::uint64_t universe =
      ball.size() == 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << ball.size()) - 1;

  // Candidate balls: radius r around every vertex (centers may lie outside
  // the big ball per the definition).
  std::vector<std::uint64_t> sets;
  sets.reserve(g.num_vertices());
  for (Vertex c = 0; c < g.num_vertices(); ++c) {
    std::uint64_t mask = 0;
    bfs.run(c, r, [&](Vertex v, Dist) {
      if (index[v] >= 0) mask |= std::uint64_t{1} << index[v];
    });
    if (mask != 0) sets.push_back(mask);
  }
  return SetCoverSolver(std::move(sets), universe).solve();
}

ExactDoubling exact_doubling_dimension(const Graph& g) {
  ExactDoubling out;
  if (g.num_vertices() == 0) return out;
  const Dist diam = exact_diameter(g);
  if (diam == kInfDist) {
    throw std::invalid_argument("exact doubling needs a connected graph");
  }
  for (Dist r = 1; r <= std::max<Dist>(diam, 1); ++r) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const std::size_t cover = min_ball_cover(g, v, r);
      if (cover > out.worst_cover) {
        out.worst_cover = cover;
        out.worst_center = v;
        out.worst_radius = r;
      }
    }
  }
  out.alpha = std::log2(static_cast<double>(out.worst_cover));
  return out;
}

}  // namespace fsdl
