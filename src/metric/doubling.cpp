#include "metric/doubling.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "graph/bfs.hpp"
#include "graph/diameter.hpp"

namespace fsdl {

std::size_t greedy_cover_size(const Graph& g, Vertex center, Dist r) {
  // Collect B(center, 2r) with distances-from-center for determinism.
  std::vector<Vertex> big_ball;
  BfsRunner bfs(g);
  bfs.run(center, 2 * r, [&](Vertex v, Dist) { big_ball.push_back(v); });

  // Farthest-first traversal: repeatedly pick the uncovered vertex farthest
  // from all chosen centers, cover its r-ball.
  std::unordered_map<Vertex, Dist> dist_to_centers;
  dist_to_centers.reserve(big_ball.size());
  for (Vertex v : big_ball) dist_to_centers[v] = kInfDist;

  std::size_t covers = 0;
  Vertex next = center;
  while (next != kNoVertex) {
    ++covers;
    bfs.run(next, 2 * r, [&](Vertex v, Dist d) {
      auto it = dist_to_centers.find(v);
      if (it != dist_to_centers.end()) it->second = std::min(it->second, d);
    });
    next = kNoVertex;
    Dist far = r;  // only vertices strictly farther than r are uncovered
    for (Vertex v : big_ball) {
      const Dist d = dist_to_centers[v];
      if (d > far || (d == kInfDist && far != kInfDist)) {
        far = d;
        next = v;
      }
    }
  }
  return covers;
}

DoublingEstimate estimate_doubling_dimension(const Graph& g, unsigned samples,
                                             Rng& rng) {
  DoublingEstimate best{0.0, 1, 0, 1};
  if (g.num_vertices() == 0) return best;
  const Dist diam_lb = double_sweep_lower_bound(g);
  std::vector<Dist> radii;
  for (Dist r = 1; r * 2 <= std::max<Dist>(diam_lb, 2); r *= 2) {
    radii.push_back(r);
  }
  for (unsigned s = 0; s < samples; ++s) {
    const Vertex v = rng.vertex(g.num_vertices());
    const Dist r = radii[rng.below(radii.size())];
    const std::size_t cover = greedy_cover_size(g, v, r);
    const double alpha = std::log2(static_cast<double>(std::max<std::size_t>(cover, 1)));
    if (alpha > best.alpha) best = {alpha, cover, v, r};
  }
  return best;
}

}  // namespace fsdl
