// Empirical doubling-dimension estimation.
//
// The doubling dimension is the smallest α such that every ball B(v, 2r)
// can be covered by 2^α balls of radius r. Computing it exactly is NP-hard
// in general; we report the greedy-cover upper estimate
//     α̂ = max over sampled (v, r) of ⌈log₂ |greedy r-cover of B(v, 2r)|⌉,
// which upper-bounds log₂ of the true cover number at each sampled scale
// by at most the packing/covering slack. Benchmarks use α̂ to sanity-check
// that each generator realizes the intended dimension regime.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace fsdl {

struct DoublingEstimate {
  double alpha;          // max over samples of log2(cover size)
  std::size_t worst_cover_size;
  Vertex worst_center;
  Dist worst_radius;
};

/// Greedy cover of B(center, 2r) by balls of radius r; returns the number of
/// balls used. Centers are chosen farthest-first inside the big ball, so the
/// result is also an r-packing and the bound |cover| <= 2^{2α} holds.
std::size_t greedy_cover_size(const Graph& g, Vertex center, Dist r);

/// Sampled estimate over `samples` random (center, radius) pairs with radii
/// drawn from powers of two up to the graph diameter scale.
DoublingEstimate estimate_doubling_dimension(const Graph& g, unsigned samples,
                                             Rng& rng);

}  // namespace fsdl
