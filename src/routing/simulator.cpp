#include "routing/simulator.hpp"

#include <unordered_map>

namespace fsdl {
namespace {

/// Per-level nearest-net-point chain of an owner label, ascending levels.
std::vector<Vertex> anchor_chain(const VertexLabel& label) {
  std::vector<Vertex> chain;
  for (const LevelLabel& ll : label.levels) {
    std::uint32_t best = 0;
    Dist best_d = kInfDist;
    for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
      if (ll.dists[k] < best_d) {
        best_d = ll.dists[k];
        best = k;
      }
    }
    if (best != 0) chain.push_back(ll.points[best]);
  }
  return chain;
}

/// Uniform edge access for both graph types: weight 0 means "no edge".
Weight hop_weight(const Graph& g, Vertex u, Vertex v) {
  return g.has_edge(u, v) ? 1 : 0;
}
Weight hop_weight(const WeightedGraph& g, Vertex u, Vertex v) {
  return g.edge_weight(u, v);
}

template <typename AnyGraph>
class Walker {
 public:
  Walker(const AnyGraph& g, const ForbiddenSetRouting& routing,
         const FaultSet& faults, Dist hop_budget, RouteResult& out)
      : g_(&g), routing_(&routing), faults_(&faults), budget_(hop_budget),
        out_(&out) {}

  /// One forwarding step to `next`; false aborts the route.
  bool step(Vertex next) {
    const Vertex here = out_->path.back();
    const Weight w = hop_weight(*g_, here, next);
    if (w == 0) {
      // A port must name a real neighbor; treat violations as missing port.
      out_->missing_port = true;
      return false;
    }
    if (faults_->vertex_faulty(next) || faults_->edge_faulty(here, next)) {
      out_->blocked_by_fault = true;
      return false;
    }
    out_->path.push_back(next);
    out_->length += w;
    if (++out_->hops > budget_) {
      out_->missing_port = true;  // runaway guard counts as routing failure
      return false;
    }
    return true;
  }

  /// Follow ports toward a net-point target until reached.
  bool walk_direct(Vertex target) {
    while (out_->path.back() != target) {
      const Vertex p = routing_->port(out_->path.back(), target);
      if (p == kNoVertex) {
        out_->missing_port = true;
        return false;
      }
      if (!step(p)) return false;
    }
    return true;
  }

  /// Reach an owner waypoint: direct ports when available, otherwise descend
  /// through the owner's chain anchors (lowest usable first).
  bool walk_to_owner(Vertex target, const std::vector<Vertex>& chain) {
    while (out_->path.back() != target) {
      const Vertex here = out_->path.back();
      const Vertex p = routing_->port(here, target);
      if (p != kNoVertex) {
        if (!step(p)) return false;
        continue;
      }
      bool advanced = false;
      for (Vertex anchor : chain) {
        if (anchor == here) continue;
        if (routing_->port(here, anchor) == kNoVertex) continue;
        if (!walk_direct(anchor)) return false;
        advanced = true;
        break;
      }
      if (!advanced) {
        out_->missing_port = true;
        return false;
      }
    }
    return true;
  }

 private:
  const AnyGraph* g_;
  const ForbiddenSetRouting* routing_;
  const FaultSet* faults_;
  Dist budget_;
  RouteResult* out_;
};

template <typename AnyGraph>
RouteResult route_packet_impl(const AnyGraph& g,
                              const ForbiddenSetRouting& routing,
                              const ForbiddenSetOracle& oracle, Vertex s,
                              Vertex t, const FaultSet& faults) {
  RouteResult out;
  const QueryResult plan = oracle.query(s, t, faults);
  if (plan.distance == kInfDist) return out;  // no known route

  // Owners whose chain may be needed: s, t, and every fault center.
  std::unordered_map<Vertex, std::vector<Vertex>> chains;
  auto add_chain = [&](Vertex v) {
    auto [it, inserted] = chains.try_emplace(v);
    if (inserted) it->second = anchor_chain(oracle.label(v));
  };
  add_chain(s);
  add_chain(t);
  for (Vertex f : faults.vertices()) add_chain(f);
  for (const auto& [a, b] : faults.edges()) {
    add_chain(a);
    add_chain(b);
  }

  const unsigned vertex_bits = oracle.scheme().vertex_bits();
  out.header_bits = plan.waypoints.size() * vertex_bits;

  // Generous budget: routing failures should surface as missing_port or
  // blocked_by_fault, not as an artificial cutoff.
  const Dist budget = 16 * plan.distance + 4 * g.num_vertices() + 64;
  Walker walker(g, routing, faults, budget, out);
  out.path.push_back(s);

  for (std::size_t k = 1; k < plan.waypoints.size(); ++k) {
    const Vertex target = plan.waypoints[k];
    const auto chain_it = chains.find(target);
    if (chain_it != chains.end()) {
      out.header_bits += chain_it->second.size() * vertex_bits;
      if (!walker.walk_to_owner(target, chain_it->second)) return out;
    } else {
      if (!walker.walk_direct(target)) return out;
    }
  }
  out.delivered = out.path.back() == t;
  return out;
}

}  // namespace

RouteResult route_packet(const Graph& g, const ForbiddenSetRouting& routing,
                         const ForbiddenSetOracle& oracle, Vertex s, Vertex t,
                         const FaultSet& faults) {
  return route_packet_impl(g, routing, oracle, s, t, faults);
}

RouteResult route_packet(const WeightedGraph& g,
                         const ForbiddenSetRouting& routing,
                         const ForbiddenSetOracle& oracle, Vertex s, Vertex t,
                         const FaultSet& faults) {
  return route_packet_impl(g, routing, oracle, s, t, faults);
}

}  // namespace fsdl
