// Per-vertex port tables: first hop on a shortest path toward each target
// the vertex may be asked to route to (the net points appearing in its
// label, per paper §2.2).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"

namespace fsdl {

class PortTable {
 public:
  explicit PortTable(Vertex num_vertices) : table_(num_vertices) {}

  /// Record the next hop from u toward target; first writer wins (any
  /// shortest-path first hop is equally valid).
  void set(Vertex u, Vertex target, Vertex next_hop) {
    table_[u].try_emplace(target, next_hop);
  }

  /// Next hop from u toward target, or kNoVertex if u stores no port for it.
  Vertex port(Vertex u, Vertex target) const {
    const auto& m = table_[u];
    const auto it = m.find(target);
    return it == m.end() ? kNoVertex : it->second;
  }

  std::size_t entries(Vertex u) const { return table_[u].size(); }

  std::size_t total_entries() const {
    std::size_t sum = 0;
    for (const auto& m : table_) sum += m.size();
    return sum;
  }

 private:
  std::vector<std::unordered_map<Vertex, Vertex>> table_;
};

}  // namespace fsdl
