// Packet-forwarding simulator for the forbidden-set routing scheme.
//
// The source computes the sketch path (certified virtual edges) from the
// labels of (s, t, F) and writes its waypoints into the packet header; each
// router forwards greedily using its port table. Net-point waypoints are
// always reachable by ports (every vertex on the realized shortest path
// stores a port toward them). For *owner* waypoints (s, t, or a fault-edge
// endpoint) that sit below their level's net, the header additionally
// carries the owner's per-level nearest-net-point chain (extracted from its
// own label); when a router lacks a direct port it descends through the
// lowest reachable chain anchor. The paper's §2.2 asserts port coverage for
// all of H's edges but only argues it for net-point endpoints; the chain
// descent closes that gap (see DESIGN.md) at O(log n) extra header entries.
//
// The simulator walks the actual graph, refuses to traverse forbidden
// vertices/edges (recording the event), and reports hops for stretch
// accounting.
#pragma once

#include <vector>

#include "core/oracle.hpp"
#include "graph/fault_view.hpp"
#include "graph/graph.hpp"
#include "graph/wgraph.hpp"
#include "routing/routing_scheme.hpp"

namespace fsdl {

struct RouteResult {
  bool delivered = false;
  Dist hops = 0;
  /// Weighted walk length (equals hops on unweighted graphs).
  Dist length = 0;
  /// Header size: waypoints plus owner chain anchors, ⌈log n⌉ bits each.
  std::size_t header_bits = 0;
  /// Forwarding wanted to cross a forbidden vertex/edge (route aborted).
  bool blocked_by_fault = false;
  /// No port and no usable chain anchor at some router (route aborted).
  bool missing_port = false;
  /// The full walk, s first (delivered ⇒ back() == t).
  std::vector<Vertex> path;
};

/// Compute the route at s from labels (via `oracle`), then simulate hop-by-
/// hop forwarding over g with the given fault set.
RouteResult route_packet(const Graph& g, const ForbiddenSetRouting& routing,
                         const ForbiddenSetOracle& oracle, Vertex s, Vertex t,
                         const FaultSet& faults);

/// Weighted extension: forwarding over a weighted graph (pairs with
/// build_weighted_labeling + the weighted ForbiddenSetRouting::build).
RouteResult route_packet(const WeightedGraph& g,
                         const ForbiddenSetRouting& routing,
                         const ForbiddenSetOracle& oracle, Vertex s, Vertex t,
                         const FaultSet& faults);

}  // namespace fsdl
