#include "routing/routing_scheme.hpp"

#include <algorithm>

#include "graph/bfs.hpp"
#include "graph/wsearch.hpp"
#include "nets/net_hierarchy.hpp"
#include "nets/weighted_nets.hpp"
#include "util/bitstream.hpp"

namespace fsdl {

ForbiddenSetRouting ForbiddenSetRouting::build(
    const Graph& g, const ForbiddenSetLabeling& scheme) {
  ForbiddenSetRouting routing;
  routing.scheme_ = &scheme;
  routing.vertex_bits_ = scheme.vertex_bits();
  Vertex max_degree = 1;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  routing.port_bits_ = bits_for(max_degree);
  routing.ports_ = PortTable(g.num_vertices());

  const SchemeParams& params = scheme.params();
  const unsigned top = scheme.top_level();
  const unsigned net_top = top - params.c - 1;
  const NetHierarchy nets = build_net_hierarchy(g, net_top);

  BfsRunner bfs(g);
  for (unsigned i = params.min_level(); i <= top; ++i) {
    const Dist radius = params.r(i);
    for (Vertex x : nets.level(params.net_level(i))) {
      bfs.run_with_parents(x, radius, [&](Vertex v, Dist, Vertex parent) {
        if (parent != kNoVertex) routing.ports_.set(v, x, parent);
      });
    }
  }
  return routing;
}

ForbiddenSetRouting ForbiddenSetRouting::build(
    const WeightedGraph& g, const ForbiddenSetLabeling& scheme) {
  ForbiddenSetRouting routing;
  routing.scheme_ = &scheme;
  routing.vertex_bits_ = scheme.vertex_bits();
  Vertex max_degree = 1;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    max_degree = std::max(max_degree, g.degree(v));
  }
  routing.port_bits_ = bits_for(max_degree);
  routing.ports_ = PortTable(g.num_vertices());

  const SchemeParams& params = scheme.params();
  const unsigned top = scheme.top_level();
  const NetHierarchy nets =
      build_weighted_net_hierarchy(g, top - params.c - 1);

  DijkstraRunner search(g);
  for (unsigned i = params.min_level(); i <= top; ++i) {
    const Dist radius = params.r(i);
    for (Vertex x : nets.level(params.net_level(i))) {
      search.run_with_parents(x, radius, [&](Vertex v, Dist, Vertex parent) {
        if (parent != kNoVertex) routing.ports_.set(v, x, parent);
      });
    }
  }
  return routing;
}

std::size_t ForbiddenSetRouting::table_bits(Vertex u) const {
  return scheme_->label_bits(u) +
         ports_.entries(u) * (vertex_bits_ + port_bits_);
}

std::size_t ForbiddenSetRouting::total_table_bits() const {
  std::size_t sum = 0;
  for (Vertex v = 0; v < scheme_->num_vertices(); ++v) sum += table_bits(v);
  return sum;
}

}  // namespace fsdl
