// Forbidden-set compact routing scheme (Theorem 2.7).
//
// On top of the distance labels, every vertex u stores, for each net point x
// that can appear in a label ball containing u, the out-going port (first
// hop) of a shortest u→x path. Given the labels of (s, t, F), the source
// computes the sketch path — a sequence of certified virtual edges — and
// puts its waypoints in the packet header; every intermediate vertex on the
// shortest path realizing a virtual edge (x, y) holds a port toward y, so
// greedy per-hop forwarding follows a shortest x→y path. Certified edges
// keep λ_i clearance from every fault, hence every realized hop is fault
// free and total stretch equals the labeling stretch.
#pragma once

#include <cstddef>

#include "core/labeling.hpp"
#include "graph/graph.hpp"
#include "graph/wgraph.hpp"
#include "routing/ports.hpp"

namespace fsdl {

class ForbiddenSetRouting {
 public:
  /// Build port tables by re-running the label construction's truncated BFS
  /// sweeps with parent tracking. Every vertex v within r_i of net point x
  /// (any level i) learns a shortest-path port toward x.
  static ForbiddenSetRouting build(const Graph& g,
                                   const ForbiddenSetLabeling& scheme);

  /// Weighted extension: ports from truncated Dijkstra trees over the
  /// weighted metric (pairs with build_weighted_labeling).
  static ForbiddenSetRouting build(const WeightedGraph& g,
                                   const ForbiddenSetLabeling& scheme);

  Vertex port(Vertex u, Vertex target) const { return ports_.port(u, target); }

  /// Routing-table size of u in bits: its distance label plus the port map
  /// (target id + local port index per entry).
  std::size_t table_bits(Vertex u) const;

  std::size_t total_table_bits() const;
  std::size_t port_entries(Vertex u) const { return ports_.entries(u); }

 private:
  const ForbiddenSetLabeling* scheme_ = nullptr;
  PortTable ports_{0};
  unsigned vertex_bits_ = 1;
  unsigned port_bits_ = 1;
};

}  // namespace fsdl
