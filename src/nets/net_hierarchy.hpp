// Hierarchy of nets N_0 ⊇ N_1 ⊇ … ⊇ N_top (paper §2.1, Fact 1, Lemma 2.2).
//
// Each W(2^j) is a greedy (2^j - 1)-dominating set whose members are
// pairwise at distance >= 2^j; N_i = ∪_{j >= i} W(2^j). The hierarchy
// satisfies:
//   (1) N_i is a (2^i - 1)-dominating set of G,
//   (2) N_{i} ⊆ N_{i-1},
//   (packing) |B(v, R) ∩ N_i| <= 2 · (4R / 2^i)^α      (Lemma 2.2).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace fsdl {

class NetHierarchy {
 public:
  /// Levels run 0..top_level inclusive.
  unsigned top_level() const noexcept { return top_level_; }

  /// Sorted vertex list of N_i.
  const std::vector<Vertex>& level(unsigned i) const { return levels_.at(i); }

  /// Largest i with v ∈ N_i (0 for every vertex since N_0 = V).
  unsigned max_level_of(Vertex v) const { return max_level_of_[v]; }

  bool in_level(Vertex v, unsigned i) const { return max_level_of_[v] >= i; }

  /// M_i(v): the net point of N_i nearest to v (paper's net-point map).
  Vertex nearest(unsigned i, Vertex v) const { return nearest_.at(i)[v]; }

  /// d_G(v, M_i(v)); the construction guarantees this is < 2^i.
  Dist nearest_dist(unsigned i, Vertex v) const { return nearest_dist_.at(i)[v]; }

 private:
  friend NetHierarchy build_net_hierarchy(const Graph& g, unsigned top_level);
  friend class WeightedNetBuilder;  // weighted extension (nets/weighted_nets)

  unsigned top_level_ = 0;
  std::vector<std::vector<Vertex>> levels_;
  std::vector<unsigned> max_level_of_;
  std::vector<std::vector<Vertex>> nearest_;
  std::vector<std::vector<Dist>> nearest_dist_;
};

/// Greedy r-dominating set W(r) of Fact 1: scan vertices in id order; select
/// any vertex not yet covered and cover everything at distance < r.
/// Members are pairwise >= r apart; for integral r >= 1 the set is
/// (r-1)-dominating.
std::vector<Vertex> greedy_dominating_set(const Graph& g, Dist r);

/// Build the full hierarchy with levels 0..top_level.
/// Requires a connected graph (nearest-net-point maps are total).
NetHierarchy build_net_hierarchy(const Graph& g, unsigned top_level);

/// Default top level: ⌈log₂ n⌉ as in the paper.
unsigned default_top_level(Vertex n) noexcept;

}  // namespace fsdl
