// Net hierarchy over the weighted shortest-path metric (library extension).
//
// Same structure as the unweighted hierarchy: W(2^j) greedy dominating sets
// and N_i = ∪_{j>=i} W(2^j). For weighted graphs W(r) is r-dominating (not
// (r-1)-dominating: distances are no longer integral multiples of 1 below
// r), with members pairwise >= r apart — Fact 1's packing bound still
// applies since it only uses the separation.
#pragma once

#include "graph/wgraph.hpp"
#include "nets/net_hierarchy.hpp"

namespace fsdl {

/// Greedy r-dominating set over the weighted metric.
std::vector<Vertex> greedy_dominating_set(const WeightedGraph& g, Dist r);

/// Hierarchy with levels 0..top_level over the weighted metric.
NetHierarchy build_weighted_net_hierarchy(const WeightedGraph& g,
                                          unsigned top_level);

}  // namespace fsdl
