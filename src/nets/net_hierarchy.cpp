#include "nets/net_hierarchy.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "graph/bfs.hpp"

namespace fsdl {

std::vector<Vertex> greedy_dominating_set(const Graph& g, Dist r) {
  if (r == 0) throw std::invalid_argument("dominating set radius must be >= 1");
  std::vector<Vertex> selected;
  std::vector<char> covered(g.num_vertices(), 0);
  BfsRunner bfs(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (covered[v]) continue;
    selected.push_back(v);
    // "Mark as covered all vertices u such that d_G(u, v) < r."
    bfs.run(v, r - 1, [&](Vertex u, Dist) { covered[u] = 1; });
  }
  return selected;
}

unsigned default_top_level(Vertex n) noexcept {
  if (n <= 1) return 0;
  // ⌈log₂ n⌉
  const unsigned floor_log = std::bit_width(static_cast<std::uint32_t>(n - 1));
  return floor_log;
}

NetHierarchy build_net_hierarchy(const Graph& g, unsigned top_level) {
  const Vertex n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("empty graph");

  NetHierarchy h;
  h.top_level_ = top_level;
  h.max_level_of_.assign(n, 0);

  // W(2^j) per level j, built independently per Fact 1; radii above the
  // graph diameter naturally produce singleton (or tiny) sets.
  std::vector<std::vector<Vertex>> w(top_level + 1);
  for (unsigned j = 0; j <= top_level; ++j) {
    const Dist r = j >= 31 ? kInfDist / 4 : (Dist{1} << j);
    w[j] = greedy_dominating_set(g, r);
    for (Vertex v : w[j]) {
      h.max_level_of_[v] = std::max(h.max_level_of_[v], j);
    }
  }

  // N_i = ∪_{j >= i} W(2^j); with max_level_of computed, N_i is just the
  // set of vertices whose max level is >= i.
  h.levels_.resize(top_level + 1);
  for (Vertex v = 0; v < n; ++v) {
    for (unsigned i = 0; i <= h.max_level_of_[v]; ++i) {
      h.levels_[i].push_back(v);
    }
  }
  for (auto& lv : h.levels_) {
    // Already in id order by construction, but keep the invariant explicit.
    std::sort(lv.begin(), lv.end());
  }

  // Nearest net point per level via multi-source BFS.
  h.nearest_.resize(top_level + 1);
  h.nearest_dist_.resize(top_level + 1);
  for (unsigned i = 0; i <= top_level; ++i) {
    if (h.levels_[i].empty()) {
      throw std::logic_error("net level empty — graph disconnected?");
    }
    multi_source_bfs(g, h.levels_[i], h.nearest_dist_[i], h.nearest_[i]);
  }
  return h;
}

}  // namespace fsdl
