#include "nets/weighted_nets.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/wsearch.hpp"

namespace fsdl {

class WeightedNetBuilder {
 public:
  static NetHierarchy build(const WeightedGraph& g, unsigned top_level) {
    const Vertex n = g.num_vertices();
    if (n == 0) throw std::invalid_argument("empty graph");

    NetHierarchy h;
    h.top_level_ = top_level;
    h.max_level_of_.assign(n, 0);
    for (unsigned j = 0; j <= top_level; ++j) {
      const Dist r = j >= 31 ? kInfDist / 4 : (Dist{1} << j);
      for (Vertex v : greedy_dominating_set(g, r)) {
        h.max_level_of_[v] = std::max(h.max_level_of_[v], j);
      }
    }
    h.levels_.resize(top_level + 1);
    for (Vertex v = 0; v < n; ++v) {
      for (unsigned i = 0; i <= h.max_level_of_[v]; ++i) {
        h.levels_[i].push_back(v);
      }
    }
    h.nearest_.resize(top_level + 1);
    h.nearest_dist_.resize(top_level + 1);
    for (unsigned i = 0; i <= top_level; ++i) {
      if (h.levels_[i].empty()) {
        throw std::logic_error("net level empty — graph disconnected?");
      }
      multi_source_dijkstra(g, h.levels_[i], h.nearest_dist_[i], h.nearest_[i]);
    }
    return h;
  }
};

std::vector<Vertex> greedy_dominating_set(const WeightedGraph& g, Dist r) {
  if (r == 0) throw std::invalid_argument("dominating set radius must be >= 1");
  std::vector<Vertex> selected;
  std::vector<char> covered(g.num_vertices(), 0);
  DijkstraRunner dijkstra(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (covered[v]) continue;
    selected.push_back(v);
    // Cover everything at weighted distance < r (truncate at r, skip == r).
    dijkstra.run(v, r, [&](Vertex u, Dist d) {
      if (d < r) covered[u] = 1;
    });
  }
  return selected;
}

NetHierarchy build_weighted_net_hierarchy(const WeightedGraph& g,
                                          unsigned top_level) {
  return WeightedNetBuilder::build(g, top_level);
}

}  // namespace fsdl
