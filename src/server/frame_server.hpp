// FrameServer — the transport half of the fsdl serving stack, factored out
// of Server so the shard router (shard/router.hpp) and the label server
// speak the identical wire protocol with identical fault-tolerance
// behavior instead of two divergent copies:
//
//   accept thread ──► ThreadPool workers ──► virtual handle(Request)
//        │                  │
//        │                  └─► Metrics (connections, sheds, evictions, ...)
//        └── each accepted connection becomes one pool job serving that
//            connection's frames sequentially.
//
// What lives here (and is therefore shared): the accept loop with
// transient-errno backoff, admission control (OVERLOADED shed when all
// workers are busy and the waiting line is full), per-connection
// SO_RCVTIMEO/SO_SNDTIMEO deadlines with TIMEOUT eviction, frame
// decode/CRC handling, and graceful drain (in-flight requests finish,
// late frames get DRAINING, HEALTH stays answered so probers can tell a
// goodbye from a crash).
//
// What subclasses own: everything behind handle() — labels, caches,
// reloads for Server; scatter-gather fan-out for shard::Router.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/thread_pool.hpp"

namespace fsdl::server {

/// Socket/worker knobs common to every frame service (the subset of
/// ServerOptions that is about the transport, not the labels).
struct TransportOptions {
  /// 0 = let the kernel pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  unsigned workers = 4;
  /// listen(2) backlog (<= 0 coerced to 64 at start()).
  int listen_backlog = 64;
  /// Socket receive deadline per recv() call, milliseconds; 0 disables.
  unsigned recv_timeout_ms = 0;
  /// Socket send deadline, milliseconds; 0 disables.
  unsigned send_timeout_ms = 0;
  /// Connections allowed to wait for a worker before new ones are shed
  /// with OVERLOADED.
  std::size_t max_queued_connections = ThreadPool::kUnboundedQueue;
  /// How long stop() waits for in-flight requests to finish before tearing
  /// connections down, milliseconds. 0 = hard stop.
  unsigned drain_deadline_ms = 0;
};

class FrameServer {
 public:
  explicit FrameServer(const TransportOptions& transport);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Bind, listen on 127.0.0.1, spawn accept thread + workers.
  /// Throws std::runtime_error on socket failure.
  void start();

  /// Begin draining: close the listener (no new connections), keep serving
  /// requests already in flight, answer frames that arrive after the flip
  /// with a DRAINING frame (HEALTH excepted). Idempotent.
  void begin_drain();

  /// Graceful stop: drain (waiting up to drain_deadline_ms for in-flight
  /// requests), then shut open connections, drain the pool, join.
  /// Idempotent; subclass destructors call it.
  void stop();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  const Metrics& metrics() const noexcept { return metrics_; }

  /// Answer one decoded request — the transport-independent core, public so
  /// tests can exercise dispatch without sockets.
  virtual Response handle(const Request& req) = 0;

 protected:
  /// Subclass warm-up run by start() before the listener binds (decode
  /// labels, probe upstream shards, ...). Throwing aborts the start.
  virtual void on_start() {}

  Metrics metrics_;
  TransportOptions transport_;

 private:
  void accept_loop();
  void serve_connection(int fd);
  void track(int fd);
  void untrack(int fd);

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_done_{false};
  /// Requests currently inside handle() on worker threads — what drain
  /// waits on.
  std::atomic<int> in_flight_{0};
  // Written by start()/stop(), read by the accept thread.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::mutex conn_mu_;
  std::unordered_set<int> conn_fds_;
};

}  // namespace fsdl::server
