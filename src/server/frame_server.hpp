// FrameServer — the transport half of the fsdl serving stack, factored out
// of Server so the shard router (shard/router.hpp) and the label server
// speak the identical wire protocol with identical fault-tolerance
// behavior instead of two divergent copies.
//
// Default data plane (DataPlane::kEpollReactor):
//
//   listener ─► Reactor event loop(s) ─► ThreadPool ─► virtual handle()
//                 │  (epoll, nonblocking      │
//                 │   sockets: accept,        └─► framed responses posted
//                 │   framing, decode,            back to the owning
//                 │   batching, writes,           reactor, fanned out in
//                 │   deadlines)                  per-connection order
//                 └─► Metrics (connections, sheds, evictions, batches, ...)
//
// Each reactor thread owns a disjoint set of connections outright: all
// per-connection state is touched only on the owning reactor thread, so
// 100k idle connections cost 100k small structs and zero threads, not
// 100k blocked stacks. Workers only ever run handle() on fully decoded
// requests; results travel back through a mailbox + eventfd wakeup.
//
// Cross-request fault-set batching rides on the reactor: decoded DIST and
// BATCH requests are keyed by the same canonical fault-set hash the
// PreparedFaults LRU uses. The first request for a key dispatches
// immediately (it is the prepare); same-key requests arriving while it is
// in flight coalesce into one follower group that dispatches as a single
// pool job when the leader finishes — by then the prepare is cached, so a
// K-request flash crowd pays for one prepare instead of K. Uncontended
// traffic never waits: a lone request is always a leader. batch_window_us
// is the parking horizon for a group left with no job in flight (the shed
// path can drop a leader after followers parked); 0 disables coalescing.
//
// What lives here (and is therefore shared): the accept path with
// transient-errno backoff, admission control (per-request OVERLOADED shed
// when the pending-request line is full — the connection stays open and
// usable), deadline eviction through the reactor's timing wheel, frame
// decode/CRC handling, slow-reader write backpressure, and graceful drain
// (in-flight requests finish, late frames get DRAINING, HEALTH stays
// answered so probers can tell a goodbye from a crash).
//
// The pre-reactor blocking transport (one pool job per connection,
// SO_RCVTIMEO deadlines, connection-level sheds) is retained behind
// DataPlane::kThreadPerConnection for A/B benchmarking (bench_reactor)
// and as a fallback; it caps useful concurrency at the worker count.
//
// What subclasses own: everything behind handle() — labels, caches,
// reloads for Server; scatter-gather fan-out for shard::Router.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "server/thread_pool.hpp"

namespace fsdl::server {

class Reactor;

/// Which transport implementation serves the sockets.
enum class DataPlane : std::uint8_t {
  /// Nonblocking epoll event loop(s) + decode-only worker pool (default).
  kEpollReactor = 0,
  /// Historical blocking plane: one pool job per connection.
  kThreadPerConnection = 1,
};

/// Socket/worker knobs common to every frame service (the subset of
/// ServerOptions that is about the transport, not the labels).
struct TransportOptions {
  /// 0 = let the kernel pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  unsigned workers = 4;
  /// listen(2) backlog (<= 0 coerced to 64 at start()).
  int listen_backlog = 64;
  /// Receive deadline, milliseconds; 0 disables. Reactor plane: enforced by
  /// the event loop's timing wheel — a connection idle (or stalled
  /// mid-frame) past the deadline with no request in flight is evicted
  /// with a TIMEOUT frame. Thread-per-connection plane: SO_RCVTIMEO.
  unsigned recv_timeout_ms = 0;
  /// Send deadline, milliseconds; 0 disables. Reactor plane: a connection
  /// whose write buffer has made no progress for this long (peer stopped
  /// reading) is torn down. Thread-per-connection plane: SO_SNDTIMEO.
  unsigned send_timeout_ms = 0;
  /// Admission-control depth. Reactor plane: *requests* (not connections)
  /// allowed to wait for a worker beyond the `workers` already being
  /// served; an arrival past the bound is shed with a per-request
  /// OVERLOADED reply and the connection stays open. Thread-per-connection
  /// plane: connections allowed to wait for a worker before new ones are
  /// shed (and closed) — the historical semantics.
  std::size_t max_queued_connections = ThreadPool::kUnboundedQueue;
  /// How long stop() waits for in-flight requests to finish before tearing
  /// connections down, milliseconds. 0 = hard stop.
  unsigned drain_deadline_ms = 0;
  DataPlane data_plane = DataPlane::kEpollReactor;
  /// Event-loop threads (reactor plane only; 0 coerced to 1). Connections
  /// are assigned round-robin and never migrate. Note that fault-set
  /// batching coalesces within one reactor: >1 reactors trade perfect
  /// flash-crowd coalescing for read/write parallelism.
  unsigned reactor_threads = 1;
  /// Fault-set coalescing control (reactor plane only). Same-key requests
  /// arriving while a prepare is in flight park and ride its completion —
  /// one prepare serves the crowd, and a parked request waits at most the
  /// leader's handle() time (itself bounded by request_deadline_ms). The
  /// window is the parking horizon for a group stranded with no job in
  /// flight (possible via the shed path); 0 disables coalescing entirely.
  unsigned batch_window_us = 100;
  /// Watchdog sampling interval, milliseconds; 0 disables the watchdog
  /// thread entirely. Each sample checks that every reactor loop has
  /// iterated and that a saturated worker pool is still retiring jobs.
  unsigned watchdog_interval_ms = 250;
  /// A unit frozen for this long counts one stall (fsdl_reactor_stalls_total
  /// / fsdl_worker_stalls_total) and flips health to "degraded" until
  /// liveness returns. Keep comfortably above the 100ms epoll tick.
  unsigned watchdog_stall_ms = 2000;
  /// Opt-in hard-wedge escape hatch: a unit frozen for this long gets a
  /// state dump on stderr and SIGABRT (so the supervisor restarts a core
  /// instead of babysitting a zombie). 0 = never abort.
  unsigned watchdog_abort_ms = 0;
};

class FrameServer {
 public:
  explicit FrameServer(const TransportOptions& transport);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Bind, listen on 127.0.0.1, spawn the data plane (reactor threads or
  /// accept thread) + workers. Throws std::runtime_error on socket failure.
  void start();

  /// Begin draining: close the listener (no new connections), keep serving
  /// requests already in flight, answer frames that arrive after the flip
  /// with a DRAINING frame (HEALTH excepted). Idempotent.
  void begin_drain();

  /// Graceful stop: drain (waiting up to drain_deadline_ms for in-flight
  /// requests), then tear down connections, drain the pool, join.
  /// Idempotent; subclass destructors call it.
  void stop();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// True while the watchdog observes a stalled reactor loop or a wedged
  /// worker pool; health_text() implementations report "degraded".
  bool watchdog_degraded() const noexcept {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  /// Which data plane serves the sockets ("reactor" | "thread"), for the
  /// HEALTH reply's plane= field.
  const char* plane_name() const noexcept {
    return transport_.data_plane == DataPlane::kEpollReactor ? "reactor"
                                                             : "thread";
  }
  /// Whole seconds since start() finished (0 before).
  std::uint64_t uptime_s() const noexcept;
  /// Currently open client connections (the fsdl_open_connections gauge).
  std::int64_t open_connections() const noexcept {
    return metrics_.open_connections();
  }

  const Metrics& metrics() const noexcept { return metrics_; }

  /// Answer one decoded request — the transport-independent core, public so
  /// tests can exercise dispatch without sockets.
  virtual Response handle(const Request& req) = 0;

 protected:
  /// Subclass warm-up run by start() before the listener binds (decode
  /// labels, probe upstream shards, ...). Throwing aborts the start.
  virtual void on_start() {}

  Metrics metrics_;
  TransportOptions transport_;

 private:
  friend class Reactor;

  // --- thread-per-connection plane ---
  void accept_loop();
  void serve_connection(int fd);
  void track(int fd);
  void untrack(int fd);

  // --- reactor plane ---
  /// Admitted requests allowed to be pending at once (workers currently
  /// serving + the waiting line), or SIZE_MAX when unbounded.
  std::size_t pending_cap() const;

  // --- watchdog ---
  void watchdog_loop();

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_done_{false};
  /// Requests admitted but not yet answered — what both drain and the
  /// reactor plane's admission control count.
  std::atomic<int> in_flight_{0};
  // Written by start()/stop(), read by the data-plane threads.
  std::atomic<int> listen_fd_{-1};
  /// Round-robin cursor for placing accepted connections onto reactors.
  std::atomic<unsigned> next_reactor_{0};
  std::uint16_t port_ = 0;
  std::mutex conn_mu_;
  std::unordered_set<int> conn_fds_;

  std::thread watchdog_thread_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::atomic<bool> degraded_{false};
  /// Steady-clock ms when start() finished (uptime_s anchor); 0 before.
  std::atomic<std::uint64_t> started_ms_{0};
};

}  // namespace fsdl::server
