#include "server/prepared_cache.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace fsdl::server {

FaultKey canonical_key(const FaultSet& faults) {
  FaultKey key;
  key.vertices = faults.vertices();
  std::sort(key.vertices.begin(), key.vertices.end());
  key.edges.reserve(faults.edges().size());
  for (const auto& [a, b] : faults.edges()) {
    key.edges.push_back(FaultSet::edge_key(a, b));
  }
  std::sort(key.edges.begin(), key.edges.end());
  return key;
}

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t fault_hash(const FaultKey& key) {
  std::uint64_t h = splitmix64(0x6673646Cull /* "fsdl" */);
  for (Vertex v : key.vertices) h = splitmix64(h ^ v);
  h = splitmix64(h ^ 0xEDEDEDEDull);  // separator: {v:1} != {e keyed 1}
  for (std::uint64_t e : key.edges) h = splitmix64(h ^ e);
  return h;
}

PreparedCache::PreparedCache(const ForbiddenSetOracle& oracle,
                             std::size_t capacity, std::size_t shards)
    : oracle_(&oracle) {
  if (capacity == 0) capacity = 1;
  if (shards == 0) shards = 1;
  shards = std::min(shards, capacity);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const PreparedFaults> PreparedCache::get(
    const FaultSet& faults) {
  FaultKey key = canonical_key(faults);
  const std::uint64_t h = fault_hash(key);
  Shard& shard = *shards_[h % shards_.size()];

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto chain = shard.index.find(h);
    if (chain != shard.index.end()) {
      for (auto it : chain->second) {
        if (it->key == key) {
          ++shard.hits;
          FSDL_COUNT(kPreparedCacheHit, 1);
          shard.lru.splice(shard.lru.begin(), shard.lru, it);
          return it->prepared;
        }
      }
    }
    ++shard.misses;
    FSDL_COUNT(kPreparedCacheMiss, 1);
  }

  // Build outside the lock: an O(|F|²) certification must not serialize the
  // whole shard. Concurrent same-key builders are tolerated (see header).
  auto prepared =
      std::make_shared<const PreparedFaults>(oracle_->prepare(faults));

  std::lock_guard<std::mutex> lock(shard.mu);
  // Re-check: a racing builder may have inserted while we built.
  if (auto chain = shard.index.find(h); chain != shard.index.end()) {
    for (auto it : chain->second) {
      if (it->key == key) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it);
        return it->prepared;
      }
    }
  }
  shard.lru.push_front(Entry{std::move(key), prepared});
  shard.index[h].push_back(shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    const auto victim = std::prev(shard.lru.end());
    const std::uint64_t vh = fault_hash(victim->key);
    auto& vchain = shard.index[vh];
    vchain.erase(std::find(vchain.begin(), vchain.end(), victim));
    if (vchain.empty()) shard.index.erase(vh);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  return prepared;
}

PreparedCache::Stats PreparedCache::stats() const {
  Stats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  return out;
}

}  // namespace fsdl::server
