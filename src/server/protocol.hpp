// Wire protocol of the fsdl query service.
//
// Transport framing: every message (both directions) is a length-prefixed
// binary frame — u32 little-endian payload length, then the payload. Frames
// above kMaxFramePayload are a protocol violation (the stream can no longer
// be trusted to be in sync, so the server replies with an error and closes
// the connection); any *decodable* frame with a malformed payload gets an
// error reply on a connection that stays open.
//
// Request payloads (all integers u32 little-endian unless noted):
//   DIST  = opcode 1, s, t, |Fv|, |Fe|, Fv..., Fe as (a, b)...
//   BATCH = opcode 2, npairs, |Fv|, |Fe|, Fv..., Fe..., (s, t) × npairs
//           — one fault set shared by all pairs, matching the PreparedFaults
//           amortization (the road-closure workload: few live fault sets,
//           many point-to-point queries).
//   STATS = opcode 3 (no body) — server metrics snapshot, human-readable.
//   METRICS = opcode 4 (no body) — the same registry rendered as Prometheus
//             text exposition format (scrape through any sidecar that can
//             speak the protocol, or via `fsdl_serve --metrics-dump`).
//
// Response payloads:
//   status u8 (0 = ok, 1 = error)
//   ok DIST:  distance u32 (kInfDist = unreachable)
//   ok BATCH: npairs u32, distance u32 × npairs
//   ok STATS / METRICS: text_len u32, UTF-8 text
//   error:    text_len u32, UTF-8 message
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/fault_view.hpp"
#include "util/types.hpp"

namespace fsdl::server {

/// Hard cap on payload bytes per frame; large enough for a ~500k-pair batch,
/// small enough that a garbage length prefix cannot drive allocation.
inline constexpr std::uint32_t kMaxFramePayload = 8u * 1024 * 1024;

enum class Opcode : std::uint8_t {
  kDist = 1,
  kBatch = 2,
  kStats = 3,
  kMetrics = 4
};

struct Request {
  Opcode opcode = Opcode::kDist;
  /// DIST uses pairs[0]; BATCH uses all of pairs.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  FaultSet faults;
};

struct Response {
  bool ok = true;
  /// DIST: one entry; BATCH: one per pair.
  std::vector<Dist> distances;
  /// STATS / METRICS text, or the error message when !ok.
  std::string text;
};

// --- payload codecs (framing excluded; see Framer below) ---

std::vector<std::uint8_t> encode_request(const Request& req);
std::vector<std::uint8_t> encode_response(const Response& resp);

/// Strict decode: every byte must be consumed, all counts bounded by the
/// payload size. On failure returns false and sets `error` to a
/// human-readable reason; `out` is left unspecified.
bool decode_request(const std::uint8_t* data, std::size_t size, Request& out,
                    std::string& error);
bool decode_response(const std::uint8_t* data, std::size_t size, Response& out,
                     std::string& error);

/// Convenience: an error response with a message.
Response error_response(std::string message);

// --- incremental framer ---

/// Feed bytes as they arrive off a socket; pop complete payloads. Detects
/// oversized frames (a fatal, connection-level error: once the length
/// prefix is garbage there is no way back into sync).
class Framer {
 public:
  /// Append raw bytes from the wire.
  void feed(const std::uint8_t* data, std::size_t size);

  /// True if a complete frame is buffered; fills `payload` and consumes it.
  bool next(std::vector<std::uint8_t>& payload);

  /// Set once a frame announces a payload above kMaxFramePayload.
  bool fatal() const noexcept { return fatal_; }

  /// Bytes buffered but not yet returned (mid-frame when > 0 and !fatal()).
  std::size_t pending_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool fatal_ = false;
};

/// Prepend the u32 length prefix to a payload.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload);

}  // namespace fsdl::server
