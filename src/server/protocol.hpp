// Wire protocol of the fsdl query service.
//
// Transport framing: every message (both directions) is a checksummed,
// length-prefixed binary frame —
//
//   u32 LE payload length | u32 LE crc32(payload) | payload
//
// The CRC makes in-flight corruption *detectable*: a bit flip anywhere in
// the payload (or a length word that no longer matches the bytes it
// frames) fails the checksum instead of silently decoding into a different
// request or a wrong distance. Checksum failures and frames above
// kMaxFramePayload are connection-fatal — once length or checksum is
// untrustworthy the stream cannot be resynchronized, so the server replies
// with one error frame and closes. Any *decodable* frame with a malformed
// payload gets an error reply on a connection that stays open.
//
// Request payloads (all integers u32 little-endian unless noted):
//   DIST  = opcode 1, s, t, |Fv|, |Fe|, Fv..., Fe as (a, b)...
//   BATCH = opcode 2, npairs, |Fv|, |Fe|, Fv..., Fe..., (s, t) × npairs
//           — one fault set shared by all pairs, matching the PreparedFaults
//           amortization (the road-closure workload: few live fault sets,
//           many point-to-point queries).
//   STATS = opcode 3 (no body) — server metrics snapshot, human-readable.
//   METRICS = opcode 4 (no body) — the same registry rendered as Prometheus
//             text exposition format (scrape through any sidecar that can
//             speak the protocol, or via `fsdl_serve --metrics-dump`).
//   HEALTH = opcode 5 (no body) — liveness/readiness probe. The reply text
//            starts with one of `loading` / `ready` / `draining` followed by
//            `epoch=E n=N` (any reply at all means "alive"). HEALTH is the
//            one request a draining server still answers, so load balancers
//            and the replica client's circuit breaker can distinguish "going
//            away" from "dead". Never retried, never counted as a failure.
//   RELOAD = opcode 6 (no body) — admin: reload the label file the server
//            was started from (hot swap, see Server::reload). Refused with
//            kError unless the server was started with admin commands
//            enabled. The reply text reports the new epoch or the load
//            error (CRC-corrupt files are rejected and the old labels keep
//            serving).
//   GET_LABEL = opcode 7, vertex u32 — fetch the raw serialized label bits
//            of one vertex (plus the scheme description needed to decode
//            them; see shard/wire_label.hpp for the blob layout). This is
//            the fetch half of the fetch/decode split the router tier is
//            built on: shards hand out label bytes, the router decodes and
//            answers locally. kError if the vertex is out of range or owned
//            by a different shard (the reply names the owner).
//   FLEET_STATS = opcode 8 (no body) — fleet-wide Prometheus exposition.
//            On a shard server this is just its own METRICS rendering (a
//            fleet of one). On the router it scrapes every shard's METRICS,
//            merges the per-shard histograms (Histogram::merge) into
//            fleet-wide aggregates, and re-emits each shard's counters with
//            `shard`/`replica` labels plus the router's own per-shard
//            fetch-latency histograms — one pane for the whole fleet.
//
// Trace-context extension (optional, query opcodes only):
//   DIST / BATCH / GET_LABEL request payloads may carry one trailing
//   33-byte block after their normal body —
//
//     u32 magic "TRC1" (0x31435254) | u64 trace id hi | u64 trace id lo |
//     u64 parent span id | u8 flags (bit0 = sampled) | u32 deadline_us
//
//   128-bit trace id + parent span id let every hop (client → router →
//   shard) log spans that fsdl_trace --stitch can join into one
//   cross-process tree; deadline_us is the remaining request budget, which
//   each hop clamps to and decrements before forwarding. The block is
//   strictly optional and costs nothing when absent: an absent context
//   encodes byte-identically to the pre-extension wire format, and since
//   older decoders rejected any trailing bytes, no old frame can be
//   reinterpreted. A trailing remainder that is not exactly this block is a
//   decode error ("malformed trace-context extension").
//
// Response payloads:
//   status u8 (Status below)
//   ok DIST:  distance u32 (kInfDist = unreachable)
//   ok BATCH: npairs u32, distance u32 × npairs
//   ok STATS / METRICS: text_len u32, UTF-8 text
//   ok GET_LABEL: blob_len u32, wire-label blob (see shard/wire_label.hpp)
//   DEGRADED DIST/BATCH: epoch u64, npairs u32, distance u32 × npairs —
//     a *served* answer (the distances are real) computed from a cached
//     label snapshot because the owning shard could not be reached; the
//     epoch names the snapshot that answered, so a client that cares can
//     re-verify or re-ask once the fleet heals. Always count-prefixed,
//     even for a single distance: the epoch word removes the need for the
//     ok-body length tricks.
//   any other non-ok status: text_len u32, UTF-8 message
//
// Non-ok statuses tell a well-behaved client what to do: kError is a bad
// request (do not retry), kOverloaded and kTimeout are transient server
// states (safe to retry an idempotent query after backoff), kDraining means
// the server is shutting down (reconnect elsewhere / later). kDegraded is
// NOT retryable: it is an answer, just one served from a stale snapshot —
// retrying it against the same degraded fleet would only burn budget.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/fault_view.hpp"
#include "util/types.hpp"

namespace fsdl::server {

/// Hard cap on payload bytes per frame; large enough for a ~500k-pair batch,
/// small enough that a garbage length prefix cannot drive allocation.
inline constexpr std::uint32_t kMaxFramePayload = 8u * 1024 * 1024;

/// Frame header bytes on the wire: u32 payload length + u32 payload CRC.
inline constexpr std::size_t kFrameHeaderBytes = 8;

enum class Opcode : std::uint8_t {
  kDist = 1,
  kBatch = 2,
  kStats = 3,
  kMetrics = 4,
  kHealth = 5,
  kReload = 6,
  kGetLabel = 7,
  kFleetStats = 8
};

/// Optional trace context carried on DIST/BATCH/GET_LABEL requests (see the
/// wire-format comment above). Lives in the protocol layer, not fsdl::obs:
/// propagation must work — and encode byte-identically — in FSDL_TRACE=OFF
/// builds, where only the span *recording* is compiled out.
struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< 128-bit trace id, high half.
  std::uint64_t trace_lo = 0;  ///< 128-bit trace id, low half.
  std::uint64_t parent_span = 0;
  std::uint8_t flags = 0;       ///< bit0: sampled (record spans at every hop).
  std::uint32_t deadline_us = 0;  ///< Remaining request budget; 0 = none.
  bool present = false;         ///< False ⇒ nothing on the wire.

  static constexpr std::uint8_t kSampledFlag = 0x01;
  bool sampled() const noexcept { return (flags & kSampledFlag) != 0; }
};

/// Encoded size of a present trace-context block (magic + ids + flags +
/// deadline).
inline constexpr std::size_t kTraceContextBytes = 33;

/// Response status byte. Everything except kOk carries a text body.
enum class Status : std::uint8_t {
  kOk = 0,
  /// Malformed or unanswerable request; retrying the same bytes is futile.
  kError = 1,
  /// Admission control shed this connection/request; retry after backoff.
  kOverloaded = 2,
  /// The request (or the connection feeding it) blew its deadline; an
  /// idempotent query may be retried.
  kTimeout = 3,
  /// Server is draining for shutdown and takes no new work.
  kDraining = 4,
  /// The query WAS answered, but from a cached (possibly stale-epoch)
  /// label snapshot because the owning shard was unreachable. The body
  /// carries the serving epoch plus the distances; treat it as a success
  /// with an asterisk, never as a retryable failure.
  kDegraded = 5,
};

/// Human-readable status name ("ok", "error", "overloaded", ...).
const char* status_name(Status s) noexcept;

struct Request {
  Opcode opcode = Opcode::kDist;
  /// DIST uses pairs[0]; BATCH uses all of pairs.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  FaultSet faults;
  /// Optional distributed-tracing context (DIST/BATCH/GET_LABEL only;
  /// ignored by the codec for other opcodes).
  TraceContext trace;
};

struct Response {
  Status status = Status::kOk;
  /// DIST: one entry; BATCH: one per pair.
  std::vector<Dist> distances;
  /// STATS / METRICS text, or the status message when !ok().
  std::string text;
  /// kDegraded only: the label-snapshot epoch that served the answer (the
  /// oldest epoch consulted when labels from several snapshots were mixed).
  /// 0 for every other status.
  std::uint64_t epoch = 0;

  bool ok() const noexcept { return status == Status::kOk; }
  /// True when the response carries real distances: kOk, or kDegraded
  /// (answered from a cached snapshot while a shard was down).
  bool answered() const noexcept {
    return status == Status::kOk || status == Status::kDegraded;
  }
};

// --- payload codecs (framing excluded; see Framer below) ---

std::vector<std::uint8_t> encode_request(const Request& req);
std::vector<std::uint8_t> encode_response(const Response& resp);

/// Strict decode: every byte must be consumed, all counts bounded by the
/// payload size. On failure returns false and sets `error` to a
/// human-readable reason; `out` is left unspecified.
bool decode_request(const std::uint8_t* data, std::size_t size, Request& out,
                    std::string& error);
bool decode_response(const std::uint8_t* data, std::size_t size, Response& out,
                     std::string& error);

/// Convenience: a non-ok response with a message (defaults to kError).
Response error_response(std::string message, Status status = Status::kError);

// --- incremental framer ---

/// Feed bytes as they arrive off a socket; pop complete, checksum-verified
/// payloads. Oversized length prefixes and checksum mismatches are fatal,
/// connection-level errors: once length or CRC is garbage there is no way
/// back into sync.
class Framer {
 public:
  enum class Fatal : std::uint8_t {
    kNone = 0,
    /// Length prefix exceeded kMaxFramePayload.
    kOversized,
    /// Payload bytes did not match the header CRC (corruption in flight).
    kChecksum,
  };

  /// Append raw bytes from the wire.
  void feed(const std::uint8_t* data, std::size_t size);

  /// True if a complete, CRC-valid frame is buffered; fills `payload` and
  /// consumes it.
  bool next(std::vector<std::uint8_t>& payload);

  /// Set once the stream is unsyncable (oversized frame / CRC mismatch).
  bool fatal() const noexcept { return fatal_ != Fatal::kNone; }
  Fatal fatal_reason() const noexcept { return fatal_; }

  /// Bytes buffered but not yet returned (mid-frame when > 0 and !fatal()).
  std::size_t pending_bytes() const noexcept { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  Fatal fatal_ = Fatal::kNone;
};

/// Prepend the length + CRC frame header to a payload.
std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload);

}  // namespace fsdl::server
