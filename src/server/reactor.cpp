#include "server/reactor.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "server/frame_server.hpp"
#include "server/prepared_cache.hpp"
#include "util/failpoint.hpp"

namespace fsdl::server {

namespace {

/// Write buffer level at which a connection stops being read (slow-reader
/// backpressure) and the level at which reading resumes. Responses are at
/// most one frame (<= kMaxFramePayload) each, so the high mark admits any
/// single response while bounding what one unread peer can pin.
constexpr std::size_t kWriteHighWater = 4u * 1024 * 1024;
constexpr std::size_t kWriteLowWater = kWriteHighWater / 2;

/// Consecutive recv() chunks taken from one connection before yielding to
/// the rest of the ready set (level-triggered epoll re-reports leftovers).
constexpr int kMaxReadBursts = 4;

constexpr std::uint8_t kTimerRead = 0;
constexpr std::uint8_t kTimerWrite = 1;

constexpr std::uint64_t kNoBatchKey = 0;

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// accept() errnos that mean "try again shortly", not "the listener is
/// dead": fd exhaustion, a connection reset before we got to it, transient
/// resource pressure. (Same set as the thread-per-connection plane.)
bool transient_accept_errno(int err) {
  switch (err) {
    case EMFILE:
    case ENFILE:
    case ECONNABORTED:
    case ENOBUFS:
    case ENOMEM:
    case EPROTO:
    case EINTR:
      return true;
    default:
      return false;
  }
}

std::uint64_t next_conn_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

/// All mutable state is owned by — and only touched on — the reactor
/// thread; workers treat a ConnPtr as an opaque routing token.
struct Reactor::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  Framer framer;
  /// Next sequence number handed to an admitted (or inline-answered)
  /// request, and the next one whose response may hit the wire.
  std::uint64_t next_seq = 0;
  std::uint64_t next_send = 0;
  /// Finished responses waiting for their turn (out-of-order completions).
  std::map<std::uint64_t, std::vector<std::uint8_t>> done;
  std::vector<std::uint8_t> wbuf;
  std::size_t woff = 0;
  /// Requests admitted from this connection, not yet answered.
  int inflight = 0;
  bool want_write = false;      // EPOLLOUT armed
  bool reading_paused = false;  // EPOLLIN dropped (backpressure)
  bool peer_eof = false;
  bool close_after_flush = false;
  bool closed = false;
  std::uint64_t last_read_us = 0;
  std::uint64_t write_blocked_us = 0;  // 0 = write buffer is making progress
  bool read_timer_armed = false;
  bool write_timer_armed = false;
};

Reactor::Reactor(FrameServer& owner, unsigned index)
    : owner_(owner), index_(index) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw std::runtime_error("epoll_create1() failed");
  eventfd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (eventfd_ < 0) {
    ::close(epfd_);
    throw std::runtime_error("eventfd() failed");
  }
}

Reactor::~Reactor() {
  stop_and_join();
  if (eventfd_ >= 0) ::close(eventfd_);
  if (epfd_ >= 0) ::close(epfd_);
}

void Reactor::start(int listen_fd) {
  listen_fd_ = listen_fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = eventfd_;
  ::epoll_ctl(epfd_, EPOLL_CTL_ADD, eventfd_, &ev);
  if (listen_fd_ >= 0) {
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  thread_ = std::thread([this] { loop(); });
}

void Reactor::stop_and_join() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  wake();
  thread_.join();
}

void Reactor::adopt_fd(int fd) {
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    mail_fds_.push_back(fd);
  }
  wake();
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(eventfd_, &one, sizeof one);
}

void Reactor::post_completion(Completion&& comp) {
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    mail_completions_.push_back(std::move(comp));
  }
  wake();
}

void Reactor::post_key_done(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    mail_key_done_.push_back(key);
  }
  wake();
}

int Reactor::epoll_timeout_ms() const {
  // Wake for the earliest of: the wheel's next window, a stranded group's
  // rescue deadline; cap at 100ms so flag flips are never missed for long
  // (stop and drain also write the eventfd, this is belt-and-braces).
  // Groups with a job in flight are excluded: nothing can be done for
  // them until KeyDone, and KeyDone wakes the eventfd — counting their
  // deadline here would spin the loop against the very worker it awaits.
  std::uint64_t due = wheel_.empty() ? 0 : wheel_.next_tick_us();
  if (follower_count_ > 0) {
    for (const auto& [key, b] : batches_) {
      if (!b.followers.empty() && b.jobs_in_flight == 0 &&
          b.flush_at_us != 0 && (due == 0 || b.flush_at_us < due)) {
        due = b.flush_at_us;
      }
    }
  }
  if (due == 0) return 100;
  const std::uint64_t now = now_us();
  if (due <= now) return 0;
  const std::uint64_t delta_ms = (due - now + 999) / 1000;
  return delta_ms > 100 ? 100 : static_cast<int>(delta_ms);
}

void Reactor::loop() {
  wheel_.anchor(now_us());
  epoll_event events[128];
  while (!stop_.load(std::memory_order_acquire)) {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    const int n =
        ::epoll_wait(epfd_, events, 128, epoll_timeout_ms());
    if (n < 0 && errno != EINTR) break;
    const std::uint64_t t0 = now_us();
    bool worked = n > 0;

    for (int k = 0; k < n; ++k) {
      const int fd = events[k].data.fd;
      if (fd == eventfd_) {
        std::uint64_t drained;
        while (::read(eventfd_, &drained, sizeof drained) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        handle_accept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      ConnPtr c = it->second;  // handlers may erase the map entry
      if ((events[k].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[k].events & EPOLLIN) == 0) {
        close_conn(c);
        continue;
      }
      if ((events[k].events & EPOLLOUT) != 0) on_writable(c);
      if (!c->closed && (events[k].events & (EPOLLIN | EPOLLHUP)) != 0) {
        on_readable(c);
      }
    }

    // Drain strictly AFTER the eventfd counter was cleared above: a
    // worker posts mailbox-then-eventfd, so draining first would let a
    // post slip between the drain and the clear and sleep until the
    // 100ms cap (a lost wakeup). This order makes any post that the
    // drain misses leave the eventfd readable for the next epoll_wait.
    drain_mailbox();

    const std::uint64_t now = now_us();
    if (!wheel_.empty()) {
      const std::size_t before = wheel_.size();
      wheel_.advance(now, [this](const TimerWheel::Entry& e) { on_timer(e); });
      worked = worked || wheel_.size() != before;
    }
    if (follower_count_ > 0) {
      flush_due_batches(now);
      worked = true;
    }
    // Un-pause accepting after a transient-errno backoff window.
    if (listen_fd_ >= 0 && accept_paused_until_us_ != 0 &&
        now >= accept_paused_until_us_) {
      accept_paused_until_us_ = 0;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = listen_fd_;
      ::epoll_ctl(epfd_, EPOLL_CTL_MOD, listen_fd_, &ev);
      handle_accept();
    }
    if (owner_.listen_fd_.load(std::memory_order_acquire) < 0) {
      listen_fd_ = -1;  // drain/stop closed the listener
    }

    if (worked) {
      owner_.metrics_.record_reactor_loop(
          static_cast<double>(now_us() - t0));
    }
  }
  // Teardown: the loop owns every conn fd; close them all. Completions
  // still in flight from workers land in the mailbox and are dropped.
  for (auto& [fd, c] : conns_) {
    c->closed = true;
    ::close(fd);
    owner_.metrics_.record_connection_closed();
  }
  conns_.clear();
}

void Reactor::drain_mailbox() {
  std::vector<int> fds;
  std::vector<Completion> completions;
  std::vector<std::uint64_t> key_done;
  {
    std::lock_guard<std::mutex> lock(mail_mu_);
    fds.swap(mail_fds_);
    completions.swap(mail_completions_);
    key_done.swap(mail_key_done_);
  }
  const bool stopping = stop_.load(std::memory_order_acquire);
  for (int fd : fds) {
    if (stopping) {
      ::close(fd);
      continue;
    }
    register_conn(fd);
  }
  for (auto& comp : completions) {
    if (stopping || comp.conn->closed) continue;
    comp.conn->inflight -= 1;
    enqueue_response(comp.conn, comp.seq, std::move(comp.wire));
  }
  for (std::uint64_t key : key_done) {
    auto it = batches_.find(key);
    if (it == batches_.end()) continue;
    Batch& b = it->second;
    b.jobs_in_flight -= 1;
    if (!b.followers.empty() && !stopping) {
      // The leader's prepare is now cached: flush the whole group as one
      // sequential job — every member is a PreparedCache hit.
      std::vector<Pending> group;
      group.swap(b.followers);
      follower_count_ -= group.size();
      b.flush_at_us = 0;
      b.jobs_in_flight += 1;
      dispatch(std::move(group), true, key);
    } else if (b.jobs_in_flight == 0) {
      follower_count_ -= b.followers.size();
      batches_.erase(it);
    }
  }
}

void Reactor::handle_accept() {
  if (listen_fd_ < 0 || accept_paused_until_us_ != 0) return;
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (owner_.listen_fd_.load(std::memory_order_acquire) < 0) {
        listen_fd_ = -1;  // drain closed the listener under us
        return;
      }
      if (transient_accept_errno(err)) {
        // fd exhaustion or resource pressure: pause accepting briefly —
        // established connections keep being served, and the kernel
        // backlog holds arrivals until the pressure clears. The listener
        // is muted in epoll so the pause does not busy-spin.
        owner_.metrics_.record_failure(FailureCounter::kAcceptRetries);
        accept_paused_until_us_ = now_us() + 10'000;
        epoll_event ev{};
        ev.events = 0;
        ev.data.fd = listen_fd_;
        ::epoll_ctl(epfd_, EPOLL_CTL_MOD, listen_fd_, &ev);
        return;
      }
      // EBADF/EINVAL after a racing close, or a genuinely dead listener.
      listen_fd_ = -1;
      return;
    }
    owner_.metrics_.record_connection();
    // Round-robin placement across reactors; connections never migrate.
    const unsigned n = static_cast<unsigned>(owner_.reactors_.size());
    const unsigned target =
        n <= 1 ? 0
               : owner_.next_reactor_.fetch_add(1, std::memory_order_relaxed) %
                     n;
    if (target == index_) {
      register_conn(fd);
    } else {
      owner_.reactors_[target]->adopt_fd(fd);
    }
  }
}

void Reactor::register_conn(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  auto c = std::make_shared<Conn>();
  c->fd = fd;
  c->id = next_conn_id();
  c->last_read_us = now_us();
  conns_.emplace(fd, c);
  owner_.metrics_.record_connection_opened();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    conns_.erase(fd);
    ::close(fd);
    owner_.metrics_.record_connection_closed();
    return;
  }
  if (owner_.transport_.recv_timeout_ms > 0) {
    c->read_timer_armed = true;
    wheel_.schedule(
        {c->last_read_us + owner_.transport_.recv_timeout_ms * 1000ull, fd,
         c->id, kTimerRead});
  }
}

void Reactor::close_conn(const ConnPtr& c) {
  if (c->closed) return;
  c->closed = true;
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd, nullptr);
  ::close(c->fd);
  conns_.erase(c->fd);
  owner_.metrics_.record_connection_closed();
  // Stale wheel entries and in-flight completions are dropped lazily via
  // the (fd, id) check / the closed flag.
}

void Reactor::on_readable(const ConnPtr& c) {
  std::uint8_t chunk[64 * 1024];
  for (int burst = 0; burst < kMaxReadBursts; ++burst) {
    if (c->reading_paused || c->closed) return;
    const auto hit = FSDL_FAILPOINT("reactor.recv");
    const std::size_t want = hit.clamp(sizeof chunk);
    ssize_t n;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      n = -1;
    } else {
      n = ::recv(c->fd, chunk, want, 0);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(c);
      return;
    }
    if (n == 0) {
      // Peer finished sending. Answer what is already admitted, then part
      // ways once the write side drains.
      c->peer_eof = true;
      if (c->inflight == 0 && c->done.empty() && c->woff >= c->wbuf.size()) {
        close_conn(c);
      } else {
        c->close_after_flush = true;
        update_epoll(c);
      }
      return;
    }
    c->last_read_us = now_us();
    c->framer.feed(chunk, static_cast<std::size_t>(n));
    process_frames(c);
    if (c->closed) return;
    // "Socket drained" means the kernel returned less than we *asked for*
    // (`want`, which a short-read failpoint may have clamped below the
    // buffer size) — comparing against the buffer would misread every
    // injected short read as EOF-adjacent and stall the burst loop.
    if (static_cast<std::size_t>(n) < want) return;
  }
  // Burst cap hit — level-triggered epoll re-reports the leftovers, after
  // the rest of the ready set has had its turn.
}

void Reactor::process_frames(const ConnPtr& c) {
  std::vector<std::uint8_t> payload;
  while (!c->close_after_flush && c->framer.next(payload)) {
    Request req;
    std::string decode_error;
    const bool decoded =
        decode_request(payload.data(), payload.size(), req, decode_error);
    if (owner_.draining_.load(std::memory_order_acquire) &&
        !(decoded && req.opcode == Opcode::kHealth)) {
      // Frames decoded after the drain flip are new work: refuse them.
      // HEALTH is exempt — a prober must see "draining", not a refusal,
      // so it can tell a graceful goodbye from a crash.
      owner_.metrics_.record_failure(FailureCounter::kDrainRejects);
      respond_inline(c, error_response(
                            "server draining, not accepting new requests",
                            Status::kDraining));
      c->close_after_flush = true;
      break;
    }
    if (!decoded) {
      owner_.metrics_.record_error();
      respond_inline(c, error_response("bad request: " + decode_error));
      continue;
    }
    admit(c, std::move(req));
    if (c->closed) return;
  }
  if (c->framer.fatal() && !c->close_after_flush) {
    // The stream is unsyncable: either the length prefix exceeded
    // kMaxFramePayload or the payload failed its CRC. One diagnostic
    // frame, then close.
    owner_.metrics_.record_error();
    if (c->framer.fatal_reason() == Framer::Fatal::kChecksum) {
      owner_.metrics_.record_failure(FailureCounter::kFrameCrcErrors);
      respond_inline(c, error_response("frame checksum mismatch"));
    } else {
      respond_inline(c, error_response("frame exceeds size limit"));
    }
    c->close_after_flush = true;
  }
  try_flush(c);
}

void Reactor::admit(const ConnPtr& c, Request&& req) {
  // Admission control, per request: DIST/BATCH/GET_LABEL arrivals past the
  // pending cap are shed with OVERLOADED — one reply frame, connection
  // kept open (the client's retry-with-backoff already handles the rest).
  // Probe/admin opcodes are exempt: an overloaded server must stay
  // observable, and they hold no prepare resources.
  const bool sheddable = req.opcode == Opcode::kDist ||
                         req.opcode == Opcode::kBatch ||
                         req.opcode == Opcode::kGetLabel;
  const std::size_t cap = owner_.pending_cap();
  if (sheddable &&
      static_cast<std::size_t>(
          owner_.in_flight_.load(std::memory_order_acquire)) >= cap) {
    owner_.metrics_.record_failure(FailureCounter::kSheds);
    respond_inline(c, error_response("server overloaded, retry later",
                                     Status::kOverloaded));
    return;
  }

  Pending p;
  p.conn = c;
  p.seq = c->next_seq++;
  p.req = std::move(req);
  c->inflight += 1;
  owner_.in_flight_.fetch_add(1, std::memory_order_acq_rel);

  const bool batchable =
      owner_.transport_.batch_window_us > 0 &&
      (p.req.opcode == Opcode::kDist || p.req.opcode == Opcode::kBatch) &&
      !p.req.faults.empty();
  if (!batchable) {
    std::vector<Pending> group;
    group.push_back(std::move(p));
    dispatch(std::move(group), false, kNoBatchKey);
    return;
  }

  const std::uint64_t key = fault_hash(canonical_key(p.req.faults));
  Batch& b = batches_[key];
  if (b.jobs_in_flight == 0) {
    // Leader: dispatch immediately — it performs (or cache-hits) the
    // prepare. No waiting at low concurrency.
    b.jobs_in_flight = 1;
    std::vector<Pending> group;
    group.push_back(std::move(p));
    dispatch(std::move(group), true, key);
  } else {
    // Follower: the prepare for this key is already in flight; ride it.
    b.followers.push_back(std::move(p));
    follower_count_ += 1;
    if (b.flush_at_us == 0) {
      b.flush_at_us = now_us() + owner_.transport_.batch_window_us;
    }
  }
}

void Reactor::flush_due_batches(std::uint64_t now) {
  // Two passes: dispatch() may erase map entries on a refused submit, so
  // collect the due keys before touching the map structurally.
  std::vector<std::uint64_t> due;
  for (auto& [key, b] : batches_) {
    if (!b.followers.empty() && b.jobs_in_flight == 0 &&
        b.flush_at_us != 0 && b.flush_at_us <= now) {
      due.push_back(key);
    }
  }
  for (std::uint64_t key : due) {
    auto it = batches_.find(key);
    if (it == batches_.end()) continue;
    Batch& b = it->second;
    // Rescue path only: followers normally flush at the in-flight job's
    // KeyDone, which is what makes a flash crowd cost one prepare. While
    // a job is in flight, dispatching the group early would race it and
    // pay the prepare twice — so an expired window defers to KeyDone.
    // The sweep fires only for a *stranded* group (no job in flight),
    // which can happen when the shed path in dispatch() dropped the
    // leader's job after followers had already parked.
    if (b.jobs_in_flight > 0) continue;
    std::vector<Pending> group;
    group.swap(b.followers);
    follower_count_ -= group.size();
    b.flush_at_us = 0;
    b.jobs_in_flight += 1;
    dispatch(std::move(group), true, key);
  }
}

void Reactor::dispatch(std::vector<Pending>&& group, bool keyed,
                       std::uint64_t key) {
  if (keyed) {
    owner_.metrics_.record_batch(static_cast<double>(group.size()));
  }
  auto shared = std::make_shared<std::vector<Pending>>(std::move(group));
  const bool queued = owner_.pool_->submit(
      [this, shared, keyed, key] { run_group(*shared, keyed, key); });
  if (queued) return;
  // Pool refused (shutdown underway, or a bounded queue as backstop):
  // shed each request individually; the connection survives.
  for (auto& p : *shared) {
    owner_.metrics_.record_failure(FailureCounter::kSheds);
    p.conn->inflight -= 1;
    owner_.in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (p.conn->closed) continue;
    enqueue_response(p.conn, p.seq,
                     frame(encode_response(error_response(
                         "server overloaded, retry later",
                         Status::kOverloaded))));
    try_flush(p.conn);
  }
  if (keyed) {
    auto it = batches_.find(key);
    if (it != batches_.end()) {
      it->second.jobs_in_flight -= 1;
      if (it->second.jobs_in_flight == 0 && it->second.followers.empty()) {
        batches_.erase(it);
      }
    }
  }
}

void Reactor::run_group(std::vector<Pending>& group, bool keyed,
                        std::uint64_t key) {
  // Worker thread. Requests in a keyed group share a fault set: the first
  // handle() pays (or cache-hits) the prepare, the rest hit the
  // PreparedCache by construction. Conn is only carried, never read.
  for (auto& p : group) {
    Response resp = owner_.handle(p.req);
    if (!resp.answered()) owner_.metrics_.record_error();
    Completion comp;
    comp.conn = p.conn;
    comp.seq = p.seq;
    comp.wire = frame(encode_response(resp));
    owner_.in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    post_completion(std::move(comp));
  }
  if (keyed) post_key_done(key);
}

void Reactor::respond_inline(const ConnPtr& c, const Response& resp) {
  enqueue_response(c, c->next_seq++, frame(encode_response(resp)));
}

void Reactor::enqueue_response(const ConnPtr& c, std::uint64_t seq,
                               std::vector<std::uint8_t>&& wire) {
  if (c->closed) return;
  c->done.emplace(seq, std::move(wire));
  try_flush(c);
}

void Reactor::try_flush(const ConnPtr& c) {
  if (c->closed) return;
  // Promote completions that have reached their turn into the write
  // buffer — this is the fan-out point that restores per-connection order.
  for (auto it = c->done.begin();
       it != c->done.end() && it->first == c->next_send;) {
    c->wbuf.insert(c->wbuf.end(), it->second.begin(), it->second.end());
    it = c->done.erase(it);
    c->next_send += 1;
  }
  while (c->woff < c->wbuf.size()) {
    const auto hit = FSDL_FAILPOINT("reactor.send");
    ssize_t n;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      n = -1;
    } else {
      n = ::send(c->fd, c->wbuf.data() + c->woff,
                 hit.clamp(c->wbuf.size() - c->woff), MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(c);
      return;
    }
    c->woff += static_cast<std::size_t>(n);
  }
  if (c->woff >= c->wbuf.size()) {
    c->wbuf.clear();
    c->woff = 0;
    c->write_blocked_us = 0;
    if (c->close_after_flush && c->inflight == 0 && c->done.empty()) {
      close_conn(c);
      return;
    }
  } else {
    if (c->woff > (64u << 10)) {
      // Reclaim the consumed prefix so a long-lived slow reader does not
      // hold peak-sized buffers.
      c->wbuf.erase(c->wbuf.begin(),
                    c->wbuf.begin() + static_cast<std::ptrdiff_t>(c->woff));
      c->woff = 0;
    }
    if (c->write_blocked_us == 0) {
      c->write_blocked_us = now_us();
      if (owner_.transport_.send_timeout_ms > 0 && !c->write_timer_armed) {
        c->write_timer_armed = true;
        wheel_.schedule(
            {c->write_blocked_us +
                 owner_.transport_.send_timeout_ms * 1000ull,
             c->fd, c->id, kTimerWrite});
      }
    }
  }
  update_epoll(c);
}

void Reactor::update_epoll(const ConnPtr& c) {
  if (c->closed) return;
  const bool want_write = c->woff < c->wbuf.size();
  const std::size_t backlog = c->wbuf.size() - c->woff;
  bool pause_read = c->reading_paused;
  if (!pause_read && backlog >= kWriteHighWater) pause_read = true;
  if (pause_read && backlog <= kWriteLowWater) pause_read = false;
  if (c->peer_eof || c->close_after_flush) pause_read = true;
  if (want_write == c->want_write && pause_read == c->reading_paused) return;
  c->want_write = want_write;
  c->reading_paused = pause_read;
  epoll_event ev{};
  ev.events = (pause_read ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = c->fd;
  ::epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void Reactor::on_writable(const ConnPtr& c) { try_flush(c); }

void Reactor::on_timer(const TimerWheel::Entry& e) {
  auto it = conns_.find(e.fd);
  if (it == conns_.end() || it->second->id != e.conn_id) return;  // gone
  const ConnPtr& c = it->second;
  const std::uint64_t now = now_us();
  if (e.kind == kTimerRead) {
    const std::uint64_t due =
        c->last_read_us + owner_.transport_.recv_timeout_ms * 1000ull;
    // A connection waiting on its own responses is not idle — only evict
    // when nothing is in flight and nothing is queued toward the peer.
    const bool evictable =
        c->inflight == 0 && c->done.empty() && c->woff >= c->wbuf.size();
    if (due > now || !evictable) {
      wheel_.schedule({due > now ? due
                               : now + owner_.transport_.recv_timeout_ms *
                                           1000ull,
                       e.fd, e.conn_id, kTimerRead});
      return;
    }
    // The receive deadline fired. Whether the client is mid-frame
    // (slowloris) or simply idle, tell it why and evict.
    owner_.metrics_.record_failure(FailureCounter::kEvictions);
    c->read_timer_armed = false;
    respond_inline(c, error_response(c->framer.pending_bytes() > 0
                                         ? "receive deadline exceeded "
                                           "mid-frame"
                                         : "idle deadline exceeded",
                                     Status::kTimeout));
    c->close_after_flush = true;
    try_flush(c);
    return;
  }
  // Write deadline: only meaningful while the buffer is actually stuck.
  if (c->write_blocked_us == 0) {
    c->write_timer_armed = false;
    return;
  }
  const std::uint64_t due =
      c->write_blocked_us + owner_.transport_.send_timeout_ms * 1000ull;
  if (due > now) {
    wheel_.schedule({due, e.fd, e.conn_id, kTimerWrite});
    return;
  }
  // The peer stopped reading; nothing can be said to it — tear down.
  owner_.metrics_.record_failure(FailureCounter::kEvictions);
  close_conn(c);
}

}  // namespace fsdl::server
