#include "server/fleet.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>

#include "server/metrics.hpp"

namespace fsdl::server {

std::string prometheus_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool parse_prometheus(const std::string& text, std::vector<PromSample>& out,
                      std::string& error) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;

    PromSample s;
    std::size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0 || i == line.size()) {
      error = "malformed sample line: " + line;
      return false;
    }
    s.name = line.substr(0, i);
    if (line[i] == '{') {
      // Scan to the closing brace, honoring quoted label values (a value
      // may contain '}' or an escaped quote).
      const std::size_t open = i + 1;
      bool in_quotes = false;
      std::size_t j = open;
      for (; j < line.size(); ++j) {
        const char c = line[j];
        if (in_quotes) {
          if (c == '\\') {
            ++j;  // skip the escaped character
          } else if (c == '"') {
            in_quotes = false;
          }
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          break;
        }
      }
      if (j >= line.size()) {
        error = "unterminated label braces: " + line;
        return false;
      }
      s.labels = line.substr(open, j - open);
      i = j + 1;
    }
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size()) {
      error = "sample line missing value: " + line;
      return false;
    }
    char* end = nullptr;
    const std::string value_text = line.substr(i);
    s.value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str()) {
      error = "unparsable sample value: " + line;
      return false;
    }
    out.push_back(std::move(s));
  }
  return true;
}

bool parse_labels(const std::string& labels,
                  std::vector<std::pair<std::string, std::string>>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < labels.size()) {
    std::size_t eq = labels.find('=', i);
    if (eq == std::string::npos) return false;
    const std::string name = labels.substr(i, eq - i);
    if (name.empty() || eq + 1 >= labels.size() || labels[eq + 1] != '"') {
      return false;
    }
    std::string value;
    std::size_t j = eq + 2;
    for (; j < labels.size(); ++j) {
      const char c = labels[j];
      if (c == '"') break;
      if (c == '\\' && j + 1 < labels.size()) {
        const char esc = labels[++j];
        if (esc == 'n') {
          value += '\n';
        } else {
          value += esc;  // \\ and \" unescape to the literal character
        }
      } else {
        value += c;
      }
    }
    if (j >= labels.size()) return false;  // unterminated value
    out.emplace_back(name, std::move(value));
    i = j + 1;
    if (i < labels.size()) {
      if (labels[i] != ',') return false;
      ++i;
    }
  }
  return true;
}

Histogram histogram_from_buckets(
    const std::vector<std::pair<double, std::uint64_t>>& cumulative,
    double growth, double ref) {
  Histogram h(growth, ref);
  const double rep_factor = 1.0 / std::sqrt(growth);
  std::uint64_t seen = 0;
  for (const auto& [upper, cum] : cumulative) {
    const std::uint64_t n = cum >= seen ? cum - seen : 0;
    seen = cum > seen ? cum : seen;
    if (n == 0) continue;
    // upper == 0 is the underflow bucket (x <= 0); positive uppers get the
    // bucket's geometric midpoint, which bucket_index floors right back.
    h.add_n(upper <= 0.0 ? 0.0 : upper * rep_factor, n);
  }
  return h;
}

namespace {

/// `le` stripped out of a raw label string; returns the le value through
/// `le_out` (NaN when absent).
std::string strip_le(const std::string& labels, double& le_out) {
  le_out = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::pair<std::string, std::string>> parsed;
  if (!parse_labels(labels, parsed)) return labels;
  std::string rest;
  for (const auto& [name, value] : parsed) {
    if (name == "le") {
      le_out = value == "+Inf" ? std::numeric_limits<double>::infinity()
                               : std::strtod(value.c_str(), nullptr);
      continue;
    }
    if (!rest.empty()) rest += ',';
    rest += name + "=\"" + prometheus_escape(value) + "\"";
  }
  return rest;
}

}  // namespace

std::string render_fleet(const std::vector<ShardScrape>& scrapes) {
  std::string out;
  out.reserve(4096);

  out +=
      "# HELP fsdl_fleet_scrape_ok Whether the shard's METRICS scrape "
      "succeeded (0 = hole in every merged series below).\n"
      "# TYPE fsdl_fleet_scrape_ok gauge\n";
  char line[256];
  for (const ShardScrape& s : scrapes) {
    std::snprintf(line, sizeof line,
                  "fsdl_fleet_scrape_ok{shard=\"%u\",replica=\"%s\"} %d\n",
                  s.shard, prometheus_escape(s.replica).c_str(), s.ok ? 1 : 0);
    out += line;
  }

  // Fleet histograms keyed by (base name without _bucket, labels sans le):
  // one reconstructed Histogram per shard, merged via Histogram::merge.
  using SeriesKey = std::pair<std::string, std::string>;
  std::map<SeriesKey, Histogram> fleet_histograms;

  out +=
      "# Per-shard samples re-emitted with shard/replica labels "
      "(HELP/TYPE as on the shards).\n";
  for (const ShardScrape& s : scrapes) {
    if (!s.ok) continue;
    std::vector<PromSample> samples;
    std::string error;
    if (!parse_prometheus(s.text, samples, error)) continue;
    std::snprintf(line, sizeof line, "shard=\"%u\",replica=\"%s\"", s.shard,
                  prometheus_escape(s.replica).c_str());
    const std::string suffix(line);
    // This shard's cumulative le buckets per series, in emission order.
    std::map<SeriesKey, std::vector<std::pair<double, std::uint64_t>>>
        shard_buckets;
    for (const PromSample& sample : samples) {
      out += sample.name;
      out += '{';
      if (!sample.labels.empty()) {
        out += sample.labels;
        out += ',';
      }
      out += suffix;
      std::snprintf(line, sizeof line, "} %.6g\n", sample.value);
      out += line;

      constexpr std::size_t blen = 7;  // strlen("_bucket")
      if (sample.name.size() > blen &&
          sample.name.compare(sample.name.size() - blen, blen, "_bucket") ==
              0) {
        double le;
        const std::string rest = strip_le(sample.labels, le);
        if (!std::isnan(le) && !std::isinf(le)) {
          shard_buckets[{sample.name.substr(0, sample.name.size() - blen),
                         rest}]
              .emplace_back(le, static_cast<std::uint64_t>(sample.value + 0.5));
        }
      }
    }
    for (const auto& [key, cumulative] : shard_buckets) {
      fleet_histograms[key].merge(histogram_from_buckets(cumulative));
    }
  }

  out +=
      "# Fleet-wide histograms: per-shard distributions merged via "
      "Histogram::merge (counts exact, sum approximated at bucket "
      "midpoints).\n";
  for (const auto& [key, merged] : fleet_histograms) {
    const auto& [base, rest] = key;
    // fsdl_request_latency_microseconds -> fsdl_fleet_request_latency_...
    const std::string fleet_name =
        "fsdl_fleet_" + (base.rfind("fsdl_", 0) == 0 ? base.substr(5) : base);
    append_prometheus_histogram(out, fleet_name.c_str(), rest, merged);
  }
  return out;
}

}  // namespace fsdl::server
