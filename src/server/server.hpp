// fsdl query server: a multithreaded TCP service over one read-only
// ForbiddenSetOracle.
//
// Architecture (one box, the §1 "centralized oracle" deployed):
//
//   accept thread ──► ThreadPool workers ──► shared ForbiddenSetOracle
//        │                  │                        (immutable labels)
//        │                  ├─► PreparedCache (sharded LRU of PreparedFaults)
//        │                  └─► Metrics (counters + latency histograms)
//        └── each accepted connection becomes one pool job that serves the
//            connection's requests sequentially; concurrency = min(workers,
//            open connections), which matches the loadgen/client model of
//            one connection per client thread.
//
// Fault-tolerance posture (what survives an impolite world):
//   * the accept loop retries transient accept() failures (EMFILE, ENFILE,
//     ECONNABORTED, ...) with capped backoff instead of dying;
//   * admission control: when every worker is busy and the waiting line is
//     at max_queued_connections, new connections get one OVERLOADED frame
//     and are closed (shed) rather than queueing unboundedly;
//   * per-connection deadlines: SO_RCVTIMEO/SO_SNDTIMEO evict slow-loris
//     and idle clients with a TIMEOUT frame; request_deadline_ms bounds the
//     compute time of a single DIST/BATCH request;
//   * graceful drain: stop() (and fsdl_serve's SIGTERM) flips to draining —
//     in-flight requests finish (up to drain_deadline_ms), frames arriving
//     after the flip get a DRAINING reply, then connections are torn down
//     (HEALTH frames are still answered so probers see "draining", not a
//     dead socket);
//   * corruption containment: every frame carries a CRC32; a mismatch is
//     answered with one error frame and a close, never a wrong distance;
//   * hot label reload: reload() loads a new label file, validates its CRC,
//     and atomically publishes it through the LabelStore while in-flight
//     requests finish on the labels they started with (see
//     server/label_store.hpp). A corrupt file is rejected and the old
//     labels keep serving.
//
// Protocol handling per frame: decodable-but-invalid payloads get an error
// reply and the connection lives on; an oversized length prefix or a CRC
// mismatch poisons the stream, so the server sends one error frame and
// closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "core/oracle.hpp"
#include "server/label_store.hpp"
#include "server/metrics.hpp"
#include "server/prepared_cache.hpp"
#include "server/protocol.hpp"
#include "server/thread_pool.hpp"

namespace fsdl::server {

struct ServerOptions {
  /// 0 = let the kernel pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  unsigned workers = 4;
  /// Max distinct fault sets kept prepared.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
  /// Decode every label at startup instead of on first touch.
  bool warm_labels = false;
  /// listen(2) backlog. Connections beyond it queue in the kernel (or are
  /// refused), before user-space admission control even sees them.
  int listen_backlog = 64;
  /// Socket receive deadline per recv() call, milliseconds; 0 disables.
  /// When it fires the connection is evicted with a TIMEOUT frame — this is
  /// both the slowloris defense (partial frame, no progress) and the idle
  /// reaper (connection holding a worker without traffic).
  unsigned recv_timeout_ms = 0;
  /// Socket send deadline, milliseconds; 0 disables. A peer that stops
  /// reading cannot wedge a worker forever.
  unsigned send_timeout_ms = 0;
  /// Compute budget for one DIST/BATCH request, milliseconds; 0 disables.
  /// Exceeding it returns a TIMEOUT response instead of the distances.
  double request_deadline_ms = 0.0;
  /// Connections allowed to wait for a worker before new ones are shed
  /// with OVERLOADED. Default: unbounded (historical behavior).
  std::size_t max_queued_connections = ThreadPool::kUnboundedQueue;
  /// How long stop() waits for in-flight requests to finish before tearing
  /// connections down, milliseconds. 0 = hard stop (historical behavior).
  unsigned drain_deadline_ms = 0;
  /// Slow-query log threshold in microseconds; 0 disables. A DIST/BATCH
  /// request slower than this emits one multi-line report (request shape,
  /// fault-set size, per-stage micros, and — in FSDL_TRACE builds at span
  /// level — the span tree) through `slow_query_sink`.
  double slow_query_us = 0.0;
  /// Destination for slow-query reports; defaults to stderr. The sink is
  /// called from worker threads and must be callable concurrently (the
  /// default serializes writes internally).
  std::function<void(const std::string&)> slow_query_sink;
  /// Label file backing this server; the source for SIGHUP / RELOAD hot
  /// reloads. Empty = reloads refused (e.g. labels built in memory).
  std::string label_path;
  /// Allow the RELOAD admin opcode over the wire. Off by default: a network
  /// peer should not be able to force disk reads unless explicitly enabled
  /// (SIGHUP reloads work regardless — sending a signal already requires
  /// being on the box).
  bool admin = false;
};

class Server {
 public:
  /// Borrow an externally owned oracle (it must outlive the server). A
  /// later reload() replaces it with server-owned labels loaded from disk.
  Server(const ForbiddenSetOracle& oracle, const ServerOptions& options);
  /// Own the labels from the start (what fsdl_serve uses): the server
  /// builds its oracle + prepared cache around the given labeling.
  Server(ForbiddenSetLabeling scheme, const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen on 127.0.0.1, spawn accept thread + workers.
  /// Throws std::runtime_error on socket failure.
  void start();

  /// Begin draining: close the listener (no new connections), keep serving
  /// requests already in flight, answer frames that arrive after the flip
  /// with a DRAINING frame. Idempotent; stop() calls it first.
  void begin_drain();

  /// Graceful stop: drain (waiting up to drain_deadline_ms for in-flight
  /// requests), then shut open connections, drain the pool, join.
  /// Idempotent; also called by the destructor.
  void stop();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_acquire);
  }

  /// Hot label reload: load `path` (empty = options.label_path), validate
  /// its CRC, and atomically swap the labels + oracle + prepared cache as
  /// one snapshot. In-flight requests finish on the labels they started
  /// with; new requests see the new epoch. Returns the empty string on
  /// success or a human-readable error (in which case the old labels keep
  /// serving). Thread-safe; concurrent reloads serialize.
  std::string reload(const std::string& path = "");

  /// Monotonic label version: 1 for the labels the server started with,
  /// +1 per successful reload.
  std::uint64_t label_epoch() const { return store_.epoch(); }

  /// Health probe body: "loading|ready|draining epoch=E n=N". Any reply at
  /// all means "alive"; `loading` means a reload is currently in progress
  /// (queries still answered from the old labels).
  std::string health_text() const;

  /// Bound port (valid after start()).
  std::uint16_t port() const noexcept { return port_; }

  const Metrics& metrics() const noexcept { return metrics_; }
  /// Stats of the *current* snapshot's prepared cache (reset on reload —
  /// the old cache dies with the old labels).
  PreparedCache::Stats cache_stats() const {
    return store_.current()->cache().stats();
  }

  /// Prometheus text exposition of the current registry + cache state (the
  /// METRICS opcode body; also written by fsdl_serve --metrics-dump).
  std::string prometheus() const {
    return metrics_.render_prometheus(cache_stats());
  }

  /// Answer one decoded request — the transport-independent core, shared
  /// with tests that exercise dispatch without sockets.
  Response handle(const Request& req);

 private:
  void accept_loop();
  void serve_connection(int fd);
  void track(int fd);
  void untrack(int fd);
  void log_slow_query(const Request& req, const QueryStats& stats,
                      double total_us, const std::string& span_tree);

  ServerOptions options_;
  LabelStore store_;
  /// Serializes reloads (the swap itself is the store's one pointer write).
  std::mutex reload_mu_;
  std::atomic<bool> reloading_{false};
  Metrics metrics_;
  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_done_{false};
  /// Requests currently inside handle() on worker threads — what drain
  /// waits on.
  std::atomic<int> in_flight_{0};
  // Written by start()/stop(), read by the accept thread.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::mutex conn_mu_;
  std::unordered_set<int> conn_fds_;
};

}  // namespace fsdl::server
