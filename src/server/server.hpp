// fsdl query server: a multithreaded TCP service over one read-only
// ForbiddenSetOracle.
//
// Architecture (one box, the §1 "centralized oracle" deployed):
//
//   FrameServer transport ──► handle() ──► shared ForbiddenSetOracle
//    (accept thread, pool,      │                  (immutable labels)
//     deadlines, drain —        ├─► PreparedCache (LRU of PreparedFaults)
//     server/frame_server.hpp)  └─► Metrics (counters + histograms)
//
// The transport — accept loop with transient-errno backoff, admission
// control (OVERLOADED sheds), per-connection deadlines, frame CRC
// handling, graceful drain with a HEALTH exemption — lives in the
// FrameServer base class and is shared verbatim with the scatter-gather
// router (shard/router.hpp). What this class adds on top:
//   * hot label reload: reload() loads a new label file, validates its CRC
//     *and* its partition identity, and atomically publishes it through
//     the LabelStore while in-flight requests finish on the labels they
//     started with (see server/label_store.hpp). A corrupt or
//     wrong-partition file is rejected and the old labels keep serving;
//   * shard awareness: a server started on a shard file answers only for
//     the vertices its shard owns — queries for other vertices get a
//     distinct error naming the owning shard, and GET_LABEL hands out raw
//     label bits for the router tier's fetch/decode split;
//   * query handling: DIST/BATCH with PreparedFaults amortization,
//     request deadlines, slow-query logging, decoder stage counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/oracle.hpp"
#include "server/frame_server.hpp"
#include "server/label_store.hpp"
#include "server/metrics.hpp"
#include "server/prepared_cache.hpp"
#include "server/protocol.hpp"
#include "server/thread_pool.hpp"

namespace fsdl::server {

struct ServerOptions {
  /// 0 = let the kernel pick an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  unsigned workers = 4;
  /// Max distinct fault sets kept prepared.
  std::size_t cache_capacity = 256;
  std::size_t cache_shards = 8;
  /// Decode every label at startup instead of on first touch.
  bool warm_labels = false;
  /// listen(2) backlog. Connections beyond it queue in the kernel (or are
  /// refused), before user-space admission control even sees them.
  int listen_backlog = 64;
  /// Socket receive deadline per recv() call, milliseconds; 0 disables.
  /// When it fires the connection is evicted with a TIMEOUT frame — this is
  /// both the slowloris defense (partial frame, no progress) and the idle
  /// reaper (connection holding a worker without traffic).
  unsigned recv_timeout_ms = 0;
  /// Socket send deadline, milliseconds; 0 disables. A peer that stops
  /// reading cannot wedge a worker forever.
  unsigned send_timeout_ms = 0;
  /// Compute budget for one DIST/BATCH request, milliseconds; 0 disables.
  /// Exceeding it returns a TIMEOUT response instead of the distances.
  double request_deadline_ms = 0.0;
  /// Admission-control depth beyond `workers` (see
  /// TransportOptions::max_queued_connections): pending *requests* on the
  /// reactor plane (a shed is one OVERLOADED reply, connection kept),
  /// waiting *connections* on the thread-per-connection plane. Default:
  /// unbounded (historical behavior).
  std::size_t max_queued_connections = ThreadPool::kUnboundedQueue;
  /// How long stop() waits for in-flight requests to finish before tearing
  /// connections down, milliseconds. 0 = hard stop (historical behavior).
  unsigned drain_deadline_ms = 0;
  /// Transport implementation: the epoll reactor (default) or the
  /// historical blocking thread-per-connection plane (A/B benchmarking).
  DataPlane data_plane = DataPlane::kEpollReactor;
  /// Event-loop threads for the reactor plane (0 coerced to 1).
  unsigned reactor_threads = 1;
  /// Fault-set batching window, microseconds; 0 disables coalescing. See
  /// TransportOptions::batch_window_us — leaders never wait, so this only
  /// bounds how long same-key followers ride behind a slow cold prepare.
  unsigned batch_window_us = 100;
  /// Watchdog knobs, forwarded to TransportOptions (see frame_server.hpp):
  /// sampling interval (0 disables), stall window (counts a stall + flips
  /// HEALTH to "degraded"), and the opt-in hard-wedge SIGABRT threshold.
  unsigned watchdog_interval_ms = 250;
  unsigned watchdog_stall_ms = 2000;
  unsigned watchdog_abort_ms = 0;
  /// Slow-query log threshold in microseconds; 0 disables. A DIST/BATCH
  /// request slower than this emits one JSON line (kind="slow_query", the
  /// same flat schema and parser as the distributed-tracing event log:
  /// request shape, fault-set size, per-stage micros, trace id, and — in
  /// FSDL_TRACE builds at span level — the span tree) through
  /// `slow_query_sink`. In FSDL_TRACE builds with an open event log, the
  /// request's spans are also flushed there regardless of sampling.
  double slow_query_us = 0.0;
  /// Destination for slow-query reports; defaults to stderr. The sink is
  /// called from worker threads and must be callable concurrently (the
  /// default serializes writes internally).
  std::function<void(const std::string&)> slow_query_sink;
  /// Label file backing this server; the source for SIGHUP / RELOAD hot
  /// reloads. Empty = reloads refused (e.g. labels built in memory).
  std::string label_path;
  /// Allow the RELOAD admin opcode over the wire. Off by default: a network
  /// peer should not be able to force disk reads unless explicitly enabled
  /// (SIGHUP reloads work regardless — sending a signal already requires
  /// being on the box).
  bool admin = false;
};

class Server : public FrameServer {
 public:
  /// Borrow an externally owned oracle (it must outlive the server). A
  /// later reload() replaces it with server-owned labels loaded from disk.
  Server(const ForbiddenSetOracle& oracle, const ServerOptions& options);
  /// Own the labels from the start (what fsdl_serve uses): the server
  /// builds its oracle + prepared cache around the given labeling.
  Server(ForbiddenSetLabeling scheme, const ServerOptions& options);
  ~Server() override;

  /// Hot label reload: load `path` (empty = options.label_path), validate
  /// its CRC and that it describes the same partition this server was
  /// started on (same shard id + ring), and atomically swap the labels +
  /// oracle + prepared cache as one snapshot. In-flight requests finish on
  /// the labels they started with; new requests see the new epoch. Returns
  /// the empty string on success or a human-readable error (in which case
  /// the old labels keep serving). Thread-safe; concurrent reloads
  /// serialize.
  std::string reload(const std::string& path = "");

  /// Monotonic label version: 1 for the labels the server started with,
  /// +1 per successful reload.
  std::uint64_t label_epoch() const { return store_.epoch(); }

  /// Health probe body: "loading|ready|draining epoch=E n=N shard=I/K"
  /// (shard=0/1 for an unsharded server). Any reply at all means "alive";
  /// `loading` means a reload is currently in progress (queries still
  /// answered from the old labels).
  std::string health_text() const;

  /// Stats of the *current* snapshot's prepared cache (reset on reload —
  /// the old cache dies with the old labels).
  PreparedCache::Stats cache_stats() const {
    return store_.current()->cache().stats();
  }

  /// Prometheus text exposition of the current registry + cache state (the
  /// METRICS opcode body; also written by fsdl_serve --metrics-dump).
  std::string prometheus() const {
    return metrics_.render_prometheus(cache_stats());
  }

  /// Answer one decoded request — the transport-independent core, shared
  /// with tests that exercise dispatch without sockets.
  Response handle(const Request& req) override;

 protected:
  void on_start() override;

 private:
  void log_slow_query(const Request& req, const QueryStats& stats,
                      double total_us, const std::string& span_tree,
                      std::uint64_t trace_hi, std::uint64_t trace_lo);
  static TransportOptions transport_of(const ServerOptions& options);

  ServerOptions options_;
  LabelStore store_;
  /// Serializes reloads (the swap itself is the store's one pointer write).
  std::mutex reload_mu_;
  std::atomic<bool> reloading_{false};
};

}  // namespace fsdl::server
