// Hot-swappable label state for the query server.
//
// A LabelSnapshot bundles everything a request needs that must stay
// mutually consistent: the labeling, the oracle decoding it, and the
// PreparedFaults cache keyed against that oracle's labels. The three are
// swapped as one unit — a prepared fault set built from epoch-1 labels must
// never answer a query routed to epoch-2 labels, so the cache lives *inside*
// the snapshot and is invalidated by construction on every swap (the
// epoch-based generalization of "flush the cache").
//
// LabelStore is the RCU-style publication point:
//   * readers (worker threads inside Server::handle) take a shared_ptr to
//     the current snapshot once per request and use it for the request's
//     whole lifetime — a concurrent swap never changes the labels mid
//     request;
//   * the writer (reload) builds the new snapshot off to the side, then
//     publishes it with one pointer swap. In-flight requests keep the old
//     snapshot alive through their shared_ptr; the last one to finish frees
//     it. No reader ever blocks on a reload, and no reload ever waits for
//     readers.
//
// The store also supports wrapping an externally owned oracle (the
// historical Server constructor used by tests and benches); a later reload
// simply publishes an owning snapshot over the borrowed one.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "server/prepared_cache.hpp"
#include "shard/partition.hpp"

namespace fsdl::server {

class LabelSnapshot {
 public:
  /// Owning snapshot: takes the labeling, builds its oracle and an empty
  /// prepared cache of the given shape.
  LabelSnapshot(ForbiddenSetLabeling scheme, std::size_t cache_capacity,
                std::size_t cache_shards, std::uint64_t epoch);

  /// Borrowing snapshot: wraps an oracle owned by the caller (which must
  /// outlive every request that sees this snapshot).
  LabelSnapshot(const ForbiddenSetOracle& oracle, std::size_t cache_capacity,
                std::size_t cache_shards, std::uint64_t epoch);

  LabelSnapshot(const LabelSnapshot&) = delete;
  LabelSnapshot& operator=(const LabelSnapshot&) = delete;

  const ForbiddenSetOracle& oracle() const noexcept { return *oracle_; }
  /// The prepared-fault cache tied to this label version. Mutable through a
  /// const snapshot: the cache is internally synchronized (sharded locks).
  PreparedCache& cache() const noexcept { return cache_; }
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// The labeling's partition identity and the ownership function over it
  /// (trivial for an unsharded labeling: every vertex → shard 0). Built
  /// once per snapshot so the per-request ownership check is a ring lookup,
  /// never a ring rebuild.
  const shard::PartitionInfo& partition() const noexcept {
    return partitioner_->info();
  }
  const shard::Partitioner& partitioner() const noexcept {
    return *partitioner_;
  }

 private:
  // Destruction order matters (reverse of declaration): cache_ releases its
  // PreparedFaults before owned_oracle_, which drops its decoded-label
  // cache before owned_scheme_ frees the raw bits.
  std::unique_ptr<const ForbiddenSetLabeling> owned_scheme_;
  std::unique_ptr<const ForbiddenSetOracle> owned_oracle_;
  const ForbiddenSetOracle* oracle_;
  mutable PreparedCache cache_;
  std::uint64_t epoch_;
  std::unique_ptr<const shard::Partitioner> partitioner_;
};

class LabelStore {
 public:
  /// Publish a new snapshot; the previous one stays alive until the last
  /// in-flight request drops its reference.
  void publish(std::shared_ptr<const LabelSnapshot> snapshot);

  /// The current snapshot (never null after the first publish). One mutex
  /// acquisition for a pointer copy — cheap next to any query's work, and
  /// trivially correct under every sanitizer.
  std::shared_ptr<const LabelSnapshot> current() const;

  std::uint64_t epoch() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const LabelSnapshot> snapshot_;
};

}  // namespace fsdl::server
