#include "server/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "core/serialize.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace fsdl::server {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_response(int fd, const Response& resp) {
  const auto wire = frame(encode_response(resp));
  return send_all(fd, wire.data(), wire.size());
}

void set_socket_timeout(int fd, int option, unsigned ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

/// accept() errnos that mean "try again shortly", not "the listener is
/// dead": per-process/system fd exhaustion, a connection that was reset
/// before we got to it, and transient resource pressure. Treating these as
/// fatal is how an accept loop dies permanently at the worst moment.
bool transient_accept_errno(int err) {
  switch (err) {
    case EMFILE:
    case ENFILE:
    case ECONNABORTED:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
    case EPROTO:
    case EINTR:
      return true;
    default:
      return false;
  }
}

}  // namespace

Server::Server(const ForbiddenSetOracle& oracle, const ServerOptions& options)
    : options_(options) {
  store_.publish(std::make_shared<const LabelSnapshot>(
      oracle, options.cache_capacity, options.cache_shards, /*epoch=*/1));
}

Server::Server(ForbiddenSetLabeling scheme, const ServerOptions& options)
    : options_(options) {
  store_.publish(std::make_shared<const LabelSnapshot>(
      std::move(scheme), options.cache_capacity, options.cache_shards,
      /*epoch=*/1));
}

Server::~Server() { stop(); }

std::string Server::reload(const std::string& path) {
  const std::string source = path.empty() ? options_.label_path : path;
  if (source.empty()) {
    metrics_.record_reload(ReloadResult::kError);
    return "no label path configured (server was started from in-memory "
           "labels)";
  }
  // One reload at a time; queries never wait on this lock — they read the
  // published snapshot, which is only touched by the final publish().
  std::lock_guard<std::mutex> lock(reload_mu_);
  reloading_.store(true, std::memory_order_release);
  try {
    // The slow part — disk read + CRC sweep + label table build — happens
    // entirely off to the side, on the caller's thread, against no lock the
    // query path takes.
    auto snapshot = std::make_shared<const LabelSnapshot>(
        load_labeling(source), options_.cache_capacity, options_.cache_shards,
        store_.epoch() + 1);
    if (options_.warm_labels) snapshot->oracle().warm();
    store_.publish(std::move(snapshot));
    metrics_.record_reload(ReloadResult::kOk);
    reloading_.store(false, std::memory_order_release);
    return {};
  } catch (const LabelingCrcError& e) {
    // Old labels keep serving. The distinct type (not the process-global
    // counter, which another load elsewhere could bump concurrently) is
    // what classifies this reload's failure as crc_failed.
    metrics_.record_reload(ReloadResult::kCrcFailed);
    reloading_.store(false, std::memory_order_release);
    return e.what();
  } catch (const std::exception& e) {
    // Old labels keep serving; the only trace is the counter + the message.
    metrics_.record_reload(ReloadResult::kError);
    reloading_.store(false, std::memory_order_release);
    return e.what();
  }
}

std::string Server::health_text() const {
  const auto snap = store_.current();
  const char* state = draining_.load(std::memory_order_acquire) ? "draining"
                      : reloading_.load(std::memory_order_acquire)
                          ? "loading"
                          : "ready";
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s epoch=%" PRIu64 " n=%u", state,
                snap->epoch(), snap->oracle().scheme().num_vertices());
  return buf;
}

void Server::start() {
  if (running_.load()) throw std::logic_error("Server already started");
  if (options_.warm_labels) store_.current()->oracle().warm();

  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(lfd);
    throw std::runtime_error(std::string("bind() failed: ") +
                             std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (options_.listen_backlog <= 0) options_.listen_backlog = 64;
  if (::listen(lfd, options_.listen_backlog) < 0) {
    ::close(lfd);
    throw std::runtime_error("listen() failed");
  }
  listen_fd_.store(lfd);

  pool_ = std::make_unique<ThreadPool>(options_.workers,
                                       options_.max_queued_connections);
  running_.store(true);
  draining_.store(false);
  stop_done_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::begin_drain() {
  if (!running_.load()) return;
  draining_.store(true, std::memory_order_release);
  // Closing the listener stops new connections and unblocks accept().
  if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
}

void Server::stop() {
  if (stop_done_.exchange(true)) return;
  if (!running_.load()) return;

  begin_drain();
  if (options_.drain_deadline_ms > 0) {
    // Wait for in-flight requests to complete. Connections merely idle in
    // recv() hold no request, so they never delay the drain.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.drain_deadline_ms);
    while (in_flight_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  running_.store(false);
  // Shutting the connection fds unblocks any worker mid-recv.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_) pool_->shutdown();
}

void Server::track(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.insert(fd);
}

void Server::untrack(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
}

void Server::accept_loop() {
  unsigned backoff_ms = 1;
  while (running_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;  // begin_drain()/stop() closed the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (listen_fd_.load() < 0 || !running_.load()) break;
      if (err == EINTR) continue;
      if (transient_accept_errno(err)) {
        // fd exhaustion or resource pressure: back off briefly and keep the
        // server alive — connections already established keep being served,
        // and accepting resumes the moment pressure clears.
        metrics_.record_failure(FailureCounter::kAcceptRetries);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = backoff_ms < 100 ? backoff_ms * 2 : 200;
        continue;
      }
      break;  // genuinely unrecoverable (listener fd invalid, ...)
    }
    backoff_ms = 1;
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_socket_timeout(fd, SO_RCVTIMEO, options_.recv_timeout_ms);
    set_socket_timeout(fd, SO_SNDTIMEO, options_.send_timeout_ms);
    metrics_.record_connection();
    track(fd);
    const bool queued = pool_->submit([this, fd] {
      serve_connection(fd);
      untrack(fd);
      ::close(fd);
    });
    if (!queued) {
      // Admission control: every worker busy and the waiting line full.
      // One OVERLOADED frame tells the client to back off; then shed.
      metrics_.record_failure(FailureCounter::kSheds);
      send_response(fd, error_response("server overloaded, retry later",
                                       Status::kOverloaded));
      untrack(fd);
      ::close(fd);
    }
  }
}

void Server::serve_connection(int fd) {
  Framer framer;
  std::uint8_t chunk[64 * 1024];
  std::vector<std::uint8_t> payload;
  while (running_.load()) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The per-connection receive deadline fired. Whether the client is
        // mid-frame (slowloris) or simply idle, it is holding a worker —
        // tell it why and evict.
        metrics_.record_failure(FailureCounter::kEvictions);
        send_response(fd, error_response(
                              framer.pending_bytes() > 0
                                  ? "receive deadline exceeded mid-frame"
                                  : "idle deadline exceeded",
                              Status::kTimeout));
      }
      return;
    }
    if (n == 0) return;  // peer closed
    framer.feed(chunk, static_cast<std::size_t>(n));
    while (framer.next(payload)) {
      Request req;
      std::string decode_error;
      const bool decoded =
          decode_request(payload.data(), payload.size(), req, decode_error);
      if (draining_.load(std::memory_order_acquire) &&
          !(decoded && req.opcode == Opcode::kHealth)) {
        // Frames decoded after the drain flip are new work: refuse them.
        // HEALTH is exempt — a prober must see "draining", not a refusal,
        // so it can tell a graceful goodbye from a crash.
        metrics_.record_failure(FailureCounter::kDrainRejects);
        send_response(fd, error_response("server draining, not accepting "
                                         "new requests",
                                         Status::kDraining));
        return;
      }
      Response resp;
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      if (!decoded) {
        metrics_.record_error();
        resp = error_response("bad request: " + decode_error);
      } else {
        resp = handle(req);
        if (!resp.ok()) metrics_.record_error();
      }
      const bool sent = send_response(fd, resp);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      if (!sent) return;
    }
    if (framer.fatal()) {
      // The stream is unsyncable: either the length prefix exceeded
      // kMaxFramePayload or the payload failed its CRC. One diagnostic
      // frame, then close.
      metrics_.record_error();
      if (framer.fatal_reason() == Framer::Fatal::kChecksum) {
        metrics_.record_failure(FailureCounter::kFrameCrcErrors);
        send_response(fd, error_response("frame checksum mismatch"));
      } else {
        send_response(fd, error_response("frame exceeds size limit"));
      }
      return;
    }
  }
}

Response Server::handle(const Request& req) {
  WallTimer timer;
  Response resp;
  // One snapshot per request: labels, oracle, and prepared cache stay
  // mutually consistent for the request's whole lifetime even if a reload
  // publishes a new epoch mid-flight (RCU-style — the shared_ptr keeps the
  // old snapshot alive until the last reader finishes).
  const std::shared_ptr<const LabelSnapshot> snap = store_.current();
  const ForbiddenSetOracle& oracle = snap->oracle();
  switch (req.opcode) {
    case Opcode::kStats: {
      resp.text = metrics_.render(snap->cache().stats());
      metrics_.record(RequestType::kStats, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kMetrics: {
      resp.text = metrics_.render_prometheus(snap->cache().stats());
      metrics_.record(RequestType::kMetrics, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kHealth: {
      resp.text = health_text();
      metrics_.record(RequestType::kHealth, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kReload: {
      if (!options_.admin) {
        return error_response("RELOAD refused: admin commands disabled "
                              "(start the server with --admin)");
      }
      const std::string error = reload();
      metrics_.record(RequestType::kReload, 0, timer.elapsed_us());
      if (!error.empty()) return error_response("reload failed: " + error);
      char buf[64];
      std::snprintf(buf, sizeof buf, "reloaded epoch=%" PRIu64,
                    store_.epoch());
      resp.text = buf;
      return resp;
    }
    case Opcode::kDist:
    case Opcode::kBatch: {
      if (req.pairs.empty()) return error_response("empty batch");
      const Vertex n = oracle.scheme().num_vertices();
      for (const auto& [s, t] : req.pairs) {
        if (s >= n || t >= n) {
          return error_response("vertex id out of range");
        }
      }
      for (Vertex v : req.faults.vertices()) {
        if (v >= n) return error_response("fault vertex id out of range");
      }
      for (const auto& [a, b] : req.faults.edges()) {
        if (a >= n || b >= n) {
          return error_response("fault edge id out of range");
        }
      }
      const double deadline_us = options_.request_deadline_ms * 1000.0;
      // Span-tree capture for the slow-query log: only spans completed on
      // this worker thread after the mark belong to this request.
      const std::uint64_t span_mark = obs::span_mark();
      QueryStats request_stats;
      resp.distances.reserve(req.pairs.size());
      bool deadline_hit = false;
      if (req.faults.empty()) {
        // No faults: skip the cache, decode directly (the fault-free path
        // needs no certification state).
        for (const auto& [s, t] : req.pairs) {
          if (deadline_us > 0 && timer.elapsed_us() > deadline_us) {
            deadline_hit = true;
            break;
          }
          const QueryResult r = oracle.query(s, t, req.faults);
          resp.distances.push_back(r.distance);
          request_stats.accumulate(r.stats);
        }
      } else {
        const auto prepared = snap->cache().get(req.faults);
        for (const auto& [s, t] : req.pairs) {
          if (deadline_us > 0 && timer.elapsed_us() > deadline_us) {
            deadline_hit = true;
            break;
          }
          // PreparedFaults handles forbidden endpoints (returns kInfDist).
          const QueryResult r =
              prepared->query(oracle.label(s), oracle.label(t));
          resp.distances.push_back(r.distance);
          request_stats.accumulate(r.stats);
        }
      }
      const double total_us = timer.elapsed_us();
      metrics_.record(
          req.opcode == Opcode::kDist ? RequestType::kDist
                                      : RequestType::kBatch,
          resp.distances.size(), total_us);
      metrics_.record_query_stats(request_stats);
      if (options_.slow_query_us > 0 && total_us >= options_.slow_query_us) {
        log_slow_query(req, request_stats, total_us,
                       obs::format_span_tree(obs::spans_since(span_mark)));
      }
      if (deadline_hit) {
        // Partial batches are not returnable (the client cannot tell which
        // pairs were answered); the whole request times out.
        metrics_.record_failure(FailureCounter::kRequestTimeouts);
        return error_response("request deadline exceeded", Status::kTimeout);
      }
      return resp;
    }
  }
  return error_response("unhandled opcode");
}

void Server::log_slow_query(const Request& req, const QueryStats& stats,
                            double total_us, const std::string& span_tree) {
  char line[512];
  std::snprintf(
      line, sizeof line,
      "slow_query: op=%s pairs=%zu fault_vertices=%zu fault_edges=%zu "
      "total_us=%.1f assemble_us=%.1f dijkstra_us=%.1f "
      "sketch_vertices=%zu sketch_edges=%zu pb_checks=%zu relaxations=%zu\n",
      req.opcode == Opcode::kDist ? "DIST" : "BATCH", req.pairs.size(),
      req.faults.vertices().size(), req.faults.edges().size(), total_us,
      stats.assemble_us, stats.dijkstra_us, stats.sketch_vertices,
      stats.sketch_edges, stats.pb_checks, stats.dijkstra_relaxations);
  std::string report = line;
  if (!span_tree.empty()) report += span_tree;
  if (options_.slow_query_sink) {
    options_.slow_query_sink(report);
  } else {
    // One mutex-serialized fputs keeps concurrent workers' reports whole.
    static std::mutex stderr_mu;
    std::lock_guard<std::mutex> lock(stderr_mu);
    std::fputs(report.c_str(), stderr);
  }
}

}  // namespace fsdl::server
