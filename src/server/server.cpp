#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "core/serialize.hpp"
#include "obs/trace.hpp"
#include "shard/wire_label.hpp"
#include "util/failpoint.hpp"
#include "util/jsonl.hpp"
#include "util/timer.hpp"

namespace fsdl::server {

TransportOptions Server::transport_of(const ServerOptions& options) {
  TransportOptions t;
  t.port = options.port;
  t.workers = options.workers;
  t.listen_backlog = options.listen_backlog;
  t.recv_timeout_ms = options.recv_timeout_ms;
  t.send_timeout_ms = options.send_timeout_ms;
  t.max_queued_connections = options.max_queued_connections;
  t.drain_deadline_ms = options.drain_deadline_ms;
  t.data_plane = options.data_plane;
  t.reactor_threads = options.reactor_threads;
  t.batch_window_us = options.batch_window_us;
  t.watchdog_interval_ms = options.watchdog_interval_ms;
  t.watchdog_stall_ms = options.watchdog_stall_ms;
  t.watchdog_abort_ms = options.watchdog_abort_ms;
  return t;
}

Server::Server(const ForbiddenSetOracle& oracle, const ServerOptions& options)
    : FrameServer(transport_of(options)), options_(options) {
  store_.publish(std::make_shared<const LabelSnapshot>(
      oracle, options.cache_capacity, options.cache_shards, /*epoch=*/1));
}

Server::Server(ForbiddenSetLabeling scheme, const ServerOptions& options)
    : FrameServer(transport_of(options)), options_(options) {
  store_.publish(std::make_shared<const LabelSnapshot>(
      std::move(scheme), options.cache_capacity, options.cache_shards,
      /*epoch=*/1));
}

Server::~Server() { stop(); }

void Server::on_start() {
  if (options_.warm_labels) store_.current()->oracle().warm();
}

std::string Server::reload(const std::string& path) {
  const std::string source = path.empty() ? options_.label_path : path;
  if (source.empty()) {
    metrics_.record_reload(ReloadResult::kError);
    return "no label path configured (server was started from in-memory "
           "labels)";
  }
  // One reload at a time; queries never wait on this lock — they read the
  // published snapshot, which is only touched by the final publish().
  std::lock_guard<std::mutex> lock(reload_mu_);
  reloading_.store(true, std::memory_order_release);
  try {
    // The slow part — disk read + CRC sweep + label table build — happens
    // entirely off to the side, on the caller's thread, against no lock the
    // query path takes.
    ForbiddenSetLabeling scheme = load_labeling(source);
    // Partition identity check: a shard server must keep serving *its*
    // partition across reloads. Accepting a file cut for a different shard
    // (or a different ring) would flip which vertices this process answers
    // while routers keep sending it the old ones — every such query would
    // fail, or worse, a stale ring could silently misattribute ownership.
    const shard::PartitionInfo& current = store_.current()->partition();
    const shard::PartitionInfo& incoming = scheme.partition();
    if (!(incoming == current)) {
      metrics_.record_reload(ReloadResult::kError);
      reloading_.store(false, std::memory_order_release);
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "label file is shard %u/%u (ring seed %" PRIx64
                    ", %u points) but this server serves shard %u/%u "
                    "(ring seed %" PRIx64 ", %u points)",
                    incoming.shard_id, incoming.shard_count, incoming.ring_seed,
                    incoming.ring_points, current.shard_id,
                    current.shard_count, current.ring_seed,
                    current.ring_points);
      return buf;
    }
    // Snapshot-build allocation failure: the file read fine but the label
    // table could not be built. Must classify as error with the old
    // snapshot still serving, like any other load failure.
    if (FSDL_FAILPOINT("server.reload.publish")) throw std::bad_alloc();
    auto snapshot = std::make_shared<const LabelSnapshot>(
        std::move(scheme), options_.cache_capacity, options_.cache_shards,
        store_.epoch() + 1);
    if (options_.warm_labels) snapshot->oracle().warm();
    store_.publish(std::move(snapshot));
    metrics_.record_reload(ReloadResult::kOk);
    reloading_.store(false, std::memory_order_release);
    return {};
  } catch (const LabelingCrcError& e) {
    // Old labels keep serving. The distinct type (not the process-global
    // counter, which another load elsewhere could bump concurrently) is
    // what classifies this reload's failure as crc_failed.
    metrics_.record_reload(ReloadResult::kCrcFailed);
    reloading_.store(false, std::memory_order_release);
    return e.what();
  } catch (const std::exception& e) {
    // Old labels keep serving; the only trace is the counter + the message.
    metrics_.record_reload(ReloadResult::kError);
    reloading_.store(false, std::memory_order_release);
    return e.what();
  }
}

std::string Server::health_text() const {
  const auto snap = store_.current();
  // "degraded" ranks below draining/loading: those already explain why the
  // server should not take traffic; degraded says it *is* taking traffic
  // but the watchdog sees a stalled loop or wedged pool.
  const char* state = draining() ? "draining"
                      : reloading_.load(std::memory_order_acquire)
                          ? "loading"
                      : watchdog_degraded() ? "degraded"
                                            : "ready";
  const shard::PartitionInfo& part = snap->partition();
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "%s epoch=%" PRIu64 " n=%u shard=%u/%u plane=%s uptime_s=%" PRIu64
                " conns=%" PRId64,
                state, snap->epoch(), snap->oracle().scheme().num_vertices(),
                part.shard_id, part.shard_count, plane_name(), uptime_s(),
                open_connections());
  return buf;
}

namespace {

/// The distinct "wrong shard" refusal (satellite b): names the owner so a
/// misconfigured client (or a router with a stale ring) can see exactly
/// where the vertex lives instead of a generic failure.
Response wrong_shard_response(const char* what, Vertex v,
                              std::uint32_t owner,
                              const shard::PartitionInfo& part) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "%s %u not on this shard: owned by shard %u/%u (this server "
                "serves shard %u/%u)",
                what, v, owner, part.shard_count, part.shard_id,
                part.shard_count);
  return error_response(buf);
}

Response out_of_range_response(const char* what, Vertex v, Vertex n) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s %u out of range (n=%u)", what, v, n);
  return error_response(buf);
}

}  // namespace

Response Server::handle(const Request& req) {
  WallTimer timer;
  Response resp;
  // One snapshot per request: labels, oracle, and prepared cache stay
  // mutually consistent for the request's whole lifetime even if a reload
  // publishes a new epoch mid-flight (RCU-style — the shared_ptr keeps the
  // old snapshot alive until the last reader finishes).
  const std::shared_ptr<const LabelSnapshot> snap = store_.current();
  const ForbiddenSetOracle& oracle = snap->oracle();
  switch (req.opcode) {
    case Opcode::kStats: {
      resp.text = metrics_.render(snap->cache().stats());
      metrics_.record(RequestType::kStats, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kMetrics: {
      resp.text = metrics_.render_prometheus(snap->cache().stats());
      metrics_.record(RequestType::kMetrics, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kFleetStats: {
      // A shard server is a fleet of one: FLEET_STATS is its own METRICS
      // rendering. The router overrides this with the real scatter/merge.
      resp.text = metrics_.render_prometheus(snap->cache().stats());
      metrics_.record(RequestType::kFleetStats, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kHealth: {
      resp.text = health_text();
      metrics_.record(RequestType::kHealth, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kReload: {
      if (!options_.admin) {
        return error_response("RELOAD refused: admin commands disabled "
                              "(start the server with --admin)");
      }
      const std::string error = reload();
      metrics_.record(RequestType::kReload, 0, timer.elapsed_us());
      if (!error.empty()) return error_response("reload failed: " + error);
      char buf[64];
      std::snprintf(buf, sizeof buf, "reloaded epoch=%" PRIu64,
                    store_.epoch());
      resp.text = buf;
      return resp;
    }
    case Opcode::kGetLabel: {
      obs::TraceRecorder rec(req.trace.trace_hi, req.trace.trace_lo,
                             req.trace.parent_span, req.trace.sampled());
      const std::uint64_t root_span = rec.new_span();
      const std::uint64_t root_start = obs::epoch_us();
      const Vertex v = req.pairs.at(0).first;
      const Vertex n = oracle.scheme().num_vertices();
      if (v >= n) return out_of_range_response("vertex id", v, n);
      // Lookup phase: resolve the vertex's owner on the ring and gate.
      const std::uint64_t lookup_start = obs::epoch_us();
      const std::uint32_t owner = snap->partitioner().owner(v);
      const shard::PartitionInfo& part = snap->partition();
      if (owner != part.shard_id) {
        return wrong_shard_response("vertex id", v, owner, part);
      }
      if (rec.active()) {
        rec.add("shard.lookup", rec.new_span(), root_span, lookup_start,
                static_cast<double>(obs::epoch_us() - lookup_start));
      }
      // Serialize phase: the wire-label blob (label bits + scheme header).
      const std::uint64_t serialize_start = obs::epoch_us();
      resp.text = shard::encode_wire_label(oracle.scheme(), v, snap->epoch());
      if (rec.active()) {
        rec.add("shard.serialize", rec.new_span(), root_span, serialize_start,
                static_cast<double>(obs::epoch_us() - serialize_start));
        rec.add("shard.get_label", root_span, rec.parent_span(), root_start,
                timer.elapsed_us());
      }
      rec.flush(false);
      metrics_.record(RequestType::kGetLabel, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kDist:
    case Opcode::kBatch: {
      if (req.pairs.empty()) return error_response("empty batch");
      const Vertex n = oracle.scheme().num_vertices();
      const shard::PartitionInfo& part = snap->partition();
      // Ownership gate for a shard server: the decoder would read an empty
      // bit buffer for an unowned vertex and produce garbage, so unowned
      // endpoints are refused with the owner named (satellite b). Fault
      // vertices only need their ids (membership tests), not their labels,
      // so they pass on the range check alone.
      for (const auto& [s, t] : req.pairs) {
        if (s >= n) return out_of_range_response("vertex id", s, n);
        if (t >= n) return out_of_range_response("vertex id", t, n);
        if (part.sharded()) {
          const std::uint32_t owner_s = snap->partitioner().owner(s);
          if (owner_s != part.shard_id) {
            return wrong_shard_response("vertex id", s, owner_s, part);
          }
          const std::uint32_t owner_t = snap->partitioner().owner(t);
          if (owner_t != part.shard_id) {
            return wrong_shard_response("vertex id", t, owner_t, part);
          }
        }
      }
      for (Vertex v : req.faults.vertices()) {
        if (v >= n) return out_of_range_response("fault vertex id", v, n);
      }
      for (const auto& [a, b] : req.faults.edges()) {
        if (a >= n) return out_of_range_response("fault edge id", a, n);
        if (b >= n) return out_of_range_response("fault edge id", b, n);
      }
      // Request budget: the configured per-request deadline clamped by the
      // remaining budget the client/router forwarded in the trace context
      // (a hop must never work past what the caller will still accept).
      double deadline_us = options_.request_deadline_ms * 1000.0;
      if (req.trace.present && req.trace.deadline_us > 0) {
        const double remote = static_cast<double>(req.trace.deadline_us);
        deadline_us = deadline_us > 0 ? std::min(deadline_us, remote) : remote;
      }
      obs::TraceRecorder rec(req.trace.trace_hi, req.trace.trace_lo,
                             req.trace.parent_span, req.trace.sampled());
      const std::uint64_t root_span = rec.new_span();
      const std::uint64_t root_start = obs::epoch_us();
      // Span-tree capture for the slow-query log: only spans completed on
      // this worker thread after the mark belong to this request.
      const std::uint64_t span_mark = obs::span_mark();
      QueryStats request_stats;
      resp.distances.reserve(req.pairs.size());
      bool deadline_hit = false;
      if (req.faults.empty()) {
        // No faults: skip the cache, decode directly (the fault-free path
        // needs no certification state).
        for (const auto& [s, t] : req.pairs) {
          if (deadline_us > 0 && timer.elapsed_us() > deadline_us) {
            deadline_hit = true;
            break;
          }
          const QueryResult r = oracle.query(s, t, req.faults);
          resp.distances.push_back(r.distance);
          request_stats.accumulate(r.stats);
        }
      } else {
        const std::uint64_t lookup_start = obs::epoch_us();
        const auto prepared = snap->cache().get(req.faults);
        if (rec.active()) {
          rec.add("shard.lookup", rec.new_span(), root_span, lookup_start,
                  static_cast<double>(obs::epoch_us() - lookup_start));
        }
        for (const auto& [s, t] : req.pairs) {
          if (deadline_us > 0 && timer.elapsed_us() > deadline_us) {
            deadline_hit = true;
            break;
          }
          // PreparedFaults handles forbidden endpoints (returns kInfDist).
          const QueryResult r =
              prepared->query(oracle.label(s), oracle.label(t));
          resp.distances.push_back(r.distance);
          request_stats.accumulate(r.stats);
        }
      }
      const double total_us = timer.elapsed_us();
      metrics_.record(
          req.opcode == Opcode::kDist ? RequestType::kDist
                                      : RequestType::kBatch,
          resp.distances.size(), total_us);
      metrics_.record_query_stats(request_stats);
      const bool slow =
          options_.slow_query_us > 0 && total_us >= options_.slow_query_us;
      if (rec.active()) {
        rec.add("shard.query", root_span, rec.parent_span(), root_start,
                total_us);
      }
      rec.flush(slow);
      if (slow) {
        log_slow_query(req, request_stats, total_us,
                       obs::format_span_tree(obs::spans_since(span_mark)),
                       rec.active() ? rec.trace_hi() : req.trace.trace_hi,
                       rec.active() ? rec.trace_lo() : req.trace.trace_lo);
      }
      if (deadline_hit) {
        // Partial batches are not returnable (the client cannot tell which
        // pairs were answered); the whole request times out.
        metrics_.record_failure(FailureCounter::kRequestTimeouts);
        return error_response("request deadline exceeded", Status::kTimeout);
      }
      return resp;
    }
  }
  return error_response("unhandled opcode");
}

void Server::log_slow_query(const Request& req, const QueryStats& stats,
                            double total_us, const std::string& span_tree,
                            std::uint64_t trace_hi, std::uint64_t trace_lo) {
  // One JSON object per report, same flat schema (and parser) as the
  // distributed-tracing event log, with kind="slow_query". Keys are stable;
  // the trace id (all-zero when the request carried no context and no
  // event log was open) joins the report to router/shard span lines.
  JsonlWriter w;
  w.field_u64("ts",
              static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count()))
      .field("svc", "shard")
#if !defined(_WIN32)
      .field_u64("pid", static_cast<std::uint64_t>(getpid()))
#endif
      .field("kind", "slow_query")
      .field("op", req.opcode == Opcode::kDist ? "DIST" : "BATCH")
      .field_hex128("trace", trace_hi, trace_lo)
      .field_u64("pairs", req.pairs.size())
      .field_u64("fault_vertices", req.faults.vertices().size())
      .field_u64("fault_edges", req.faults.edges().size())
      .field_double("total_us", total_us)
      .field_double("assemble_us", stats.assemble_us)
      .field_double("dijkstra_us", stats.dijkstra_us)
      .field_u64("sketch_vertices", stats.sketch_vertices)
      .field_u64("sketch_edges", stats.sketch_edges)
      .field_u64("pb_checks", stats.pb_checks)
      .field_u64("relaxations", stats.dijkstra_relaxations);
  if (!span_tree.empty()) w.field("span_tree", span_tree);
  const std::string report = w.line() + "\n";
  if (options_.slow_query_sink) {
    options_.slow_query_sink(report);
  } else {
    // One mutex-serialized fputs keeps concurrent workers' reports whole.
    static std::mutex stderr_mu;
    std::lock_guard<std::mutex> lock(stderr_mu);
    std::fputs(report.c_str(), stderr);
  }
}

}  // namespace fsdl::server
