// Blocking client for the fsdl query service — one TCP connection,
// synchronous request/response. Shared by fsdl_loadgen, bench_server (E16),
// and the end-to-end tests.
//
// Resilience: ClientOptions adds connect/receive/send deadlines and an
// exponential-backoff-with-jitter retry policy. Retries apply only to the
// idempotent query shorthands (dist/batch) — re-asking a distance is always
// safe — and trigger on transport failures (reset, close, timeout, frame
// corruption) and on the server's explicit transient statuses (OVERLOADED,
// TIMEOUT, DRAINING). kError is a bad request and is never retried. Each
// retry reconnects, because a failed stream cannot be resynchronized.
#pragma once

#include <cstdint>
#include <string>

#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace fsdl::server {

struct ClientOptions {
  /// connect(2) deadline, milliseconds; 0 = block until the kernel decides.
  unsigned connect_timeout_ms = 0;
  /// Per-recv() deadline, milliseconds; 0 disables. A hung or chaos-delayed
  /// server surfaces as a transport error instead of a wedged client.
  unsigned recv_timeout_ms = 0;
  /// Per-send() deadline, milliseconds; 0 disables.
  unsigned send_timeout_ms = 0;
  /// Extra attempts for idempotent queries after the first fails
  /// retryably. 0 = the historical fail-fast behavior.
  unsigned max_retries = 0;
  /// First backoff delay; doubles each retry up to retry_max_ms, each
  /// jittered to [0.5x, 1x] so a shed client fleet does not reconverge on
  /// the server in lockstep.
  unsigned retry_base_ms = 10;
  unsigned retry_max_ms = 1000;
  /// Seed for the jitter RNG (deterministic tests / loadgen runs).
  std::uint64_t retry_seed = 1;
};

class Client {
 public:
  Client() = default;
  explicit Client(const ClientOptions& options)
      : options_(options), jitter_rng_(options.retry_seed) {}
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to host:port ("127.0.0.1" for loopback). Throws on failure
  /// (including a connect deadline blown). Remembers the address so the
  /// retry policy can reconnect.
  void connect(const std::string& host, std::uint16_t port);
  bool connected() const noexcept { return fd_ >= 0; }
  /// Raw socket fd (-1 when closed). ReplicaClient polls two clients at
  /// once when racing a hedged request.
  int fd() const noexcept { return fd_; }
  void close();

  /// Round-trip one request, no retries. Throws std::runtime_error on
  /// transport failure (send/recv error, deadline, peer close, malformed
  /// or corrupt reply frame); protocol errors come back as a Response with
  /// a non-ok status.
  Response call(const Request& req);

  /// Shorthands. dist/batch apply the retry policy (idempotent) and
  /// optionally carry a trace context on the request frame (absent by
  /// default — zero wire cost; see protocol.hpp).
  Dist dist(Vertex s, Vertex t, const FaultSet& faults,
            const TraceContext& trace = {});
  std::vector<Dist> batch(const std::vector<std::pair<Vertex, Vertex>>& pairs,
                          const FaultSet& faults,
                          const TraceContext& trace = {});
  std::string stats();
  /// Prometheus text exposition of the server's metrics registry.
  std::string metrics();
  /// FLEET_STATS: against a router, the whole fleet's merged exposition
  /// (per-shard samples + fsdl_fleet_* histograms); against a single
  /// server, that server's own exposition — a fleet of one.
  std::string fleet_stats();
  /// One HEALTH round-trip; returns the probe text ("ready epoch=1 n=64",
  /// "draining ...", ...). No retries — the whole point is to learn the
  /// current state, including the bad ones. Throws on transport failure.
  std::string health();
  /// Admin RELOAD: ask the server to hot-swap its label file. Returns the
  /// server's reply text; throws if the server refuses or reload fails.
  std::string admin_reload();

  /// Send one request without waiting for the reply (the hedging primitive:
  /// ReplicaClient fires a request, polls, and only then commits to a
  /// backup). Pair with read_response().
  void send_request(const Request& req);
  /// True if at least one byte of reply is readable within `timeout_ms`
  /// (0 = immediate check). A complete buffered frame also counts. Throws
  /// if not connected.
  bool wait_readable(int timeout_ms);

  /// Retries performed so far (reconnect + resend events).
  std::uint64_t retries() const noexcept { return retries_; }
  /// Requests that came back OVERLOADED at least once (shed observations).
  std::uint64_t sheds_seen() const noexcept { return sheds_seen_; }

  /// Send raw bytes on the wire (tests: garbage / truncated frames).
  void send_raw(const std::uint8_t* data, std::size_t size);
  /// Read one frame and decode it as a Response (throws on transport/frame
  /// error, like call()).
  Response read_response();

 private:
  /// call() wrapped in the reconnect/backoff retry loop.
  Response call_idempotent(const Request& req);
  void backoff(unsigned attempt);

  ClientOptions options_;
  int fd_ = -1;
  Framer framer_;
  std::string host_;
  std::uint16_t port_ = 0;
  Rng jitter_rng_{1};
  std::uint64_t retries_ = 0;
  std::uint64_t sheds_seen_ = 0;
};

}  // namespace fsdl::server
