// Minimal blocking client for the fsdl query service — one TCP connection,
// synchronous request/response. Shared by fsdl_loadgen, bench_server (E16),
// and the end-to-end tests.
#pragma once

#include <cstdint>
#include <string>

#include "server/protocol.hpp"

namespace fsdl::server {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to host:port ("127.0.0.1" for loopback). Throws on failure.
  void connect(const std::string& host, std::uint16_t port);
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Round-trip one request. Throws std::runtime_error on transport
  /// failure (send/recv error, peer close, malformed reply frame); protocol
  /// errors come back as Response{ok = false}.
  Response call(const Request& req);

  /// Shorthands.
  Dist dist(Vertex s, Vertex t, const FaultSet& faults);
  std::vector<Dist> batch(const std::vector<std::pair<Vertex, Vertex>>& pairs,
                          const FaultSet& faults);
  std::string stats();
  /// Prometheus text exposition of the server's metrics registry.
  std::string metrics();

  /// Send raw bytes on the wire (tests: garbage / truncated frames).
  void send_raw(const std::uint8_t* data, std::size_t size);
  /// Read one frame and decode it as a Response (throws on transport/frame
  /// error, like call()).
  Response read_response();

 private:
  int fd_ = -1;
  Framer framer_;
};

}  // namespace fsdl::server
