// The server's dispatch pool. The implementation moved to
// util/thread_pool.* so the label builder's callers and tools can share the
// same worker primitive; the server keeps its blocking-queue semantics
// (submit/shutdown, one long-lived job per connection) through this alias.
#pragma once

#include "util/thread_pool.hpp"

namespace fsdl::server {

using ThreadPool = ::fsdl::ThreadPool;

}  // namespace fsdl::server
