// Sharded LRU cache of PreparedFaults, keyed by the canonical fault set.
//
// The whole point of the serving layer: Lemma 2.6's O(label·|F|²)
// certification cost is paid once per *distinct* fault set, not once per
// query. A road-closure workload has few live closure sets and many (s, t)
// pairs, so nearly every query after the first is a cache hit that only
// filters two endpoint labels and runs Dijkstra (the E14 amortization,
// now shared across connections).
//
// Sharding: the canonical 64-bit fault-set hash picks a shard; each shard
// has its own mutex + LRU list, so unrelated fault sets never contend.
// Entries are handed out as shared_ptr, so eviction never invalidates an
// in-flight query. A miss builds *outside* the shard lock — two threads
// racing on the same new fault set may both build; the second insert is
// dropped in favour of the first (harmless duplicate work, no blocking of
// every other fault set behind one O(|F|²) build).
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/oracle.hpp"
#include "graph/fault_view.hpp"

namespace fsdl::server {

/// Order-independent canonical key of a fault set (sorted vertices, sorted
/// undirected edge keys). Equal sets => equal keys, and vice versa.
struct FaultKey {
  std::vector<Vertex> vertices;
  std::vector<std::uint64_t> edges;

  bool operator==(const FaultKey&) const = default;
};

FaultKey canonical_key(const FaultSet& faults);

/// 64-bit mixing hash of a canonical key (splitmix64 over the elements).
std::uint64_t fault_hash(const FaultKey& key);

class PreparedCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    double hit_rate() const {
      const double total = static_cast<double>(hits + misses);
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// capacity: max cached fault sets across all shards (>= 1);
  /// shards: power of two recommended; each shard holds capacity/shards.
  PreparedCache(const ForbiddenSetOracle& oracle, std::size_t capacity,
                std::size_t shards = 8);

  /// The PreparedFaults for `faults`, building and inserting on miss.
  std::shared_ptr<const PreparedFaults> get(const FaultSet& faults);

  Stats stats() const;

 private:
  struct Entry {
    FaultKey key;
    std::shared_ptr<const PreparedFaults> prepared;
  };
  struct Shard {
    std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
        index;  // hash -> entries (collision chain)
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  const ForbiddenSetOracle* oracle_;
  std::size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fsdl::server
