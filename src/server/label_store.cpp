#include "server/label_store.hpp"

namespace fsdl::server {

LabelSnapshot::LabelSnapshot(ForbiddenSetLabeling scheme,
                             std::size_t cache_capacity,
                             std::size_t cache_shards, std::uint64_t epoch)
    : owned_scheme_(std::make_unique<const ForbiddenSetLabeling>(
          std::move(scheme))),
      owned_oracle_(std::make_unique<const ForbiddenSetOracle>(*owned_scheme_)),
      oracle_(owned_oracle_.get()),
      cache_(*oracle_, cache_capacity, cache_shards),
      epoch_(epoch),
      partitioner_(std::make_unique<const shard::Partitioner>(
          oracle_->scheme().partition())) {}

LabelSnapshot::LabelSnapshot(const ForbiddenSetOracle& oracle,
                             std::size_t cache_capacity,
                             std::size_t cache_shards, std::uint64_t epoch)
    : oracle_(&oracle),
      cache_(oracle, cache_capacity, cache_shards),
      epoch_(epoch),
      partitioner_(std::make_unique<const shard::Partitioner>(
          oracle.scheme().partition())) {}

void LabelStore::publish(std::shared_ptr<const LabelSnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const LabelSnapshot> LabelStore::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

std::uint64_t LabelStore::epoch() const {
  const auto snap = current();
  return snap ? snap->epoch() : 0;
}

}  // namespace fsdl::server
