#include "server/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace fsdl::server {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), framer_(std::move(other.framer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    framer_ = std::move(other.framer_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bad host address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error(std::string("connect() failed: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  framer_ = Framer{};
}

void Client::send_raw(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Response Client::read_response() {
  std::vector<std::uint8_t> payload;
  std::uint8_t chunk[64 * 1024];
  while (!framer_.next(payload)) {
    if (framer_.fatal()) throw std::runtime_error("oversized reply frame");
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("recv() failed");
    }
    if (n == 0) throw std::runtime_error("server closed connection");
    framer_.feed(chunk, static_cast<std::size_t>(n));
  }
  Response resp;
  std::string error;
  if (!decode_response(payload.data(), payload.size(), resp, error)) {
    throw std::runtime_error("malformed reply: " + error);
  }
  return resp;
}

Response Client::call(const Request& req) {
  const auto wire = frame(encode_request(req));
  send_raw(wire.data(), wire.size());
  return read_response();
}

Dist Client::dist(Vertex s, Vertex t, const FaultSet& faults) {
  Request req;
  req.opcode = Opcode::kDist;
  req.pairs.emplace_back(s, t);
  req.faults = faults;
  const Response resp = call(req);
  if (!resp.ok || resp.distances.size() != 1) {
    throw std::runtime_error("DIST failed: " + resp.text);
  }
  return resp.distances[0];
}

std::vector<Dist> Client::batch(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    const FaultSet& faults) {
  Request req;
  req.opcode = Opcode::kBatch;
  req.pairs = pairs;
  req.faults = faults;
  Response resp = call(req);
  if (!resp.ok || resp.distances.size() != pairs.size()) {
    throw std::runtime_error("BATCH failed: " + resp.text);
  }
  return std::move(resp.distances);
}

std::string Client::stats() {
  Request req;
  req.opcode = Opcode::kStats;
  Response resp = call(req);
  if (!resp.ok) throw std::runtime_error("STATS failed: " + resp.text);
  return std::move(resp.text);
}

std::string Client::metrics() {
  Request req;
  req.opcode = Opcode::kMetrics;
  Response resp = call(req);
  if (!resp.ok) throw std::runtime_error("METRICS failed: " + resp.text);
  return std::move(resp.text);
}

}  // namespace fsdl::server
