#include "server/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/failpoint.hpp"

namespace fsdl::server {

namespace {

void set_socket_timeout(int fd, int option, unsigned ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

/// Transient server statuses: retrying the same idempotent query later is
/// expected to succeed (or at least is safe).
bool retryable_status(Status s) {
  return s == Status::kOverloaded || s == Status::kTimeout ||
         s == Status::kDraining;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : options_(other.options_),
      fd_(std::exchange(other.fd_, -1)),
      framer_(std::move(other.framer_)),
      host_(std::move(other.host_)),
      port_(other.port_),
      jitter_rng_(other.jitter_rng_),
      retries_(other.retries_),
      sheds_seen_(other.sheds_seen_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    options_ = other.options_;
    fd_ = std::exchange(other.fd_, -1);
    framer_ = std::move(other.framer_);
    host_ = std::move(other.host_);
    port_ = other.port_;
    jitter_rng_ = other.jitter_rng_;
    retries_ = other.retries_;
    sheds_seen_ = other.sheds_seen_;
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  host_ = host;
  port_ = port;
  if (const auto hit = FSDL_FAILPOINT("client.connect")) {
    throw std::runtime_error(std::string("connect() failed: ") +
                             std::strerror(hit.err));
  }
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("bad host address: " + host);
  }
  if (options_.connect_timeout_ms == 0) {
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error(std::string("connect() failed: ") +
                               std::strerror(errno));
    }
  } else {
    // Deadline-bounded connect: nonblocking connect + poll, then read back
    // SO_ERROR for the real outcome.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc < 0 && errno != EINPROGRESS) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error(std::string("connect() failed: ") +
                               std::strerror(err));
    }
    if (rc < 0) {
      pollfd pfd{fd_, POLLOUT, 0};
      rc = ::poll(&pfd, 1, static_cast<int>(options_.connect_timeout_ms));
      int soerr = ETIMEDOUT;
      if (rc > 0) {
        socklen_t len = sizeof soerr;
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len);
      }
      if (rc <= 0 || soerr != 0) {
        ::close(fd_);
        fd_ = -1;
        throw std::runtime_error(std::string("connect() failed: ") +
                                 std::strerror(soerr));
      }
    }
    ::fcntl(fd_, F_SETFL, flags);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  set_socket_timeout(fd_, SO_RCVTIMEO, options_.recv_timeout_ms);
  set_socket_timeout(fd_, SO_SNDTIMEO, options_.send_timeout_ms);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  framer_ = Framer{};
}

void Client::send_raw(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const auto hit = FSDL_FAILPOINT("client.send");
    ssize_t n;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      n = -1;
    } else {
      n = ::send(fd_, data + sent, hit.clamp(size - sent), MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("send() timed out");
      }
      throw std::runtime_error("send() failed");
    }
    sent += static_cast<std::size_t>(n);
  }
}

Response Client::read_response() {
  std::vector<std::uint8_t> payload;
  std::uint8_t chunk[64 * 1024];
  while (!framer_.next(payload)) {
    if (framer_.fatal()) {
      throw std::runtime_error(
          framer_.fatal_reason() == Framer::Fatal::kChecksum
              ? "reply frame failed checksum"
              : "oversized reply frame");
    }
    const auto hit = FSDL_FAILPOINT("client.recv");
    ssize_t n;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      n = -1;
    } else {
      n = ::recv(fd_, chunk, hit.clamp(sizeof chunk), 0);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("recv() timed out");
      }
      throw std::runtime_error("recv() failed");
    }
    if (n == 0) throw std::runtime_error("server closed connection");
    framer_.feed(chunk, static_cast<std::size_t>(n));
  }
  Response resp;
  std::string error;
  if (!decode_response(payload.data(), payload.size(), resp, error)) {
    throw std::runtime_error("malformed reply: " + error);
  }
  return resp;
}

Response Client::call(const Request& req) {
  const auto wire = frame(encode_request(req));
  send_raw(wire.data(), wire.size());
  return read_response();
}

void Client::backoff(unsigned attempt) {
  ++retries_;
  std::uint64_t ms = options_.retry_base_ms == 0 ? 1 : options_.retry_base_ms;
  for (unsigned k = 0; k < attempt && ms < options_.retry_max_ms; ++k) ms *= 2;
  if (ms > options_.retry_max_ms) ms = options_.retry_max_ms;
  // Jitter to [0.5x, 1x]: a fleet of shed clients must not retry in phase.
  const double jittered =
      static_cast<double>(ms) * (0.5 + 0.5 * jitter_rng_.uniform());
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::uint64_t>(jittered * 1000)));
}

Response Client::call_idempotent(const Request& req) {
  for (unsigned attempt = 0;; ++attempt) {
    const bool last = attempt >= options_.max_retries;
    try {
      if (!connected()) connect(host_, port_);
      Response resp = call(req);
      if (resp.status == Status::kOverloaded) ++sheds_seen_;
      if (!last && retryable_status(resp.status)) {
        // The server shed, timed out, or is draining; our stream may also
        // have been closed right after the frame. Reconnect fresh.
        close();
        backoff(attempt);
        continue;
      }
      return resp;
    } catch (const std::runtime_error&) {
      close();
      if (last) throw;
      backoff(attempt);
    }
  }
}

Dist Client::dist(Vertex s, Vertex t, const FaultSet& faults,
                  const TraceContext& trace) {
  Request req;
  req.opcode = Opcode::kDist;
  req.pairs.emplace_back(s, t);
  req.faults = faults;
  req.trace = trace;
  const Response resp = call_idempotent(req);
  // kDegraded carries real distances (served from a cached snapshot).
  if (!resp.answered() || resp.distances.size() != 1) {
    throw std::runtime_error(std::string("DIST failed (") +
                             status_name(resp.status) + "): " + resp.text);
  }
  return resp.distances[0];
}

std::vector<Dist> Client::batch(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    const FaultSet& faults, const TraceContext& trace) {
  Request req;
  req.opcode = Opcode::kBatch;
  req.pairs = pairs;
  req.faults = faults;
  req.trace = trace;
  Response resp = call_idempotent(req);
  if (!resp.answered() || resp.distances.size() != pairs.size()) {
    throw std::runtime_error(std::string("BATCH failed (") +
                             status_name(resp.status) + "): " + resp.text);
  }
  return std::move(resp.distances);
}

std::string Client::stats() {
  Request req;
  req.opcode = Opcode::kStats;
  Response resp = call(req);
  if (!resp.ok()) throw std::runtime_error("STATS failed: " + resp.text);
  return std::move(resp.text);
}

std::string Client::metrics() {
  Request req;
  req.opcode = Opcode::kMetrics;
  Response resp = call(req);
  if (!resp.ok()) throw std::runtime_error("METRICS failed: " + resp.text);
  return std::move(resp.text);
}

std::string Client::fleet_stats() {
  Request req;
  req.opcode = Opcode::kFleetStats;
  Response resp = call(req);
  if (!resp.ok()) {
    throw std::runtime_error("FLEET_STATS failed: " + resp.text);
  }
  return std::move(resp.text);
}

std::string Client::health() {
  Request req;
  req.opcode = Opcode::kHealth;
  Response resp = call(req);
  if (!resp.ok()) throw std::runtime_error("HEALTH failed: " + resp.text);
  return std::move(resp.text);
}

std::string Client::admin_reload() {
  Request req;
  req.opcode = Opcode::kReload;
  Response resp = call(req);
  if (!resp.ok()) throw std::runtime_error("RELOAD failed: " + resp.text);
  return std::move(resp.text);
}

void Client::send_request(const Request& req) {
  const auto wire = frame(encode_request(req));
  send_raw(wire.data(), wire.size());
}

bool Client::wait_readable(int timeout_ms) {
  if (fd_ < 0) throw std::runtime_error("not connected");
  // Bytes already buffered in the framer count as readable: a previous
  // recv() may have pulled more than one frame off the wire.
  if (framer_.pending_bytes() > 0) return true;
  pollfd pfd{fd_, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, timeout_ms);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

}  // namespace fsdl::server
