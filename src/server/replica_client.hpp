// Replica-aware client: one logical connection fanned over N fsdl_serve
// endpoints, with per-endpoint circuit breakers, automatic failover, and
// optional hedged requests. This is the client half of the HA story — the
// server half (hot reload, drain, HEALTH) lives in server/server.hpp.
//
// Routing model:
//   * sticky primary: requests go to one endpoint until it fails, so the
//     server-side PreparedCache stays hot for this client's fault sets;
//   * failover: a transport failure (connect/send/recv/frame error) or a
//     transient status (OVERLOADED, TIMEOUT, DRAINING) moves the primary to
//     the next healthy endpoint and retries there. kError is a bad request
//     and is returned as-is — no replica can answer it better;
//   * circuit breaker, per endpoint: `breaker_threshold` consecutive
//     failures open the breaker; an open endpoint takes no traffic for
//     `breaker_cooldown_ms`, then one half-open HEALTH probe decides
//     whether it closes again. A probe seeing "loading"/"draining" (or no
//     answer) re-opens the breaker for another cooldown;
//   * hedging (hedge_us > 0): fire on the primary, wait hedge_us, and if no
//     reply has arrived, fire the same request on the next healthy replica
//     and take whichever answers first. Only idempotent queries are hedged
//     (the same rule the Client retry policy uses). The loser's connection
//     is closed — its late reply must not desynchronize the stream — and
//     the race is bounded by recv_timeout_ms, so hedging never weakens the
//     deadline protection of the non-hedged path.
//
// Not thread-safe: like Client, one ReplicaClient per worker thread. The
// optional Metrics registry IS thread-safe, so many ReplicaClients can
// share one (fsdl_loadgen does, to get a fleet-wide Prometheus dump).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/client.hpp"
#include "server/metrics.hpp"
#include "server/protocol.hpp"
#include "util/rng.hpp"

namespace fsdl::server {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parse "host:port,host:port,..." (the --endpoints syntax). A bare "port"
/// element means 127.0.0.1:port. Throws std::runtime_error on malformed
/// input.
std::vector<Endpoint> parse_endpoints(const std::string& spec);

struct ReplicaClientOptions {
  /// Per-connection transport options. max_retries is forced to 0: the
  /// failover loop owns retrying, and an inner retry against a dead
  /// replica would only delay the switch.
  ClientOptions client;
  /// Total attempts for one idempotent request before giving up;
  /// 0 = 2 * (number of endpoints).
  unsigned max_attempts = 0;
  /// Consecutive failures that open an endpoint's breaker.
  unsigned breaker_threshold = 3;
  /// How long an open breaker blocks traffic before one half-open probe.
  unsigned breaker_cooldown_ms = 500;
  /// Hedge delay in microseconds; 0 disables hedging.
  unsigned hedge_us = 0;
  /// Backoff between failover sweeps when every endpoint just failed
  /// (same doubling+jitter shape as ClientOptions).
  unsigned retry_base_ms = 10;
  unsigned retry_max_ms = 1000;
  std::uint64_t seed = 1;
};

struct ReplicaStats {
  struct PerEndpoint {
    /// Requests this endpoint answered (including non-ok statuses).
    std::uint64_t requests = 0;
    /// Transport failures + transient statuses charged to this endpoint.
    std::uint64_t failures = 0;
    std::uint64_t breaker_opens = 0;
    /// Half-open HEALTH probes sent (successful or not).
    std::uint64_t probes = 0;
  };
  std::vector<PerEndpoint> endpoints;
  /// Times the primary moved to a different endpoint after a failure.
  std::uint64_t failovers = 0;
  /// Attempts beyond a request's first (the failover loop re-issuing).
  std::uint64_t retries = 0;
  /// OVERLOADED replies observed from any replica (shed-and-retry events).
  std::uint64_t sheds_seen = 0;
  std::uint64_t hedges_fired = 0;
  /// Hedges where the backup's answer arrived first / the primary's did.
  std::uint64_t hedges_won = 0;
  std::uint64_t hedges_lost = 0;
};

class ReplicaClient {
 public:
  /// At least one endpoint required. `metrics`, if given, receives
  /// failover/hedge events (fsdl_failovers_total & friends) and must
  /// outlive the client.
  ReplicaClient(std::vector<Endpoint> endpoints,
                const ReplicaClientOptions& options,
                Metrics* metrics = nullptr);

  ReplicaClient(const ReplicaClient&) = delete;
  ReplicaClient& operator=(const ReplicaClient&) = delete;

  /// Idempotent query shorthands, same contract as Client's: throw on
  /// protocol error or when every attempt failed. The optional trace
  /// context rides the request frame so every hop behind this client can
  /// attribute its spans to the caller's trace (see protocol.hpp).
  Dist dist(Vertex s, Vertex t, const FaultSet& faults,
            const TraceContext& trace = {});
  std::vector<Dist> batch(const std::vector<std::pair<Vertex, Vertex>>& pairs,
                          const FaultSet& faults,
                          const TraceContext& trace = {});
  /// STATS from the current primary (read-only, so routed with failover).
  std::string stats();

  /// The full failover/hedge loop for any idempotent request.
  Response call_idempotent(const Request& req);

  /// call_idempotent with an external budget: at most `attempts` total
  /// attempts (0 = the configured default; always clamped to it), and when
  /// `budget_us` > 0, no attempt after the first is started once that much
  /// wall time has passed. This is the hook the router's per-shard retry
  /// budget and deadline-aware give-up hang on: a dead shard gets however
  /// many sweeps its token bucket can pay for, and none at all once the
  /// client's own deadline is blown.
  Response call_idempotent_capped(const Request& req, unsigned attempts,
                                  double budget_us);

  const ReplicaStats& replica_stats() const noexcept { return stats_; }
  std::size_t num_endpoints() const noexcept { return replicas_.size(); }
  const Endpoint& endpoint(std::size_t i) const { return replicas_[i].addr; }
  /// Index of the current sticky primary.
  std::size_t primary() const noexcept { return static_cast<std::size_t>(primary_); }

 private:
  struct Replica {
    Endpoint addr;
    Client client;
    unsigned consecutive_failures = 0;
    bool breaker_open = false;
    /// Valid while breaker_open: steady-clock deadline (ms since an
    /// arbitrary epoch) after which a half-open probe may go out.
    std::uint64_t open_until_ms = 0;
  };

  /// Choose the endpoint for the next attempt: the sticky primary if its
  /// breaker is closed, else the next closed endpoint, else a half-open
  /// probe of the longest-cooled open endpoint. Returns -1 when every
  /// breaker is open and still cooling.
  int pick_replica();
  /// Half-open probe: reconnect + HEALTH. Closes the breaker only on a
  /// "ready" answer; anything else re-opens it for another cooldown.
  bool probe(std::size_t idx);
  void record_failure(std::size_t idx);
  void record_success(std::size_t idx);
  void open_breaker(Replica& r);
  /// Next closed endpoint != `exclude`, or -1.
  int next_closed(int exclude) const;
  /// One round-trip on replica `idx`, hedged onto a second replica when
  /// configured and possible. `served_by` reports which endpoint actually
  /// produced the reply (`idx` unless the hedge backup won the race), so
  /// the caller credits success/failure to the right breaker.
  Response roundtrip(std::size_t idx, const Request& req,
                     std::size_t& served_by);
  Response hedged_roundtrip(std::size_t idx, const Request& req,
                            std::size_t& served_by);
  void backoff(unsigned sweep);

  ReplicaClientOptions options_;
  std::vector<Replica> replicas_;
  Metrics* metrics_ = nullptr;
  ReplicaStats stats_;
  int primary_ = 0;
  Rng jitter_rng_{1};
};

}  // namespace fsdl::server
