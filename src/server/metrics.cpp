#include "server/metrics.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "core/serialize.hpp"
#include "obs/trace.hpp"
#include "util/failpoint.hpp"

namespace fsdl::server {

namespace {

const char* kTypeNames[kNumRequestTypes] = {
    "dist",   "batch",  "stats",     "metrics",
    "health", "reload", "get_label", "fleet_stats"};

void append_line(std::string& out, const char* fmt, ...) {
  char line[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  out += line;
}

}  // namespace

const char* request_type_name(RequestType t) {
  const unsigned k = static_cast<unsigned>(t);
  return k < kNumRequestTypes ? kTypeNames[k] : "?";
}

void append_prometheus_histogram(std::string& out, const char* name,
                                 const std::string& labels,
                                 const Histogram& h) {
  // `name_bucket{labels,le="u"} v` — the le label always comes last.
  const std::string bucket_open =
      std::string(name) + "_bucket{" + (labels.empty() ? "" : labels + ",");
  std::uint64_t cumulative = 0;
  for (const auto& b : h.buckets()) {
    cumulative += b.count;
    append_line(out, "%sle=\"%.6g\"} %" PRIu64 "\n", bucket_open.c_str(),
                b.upper, cumulative);
  }
  append_line(out, "%sle=\"+Inf\"} %" PRIu64 "\n", bucket_open.c_str(),
              h.count());
  const std::string plain = labels.empty() ? "" : "{" + labels + "}";
  append_line(out, "%s_sum%s %.6g\n", name, plain.c_str(), h.sum());
  append_line(out, "%s_count%s %" PRIu64 "\n", name, plain.c_str(), h.count());
}

const char* stage_counter_name(StageCounter c) {
  switch (c) {
    case StageCounter::kSketchVertices: return "sketch_vertices";
    case StageCounter::kSketchEdges: return "sketch_edges";
    case StageCounter::kEdgesConsidered: return "edges_considered";
    case StageCounter::kSafeEdgeChecks: return "safe_edge_checks";
    case StageCounter::kDijkstraRelaxations: return "dijkstra_relaxations";
    case StageCounter::kCount_: break;
  }
  return "?";
}

const char* failure_counter_name(FailureCounter c) {
  switch (c) {
    case FailureCounter::kRequestTimeouts: return "request_timeouts";
    case FailureCounter::kSheds: return "sheds";
    case FailureCounter::kEvictions: return "evictions";
    case FailureCounter::kAcceptRetries: return "accept_retries";
    case FailureCounter::kDrainRejects: return "drain_rejects";
    case FailureCounter::kFrameCrcErrors: return "frame_crc_errors";
    case FailureCounter::kCount_: break;
  }
  return "?";
}

const char* reload_result_name(ReloadResult r) {
  switch (r) {
    case ReloadResult::kOk: return "ok";
    case ReloadResult::kCrcFailed: return "crc_failed";
    case ReloadResult::kError: return "error";
    case ReloadResult::kCount_: break;
  }
  return "?";
}

const char* label_fetch_result_name(LabelFetchResult r) {
  switch (r) {
    case LabelFetchResult::kOk: return "ok";
    case LabelFetchResult::kError: return "error";
    case LabelFetchResult::kUnavailable: return "unavailable";
    case LabelFetchResult::kCount_: break;
  }
  return "?";
}

const char* degraded_reason_name(DegradedReason r) {
  switch (r) {
    case DegradedReason::kStaleLabel: return "stale_label";
    case DegradedReason::kShardDown: return "shard_down";
    case DegradedReason::kCount_: break;
  }
  return "?";
}

Metrics::Metrics() : start_(std::chrono::steady_clock::now()) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& s : stages_) s.store(0, std::memory_order_relaxed);
  for (auto& f : failures_) f.store(0, std::memory_order_relaxed);
  for (auto& r : reloads_) r.store(0, std::memory_order_relaxed);
  for (auto& l : label_fetches_) l.store(0, std::memory_order_relaxed);
  label_cache_hits_.store(0, std::memory_order_relaxed);
  label_cache_misses_.store(0, std::memory_order_relaxed);
  for (auto& d : degraded_) d.store(0, std::memory_order_relaxed);
  reactor_stalls_.store(0, std::memory_order_relaxed);
  worker_stalls_.store(0, std::memory_order_relaxed);
  open_connections_.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  queries_.store(0, std::memory_order_relaxed);
  connections_.store(0, std::memory_order_relaxed);
  failovers_.store(0, std::memory_order_relaxed);
  hedges_won_.store(0, std::memory_order_relaxed);
  hedges_lost_.store(0, std::memory_order_relaxed);
}

void Metrics::record(RequestType type, std::uint64_t queries, double micros) {
  const unsigned k = static_cast<unsigned>(type);
  counts_[k].fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(lat_mu_[k]);
  latency_[k].add(micros);
}

void Metrics::record_error() {
  errors_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_connection() {
  connections_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_query_stats(const QueryStats& stats) {
  auto add = [&](StageCounter c, std::size_t n) {
    if (n != 0) {
      stages_[static_cast<unsigned>(c)].fetch_add(n,
                                                  std::memory_order_relaxed);
    }
  };
  add(StageCounter::kSketchVertices, stats.sketch_vertices);
  add(StageCounter::kSketchEdges, stats.sketch_edges);
  add(StageCounter::kEdgesConsidered, stats.edges_considered);
  add(StageCounter::kSafeEdgeChecks, stats.pb_checks);
  add(StageCounter::kDijkstraRelaxations, stats.dijkstra_relaxations);
}

double Metrics::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string Metrics::render(const PreparedCache::Stats& cache) const {
  std::string out;
  const double up = uptime_seconds();
  const std::uint64_t q = total_queries();
  append_line(out, "uptime_s: %.1f\n", up);
  append_line(out, "connections: %" PRIu64 "\n",
              connections_.load(std::memory_order_relaxed));
  append_line(out, "open_connections: %lld\n",
              static_cast<long long>(open_connections()));
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    if (!batch_size_.empty()) {
      append_line(out,
                  "batch_size: groups=%" PRIu64
                  " requests=%.0f mean=%.2f max=%.0f\n",
                  batch_size_.count(), batch_size_.sum(), batch_size_.mean(),
                  batch_size_.max());
    }
  }
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!loop_latency_.empty()) {
      append_line(out,
                  "reactor_loop_us: p50=%.1f p99=%.1f max=%.1f\n",
                  loop_latency_.percentile(50), loop_latency_.percentile(99),
                  loop_latency_.max());
    }
  }
  append_line(out, "queries_total: %" PRIu64 "\n", q);
  append_line(out, "qps: %.1f\n", up > 0 ? static_cast<double>(q) / up : 0.0);
  append_line(out, "errors: %" PRIu64 "\n", errors());
  for (unsigned k = 0; k < kNumRequestTypes; ++k) {
    const std::uint64_t n = counts_[k].load(std::memory_order_relaxed);
    append_line(out, "%s_requests: %" PRIu64 "\n", kTypeNames[k], n);
    std::lock_guard<std::mutex> lock(lat_mu_[k]);
    if (!latency_[k].empty()) {
      append_line(out,
                  "%s_latency_us: mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                  "max=%.1f\n",
                  kTypeNames[k], latency_[k].mean(), latency_[k].percentile(50),
                  latency_[k].percentile(95), latency_[k].percentile(99),
                  latency_[k].max());
    }
  }
  for (unsigned k = 0; k < kNumStageCounters; ++k) {
    append_line(out, "stage_%s: %" PRIu64 "\n",
                stage_counter_name(static_cast<StageCounter>(k)),
                stages_[k].load(std::memory_order_relaxed));
  }
  for (unsigned k = 0; k < kNumFailureCounters; ++k) {
    append_line(out, "%s: %" PRIu64 "\n",
                failure_counter_name(static_cast<FailureCounter>(k)),
                failures_[k].load(std::memory_order_relaxed));
  }
  append_line(out, "failovers: %" PRIu64 "\n", failovers());
  append_line(out, "hedged_won: %" PRIu64 "\n", hedges(true));
  append_line(out, "hedged_lost: %" PRIu64 "\n", hedges(false));
  for (unsigned k = 0; k < kNumReloadResults; ++k) {
    append_line(out, "label_reloads_%s: %" PRIu64 "\n",
                reload_result_name(static_cast<ReloadResult>(k)),
                reloads_[k].load(std::memory_order_relaxed));
  }
  for (unsigned k = 0; k < kNumLabelFetchResults; ++k) {
    append_line(out, "router_label_fetches_%s: %" PRIu64 "\n",
                label_fetch_result_name(static_cast<LabelFetchResult>(k)),
                label_fetches_[k].load(std::memory_order_relaxed));
  }
  append_line(out, "router_label_cache_hits: %" PRIu64 "\n",
              label_cache(true));
  append_line(out, "router_label_cache_misses: %" PRIu64 "\n",
              label_cache(false));
  for (unsigned k = 0; k < kNumDegradedReasons; ++k) {
    append_line(out, "degraded_responses_%s: %" PRIu64 "\n",
                degraded_reason_name(static_cast<DegradedReason>(k)),
                degraded_[k].load(std::memory_order_relaxed));
  }
  append_line(out, "reactor_stalls: %" PRIu64 "\n", reactor_stalls());
  append_line(out, "worker_stalls: %" PRIu64 "\n", worker_stalls());
  append_line(out, "label_crc_failures: %" PRIu64 "\n",
              labeling_crc_failures());
  for (const auto& fp : failpoint::stats()) {
    append_line(out, "failpoint_%s: spec=%s hits=%" PRIu64 " fires=%" PRIu64
                     "\n",
                fp.point.c_str(), fp.spec.c_str(), fp.hits, fp.fires);
  }
  append_line(out, "cache_entries: %zu\n", cache.entries);
  append_line(out, "cache_hits: %" PRIu64 "\n", cache.hits);
  append_line(out, "cache_misses: %" PRIu64 "\n", cache.misses);
  append_line(out, "cache_evictions: %" PRIu64 "\n", cache.evictions);
  append_line(out, "cache_hit_rate: %.3f\n", cache.hit_rate());
  return out;
}

std::string Metrics::render_prometheus(
    const PreparedCache::Stats& cache) const {
  std::string out;
  out.reserve(4096);

  append_line(out, "# HELP fsdl_uptime_seconds Seconds since server start.\n");
  append_line(out, "# TYPE fsdl_uptime_seconds gauge\n");
  append_line(out, "fsdl_uptime_seconds %.3f\n", uptime_seconds());

  append_line(out, "# HELP fsdl_connections_total Accepted TCP connections.\n");
  append_line(out, "# TYPE fsdl_connections_total counter\n");
  append_line(out, "fsdl_connections_total %" PRIu64 "\n",
              connections_.load(std::memory_order_relaxed));

  append_line(out, "# HELP fsdl_open_connections Currently open "
                   "connections.\n");
  append_line(out, "# TYPE fsdl_open_connections gauge\n");
  append_line(out, "fsdl_open_connections %lld\n",
              static_cast<long long>(open_connections()));

  append_line(out,
              "# HELP fsdl_batch_size Requests coalesced per dispatched "
              "fault-set batch group (reactor data plane).\n");
  append_line(out, "# TYPE fsdl_batch_size histogram\n");
  {
    Histogram snapshot(1.25);
    {
      std::lock_guard<std::mutex> lock(batch_mu_);
      snapshot = batch_size_;
    }
    append_prometheus_histogram(out, "fsdl_batch_size", "", snapshot);
  }

  append_line(out,
              "# HELP fsdl_reactor_loop_latency_microseconds Busy time per "
              "reactor event-loop iteration.\n");
  append_line(out,
              "# TYPE fsdl_reactor_loop_latency_microseconds histogram\n");
  {
    Histogram snapshot(1.25);
    {
      std::lock_guard<std::mutex> lock(loop_mu_);
      snapshot = loop_latency_;
    }
    append_prometheus_histogram(
        out, "fsdl_reactor_loop_latency_microseconds", "", snapshot);
  }

  append_line(out, "# HELP fsdl_requests_total Completed requests by type.\n");
  append_line(out, "# TYPE fsdl_requests_total counter\n");
  for (unsigned k = 0; k < kNumRequestTypes; ++k) {
    append_line(out, "fsdl_requests_total{type=\"%s\"} %" PRIu64 "\n",
                kTypeNames[k], counts_[k].load(std::memory_order_relaxed));
  }

  append_line(out,
              "# HELP fsdl_queries_total Point-to-point distance queries "
              "answered.\n");
  append_line(out, "# TYPE fsdl_queries_total counter\n");
  append_line(out, "fsdl_queries_total %" PRIu64 "\n", total_queries());

  append_line(out, "# HELP fsdl_errors_total Requests answered with an "
                   "error.\n");
  append_line(out, "# TYPE fsdl_errors_total counter\n");
  append_line(out, "fsdl_errors_total %" PRIu64 "\n", errors());

  append_line(out,
              "# HELP fsdl_request_latency_microseconds Request wall time by "
              "type (geometric buckets).\n");
  append_line(out, "# TYPE fsdl_request_latency_microseconds histogram\n");
  for (unsigned k = 0; k < kNumRequestTypes; ++k) {
    Histogram snapshot(1.25);
    {
      std::lock_guard<std::mutex> lock(lat_mu_[k]);
      snapshot = latency_[k];
    }
    append_prometheus_histogram(out, "fsdl_request_latency_microseconds",
                                std::string("type=\"") + kTypeNames[k] + "\"",
                                snapshot);
  }

  append_line(out,
              "# HELP fsdl_stage_work_total Decoder work units by stage "
              "(see DESIGN.md instrumentation table).\n");
  append_line(out, "# TYPE fsdl_stage_work_total counter\n");
  for (unsigned k = 0; k < kNumStageCounters; ++k) {
    append_line(out, "fsdl_stage_work_total{stage=\"%s\"} %" PRIu64 "\n",
                stage_counter_name(static_cast<StageCounter>(k)),
                stages_[k].load(std::memory_order_relaxed));
  }

  append_line(out,
              "# HELP fsdl_failure_events_total Fault-tolerance events "
              "(load shedding, deadline evictions, accept retries, frame "
              "corruption).\n");
  append_line(out, "# TYPE fsdl_failure_events_total counter\n");
  for (unsigned k = 0; k < kNumFailureCounters; ++k) {
    append_line(out, "fsdl_failure_events_total{event=\"%s\"} %" PRIu64 "\n",
                failure_counter_name(static_cast<FailureCounter>(k)),
                failures_[k].load(std::memory_order_relaxed));
  }

  append_line(out,
              "# HELP fsdl_failovers_total Requests rerouted to another "
              "replica after a failure or transient status (client-side).\n");
  append_line(out, "# TYPE fsdl_failovers_total counter\n");
  append_line(out, "fsdl_failovers_total %" PRIu64 "\n", failovers());

  append_line(out,
              "# HELP fsdl_hedged_requests_total Hedged requests that fired "
              "a backup, by whether the backup answered first.\n");
  append_line(out, "# TYPE fsdl_hedged_requests_total counter\n");
  append_line(out, "fsdl_hedged_requests_total{outcome=\"won\"} %" PRIu64 "\n",
              hedges(true));
  append_line(out, "fsdl_hedged_requests_total{outcome=\"lost\"} %" PRIu64 "\n",
              hedges(false));

  append_line(out,
              "# HELP fsdl_label_reloads_total Hot label reload attempts "
              "(SIGHUP / admin RELOAD) by outcome.\n");
  append_line(out, "# TYPE fsdl_label_reloads_total counter\n");
  for (unsigned k = 0; k < kNumReloadResults; ++k) {
    append_line(out, "fsdl_label_reloads_total{result=\"%s\"} %" PRIu64 "\n",
                reload_result_name(static_cast<ReloadResult>(k)),
                reloads_[k].load(std::memory_order_relaxed));
  }

  append_line(out,
              "# HELP fsdl_router_label_fetches_total Router-to-shard "
              "GET_LABEL round trips by outcome (cache misses only).\n");
  append_line(out, "# TYPE fsdl_router_label_fetches_total counter\n");
  for (unsigned k = 0; k < kNumLabelFetchResults; ++k) {
    append_line(out, "fsdl_router_label_fetches_total{result=\"%s\"} %" PRIu64
                     "\n",
                label_fetch_result_name(static_cast<LabelFetchResult>(k)),
                label_fetches_[k].load(std::memory_order_relaxed));
  }

  append_line(out,
              "# HELP fsdl_router_label_cache_hits_total Router label-LRU "
              "lookups served without a shard round trip.\n");
  append_line(out, "# TYPE fsdl_router_label_cache_hits_total counter\n");
  append_line(out, "fsdl_router_label_cache_hits_total %" PRIu64 "\n",
              label_cache(true));
  append_line(out,
              "# HELP fsdl_router_label_cache_misses_total Router label-LRU "
              "lookups that required a shard fetch.\n");
  append_line(out, "# TYPE fsdl_router_label_cache_misses_total counter\n");
  append_line(out, "fsdl_router_label_cache_misses_total %" PRIu64 "\n",
              label_cache(false));

  append_line(out,
              "# HELP fsdl_degraded_responses_total Queries answered "
              "DEGRADED from a cached label snapshot while the owning shard "
              "was unreachable, by reason.\n");
  append_line(out, "# TYPE fsdl_degraded_responses_total counter\n");
  for (unsigned k = 0; k < kNumDegradedReasons; ++k) {
    append_line(out, "fsdl_degraded_responses_total{reason=\"%s\"} %" PRIu64
                     "\n",
                degraded_reason_name(static_cast<DegradedReason>(k)),
                degraded_[k].load(std::memory_order_relaxed));
  }

  append_line(out,
              "# HELP fsdl_reactor_stalls_total Watchdog-observed stall "
              "windows in which a reactor event loop made no progress.\n");
  append_line(out, "# TYPE fsdl_reactor_stalls_total counter\n");
  append_line(out, "fsdl_reactor_stalls_total %" PRIu64 "\n",
              reactor_stalls());
  append_line(out,
              "# HELP fsdl_worker_stalls_total Watchdog-observed stall "
              "windows in which the saturated worker pool completed no "
              "jobs.\n");
  append_line(out, "# TYPE fsdl_worker_stalls_total counter\n");
  append_line(out, "fsdl_worker_stalls_total %" PRIu64 "\n", worker_stalls());

  append_line(out,
              "# HELP fsdl_label_crc_failures_total Label files rejected at "
              "load because the body CRC32 did not match (process-wide).\n");
  append_line(out, "# TYPE fsdl_label_crc_failures_total counter\n");
  append_line(out, "fsdl_label_crc_failures_total %" PRIu64 "\n",
              labeling_crc_failures());

  // Failpoint observability: only rendered while points are armed, so a
  // torture run can assert its faults actually landed without the armed-
  // only subsystem polluting production scrapes.
  const auto failpoints = failpoint::stats();
  if (!failpoints.empty()) {
    append_line(out,
                "# HELP fsdl_failpoint_hits_total Armed failpoint "
                "evaluations by point (test/torture runs only).\n");
    append_line(out, "# TYPE fsdl_failpoint_hits_total counter\n");
    for (const auto& fp : failpoints) {
      append_line(out, "fsdl_failpoint_hits_total{point=\"%s\"} %" PRIu64 "\n",
                  fp.point.c_str(), fp.hits);
    }
    append_line(out,
                "# HELP fsdl_failpoint_fires_total Armed failpoint "
                "evaluations whose trigger injected the fault.\n");
    append_line(out, "# TYPE fsdl_failpoint_fires_total counter\n");
    for (const auto& fp : failpoints) {
      append_line(out,
                  "fsdl_failpoint_fires_total{point=\"%s\"} %" PRIu64 "\n",
                  fp.point.c_str(), fp.fires);
    }
  }

  append_line(out,
              "# HELP fsdl_prepared_cache_entries Fault sets currently "
              "prepared.\n");
  append_line(out, "# TYPE fsdl_prepared_cache_entries gauge\n");
  append_line(out, "fsdl_prepared_cache_entries %zu\n", cache.entries);
  append_line(out, "# HELP fsdl_prepared_cache_events_total PreparedFaults "
                   "LRU events.\n");
  append_line(out, "# TYPE fsdl_prepared_cache_events_total counter\n");
  append_line(out, "fsdl_prepared_cache_events_total{event=\"hit\"} %" PRIu64
                   "\n",
              cache.hits);
  append_line(out, "fsdl_prepared_cache_events_total{event=\"miss\"} %" PRIu64
                   "\n",
              cache.misses);
  append_line(out,
              "fsdl_prepared_cache_events_total{event=\"eviction\"} %" PRIu64
              "\n",
              cache.evictions);

#if FSDL_TRACE_ENABLED
  // Tracing build: also expose the process-wide obs counters (they cover
  // every oracle in the process, not only this server's request path).
  const obs::CounterSnapshot snap = obs::snapshot_counters();
  append_line(out, "# HELP fsdl_obs_work_total Process-wide instrumentation "
                   "counters (FSDL_TRACE build).\n");
  append_line(out, "# TYPE fsdl_obs_work_total counter\n");
  for (unsigned k = 0; k < obs::kNumCounters; ++k) {
    append_line(out, "fsdl_obs_work_total{counter=\"%s\"} %" PRIu64 "\n",
                obs::counter_name(static_cast<obs::Counter>(k)),
                snap.values[k]);
  }
#endif
  return out;
}

}  // namespace fsdl::server
