#include "server/metrics.hpp"

#include <cstdio>

namespace fsdl::server {

Metrics::Metrics() : start_(std::chrono::steady_clock::now()) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  errors_.store(0, std::memory_order_relaxed);
  queries_.store(0, std::memory_order_relaxed);
  connections_.store(0, std::memory_order_relaxed);
}

void Metrics::record(RequestType type, std::uint64_t queries, double micros) {
  counts_[static_cast<unsigned>(type)].fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(lat_mu_);
  latency_[static_cast<unsigned>(type)].add(micros);
}

void Metrics::record_error() {
  errors_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_connection() {
  connections_.fetch_add(1, std::memory_order_relaxed);
}

double Metrics::uptime_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string Metrics::render(const PreparedCache::Stats& cache) const {
  static const char* kNames[kNumRequestTypes] = {"dist", "batch", "stats"};
  char line[160];
  std::string out;
  const double up = uptime_seconds();
  const std::uint64_t q = total_queries();
  std::snprintf(line, sizeof line, "uptime_s: %.1f\n", up);
  out += line;
  std::snprintf(line, sizeof line, "connections: %llu\n",
                static_cast<unsigned long long>(
                    connections_.load(std::memory_order_relaxed)));
  out += line;
  std::snprintf(line, sizeof line, "queries_total: %llu\n",
                static_cast<unsigned long long>(q));
  out += line;
  std::snprintf(line, sizeof line, "qps: %.1f\n",
                up > 0 ? static_cast<double>(q) / up : 0.0);
  out += line;
  std::snprintf(line, sizeof line, "errors: %llu\n",
                static_cast<unsigned long long>(errors()));
  out += line;
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    for (unsigned k = 0; k < kNumRequestTypes; ++k) {
      const std::uint64_t n = counts_[k].load(std::memory_order_relaxed);
      std::snprintf(line, sizeof line, "%s_requests: %llu\n", kNames[k],
                    static_cast<unsigned long long>(n));
      out += line;
      if (!latency_[k].empty()) {
        std::snprintf(line, sizeof line,
                      "%s_latency_us: mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                      "max=%.1f\n",
                      kNames[k], latency_[k].mean(), latency_[k].percentile(50),
                      latency_[k].percentile(95), latency_[k].percentile(99),
                      latency_[k].max());
        out += line;
      }
    }
  }
  std::snprintf(line, sizeof line, "cache_entries: %zu\n", cache.entries);
  out += line;
  std::snprintf(line, sizeof line, "cache_hits: %llu\n",
                static_cast<unsigned long long>(cache.hits));
  out += line;
  std::snprintf(line, sizeof line, "cache_misses: %llu\n",
                static_cast<unsigned long long>(cache.misses));
  out += line;
  std::snprintf(line, sizeof line, "cache_evictions: %llu\n",
                static_cast<unsigned long long>(cache.evictions));
  out += line;
  std::snprintf(line, sizeof line, "cache_hit_rate: %.3f\n",
                cache.hit_rate());
  out += line;
  return out;
}

}  // namespace fsdl::server
