#include "server/replica_client.hpp"

#include <poll.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

namespace fsdl::server {

namespace {

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool retryable_status(Status s) {
  return s == Status::kOverloaded || s == Status::kTimeout ||
         s == Status::kDraining;
}

}  // namespace

std::vector<Endpoint> parse_endpoints(const std::string& spec) {
  std::vector<Endpoint> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) {
      if (comma == std::string::npos && out.empty() && spec.empty()) break;
      throw std::runtime_error("empty endpoint in list: \"" + spec + "\"");
    }
    Endpoint ep;
    const std::size_t colon = item.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? item : item.substr(colon + 1);
    ep.host = colon == std::string::npos ? std::string("127.0.0.1")
                                         : item.substr(0, colon);
    if (ep.host.empty()) ep.host = "127.0.0.1";
    try {
      const unsigned long p = std::stoul(port_str);
      if (p == 0 || p > 65535) throw std::out_of_range("port");
      ep.port = static_cast<std::uint16_t>(p);
    } catch (const std::exception&) {
      throw std::runtime_error("bad endpoint \"" + item +
                               "\" (want host:port)");
    }
    out.push_back(std::move(ep));
  }
  if (out.empty()) throw std::runtime_error("no endpoints given");
  return out;
}

ReplicaClient::ReplicaClient(std::vector<Endpoint> endpoints,
                             const ReplicaClientOptions& options,
                             Metrics* metrics)
    : options_(options), metrics_(metrics), jitter_rng_(options.seed) {
  if (endpoints.empty()) {
    throw std::runtime_error("ReplicaClient needs at least one endpoint");
  }
  // The failover loop owns retries; an inner retry against a dead replica
  // would only delay the switch to a live one.
  options_.client.max_retries = 0;
  replicas_.reserve(endpoints.size());
  for (auto& ep : endpoints) {
    Replica r;
    r.addr = std::move(ep);
    r.client = Client(options_.client);
    replicas_.push_back(std::move(r));
  }
  stats_.endpoints.resize(replicas_.size());
}

void ReplicaClient::open_breaker(Replica& r) {
  if (!r.breaker_open) {
    const std::size_t idx = static_cast<std::size_t>(&r - replicas_.data());
    ++stats_.endpoints[idx].breaker_opens;
  }
  r.breaker_open = true;
  r.open_until_ms = now_ms() + options_.breaker_cooldown_ms;
  r.client.close();
}

void ReplicaClient::record_failure(std::size_t idx) {
  Replica& r = replicas_[idx];
  ++stats_.endpoints[idx].failures;
  ++r.consecutive_failures;
  r.client.close();
  if (r.consecutive_failures >= options_.breaker_threshold) open_breaker(r);
}

void ReplicaClient::record_success(std::size_t idx) {
  Replica& r = replicas_[idx];
  ++stats_.endpoints[idx].requests;
  r.consecutive_failures = 0;
  r.breaker_open = false;
}

bool ReplicaClient::probe(std::size_t idx) {
  Replica& r = replicas_[idx];
  ++stats_.endpoints[idx].probes;
  try {
    r.client.close();
    r.client.connect(r.addr.host, r.addr.port);
    const std::string h = r.client.health();
    if (h.rfind("ready", 0) == 0) {
      r.breaker_open = false;
      r.consecutive_failures = 0;
      return true;
    }
  } catch (const std::exception&) {
  }
  // Probe refused ("loading"/"draining") or failed outright: another
  // cooldown before the next probe.
  open_breaker(r);
  return false;
}

int ReplicaClient::next_closed(int exclude) const {
  const int n = static_cast<int>(replicas_.size());
  for (int step = 0; step < n; ++step) {
    const int idx = (primary_ + step) % n;
    if (idx != exclude && !replicas_[idx].breaker_open) return idx;
  }
  return -1;
}

int ReplicaClient::pick_replica() {
  if (!replicas_[primary_].breaker_open) return primary_;
  const int closed = next_closed(-1);
  if (closed >= 0) return closed;
  // Everyone is open. Probe the endpoint whose cooldown expires first;
  // wait for it if the expiry is imminent (capped so one pick never
  // stalls longer than ~one cooldown).
  int best = 0;
  for (int i = 1; i < static_cast<int>(replicas_.size()); ++i) {
    if (replicas_[i].open_until_ms < replicas_[best].open_until_ms) best = i;
  }
  const std::uint64_t now = now_ms();
  if (replicas_[best].open_until_ms > now) {
    const std::uint64_t wait = replicas_[best].open_until_ms - now;
    std::this_thread::sleep_for(std::chrono::milliseconds(
        wait > options_.breaker_cooldown_ms ? options_.breaker_cooldown_ms
                                            : wait));
  }
  return probe(static_cast<std::size_t>(best)) ? best : -1;
}

void ReplicaClient::backoff(unsigned sweep) {
  std::uint64_t ms = options_.retry_base_ms == 0 ? 1 : options_.retry_base_ms;
  for (unsigned k = 0; k < sweep && ms < options_.retry_max_ms; ++k) ms *= 2;
  if (ms > options_.retry_max_ms) ms = options_.retry_max_ms;
  const double jittered =
      static_cast<double>(ms) * (0.5 + 0.5 * jitter_rng_.uniform());
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<std::uint64_t>(jittered * 1000)));
}

Response ReplicaClient::roundtrip(std::size_t idx, const Request& req,
                                  std::size_t& served_by) {
  served_by = idx;
  Replica& r = replicas_[idx];
  if (!r.client.connected()) r.client.connect(r.addr.host, r.addr.port);
  if (options_.hedge_us > 0 && replicas_.size() > 1 &&
      (req.opcode == Opcode::kDist || req.opcode == Opcode::kBatch ||
       req.opcode == Opcode::kGetLabel)) {
    return hedged_roundtrip(idx, req, served_by);
  }
  return r.client.call(req);
}

Response ReplicaClient::hedged_roundtrip(std::size_t idx, const Request& req,
                                         std::size_t& served_by) {
  Replica& prim = replicas_[idx];
  prim.client.send_request(req);
  const int wait_ms =
      static_cast<int>((options_.hedge_us + 999) / 1000);  // ceil to ms
  if (prim.client.wait_readable(wait_ms)) return prim.client.read_response();

  const int backup_idx = next_closed(static_cast<int>(idx));
  if (backup_idx < 0) return prim.client.read_response();
  Replica& back = replicas_[static_cast<std::size_t>(backup_idx)];
  try {
    if (!back.client.connected()) {
      back.client.connect(back.addr.host, back.addr.port);
    }
    back.client.send_request(req);
  } catch (const std::exception&) {
    // The hedge could not even launch; charge the backup and fall back to
    // waiting on the primary alone.
    record_failure(static_cast<std::size_t>(backup_idx));
    return prim.client.read_response();
  }
  ++stats_.hedges_fired;

  // Race the two streams: first readable fd wins the hedge. The race is
  // bounded by recv_timeout_ms (when set): without a deadline here, turning
  // hedging on would strip the timeout protection the non-hedged path gets
  // from SO_RCVTIMEO — a partitioned pair of replicas would hang the client
  // forever.
  const std::uint64_t deadline_ms =
      options_.client.recv_timeout_ms == 0
          ? 0
          : now_ms() + options_.client.recv_timeout_ms;
  for (;;) {
    int poll_ms = 100;
    if (deadline_ms != 0) {
      const std::uint64_t now = now_ms();
      if (now >= deadline_ms) {
        // Both streams still have an unread reply in flight; the protocol
        // has no request IDs, so a later request on either stream would
        // read the stale frame as its own answer. Close both.
        prim.client.close();
        back.client.close();
        throw std::runtime_error("hedged request timed out on both replicas");
      }
      const std::uint64_t left = deadline_ms - now;
      if (left < 100) poll_ms = static_cast<int>(left);
    }
    pollfd pfds[2] = {{prim.client.fd(), POLLIN, 0},
                      {back.client.fd(), POLLIN, 0}};
    const int rc = ::poll(pfds, 2, poll_ms);
    if (rc < 0) continue;
    const bool prim_ready = (pfds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    const bool back_ready = (pfds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    if (!prim_ready && !back_ready) continue;
    const bool backup_won = back_ready && !prim_ready;
    Replica& winner = backup_won ? back : prim;
    Replica& loser = backup_won ? prim : back;
    Response resp;
    try {
      resp = winner.client.read_response();
    } catch (...) {
      // The winner's stream broke mid-reply (e.g. the server was SIGKILLed
      // after becoming readable). The loser's reply is still in flight and
      // will never be read — close BOTH streams before the failover loop
      // retries, or the loser's stale frame would answer the next request.
      loser.client.close();
      winner.client.close();
      throw;
    }
    // The loser's reply is in flight and will never be read; close so a
    // stale frame cannot desynchronize the next request on that stream.
    loser.client.close();
    ++(backup_won ? stats_.hedges_won : stats_.hedges_lost);
    if (metrics_ != nullptr) metrics_->record_hedge(backup_won);
    if (backup_won) served_by = static_cast<std::size_t>(backup_idx);
    return resp;
  }
}

Response ReplicaClient::call_idempotent(const Request& req) {
  return call_idempotent_capped(req, 0, 0.0);
}

Response ReplicaClient::call_idempotent_capped(const Request& req,
                                               unsigned attempts,
                                               double budget_us) {
  const unsigned configured =
      options_.max_attempts != 0
          ? options_.max_attempts
          : 2 * static_cast<unsigned>(replicas_.size());
  const unsigned max_attempts =
      attempts == 0 ? configured : std::min(attempts, configured);
  const std::uint64_t give_up_ms =
      budget_us > 0 ? now_ms() + static_cast<std::uint64_t>(budget_us / 1000.0)
                    : 0;
  std::string last_error = "no endpoint available";
  int last_failed = -1;
  unsigned sweep = 0;
  for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
    if (give_up_ms != 0 && attempt > 0 && now_ms() >= give_up_ms) {
      // The caller's deadline is already blown: a retry could only produce
      // an answer nobody is waiting for. Stop burning budget.
      last_error += " (gave up: caller deadline exhausted)";
      break;
    }
    if (attempt > 0) ++stats_.retries;
    const int idx = pick_replica();
    if (idx < 0) {
      // Every breaker open and the probe failed too: back off before the
      // next sweep so a fully dead fleet is not hammered in a tight loop.
      backoff(sweep++);
      continue;
    }
    if (last_failed >= 0 && idx != last_failed) {
      ++stats_.failovers;
      if (metrics_ != nullptr) metrics_->record_failover();
    }
    last_failed = -1;
    primary_ = idx;
    try {
      // `served` reports which endpoint actually produced the reply — the
      // hedge backup when it wins the race, `idx` otherwise — so success
      // and failure land on the replica that answered, not the one we
      // aimed at (a primary that always loses hedges must not have its
      // breaker reset by the backup's answers).
      std::size_t served = static_cast<std::size_t>(idx);
      Response resp = roundtrip(static_cast<std::size_t>(idx), req, served);
      if (retryable_status(resp.status)) {
        // OVERLOADED/TIMEOUT/DRAINING: this replica cannot take the query
        // right now; charge it and move on.
        if (resp.status == Status::kOverloaded) ++stats_.sheds_seen;
        record_failure(served);
        last_failed = static_cast<int>(served);
        last_error = std::string(status_name(resp.status)) + ": " + resp.text;
        continue;
      }
      record_success(served);
      return resp;
    } catch (const std::exception& e) {
      record_failure(static_cast<std::size_t>(idx));
      last_failed = idx;
      last_error = e.what();
    }
  }
  throw std::runtime_error("all replicas failed: " + last_error);
}

Dist ReplicaClient::dist(Vertex s, Vertex t, const FaultSet& faults,
                         const TraceContext& trace) {
  Request req;
  req.opcode = Opcode::kDist;
  req.pairs.emplace_back(s, t);
  req.faults = faults;
  req.trace = trace;
  const Response resp = call_idempotent(req);
  // kDegraded is an answer (served from a cached snapshot), not a failure.
  if (!resp.answered() || resp.distances.size() != 1) {
    throw std::runtime_error(std::string("DIST failed (") +
                             status_name(resp.status) + "): " + resp.text);
  }
  return resp.distances[0];
}

std::vector<Dist> ReplicaClient::batch(
    const std::vector<std::pair<Vertex, Vertex>>& pairs,
    const FaultSet& faults, const TraceContext& trace) {
  Request req;
  req.opcode = Opcode::kBatch;
  req.pairs = pairs;
  req.faults = faults;
  req.trace = trace;
  Response resp = call_idempotent(req);
  if (!resp.answered() || resp.distances.size() != pairs.size()) {
    throw std::runtime_error(std::string("BATCH failed (") +
                             status_name(resp.status) + "): " + resp.text);
  }
  return std::move(resp.distances);
}

std::string ReplicaClient::stats() {
  Request req;
  req.opcode = Opcode::kStats;
  Response resp = call_idempotent(req);
  if (!resp.ok()) throw std::runtime_error("STATS failed: " + resp.text);
  return std::move(resp.text);
}

}  // namespace fsdl::server
