// One epoll event loop of the FrameServer's reactor data plane.
//
// Ownership model: a Reactor owns its connections completely. Every field
// of Conn is read and written only on the reactor's thread; worker threads
// hold a shared_ptr<Conn> purely as an identity token to route completions
// back, never dereferencing it for mutable state. Cross-thread traffic
// goes through one mutex-protected mailbox (adopted fds, finished
// responses, batch-key releases) flushed after an eventfd wakeup — the
// only lock on the data path, held for a pointer swap.
//
// Responses can finish out of order (different pool jobs), but the wire is
// a sequential protocol: each decoded request gets a per-connection
// sequence number at admission, completions park in Conn::done until their
// turn, and the reactor alone appends to the write buffer — so a client
// always reads answers in the order it sent requests, batching or not.
//
// See frame_server.hpp for the architecture overview and the batching
// semantics; timer_wheel.hpp for how deadlines fire.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.hpp"
#include "server/timer_wheel.hpp"

namespace fsdl::server {

class FrameServer;

class Reactor {
 public:
  Reactor(FrameServer& owner, unsigned index);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the loop thread. `listen_fd` >= 0 makes this reactor the
  /// accepting one (reactor 0); others only receive adopted connections.
  void start(int listen_fd);

  /// Ask the loop to exit (close every connection, no further events) and
  /// join the thread. Completions posted afterwards are dropped safely.
  void stop_and_join();

  /// Hand a freshly accepted fd to this reactor (thread-safe).
  void adopt_fd(int fd);

  /// Wake the loop (thread-safe); used by drain/stop flips.
  void wake();

  /// Loop-iteration counter (thread-safe). The epoll timeout is capped
  /// (epoll_timeout_ms), so even an idle loop ticks this several times a
  /// second — a frozen value across a watchdog window means the loop
  /// thread is wedged, not idle.
  std::uint64_t heartbeat() const noexcept {
    return heartbeat_.load(std::memory_order_relaxed);
  }

 private:
  friend class FrameServer;

  struct Conn;
  using ConnPtr = std::shared_ptr<Conn>;

  /// A decoded, admitted request waiting for (or inside) a pool job.
  struct Pending {
    ConnPtr conn;
    std::uint64_t seq = 0;
    Request req;
  };

  /// A finished response travelling worker -> reactor.
  struct Completion {
    ConnPtr conn;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> wire;  // framed, ready for the socket
  };

  /// Follower bookkeeping for one fault-set key (see frame_server.hpp).
  struct Batch {
    int jobs_in_flight = 0;
    std::vector<Pending> followers;
    std::uint64_t flush_at_us = 0;  // 0 = no pending flush deadline
  };

  void loop();
  void handle_accept();
  void register_conn(int fd);
  void on_readable(const ConnPtr& c);
  void on_writable(const ConnPtr& c);
  void process_frames(const ConnPtr& c);
  void admit(const ConnPtr& c, Request&& req);
  void dispatch(std::vector<Pending>&& group, bool keyed, std::uint64_t key);
  void run_group(std::vector<Pending>& group, bool keyed, std::uint64_t key);
  /// Queue a locally produced response (shed/error/eviction) in order.
  void respond_inline(const ConnPtr& c, const Response& resp);
  void enqueue_response(const ConnPtr& c, std::uint64_t seq,
                        std::vector<std::uint8_t>&& wire);
  void try_flush(const ConnPtr& c);
  void update_epoll(const ConnPtr& c);
  void close_conn(const ConnPtr& c);
  void drain_mailbox();
  void on_timer(const TimerWheel::Entry& e);
  void flush_due_batches(std::uint64_t now);
  int epoll_timeout_ms() const;

  void post_completion(Completion&& comp);  // worker threads
  void post_key_done(std::uint64_t key);    // worker threads

  FrameServer& owner_;
  const unsigned index_;
  int epfd_ = -1;
  int eventfd_ = -1;
  int listen_fd_ = -1;  // loop-thread copy; -1 once the listener is gone
  std::uint64_t accept_paused_until_us_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> heartbeat_{0};

  std::unordered_map<int, ConnPtr> conns_;
  TimerWheel wheel_;
  std::unordered_map<std::uint64_t, Batch> batches_;
  std::size_t follower_count_ = 0;

  std::mutex mail_mu_;
  std::vector<int> mail_fds_;
  std::vector<Completion> mail_completions_;
  std::vector<std::uint64_t> mail_key_done_;
};

}  // namespace fsdl::server
