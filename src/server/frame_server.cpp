#include "server/frame_server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "server/reactor.hpp"
#include "util/failpoint.hpp"

namespace fsdl::server {

namespace {

bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const auto hit = FSDL_FAILPOINT("frame_server.send");
    ssize_t n;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      n = -1;
    } else {
      n = ::send(fd, data + sent, hit.clamp(size - sent), MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_response(int fd, const Response& resp) {
  const auto wire = frame(encode_response(resp));
  return send_all(fd, wire.data(), wire.size());
}

void set_socket_timeout(int fd, int option, unsigned ms) {
  if (ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof tv);
}

/// accept() errnos that mean "try again shortly", not "the listener is
/// dead": per-process/system fd exhaustion, a connection that was reset
/// before we got to it, and transient resource pressure. Treating these as
/// fatal is how an accept loop dies permanently at the worst moment.
std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool transient_accept_errno(int err) {
  switch (err) {
    case EMFILE:
    case ENFILE:
    case ECONNABORTED:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
    case EPROTO:
    case EINTR:
      return true;
    default:
      return false;
  }
}

}  // namespace

FrameServer::FrameServer(const TransportOptions& transport)
    : transport_(transport) {}

FrameServer::~FrameServer() {
  // Subclass destructors call stop() themselves (their handle() must stay
  // callable while workers drain); this is the backstop for subclasses that
  // never started.
  stop();
}

std::size_t FrameServer::pending_cap() const {
  if (transport_.max_queued_connections == ThreadPool::kUnboundedQueue) {
    return static_cast<std::size_t>(-1);
  }
  // `workers` requests being served + the configured waiting line — the
  // same arithmetic the bounded pool queue used, applied to requests.
  return static_cast<std::size_t>(transport_.workers) +
         transport_.max_queued_connections;
}

void FrameServer::start() {
  if (running_.load()) throw std::logic_error("server already started");
  on_start();

  const bool reactor = transport_.data_plane == DataPlane::kEpollReactor;
  const int lfd = ::socket(
      AF_INET, SOCK_STREAM | (reactor ? SOCK_NONBLOCK | SOCK_CLOEXEC : 0), 0);
  if (lfd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(transport_.port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(lfd);
    throw std::runtime_error(std::string("bind() failed: ") +
                             std::strerror(errno));
  }
  socklen_t len = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (transport_.listen_backlog <= 0) transport_.listen_backlog = 64;
  if (::listen(lfd, transport_.listen_backlog) < 0) {
    ::close(lfd);
    throw std::runtime_error("listen() failed");
  }
  listen_fd_.store(lfd);

  if (reactor) {
    // Reactor plane: the pool queue stays unbounded — admission is the
    // pending-request accounting in Reactor::admit (per-request sheds that
    // keep the connection), not a bounded job queue that cannot tell the
    // client which request it dropped.
    pool_ = std::make_unique<ThreadPool>(transport_.workers,
                                         ThreadPool::kUnboundedQueue);
    running_.store(true);
    draining_.store(false);
    stop_done_.store(false);
    if (transport_.reactor_threads == 0) transport_.reactor_threads = 1;
    reactors_.reserve(transport_.reactor_threads);
    for (unsigned k = 0; k < transport_.reactor_threads; ++k) {
      reactors_.push_back(std::make_unique<Reactor>(*this, k));
    }
    for (unsigned k = 0; k < transport_.reactor_threads; ++k) {
      reactors_[k]->start(k == 0 ? lfd : -1);
    }
    started_ms_.store(steady_ms(), std::memory_order_relaxed);
    if (transport_.watchdog_interval_ms > 0) {
      watchdog_thread_ = std::thread([this] { watchdog_loop(); });
    }
    return;
  }

  pool_ = std::make_unique<ThreadPool>(transport_.workers,
                                       transport_.max_queued_connections);
  running_.store(true);
  draining_.store(false);
  stop_done_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ms_.store(steady_ms(), std::memory_order_relaxed);
  if (transport_.watchdog_interval_ms > 0) {
    watchdog_thread_ = std::thread([this] { watchdog_loop(); });
  }
}

void FrameServer::begin_drain() {
  if (!running_.load()) return;
  draining_.store(true, std::memory_order_release);
  // Closing the listener stops new connections and unblocks accept(). The
  // epoll set drops a closed fd automatically; reactors also observe the
  // -1 and forget their cached copy.
  if (const int lfd = listen_fd_.exchange(-1); lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  for (auto& r : reactors_) r->wake();
}

void FrameServer::stop() {
  if (stop_done_.exchange(true)) return;
  if (!running_.load()) return;

  begin_drain();
  if (transport_.drain_deadline_ms > 0) {
    // Wait for in-flight requests to complete. Connections merely idle
    // hold no request, so they never delay the drain.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(transport_.drain_deadline_ms);
    while (in_flight_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  // Stop the watchdog before tearing the planes down — it reads them.
  {
    std::lock_guard<std::mutex> lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  running_.store(false);
  if (transport_.data_plane == DataPlane::kEpollReactor) {
    // Join the loops first (they close their connections on exit), then
    // drain the pool: any jobs still queued finish and post completions
    // into dead mailboxes, where they are dropped harmlessly.
    for (auto& r : reactors_) r->stop_and_join();
    if (pool_) pool_->shutdown();
    reactors_.clear();
    return;
  }

  // Shutting the connection fds unblocks any worker mid-recv.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_) pool_->shutdown();
}

std::uint64_t FrameServer::uptime_s() const noexcept {
  const std::uint64_t t0 = started_ms_.load(std::memory_order_relaxed);
  if (t0 == 0) return 0;
  const std::uint64_t now = steady_ms();
  return now > t0 ? (now - t0) / 1000 : 0;
}

// ---------------------------------------------------------------------------
// Watchdog: one sampling thread heartbeating the data plane. Liveness
// signals, not load signals — each reactor loop iterates at least every
// 100ms even when idle (epoll_timeout_ms is capped), and a healthy worker
// pool with queued work retires jobs. A unit frozen across the stall window
// counts one stall per episode and holds health at "degraded"; only the
// opt-in abort threshold turns a hard wedge into SIGABRT + core.
// ---------------------------------------------------------------------------

void FrameServer::watchdog_loop() {
  struct Unit {
    std::uint64_t last_count = 0;
    std::uint64_t frozen_since_ms = 0;
    bool counted = false;
  };
  std::vector<Unit> loops(reactors_.size());
  Unit workers;
  const std::uint64_t stall_ms =
      std::max(1u, transport_.watchdog_stall_ms);
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock, std::chrono::milliseconds(transport_.watchdog_interval_ms),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) break;
    const std::uint64_t now = steady_ms();
    bool any_stalled = false;
    std::uint64_t worst_frozen_ms = 0;
    const char* worst_unit = nullptr;

    for (std::size_t k = 0; k < reactors_.size(); ++k) {
      Unit& u = loops[k];
      const std::uint64_t hb = reactors_[k]->heartbeat();
      if (hb != u.last_count || u.frozen_since_ms == 0) {
        u.last_count = hb;
        u.frozen_since_ms = now;
        u.counted = false;
        continue;
      }
      const std::uint64_t frozen = now - u.frozen_since_ms;
      if (frozen < stall_ms) continue;
      any_stalled = true;
      if (!u.counted) {
        metrics_.record_reactor_stall();
        u.counted = true;
      }
      if (frozen > worst_frozen_ms) {
        worst_frozen_ms = frozen;
        worst_unit = "reactor loop";
      }
    }

    if (pool_) {
      const std::uint64_t done = pool_->jobs_completed();
      // Saturation alone is load, not a stall: the wedge signature is every
      // worker busy, work waiting, and nothing retiring.
      const bool wedged_shape = pool_->active_jobs() >= pool_->size() &&
                                pool_->queue_depth() > 0;
      if (done != workers.last_count || !wedged_shape ||
          workers.frozen_since_ms == 0) {
        workers.last_count = done;
        workers.frozen_since_ms = now;
        workers.counted = false;
      } else {
        const std::uint64_t frozen = now - workers.frozen_since_ms;
        if (frozen >= stall_ms) {
          any_stalled = true;
          if (!workers.counted) {
            metrics_.record_worker_stall();
            workers.counted = true;
          }
          if (frozen > worst_frozen_ms) {
            worst_frozen_ms = frozen;
            worst_unit = "worker pool";
          }
        }
      }
    }

    degraded_.store(any_stalled, std::memory_order_relaxed);
    if (transport_.watchdog_abort_ms != 0 && worst_unit != nullptr &&
        worst_frozen_ms >= transport_.watchdog_abort_ms) {
      std::fprintf(
          stderr,
          "fsdl watchdog: %s wedged for %" PRIu64
          " ms (in_flight=%d conns=%" PRId64 " queue=%zu active=%zu); "
          "aborting for a restart with core\n",
          worst_unit, worst_frozen_ms,
          in_flight_.load(std::memory_order_relaxed), open_connections(),
          pool_ ? pool_->queue_depth() : 0,
          pool_ ? pool_->active_jobs() : 0);
      std::fflush(stderr);
      std::abort();
    }
  }
}

// ---------------------------------------------------------------------------
// Thread-per-connection plane (DataPlane::kThreadPerConnection): the
// pre-reactor blocking transport, kept for A/B benchmarking. One pool job
// per connection, SO_RCVTIMEO/SO_SNDTIMEO deadlines, connection-level
// admission (a shed closes the connection).
// ---------------------------------------------------------------------------

void FrameServer::track(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.insert(fd);
  metrics_.record_connection_opened();
}

void FrameServer::untrack(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
  metrics_.record_connection_closed();
}

void FrameServer::accept_loop() {
  unsigned backoff_ms = 1;
  while (running_.load()) {
    const int lfd = listen_fd_.load();
    if (lfd < 0) break;  // begin_drain()/stop() closed the listener
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (listen_fd_.load() < 0 || !running_.load()) break;
      if (err == EINTR) continue;
      if (transient_accept_errno(err)) {
        // fd exhaustion or resource pressure: back off briefly and keep the
        // server alive — connections already established keep being served,
        // and accepting resumes the moment pressure clears.
        metrics_.record_failure(FailureCounter::kAcceptRetries);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
        backoff_ms = backoff_ms < 100 ? backoff_ms * 2 : 200;
        continue;
      }
      break;  // genuinely unrecoverable (listener fd invalid, ...)
    }
    backoff_ms = 1;
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_socket_timeout(fd, SO_RCVTIMEO, transport_.recv_timeout_ms);
    set_socket_timeout(fd, SO_SNDTIMEO, transport_.send_timeout_ms);
    metrics_.record_connection();
    track(fd);
    const bool queued = pool_->submit([this, fd] {
      serve_connection(fd);
      untrack(fd);
      ::close(fd);
    });
    if (!queued) {
      // Admission control: every worker busy and the waiting line full.
      // One OVERLOADED frame tells the client to back off; then shed.
      metrics_.record_failure(FailureCounter::kSheds);
      send_response(fd, error_response("server overloaded, retry later",
                                       Status::kOverloaded));
      untrack(fd);
      ::close(fd);
    }
  }
}

void FrameServer::serve_connection(int fd) {
  Framer framer;
  std::uint8_t chunk[64 * 1024];
  std::vector<std::uint8_t> payload;
  while (running_.load()) {
    const auto hit = FSDL_FAILPOINT("frame_server.recv");
    ssize_t n;
    if (hit.kind == failpoint::HitKind::kErrno) {
      errno = hit.err;
      n = -1;
    } else {
      n = ::recv(fd, chunk, hit.clamp(sizeof chunk), 0);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // The per-connection receive deadline fired. Whether the client is
        // mid-frame (slowloris) or simply idle, it is holding a worker —
        // tell it why and evict.
        metrics_.record_failure(FailureCounter::kEvictions);
        send_response(fd, error_response(
                              framer.pending_bytes() > 0
                                  ? "receive deadline exceeded mid-frame"
                                  : "idle deadline exceeded",
                              Status::kTimeout));
      }
      return;
    }
    if (n == 0) return;  // peer closed
    framer.feed(chunk, static_cast<std::size_t>(n));
    while (framer.next(payload)) {
      Request req;
      std::string decode_error;
      const bool decoded =
          decode_request(payload.data(), payload.size(), req, decode_error);
      if (draining_.load(std::memory_order_acquire) &&
          !(decoded && req.opcode == Opcode::kHealth)) {
        // Frames decoded after the drain flip are new work: refuse them.
        // HEALTH is exempt — a prober must see "draining", not a refusal,
        // so it can tell a graceful goodbye from a crash.
        metrics_.record_failure(FailureCounter::kDrainRejects);
        send_response(fd, error_response("server draining, not accepting "
                                         "new requests",
                                         Status::kDraining));
        return;
      }
      Response resp;
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      if (!decoded) {
        metrics_.record_error();
        resp = error_response("bad request: " + decode_error);
      } else {
        resp = handle(req);
        if (!resp.answered()) metrics_.record_error();
      }
      const bool sent = send_response(fd, resp);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      if (!sent) return;
    }
    if (framer.fatal()) {
      // The stream is unsyncable: either the length prefix exceeded
      // kMaxFramePayload or the payload failed its CRC. One diagnostic
      // frame, then close.
      metrics_.record_error();
      if (framer.fatal_reason() == Framer::Fatal::kChecksum) {
        metrics_.record_failure(FailureCounter::kFrameCrcErrors);
        send_response(fd, error_response("frame checksum mismatch"));
      } else {
        send_response(fd, error_response("frame exceeds size limit"));
      }
      return;
    }
  }
}

}  // namespace fsdl::server
