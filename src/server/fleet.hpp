// Fleet-wide metrics aggregation behind the FLEET_STATS opcode.
//
// The router scrapes each shard's METRICS (Prometheus text exposition over
// the binary protocol), then builds one pane out of the pieces:
//
//   * every shard sample re-emitted with `shard="i",replica="host:port"`
//     labels appended, so per-shard counters stay individually visible;
//   * every histogram series (`*_bucket` with an `le` label) additionally
//     reconstructed into a util/stats Histogram per shard and merged across
//     shards via Histogram::merge, re-emitted under a `fsdl_fleet_` name
//     prefix — the fleet-wide latency distribution, not an average of
//     averages;
//   * a scrape-status gauge so a dead shard is a visible hole, not a
//     silently smaller sum.
//
// Reconstruction is exact in counts and bucket placement (each bucket's
// samples are re-added at the bucket's geometric midpoint, which floors
// back into the same bucket) and approximate in _sum (midpoint × count);
// min/max degrade to bucket edges. This is the standard price of merging
// over a text exposition and is documented in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace fsdl::server {

/// Escape a Prometheus label *value*: backslash, double quote, and newline
/// get backslash escapes (exposition format rules). Metric/label names are
/// never escaped — they are generated, not user input.
std::string prometheus_escape(const std::string& value);

/// One sample line of a text exposition: `name{labels} value`.
struct PromSample {
  std::string name;
  std::string labels;  ///< Raw text inside the braces; "" when unlabeled.
  double value = 0.0;
};

/// Parse exposition text into samples. Comment (`#`) and blank lines are
/// skipped; a malformed sample line fails the whole parse with `error`.
bool parse_prometheus(const std::string& text, std::vector<PromSample>& out,
                      std::string& error);

/// Split a raw label string (`a="x",b="y"`) into (name, unescaped value)
/// pairs. Returns false on malformed input.
bool parse_labels(const std::string& labels,
                  std::vector<std::pair<std::string, std::string>>& out);

/// Rebuild a Histogram from one series' *cumulative* `le` buckets
/// (Prometheus order, +Inf excluded). The scale must match the source
/// histogram's (growth, ref) — all fsdl latency histograms use the
/// defaults. Samples land in exactly the source buckets; see the header
/// comment for what is approximate.
Histogram histogram_from_buckets(
    const std::vector<std::pair<double, std::uint64_t>>& cumulative,
    double growth = 1.25, double ref = 1.0);

/// One scraped shard exposition (the router fills one per shard).
struct ShardScrape {
  unsigned shard = 0;
  std::string replica;  ///< host:port of the replica that answered.
  bool ok = false;      ///< False: unreachable — only the status gauge shows.
  std::string text;     ///< The shard's METRICS rendering when ok.
};

/// The fleet sections described above (re-emission + merged histograms +
/// scrape status). The router prepends its own render_prometheus() and its
/// per-shard fetch-latency histograms to form the full FLEET_STATS reply.
std::string render_fleet(const std::vector<ShardScrape>& scrapes);

}  // namespace fsdl::server
