#include "server/protocol.hpp"

#include <cstring>

#include "util/crc32.hpp"

namespace fsdl::server {

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kOverloaded: return "overloaded";
    case Status::kTimeout: return "timeout";
    case Status::kDraining: return "draining";
    case Status::kDegraded: return "degraded";
  }
  return "?";
}

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Magic word opening a trace-context block: "TRC1" as LE u32.
constexpr std::uint32_t kTraceMagic = 0x31435254u;

/// Bounds-checked little-endian reader over a payload.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = static_cast<std::uint32_t>(data_[pos_]) |
        (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
        (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
        (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    std::uint32_t lo, hi;
    if (!u32(lo) || !u32(hi)) return false;
    v = static_cast<std::uint64_t>(lo) | (static_cast<std::uint64_t>(hi) << 32);
    return true;
  }

  bool bytes(std::string& v, std::size_t n) {
    if (pos_ + n > size_) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void append_trace_context(std::vector<std::uint8_t>& out,
                          const TraceContext& ctx) {
  if (!ctx.present) return;
  put_u32(out, kTraceMagic);
  put_u64(out, ctx.trace_hi);
  put_u64(out, ctx.trace_lo);
  put_u64(out, ctx.parent_span);
  out.push_back(ctx.flags);
  put_u32(out, ctx.deadline_us);
}

/// Consume the optional trailing trace-context block on a query request.
/// An empty remainder is a valid absent context (the pre-extension wire
/// format); anything else must be exactly one well-formed block.
bool decode_trace_context(Cursor& c, TraceContext& ctx, std::string& error) {
  if (c.done()) return true;
  std::uint32_t magic = 0;
  if (c.remaining() != kTraceContextBytes || !c.u32(magic) ||
      magic != kTraceMagic) {
    error = "malformed trace-context extension";
    return false;
  }
  std::uint8_t flags = 0;
  if (!c.u64(ctx.trace_hi) || !c.u64(ctx.trace_lo) || !c.u64(ctx.parent_span) ||
      !c.u8(flags) || !c.u32(ctx.deadline_us)) {
    error = "malformed trace-context extension";
    return false;
  }
  ctx.flags = flags;
  ctx.present = true;
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& req) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(req.opcode));
  switch (req.opcode) {
    case Opcode::kDist: {
      const auto& [s, t] = req.pairs.at(0);
      put_u32(out, s);
      put_u32(out, t);
      put_u32(out, static_cast<std::uint32_t>(req.faults.vertices().size()));
      put_u32(out, static_cast<std::uint32_t>(req.faults.edges().size()));
      for (Vertex f : req.faults.vertices()) put_u32(out, f);
      for (const auto& [a, b] : req.faults.edges()) {
        put_u32(out, a);
        put_u32(out, b);
      }
      append_trace_context(out, req.trace);
      break;
    }
    case Opcode::kBatch: {
      put_u32(out, static_cast<std::uint32_t>(req.pairs.size()));
      put_u32(out, static_cast<std::uint32_t>(req.faults.vertices().size()));
      put_u32(out, static_cast<std::uint32_t>(req.faults.edges().size()));
      for (Vertex f : req.faults.vertices()) put_u32(out, f);
      for (const auto& [a, b] : req.faults.edges()) {
        put_u32(out, a);
        put_u32(out, b);
      }
      for (const auto& [s, t] : req.pairs) {
        put_u32(out, s);
        put_u32(out, t);
      }
      append_trace_context(out, req.trace);
      break;
    }
    case Opcode::kGetLabel:
      put_u32(out, req.pairs.at(0).first);
      append_trace_context(out, req.trace);
      break;
    case Opcode::kStats:
    case Opcode::kMetrics:
    case Opcode::kHealth:
    case Opcode::kReload:
    case Opcode::kFleetStats:
      break;
  }
  return out;
}

std::vector<std::uint8_t> encode_response(const Response& resp) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(resp.status));
  if (resp.status == Status::kDegraded) {
    // Serving epoch, then the distances — always count-prefixed (the epoch
    // word already disambiguates, no need for the ok-body length tricks).
    put_u64(out, resp.epoch);
    put_u32(out, static_cast<std::uint32_t>(resp.distances.size()));
    for (Dist d : resp.distances) put_u32(out, d);
    return out;
  }
  if (!resp.ok() || !resp.text.empty()) {
    put_u32(out, static_cast<std::uint32_t>(resp.text.size()));
    out.insert(out.end(), resp.text.begin(), resp.text.end());
    return out;
  }
  if (resp.distances.size() == 1) {
    put_u32(out, resp.distances[0]);
  } else {
    put_u32(out, static_cast<std::uint32_t>(resp.distances.size()));
    for (Dist d : resp.distances) put_u32(out, d);
  }
  return out;
}

namespace {

bool decode_fault_block(Cursor& c, std::uint32_t nv, std::uint32_t ne,
                        FaultSet& faults, std::string& error) {
  // Each listed fault costs at least 4 bytes; reject counts the payload
  // cannot possibly back before allocating.
  if (static_cast<std::uint64_t>(nv) * 4 + static_cast<std::uint64_t>(ne) * 8 >
      c.remaining()) {
    error = "fault counts exceed payload size";
    return false;
  }
  for (std::uint32_t k = 0; k < nv; ++k) {
    std::uint32_t v;
    if (!c.u32(v)) {
      error = "truncated fault vertex list";
      return false;
    }
    faults.add_vertex(v);
  }
  for (std::uint32_t k = 0; k < ne; ++k) {
    std::uint32_t a, b;
    if (!c.u32(a) || !c.u32(b)) {
      error = "truncated fault edge list";
      return false;
    }
    faults.add_edge(a, b);
  }
  return true;
}

}  // namespace

bool decode_request(const std::uint8_t* data, std::size_t size, Request& out,
                    std::string& error) {
  out = Request{};
  Cursor c(data, size);
  std::uint8_t op;
  if (!c.u8(op)) {
    error = "empty request payload";
    return false;
  }
  switch (op) {
    case static_cast<std::uint8_t>(Opcode::kDist): {
      out.opcode = Opcode::kDist;
      std::uint32_t s, t, nv, ne;
      if (!c.u32(s) || !c.u32(t) || !c.u32(nv) || !c.u32(ne)) {
        error = "truncated DIST header";
        return false;
      }
      out.pairs.emplace_back(s, t);
      if (!decode_fault_block(c, nv, ne, out.faults, error)) return false;
      if (!decode_trace_context(c, out.trace, error)) return false;
      break;
    }
    case static_cast<std::uint8_t>(Opcode::kBatch): {
      out.opcode = Opcode::kBatch;
      std::uint32_t npairs, nv, ne;
      if (!c.u32(npairs) || !c.u32(nv) || !c.u32(ne)) {
        error = "truncated BATCH header";
        return false;
      }
      if (!decode_fault_block(c, nv, ne, out.faults, error)) return false;
      if (static_cast<std::uint64_t>(npairs) * 8 > c.remaining()) {
        error = "pair count exceeds payload size";
        return false;
      }
      out.pairs.reserve(npairs);
      for (std::uint32_t k = 0; k < npairs; ++k) {
        std::uint32_t s, t;
        if (!c.u32(s) || !c.u32(t)) {
          error = "truncated BATCH pair list";
          return false;
        }
        out.pairs.emplace_back(s, t);
      }
      if (!decode_trace_context(c, out.trace, error)) return false;
      break;
    }
    case static_cast<std::uint8_t>(Opcode::kStats):
      out.opcode = Opcode::kStats;
      break;
    case static_cast<std::uint8_t>(Opcode::kMetrics):
      out.opcode = Opcode::kMetrics;
      break;
    case static_cast<std::uint8_t>(Opcode::kHealth):
      out.opcode = Opcode::kHealth;
      break;
    case static_cast<std::uint8_t>(Opcode::kReload):
      out.opcode = Opcode::kReload;
      break;
    case static_cast<std::uint8_t>(Opcode::kFleetStats):
      out.opcode = Opcode::kFleetStats;
      break;
    case static_cast<std::uint8_t>(Opcode::kGetLabel): {
      out.opcode = Opcode::kGetLabel;
      std::uint32_t v;
      if (!c.u32(v)) {
        error = "truncated GET_LABEL body";
        return false;
      }
      out.pairs.emplace_back(v, 0);
      if (!decode_trace_context(c, out.trace, error)) return false;
      break;
    }
    default:
      error = "unknown opcode " + std::to_string(op);
      return false;
  }
  if (!c.done()) {
    error = "trailing bytes after request";
    return false;
  }
  return true;
}

bool decode_response(const std::uint8_t* data, std::size_t size, Response& out,
                     std::string& error) {
  out = Response{};
  Cursor c(data, size);
  std::uint8_t status;
  if (!c.u8(status)) {
    error = "empty response payload";
    return false;
  }
  if (status > static_cast<std::uint8_t>(Status::kDegraded)) {
    error = "bad response status";
    return false;
  }
  out.status = static_cast<Status>(status);
  if (out.status == Status::kDegraded) {
    std::uint32_t n;
    if (!c.u64(out.epoch) || !c.u32(n)) {
      error = "truncated degraded response";
      return false;
    }
    if (static_cast<std::uint64_t>(n) * 4 != c.remaining()) {
      error = "degraded response body length mismatch";
      return false;
    }
    out.distances.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) {
      std::uint32_t d = 0;
      c.u32(d);
      out.distances.push_back(d);
    }
    return true;
  }
  if (!out.ok()) {
    std::uint32_t len;
    if (!c.u32(len) || len != c.remaining() || !c.bytes(out.text, len)) {
      error = "malformed error body";
      return false;
    }
    return true;
  }
  // Ambiguity between the three OK bodies is resolved by total length:
  // DIST is exactly 5 bytes; STATS/BATCH carry a count/length word that
  // must match the remainder. A STATS body is distinguished from BATCH by
  // the caller knowing what it asked; here we decode structurally: try
  // count-prefixed u32 array first, else text.
  if (size == 5) {
    std::uint32_t d = 0;
    c.u32(d);
    out.distances.push_back(d);
    return true;
  }
  std::uint32_t n;
  if (!c.u32(n)) {
    error = "truncated response";
    return false;
  }
  if (static_cast<std::uint64_t>(n) * 4 == c.remaining()) {
    out.distances.reserve(n);
    for (std::uint32_t k = 0; k < n; ++k) {
      std::uint32_t d = 0;
      c.u32(d);
      out.distances.push_back(d);
    }
    return true;
  }
  if (n == c.remaining()) {
    c.bytes(out.text, n);
    return true;
  }
  error = "response body length mismatch";
  return false;
}

Response error_response(std::string message, Status status) {
  Response r;
  r.status = status;
  r.text = std::move(message);
  return r;
}

void Framer::feed(const std::uint8_t* data, std::size_t size) {
  // Compact the consumed prefix before it grows unbounded.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

bool Framer::next(std::vector<std::uint8_t>& payload) {
  if (fatal()) return false;
  if (buf_.size() - pos_ < kFrameHeaderBytes) return false;
  std::uint32_t len, crc;
  std::memcpy(&len, buf_.data() + pos_, 4);  // wire is little-endian; so are
  std::memcpy(&crc, buf_.data() + pos_ + 4, 4);  // all supported targets
  if (len > kMaxFramePayload) {
    fatal_ = Fatal::kOversized;
    return false;
  }
  if (buf_.size() - pos_ < kFrameHeaderBytes + static_cast<std::size_t>(len)) {
    return false;
  }
  const std::uint8_t* body = buf_.data() + pos_ + kFrameHeaderBytes;
  if (crc32(body, len) != crc) {
    // A failed checksum means either the payload or the header itself is
    // corrupt, so even the length cannot be trusted to resync on.
    fatal_ = Fatal::kChecksum;
    return false;
  }
  payload.assign(body, body + len);
  pos_ += kFrameHeaderBytes + len;
  return true;
}

std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + kFrameHeaderBytes);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

}  // namespace fsdl::server
