// Hashed timing wheel for the reactor's connection deadlines.
//
// The reactor replaces per-socket SO_RCVTIMEO/SO_SNDTIMEO (which only work
// when a thread is parked in recv()/send() on that one socket) with a
// single wheel per event loop: every armed deadline costs O(1) to insert
// and the loop asks "when is the next one due" to size its epoll timeout.
//
// The wheel is *lazy*: entries are never cancelled or re-armed in place.
// An entry fires when its slot is visited and its stamped due time has
// passed; the owner then re-validates against live state (the connection
// may have seen traffic since, or may be gone entirely — the fd/conn-id
// pair detects reuse) and either acts, re-schedules at the true deadline,
// or drops the entry. This keeps the hot path (a read on a busy
// connection) completely free of timer bookkeeping.
//
// Slots cover time in fixed windows of `slot_us`; an entry due beyond one
// full rotation simply stays in its slot across visits until its cycle
// comes up (classic hashed-wheel behavior). Deadline precision is one slot
// width, which is exactly right for millisecond-scale socket deadlines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fsdl::server {

class TimerWheel {
 public:
  struct Entry {
    std::uint64_t due_us = 0;
    int fd = -1;
    /// Connection generation stamp: an fd number is reused by the kernel,
    /// (fd, conn_id) is not. The owner drops entries whose pair no longer
    /// matches a live connection.
    std::uint64_t conn_id = 0;
    /// Owner-defined discriminator (read deadline vs write deadline, ...).
    std::uint8_t kind = 0;
  };

  explicit TimerWheel(std::uint64_t slot_us = 2000, std::size_t slots = 512)
      : slot_us_(slot_us == 0 ? 1 : slot_us), slots_(slots == 0 ? 1 : slots) {}

  /// Anchor the cursor so the first advance() does not sweep from t=0.
  void anchor(std::uint64_t now_us) {
    if (cursor_ == 0) cursor_ = now_us / slot_us_;
  }

  void schedule(const Entry& e) {
    // A due time inside the cursor's own window would wait a full rotation;
    // park it in the next slot instead (firing a hair early is fine — the
    // owner re-validates and re-schedules stale entries).
    std::uint64_t a = e.due_us / slot_us_;
    if (a <= cursor_) a = cursor_ + 1;
    slots_[static_cast<std::size_t>(a % slots_.size())].push_back(e);
    ++size_;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::uint64_t slot_us() const noexcept { return slot_us_; }

  /// Earliest instant any entry could fire, or 0 when the wheel is empty.
  /// A window start, not an exact due time: far-future entries sharing a
  /// near slot cause an early (harmless, lazily re-checked) wakeup.
  std::uint64_t next_tick_us() const {
    if (size_ == 0) return 0;
    const std::size_t n = slots_.size();
    for (std::size_t k = 1; k <= n; ++k) {
      const std::uint64_t a = cursor_ + k;
      if (!slots_[a % n].empty()) return a * slot_us_;
    }
    // Entries can sit in the cursor's own slot (scheduled for a later
    // cycle); next chance to see them is one full rotation out.
    return (cursor_ + n) * slot_us_;
  }

  /// Visit every slot whose window ended at or before `now`, invoking
  /// `fire(entry)` for entries whose stamped due time has passed. `fire`
  /// may call schedule() (re-arming at the true deadline is the expected
  /// response to a stale entry).
  template <typename F>
  void advance(std::uint64_t now, F&& fire) {
    const std::uint64_t target = now / slot_us_;
    if (target <= cursor_) return;
    const std::size_t n = slots_.size();
    // A long sleep can skip whole rotations; each slot needs one visit.
    const std::uint64_t steps =
        target - cursor_ >= n ? n : target - cursor_;
    for (std::uint64_t k = 1; k <= steps; ++k) {
      auto& slot = slots_[(cursor_ + k) % n];
      if (slot.empty()) continue;
      scratch_.clear();
      scratch_.swap(slot);  // fire() may schedule back into this very slot
      for (auto& e : scratch_) {
        if (e.due_us <= now) {
          --size_;
          fire(e);
        } else {
          slot.push_back(e);  // a later cycle's entry — keep waiting
        }
      }
    }
    cursor_ = target;
  }

 private:
  std::uint64_t slot_us_;
  std::uint64_t cursor_ = 0;  // absolute index of the last visited slot
  std::size_t size_ = 0;
  std::vector<std::vector<Entry>> slots_;
  std::vector<Entry> scratch_;
};

}  // namespace fsdl::server
