// Server-side metrics registry: per-request-type counters, latency
// histograms (p50/p95/p99 via util/stats Histogram), QPS over the uptime
// window, and the cache hit rate pulled from PreparedCache. Rendered as the
// STATS reply text and dumped on graceful shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "server/prepared_cache.hpp"
#include "util/stats.hpp"

namespace fsdl::server {

enum class RequestType : unsigned { kDist = 0, kBatch = 1, kStats = 2 };
inline constexpr unsigned kNumRequestTypes = 3;

class Metrics {
 public:
  Metrics();

  /// Record one completed request of `type` that answered `queries`
  /// point-to-point queries in `micros` wall time.
  void record(RequestType type, std::uint64_t queries, double micros);
  void record_error();
  void record_connection();

  std::uint64_t requests(RequestType type) const {
    return counts_[static_cast<unsigned>(type)].load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  double uptime_seconds() const;

  /// Human-readable snapshot (also machine-greppable `key: value` lines).
  std::string render(const PreparedCache::Stats& cache) const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> counts_[kNumRequestTypes];
  std::atomic<std::uint64_t> errors_;
  std::atomic<std::uint64_t> queries_;
  std::atomic<std::uint64_t> connections_;
  // One latency histogram per request type, microsecond samples.
  mutable std::mutex lat_mu_;
  Histogram latency_[kNumRequestTypes];
};

}  // namespace fsdl::server
