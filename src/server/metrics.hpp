// Server-side metrics registry: per-request-type counters, latency
// histograms (p50/p95/p99 via util/stats Histogram), QPS over the uptime
// window, the cache hit rate pulled from PreparedCache, and decoder stage
// counters accumulated from QueryStats. Rendered two ways: the STATS reply
// (human-readable `key: value` lines, also dumped on graceful shutdown) and
// the METRICS reply (Prometheus text exposition, scrape-ready).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/decoder.hpp"
#include "server/prepared_cache.hpp"
#include "util/stats.hpp"

namespace fsdl::server {

enum class RequestType : unsigned {
  kDist = 0,
  kBatch = 1,
  kStats = 2,
  kMetrics = 3,
  kHealth = 4,
  kReload = 5,
  kGetLabel = 6,
  kFleetStats = 7
};
inline constexpr unsigned kNumRequestTypes = 8;

/// Stable lowercase name of a request type ("dist", "fleet_stats", ...).
const char* request_type_name(RequestType t);

/// Append one Prometheus histogram series to `out`: cumulative `le`
/// buckets, `+Inf`, `_sum`, `_count`, all under `name` with `labels` (the
/// inside of the braces, e.g. `type="dist"` or `shard="0"`; "" for none).
/// Shared by the per-process renderer below and the router's fleet
/// aggregation (server/fleet.hpp).
void append_prometheus_histogram(std::string& out, const char* name,
                                 const std::string& labels,
                                 const Histogram& h);

/// Decoder stage counters surfaced server-wide — one slot per QueryStats
/// field. Always on (a handful of relaxed adds per *request*, never per
/// edge); independent of the FSDL_TRACE build flag.
enum class StageCounter : unsigned {
  kSketchVertices = 0,
  kSketchEdges,
  kEdgesConsidered,
  kSafeEdgeChecks,
  kDijkstraRelaxations,
  kCount_
};
inline constexpr unsigned kNumStageCounters =
    static_cast<unsigned>(StageCounter::kCount_);

const char* stage_counter_name(StageCounter c);

/// Fault-tolerance event counters — every way the serving stack refuses,
/// evicts, or retries work instead of failing silently. One slot per
/// shedding/robustness decision so overload and fault behavior is
/// observable (and assertable in tests) rather than anecdotal.
enum class FailureCounter : unsigned {
  /// A DIST/BATCH request exceeded ServerOptions::request_deadline_ms.
  kRequestTimeouts = 0,
  /// A connection was admitted-control shed with an OVERLOADED reply.
  kSheds,
  /// A slow or idle connection was evicted after the socket deadline.
  kEvictions,
  /// accept() hit a transient error (EMFILE/ENFILE/...) and was retried.
  kAcceptRetries,
  /// A request arrived while draining and was refused with DRAINING.
  kDrainRejects,
  /// An inbound frame failed its CRC32 (corruption on the wire).
  kFrameCrcErrors,
  kCount_
};
inline constexpr unsigned kNumFailureCounters =
    static_cast<unsigned>(FailureCounter::kCount_);

const char* failure_counter_name(FailureCounter c);

/// Outcome of one hot label reload attempt (SIGHUP or the admin RELOAD
/// opcode). `kCrcFailed` is split out because it is the interesting alarm:
/// someone shipped a corrupt label file and the server refused to swap.
enum class ReloadResult : unsigned {
  kOk = 0,
  kCrcFailed,
  kError,
  kCount_
};
inline constexpr unsigned kNumReloadResults =
    static_cast<unsigned>(ReloadResult::kCount_);

const char* reload_result_name(ReloadResult r);

/// Outcome of one router→shard label fetch (the GET_LABEL round trip
/// behind a cache miss). `kError` is a definitive shard-side refusal
/// (unknown vertex, wrong shard); `kUnavailable` means every replica of
/// the owning shard was unreachable within the retry budget.
enum class LabelFetchResult : unsigned {
  kOk = 0,
  kError,
  kUnavailable,
  kCount_
};
inline constexpr unsigned kNumLabelFetchResults =
    static_cast<unsigned>(LabelFetchResult::kCount_);

const char* label_fetch_result_name(LabelFetchResult r);

/// Why a query was answered DEGRADED (router stale-label fallback).
/// `kStaleLabel`: a cached label from an older epoch than the shard's
/// last-known one was served. `kShardDown`: the cached label matches the
/// last-known epoch but its owning shard was unreachable, so freshness
/// could not be confirmed.
enum class DegradedReason : unsigned {
  kStaleLabel = 0,
  kShardDown,
  kCount_
};
inline constexpr unsigned kNumDegradedReasons =
    static_cast<unsigned>(DegradedReason::kCount_);

const char* degraded_reason_name(DegradedReason r);

class Metrics {
 public:
  Metrics();

  /// Record one completed request of `type` that answered `queries`
  /// point-to-point queries in `micros` wall time. Latency histograms are
  /// striped per request type, so concurrent DIST and BATCH recording
  /// never serialize against each other.
  void record(RequestType type, std::uint64_t queries, double micros);
  void record_error();
  void record_connection();

  /// Maintain the open-connection gauge (fsdl_open_connections). Paired
  /// calls from whichever data plane owns the connection lifecycle.
  void record_connection_opened() {
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_connection_closed() {
    open_connections_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Record one dispatched fault-set batch group of `size` coalesced
  /// requests (fsdl_batch_size). A lone leader records 1; a flash crowd's
  /// follower group records its width — the mean is the amortization
  /// factor actually achieved.
  void record_batch(double size) {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch_size_.add(size);
  }

  /// Record one reactor event-loop iteration's busy time in microseconds
  /// (fsdl_reactor_loop_latency_microseconds) — the "how far behind is the
  /// data plane" signal; idle waits are not recorded.
  void record_reactor_loop(double micros) {
    std::lock_guard<std::mutex> lock(loop_mu_);
    loop_latency_.add(micros);
  }

  /// Fold one request's accumulated decoder work into the stage counters
  /// (the caller sums QueryStats across a batch first).
  void record_query_stats(const QueryStats& stats);

  /// Count one fault-tolerance event (shed, eviction, timeout, ...).
  void record_failure(FailureCounter c) {
    failures_[static_cast<unsigned>(c)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  /// Count one client-side failover: a request rerouted to another replica
  /// after its first choice failed (connect error, transport error, or a
  /// transient TIMEOUT/OVERLOADED/DRAINING status). Recorded by
  /// ReplicaClient into the registry fsdl_loadgen dumps.
  void record_failover() {
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Count one hedged request that actually fired a backup; `backup_won`
  /// says whether the backup's answer beat the primary's.
  void record_hedge(bool backup_won) {
    (backup_won ? hedges_won_ : hedges_lost_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Count one hot label reload attempt by outcome.
  void record_reload(ReloadResult r) {
    reloads_[static_cast<unsigned>(r)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Count one router→shard GET_LABEL round trip by outcome.
  void record_label_fetch(LabelFetchResult r) {
    label_fetches_[static_cast<unsigned>(r)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Count one router label-LRU lookup.
  void record_label_cache(bool hit) {
    (hit ? label_cache_hits_ : label_cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Count one query answered DEGRADED (stale-label fallback) by reason.
  void record_degraded(DegradedReason r) {
    degraded_[static_cast<unsigned>(r)].fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  /// Count one watchdog-observed stall of a reactor event loop / a worker
  /// pool that stopped making progress for a full stall window.
  void record_reactor_stall() {
    reactor_stalls_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_worker_stall() {
    worker_stalls_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t requests(RequestType type) const {
    return counts_[static_cast<unsigned>(type)].load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_queries() const {
    return queries_.load(std::memory_order_relaxed);
  }
  std::uint64_t stage_total(StageCounter c) const {
    return stages_[static_cast<unsigned>(c)].load(std::memory_order_relaxed);
  }
  std::uint64_t failure_total(FailureCounter c) const {
    return failures_[static_cast<unsigned>(c)].load(std::memory_order_relaxed);
  }
  std::uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  std::uint64_t hedges(bool backup_won) const {
    return (backup_won ? hedges_won_ : hedges_lost_)
        .load(std::memory_order_relaxed);
  }
  std::uint64_t reloads(ReloadResult r) const {
    return reloads_[static_cast<unsigned>(r)].load(std::memory_order_relaxed);
  }
  std::uint64_t label_fetches(LabelFetchResult r) const {
    return label_fetches_[static_cast<unsigned>(r)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t label_cache(bool hit) const {
    return (hit ? label_cache_hits_ : label_cache_misses_)
        .load(std::memory_order_relaxed);
  }
  std::uint64_t degraded_total(DegradedReason r) const {
    return degraded_[static_cast<unsigned>(r)].load(std::memory_order_relaxed);
  }
  std::uint64_t reactor_stalls() const {
    return reactor_stalls_.load(std::memory_order_relaxed);
  }
  std::uint64_t worker_stalls() const {
    return worker_stalls_.load(std::memory_order_relaxed);
  }
  std::int64_t open_connections() const {
    return open_connections_.load(std::memory_order_relaxed);
  }
  /// Dispatched batch groups and the requests they carried (count/sum of
  /// the fsdl_batch_size histogram).
  std::uint64_t batch_groups() const {
    std::lock_guard<std::mutex> lock(batch_mu_);
    return batch_size_.count();
  }
  std::uint64_t batched_requests() const {
    std::lock_guard<std::mutex> lock(batch_mu_);
    return static_cast<std::uint64_t>(batch_size_.sum());
  }
  double uptime_seconds() const;

  /// Human-readable snapshot (also machine-greppable `key: value` lines).
  std::string render(const PreparedCache::Stats& cache) const;

  /// Prometheus text exposition (version 0.0.4): counters, gauges, and the
  /// latency histograms with cumulative geometric `le` buckets.
  std::string render_prometheus(const PreparedCache::Stats& cache) const;

 private:
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> counts_[kNumRequestTypes];
  std::atomic<std::uint64_t> errors_;
  std::atomic<std::uint64_t> queries_;
  std::atomic<std::uint64_t> connections_;
  std::atomic<std::uint64_t> stages_[kNumStageCounters];
  std::atomic<std::uint64_t> failures_[kNumFailureCounters];
  std::atomic<std::uint64_t> failovers_;
  std::atomic<std::uint64_t> hedges_won_;
  std::atomic<std::uint64_t> hedges_lost_;
  std::atomic<std::uint64_t> reloads_[kNumReloadResults];
  std::atomic<std::uint64_t> label_fetches_[kNumLabelFetchResults];
  std::atomic<std::uint64_t> label_cache_hits_;
  std::atomic<std::uint64_t> label_cache_misses_;
  std::atomic<std::uint64_t> degraded_[kNumDegradedReasons];
  std::atomic<std::uint64_t> reactor_stalls_;
  std::atomic<std::uint64_t> worker_stalls_;
  std::atomic<std::int64_t> open_connections_;
  mutable std::mutex batch_mu_;
  Histogram batch_size_{1.25};
  mutable std::mutex loop_mu_;
  Histogram loop_latency_{1.25};
  // One latency histogram per request type, microsecond samples, each
  // behind its own mutex (lock striping: recording a DIST latency must not
  // contend with BATCH recording; only a renderer takes them all).
  mutable std::mutex lat_mu_[kNumRequestTypes];
  Histogram latency_[kNumRequestTypes];
};

}  // namespace fsdl::server
