#include "shard/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsdl::shard {

namespace {

/// SplitMix64 step — the same full-avalanche mixer the Rng seeder uses, so
/// consecutive vertex ids (and consecutive vnode indices) land uniformly
/// over the whole ring.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Vertex hash stream: high bit set keeps it disjoint from the small
/// integers feeding the per-shard ring streams.
std::uint64_t vertex_hash(std::uint64_t seed, Vertex v) noexcept {
  return mix64(seed ^ (0x8000000000000000ULL | static_cast<std::uint64_t>(v)));
}

}  // namespace

Partitioner::Partitioner(const PartitionInfo& info) : info_(info) {
  if (info_.shard_count == 0) {
    throw std::invalid_argument("Partitioner: shard_count must be >= 1");
  }
  if (info_.shard_count == 1) return;  // everything belongs to shard 0
  if (info_.ring_points == 0) {
    throw std::invalid_argument("Partitioner: ring_points must be >= 1");
  }
  ring_.reserve(static_cast<std::size_t>(info_.shard_count) *
                info_.ring_points);
  for (std::uint32_t s = 0; s < info_.shard_count; ++s) {
    // Per-shard vnode stream: one mix to derive the shard's base, a second
    // per vnode, so the (shard, vnode) lattice cannot survive into ring
    // positions.
    const std::uint64_t base =
        mix64(info_.ring_seed ^ (static_cast<std::uint64_t>(s) + 1));
    for (std::uint32_t k = 0; k < info_.ring_points; ++k) {
      ring_.emplace_back(mix64(base + k), s);
    }
  }
  // Pair order (hash, then shard) makes the ring deterministic even in the
  // astronomically unlikely event of a hash collision between shards.
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t Partitioner::owner(Vertex v) const noexcept {
  if (info_.shard_count == 1) return 0;
  const std::uint64_t h = vertex_hash(info_.ring_seed, v);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& p, std::uint64_t key) {
        return p.first < key;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

}  // namespace fsdl::shard
