// Deterministic vertex partitioner for the sharded label store.
//
// Consistent hashing on vertex id: each shard contributes `ring_points`
// virtual nodes hashed onto a 64-bit ring, and a vertex is owned by the
// shard whose ring point is the first at or clockwise-after the vertex's
// own hash. The ring is a pure function of (shard_count, ring_seed,
// ring_points) — no state, no coordination — so every process that agrees
// on those three values agrees on ownership. They are serialized inside the
// CRC-covered body of every label file (format v3): the splitter, each
// shard server, and the router all read the same identity, and a flipped
// bit in the shard metadata is rejected at load instead of silently
// misrouting queries.
//
// Why a ring rather than `v % K`: the hash ring keeps ownership stable as
// labelings are re-cut at different shard counts (only ~1/K of vertices
// move when a shard is added), and it decouples ownership from any id
// structure in the graph (grid generators hand out spatially correlated
// ids; modulo would put entire rows on one shard and wreck balance of the
// *queried* working set).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace fsdl::shard {

/// Ring seed used when no explicit seed is given. Arbitrary but fixed
/// forever: changing it would silently re-partition every existing file.
inline constexpr std::uint64_t kDefaultRingSeed = 0x5fda1a9bc1077357ULL;

/// Virtual nodes per shard. 256 keeps the max/mean ownership ratio well
/// under 1.2 for every shard count the tools accept (asserted on 10^5 ids
/// in shard_test).
inline constexpr std::uint32_t kDefaultRingPoints = 256;

/// Partition identity of a labeling: which shard a file holds plus the
/// ring parameters every process must agree on. Default-constructed means
/// "unsharded" (the whole labeling in one file, shard 0 of 1).
struct PartitionInfo {
  std::uint32_t shard_id = 0;
  /// 1 = unsharded.
  std::uint32_t shard_count = 1;
  std::uint64_t ring_seed = kDefaultRingSeed;
  std::uint32_t ring_points = kDefaultRingPoints;

  bool sharded() const noexcept { return shard_count > 1; }

  /// Same ownership function (shard_id may differ): what a router and its
  /// shards, or a server and a reload candidate, must agree on.
  bool same_ring(const PartitionInfo& o) const noexcept {
    return shard_count == o.shard_count && ring_seed == o.ring_seed &&
           ring_points == o.ring_points;
  }

  bool operator==(const PartitionInfo&) const = default;
};

class Partitioner {
 public:
  /// Throws std::invalid_argument on shard_count == 0 or (when sharded)
  /// ring_points == 0.
  explicit Partitioner(const PartitionInfo& info);
  explicit Partitioner(std::uint32_t shard_count,
                       std::uint64_t ring_seed = kDefaultRingSeed,
                       std::uint32_t ring_points = kDefaultRingPoints)
      : Partitioner(PartitionInfo{0, shard_count, ring_seed, ring_points}) {}

  /// Owning shard of vertex v, in [0, shard_count).
  std::uint32_t owner(Vertex v) const noexcept;

  std::uint32_t shard_count() const noexcept { return info_.shard_count; }
  const PartitionInfo& info() const noexcept { return info_; }

 private:
  PartitionInfo info_;
  /// (point hash, shard) sorted by hash; empty when shard_count == 1.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

}  // namespace fsdl::shard
