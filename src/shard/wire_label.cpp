#include "shard/wire_label.hpp"

#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "shard/shard_store.hpp"

namespace fsdl::shard {
namespace {

constexpr std::uint8_t kWireLabelVersion = 1;

template <typename T>
void append_pod(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked reader mirroring the encoder; every length is validated
/// before memory is touched (the blob crossed a network).
class BlobReader {
 public:
  explicit BlobReader(const std::string& blob)
      : data_(blob.data()), size_(blob.size()) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) {
      throw std::runtime_error("wire label truncated");
    }
    T value{};
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::vector<std::uint64_t> words(std::uint64_t num_words) {
    if (num_words > (size_ - pos_) / sizeof(std::uint64_t)) {
      throw std::runtime_error("wire label corrupt (word count exceeds blob)");
    }
    std::vector<std::uint64_t> out(static_cast<std::size_t>(num_words));
    std::memcpy(out.data(), data_ + pos_,
                static_cast<std::size_t>(num_words) * sizeof(std::uint64_t));
    pos_ += static_cast<std::size_t>(num_words) * sizeof(std::uint64_t);
    return out;
  }

  bool done() const noexcept { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_wire_label(const ForbiddenSetLabeling& scheme, Vertex v,
                              std::uint64_t epoch) {
  const BitWriter& bits = ShardStore::raw_label(scheme, v);
  std::string out;
  out.reserve(64 + bits.words().size() * sizeof(std::uint64_t));
  append_pod(out, kWireLabelVersion);
  append_pod(out, scheme.params().epsilon);
  append_pod(out, static_cast<std::uint32_t>(scheme.params().c));
  append_pod(out, static_cast<std::uint8_t>(scheme.params().faithful_radii));
  append_pod(out,
             static_cast<std::uint8_t>(scheme.params().lowest_level_all_pairs));
  append_pod(out, static_cast<std::uint32_t>(scheme.top_level()));
  append_pod(out, static_cast<std::uint32_t>(scheme.vertex_bits()));
  append_pod(out, static_cast<std::uint8_t>(scheme.codec()));
  append_pod(out, static_cast<std::uint32_t>(scheme.num_vertices()));
  append_pod(out, epoch);
  append_pod(out, static_cast<std::uint32_t>(v));
  append_pod(out, static_cast<std::uint64_t>(bits.bit_size()));
  append_pod(out, static_cast<std::uint64_t>(bits.words().size()));
  out.append(reinterpret_cast<const char*>(bits.words().data()),
             bits.words().size() * sizeof(std::uint64_t));
  return out;
}

WireLabel decode_wire_label(const std::string& blob) {
  BlobReader r(blob);
  const std::uint8_t version = r.pod<std::uint8_t>();
  if (version != kWireLabelVersion) {
    throw std::runtime_error("unsupported wire label version " +
                             std::to_string(version));
  }
  WireLabel out;
  out.meta.params.epsilon = r.pod<double>();
  out.meta.params.c = r.pod<std::uint32_t>();
  out.meta.params.faithful_radii = r.pod<std::uint8_t>() != 0;
  out.meta.params.lowest_level_all_pairs = r.pod<std::uint8_t>() != 0;
  out.meta.top_level = r.pod<std::uint32_t>();
  out.meta.vertex_bits = r.pod<std::uint32_t>();
  out.meta.codec = static_cast<LabelCodec>(r.pod<std::uint8_t>());
  out.meta.total_n = r.pod<std::uint32_t>();
  out.meta.epoch = r.pod<std::uint64_t>();
  out.vertex = r.pod<std::uint32_t>();
  if (out.meta.vertex_bits == 0 || out.meta.vertex_bits > 32) {
    throw std::runtime_error("wire label corrupt (vertex bits)");
  }
  if (out.vertex >= out.meta.total_n) {
    throw std::runtime_error("wire label corrupt (vertex out of range)");
  }
  const std::uint64_t bits = r.pod<std::uint64_t>();
  const std::uint64_t num_words = r.pod<std::uint64_t>();
  if (bits == 0 || num_words < bits / 64 + (bits % 64 != 0)) {
    throw std::runtime_error("wire label corrupt (bit count)");
  }
  const BitWriter buffer =
      BitWriter::from_words(r.words(num_words), static_cast<std::size_t>(bits));
  if (!r.done()) {
    throw std::runtime_error("wire label corrupt (trailing bytes)");
  }
  BitReader reader(buffer);
  out.label = decode_label(reader, out.meta.vertex_bits, out.meta.codec);
  if (out.label.owner != out.vertex) {
    throw std::runtime_error(
        "wire label corrupt (decoded owner does not match tagged vertex)");
  }
  return out;
}

}  // namespace fsdl::shard
