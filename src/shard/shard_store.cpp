#include "shard/shard_store.hpp"

#include <stdexcept>
#include <string>

namespace fsdl::shard {

std::vector<ForbiddenSetLabeling> ShardStore::split(
    const ForbiddenSetLabeling& scheme, std::uint32_t shard_count,
    std::uint64_t ring_seed, std::uint32_t ring_points) {
  if (scheme.partition_.sharded()) {
    throw std::invalid_argument(
        "split: input is already a shard (shard " +
        std::to_string(scheme.partition_.shard_id) + " of " +
        std::to_string(scheme.partition_.shard_count) + "); merge first");
  }
  const PartitionInfo ring{0, shard_count, ring_seed, ring_points};
  const Partitioner part(ring);  // validates shard_count/ring_points
  const Vertex n = scheme.num_vertices();

  std::vector<ForbiddenSetLabeling> out(shard_count);
  for (std::uint32_t s = 0; s < shard_count; ++s) {
    ForbiddenSetLabeling& piece = out[s];
    piece.params_ = scheme.params_;
    piece.top_level_ = scheme.top_level_;
    piece.vertex_bits_ = scheme.vertex_bits_;
    piece.codec_ = scheme.codec_;
    piece.partition_ = ring;
    piece.partition_.shard_id = s;
    piece.labels_.assign(n, BitWriter{});
  }
  for (Vertex v = 0; v < n; ++v) {
    out[part.owner(v)].labels_[v] = scheme.labels_[v];
  }
  return out;
}

ForbiddenSetLabeling ShardStore::merge(
    const std::vector<ForbiddenSetLabeling>& shards) {
  if (shards.empty()) throw std::invalid_argument("merge: no shards given");
  const ForbiddenSetLabeling& first = shards.front();
  const PartitionInfo& ring = first.partition_;
  const std::uint32_t k = ring.shard_count;
  if (shards.size() != k) {
    throw std::invalid_argument(
        "merge: have " + std::to_string(shards.size()) + " shard(s) of a " +
        std::to_string(k) + "-shard split");
  }

  std::vector<bool> seen(k, false);
  for (const ForbiddenSetLabeling& s : shards) {
    if (!s.partition_.same_ring(ring)) {
      throw std::invalid_argument(
          "merge: shards come from different rings (shard count / seed / "
          "ring points disagree)");
    }
    if (seen[s.partition_.shard_id]) {
      throw std::invalid_argument("merge: duplicate shard " +
                                  std::to_string(s.partition_.shard_id));
    }
    seen[s.partition_.shard_id] = true;
    const bool same_scheme =
        s.params_.epsilon == first.params_.epsilon &&
        s.params_.c == first.params_.c &&
        s.params_.faithful_radii == first.params_.faithful_radii &&
        s.params_.lowest_level_all_pairs ==
            first.params_.lowest_level_all_pairs &&
        s.top_level_ == first.top_level_ &&
        s.vertex_bits_ == first.vertex_bits_ && s.codec_ == first.codec_ &&
        s.labels_.size() == first.labels_.size();
    if (!same_scheme) {
      throw std::invalid_argument(
          "merge: shards were cut from different labelings (scheme "
          "description disagrees)");
    }
  }

  const Partitioner part(ring);
  const Vertex n = first.num_vertices();
  ForbiddenSetLabeling merged;
  merged.params_ = first.params_;
  merged.top_level_ = first.top_level_;
  merged.vertex_bits_ = first.vertex_bits_;
  merged.codec_ = first.codec_;
  // partition_ stays default-constructed (unsharded): the merged labeling
  // re-serializes byte-identically to the pre-split original.
  merged.labels_.assign(n, BitWriter{});

  for (const ForbiddenSetLabeling& s : shards) {
    const std::uint32_t id = s.partition_.shard_id;
    for (Vertex v = 0; v < n; ++v) {
      const BitWriter& label = s.labels_[v];
      if (label.bit_size() == 0) continue;
      if (part.owner(v) != id) {
        throw std::invalid_argument(
            "merge: shard " + std::to_string(id) + " stores vertex " +
            std::to_string(v) + " owned by shard " +
            std::to_string(part.owner(v)));
      }
      merged.labels_[v] = label;
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (merged.labels_[v].bit_size() == 0) {
      throw std::invalid_argument("merge: no shard stores vertex " +
                                  std::to_string(v));
    }
  }
  return merged;
}

}  // namespace fsdl::shard
