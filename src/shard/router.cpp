#include "shard/router.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "server/fleet.hpp"
#include "util/timer.hpp"

namespace fsdl::shard {

namespace {

std::uint64_t steady_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

using server::FaultKey;
using server::LabelFetchResult;
using server::Opcode;
using server::Request;
using server::RequestType;
using server::Response;
using server::Status;
using server::error_response;

Router::Router(const RouterOptions& options)
    : FrameServer(options.transport),
      options_(options),
      partitioner_(static_cast<std::uint32_t>(options.shards.size()),
                   options.ring_seed, options.ring_points) {
  if (options.shards.empty()) {
    throw std::invalid_argument("Router needs at least one shard");
  }
  channels_.reserve(options.shards.size());
  for (std::size_t i = 0; i < options.shards.size(); ++i) {
    if (options.shards[i].empty()) {
      throw std::invalid_argument("shard " + std::to_string(i) +
                                  " has no replica endpoints");
    }
    channels_.push_back(std::make_unique<ShardChannel>(
        options.shards[i], options_.replica, &metrics_,
        std::max(0.0, options_.retry_budget_cap)));
  }
  const std::size_t cache_shards =
      options.label_cache_shards == 0 ? 1 : options.label_cache_shards;
  cache_.reserve(cache_shards);
  for (std::size_t i = 0; i < cache_shards; ++i) {
    cache_.push_back(std::make_unique<CacheShard>());
  }
  per_cache_shard_capacity_ =
      std::max<std::size_t>(1, options.label_cache_capacity / cache_shards);
  fetch_latency_.resize(channels_.size());
}

Router::~Router() { stop(); }

void Router::on_start() {
  // Topology validation: every shard must identify as the shard the router
  // thinks it is talking to, under the same shard count, and all must agree
  // on n. This catches the operational failure modes — endpoint lists in
  // the wrong order, a fleet cut at a different shard count, a stray
  // unsharded server — at startup, before any query can be misrouted.
  Vertex n = 0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    Request req;
    req.opcode = Opcode::kHealth;
    Response resp;
    try {
      std::lock_guard<std::mutex> lock(channels_[i]->mu);
      resp = channels_[i]->client.call_idempotent(req);
    } catch (const std::exception& e) {
      throw std::runtime_error("shard " + std::to_string(i) +
                               " health check failed: " + e.what());
    }
    unsigned shard_n = 0, shard_id = 0, shard_count = 0;
    std::uint64_t epoch = 0;
    if (std::sscanf(resp.text.c_str(),
                    "%*s epoch=%" SCNu64 " n=%u shard=%u/%u", &epoch,
                    &shard_n, &shard_id, &shard_count) != 4) {
      throw std::runtime_error("shard " + std::to_string(i) +
                               " reports no shard identity (health: \"" +
                               resp.text + "\")");
    }
    if (shard_id != i || shard_count != channels_.size()) {
      char buf[128];
      std::snprintf(buf, sizeof buf,
                    "endpoint configured as shard %zu identifies as shard "
                    "%u/%u (router expects %zu shards)",
                    i, shard_id, shard_count, channels_.size());
      throw std::runtime_error(buf);
    }
    if (i == 0) {
      n = shard_n;
    } else if (shard_n != n) {
      throw std::runtime_error(
          "shards disagree on vertex count (shard 0: n=" + std::to_string(n) +
          ", shard " + std::to_string(i) + ": n=" + std::to_string(shard_n) +
          ")");
    }
    // Seed the staleness baseline: labels cached from now on are fresh
    // relative to this epoch until the shard reports a different one.
    channels_[i]->known_epoch.store(epoch, std::memory_order_relaxed);
  }
  total_n_ = n;
}

Router::CacheShard& Router::cache_shard(Vertex v) {
  return *cache_[v % cache_.size()];
}

std::shared_ptr<const VertexLabel> Router::cache_get(Vertex v,
                                                     std::uint64_t* epoch) {
  CacheShard& shard = cache_shard(v);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(v);
  if (it == shard.index.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (epoch != nullptr) *epoch = it->second->epoch;
  return it->second->label;
}

void Router::cache_put(Vertex v, std::shared_ptr<const VertexLabel> label,
                       std::uint64_t epoch) {
  CacheShard& shard = cache_shard(v);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(v);
  if (it != shard.index.end()) {
    // Racing fetch won; still advance the epoch so a refetched stale entry
    // stops reading as stale.
    if (epoch != it->second->epoch) {
      it->second->label = std::move(label);
      it->second->epoch = epoch;
    }
    return;
  }
  shard.lru.push_front(CacheShard::Entry{v, std::move(label), epoch});
  shard.index.emplace(v, shard.lru.begin());
  while (shard.lru.size() > per_cache_shard_capacity_) {
    shard.index.erase(shard.lru.back().vertex);
    shard.lru.pop_back();
  }
}

void Router::settle_budget(ShardChannel& ch, std::uint64_t retries_before,
                           bool success) {
  if (options_.retry_budget_cap <= 0) return;
  const double spent = static_cast<double>(
      ch.client.replica_stats().retries - retries_before);
  ch.tokens = std::max(0.0, ch.tokens - spent);
  if (success) {
    ch.tokens = std::min(options_.retry_budget_cap,
                         ch.tokens + options_.retry_budget_refill);
  }
}

std::uint64_t Router::probe_interval_ms() const {
  return options_.probe_interval_ms != 0
             ? options_.probe_interval_ms
             : std::max(1u, options_.replica.breaker_cooldown_ms);
}

void Router::mark_shard_down(std::size_t shard) {
  ShardChannel& ch = *channels_[shard];
  if (!ch.down.exchange(true, std::memory_order_relaxed)) {
    // First probe one interval out: the replicas' breakers need at least a
    // cooldown before a probe could close them anyway.
    ch.next_probe_ms.store(steady_now_ms() + probe_interval_ms(),
                           std::memory_order_relaxed);
  }
}

bool Router::shard_available(std::size_t shard) {
  ShardChannel& ch = *channels_[shard];
  if (!ch.down.load(std::memory_order_relaxed)) return true;
  const std::uint64_t now = steady_now_ms();
  std::uint64_t gate = ch.next_probe_ms.load(std::memory_order_relaxed);
  if (now < gate ||
      !ch.next_probe_ms.compare_exchange_strong(gate,
                                                now + probe_interval_ms(),
                                                std::memory_order_relaxed)) {
    return false;  // probed too recently, or another thread owns this slot
  }
  // This thread won the probe slot. try_lock only: a cache hit must never
  // queue behind a failover sweep some other request is burning on this
  // channel — serving degraded now beats serving fresh eventually.
  std::unique_lock<std::mutex> lock(ch.mu, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  Request req;
  req.opcode = Opcode::kHealth;
  try {
    const Response resp = ch.client.call_idempotent_capped(req, 1, 0.0);
    if (resp.ok() && resp.text.rfind("ready", 0) == 0) {
      std::uint64_t epoch = 0;
      if (std::sscanf(resp.text.c_str(), "%*s epoch=%" SCNu64, &epoch) == 1) {
        ch.known_epoch.store(epoch, std::memory_order_relaxed);
      }
      ch.down.store(false, std::memory_order_relaxed);
      return true;
    }
  } catch (const std::exception&) {
    // Still down; the gate already moved one interval forward.
  }
  return false;
}

bool Router::adopt_meta(const WireLabelMeta& meta, std::string& error) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (!meta_known_) {
    if (total_n_ != 0 && meta.total_n != total_n_) {
      error = "shard label reports n=" + std::to_string(meta.total_n) +
              " but the fleet reported n=" + std::to_string(total_n_) +
              " at startup";
      return false;
    }
    meta_ = meta;
    meta_known_ = true;
    return true;
  }
  if (!meta_.compatible(meta)) {
    // Two shards serving labelings with different parameters would decode
    // individually fine and combine into garbage — refuse loudly.
    error = "shard serves an incompatible labeling (scheme parameters, "
            "codec, or vertex count disagree across shards)";
    return false;
  }
  return true;
}

std::shared_ptr<const VertexLabel> Router::fetch_label(
    Vertex v, const server::TraceContext& trace, Response& error,
    std::uint64_t& epoch) {
  const std::uint32_t owner = partitioner_.owner(v);
  ShardChannel& ch = *channels_[owner];
  if (trace.present && trace.deadline_us <= 1) {
    // Deadline-aware give-up: the client's budget is already gone, so any
    // answer we fetched would be discarded. Spend nothing.
    metrics_.record_label_fetch(LabelFetchResult::kUnavailable);
    error = error_response("shard " + std::to_string(owner) +
                               " fetch skipped: client deadline exhausted",
                           Status::kTimeout);
    return nullptr;
  }
  Request req;
  req.opcode = Opcode::kGetLabel;
  req.pairs.emplace_back(v, 0);
  req.trace = trace;
  Response resp;
  WallTimer round_trip;
  const auto record_latency = [&] {
    std::lock_guard<std::mutex> lock(fetch_hist_mu_);
    fetch_latency_[owner].add(round_trip.elapsed_us());
  };
  try {
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      // Retry budget: the first attempt is free, each failover attempt
      // beyond it must be covered by a token. An empty bucket means a dead
      // shard costs one attempt per request, not a whole sweep.
      unsigned attempts = 0;
      if (options_.retry_budget_cap > 0) {
        attempts = 1 + static_cast<unsigned>(ch.tokens);
      }
      const std::uint64_t retries_before = ch.client.replica_stats().retries;
      try {
        resp = ch.client.call_idempotent_capped(
            req, attempts,
            trace.present ? static_cast<double>(trace.deadline_us) : 0.0);
        settle_budget(ch, retries_before, /*success=*/true);
      } catch (...) {
        settle_budget(ch, retries_before, /*success=*/false);
        throw;
      }
    }
    record_latency();
    ch.down.store(false, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    record_latency();
    // Every replica of the owning shard failed within the retry budget.
    // TIMEOUT, not ERROR: the query is fine, the shard is not — a client
    // may retry once a replica comes back. Mark the shard down so cache
    // hits it owns switch to stale-label serving until a probe clears it.
    mark_shard_down(owner);
    metrics_.record_label_fetch(LabelFetchResult::kUnavailable);
    error = error_response("shard " + std::to_string(owner) +
                               " unavailable: " + e.what(),
                           Status::kTimeout);
    return nullptr;
  }
  if (!resp.ok()) {
    // Definitive shard-side refusal (unknown vertex, wrong shard under a
    // mismatched ring, ...). Propagate the shard's own message — it names
    // the owner it believes in, which is the actionable part.
    metrics_.record_label_fetch(LabelFetchResult::kError);
    error = error_response("shard " + std::to_string(owner) +
                               " refused label fetch: " + resp.text,
                           resp.status);
    return nullptr;
  }
  try {
    WireLabel wire = decode_wire_label(resp.text);
    if (wire.vertex != v) {
      throw std::runtime_error("shard returned the label of vertex " +
                               std::to_string(wire.vertex));
    }
    std::string meta_error;
    if (!adopt_meta(wire.meta, meta_error)) {
      metrics_.record_label_fetch(LabelFetchResult::kError);
      error = error_response(std::move(meta_error));
      return nullptr;
    }
    epoch = wire.meta.epoch;
    ch.known_epoch.store(epoch, std::memory_order_relaxed);
    metrics_.record_label_fetch(LabelFetchResult::kOk);
    return std::make_shared<const VertexLabel>(std::move(wire.label));
  } catch (const std::exception& e) {
    metrics_.record_label_fetch(LabelFetchResult::kError);
    error = error_response("label from shard " + std::to_string(owner) +
                           " is malformed: " + e.what());
    return nullptr;
  }
}

bool Router::gather_labels(
    const std::vector<Vertex>& needed, QueryTrace trace,
    const server::TraceContext& upstream,
    std::unordered_map<Vertex, std::shared_ptr<const VertexLabel>>& out,
    Response& error, DegradedServe& degraded) {
  obs::TraceRecorder& rec = trace.rec;
  const std::uint64_t root_span = trace.root_span;
  // Cache pass first; group the misses by owning shard. Stale entries
  // (epoch behind the shard's last reported one) are refetched but kept as
  // fallbacks; entries owned by a down shard are served degraded outright.
  std::vector<std::vector<Vertex>> missing(channels_.size());
  std::unordered_map<Vertex,
                     std::pair<std::shared_ptr<const VertexLabel>,
                               std::uint64_t>>
      fallback;
  std::size_t miss_shards = 0;
  for (Vertex v : needed) {
    if (out.find(v) != out.end()) continue;
    const std::uint32_t owner = partitioner_.owner(v);
    std::uint64_t entry_epoch = 0;
    auto label = cache_get(v, &entry_epoch);
    if (label != nullptr) {
      metrics_.record_label_cache(true);
      if (!options_.stale_serve) {
        out.emplace(v, std::move(label));
        continue;
      }
      const std::uint64_t known =
          channels_[owner]->known_epoch.load(std::memory_order_relaxed);
      const bool stale = entry_epoch < known;
      if (!shard_available(owner)) {
        // The owner is down: this cached label is the only answer there
        // is. Serve it and let the response say so.
        degraded.note(stale, entry_epoch);
        out.emplace(v, std::move(label));
        continue;
      }
      if (!stale) {
        out.emplace(v, std::move(label));
        continue;
      }
      // Stale but the shard is up: refetch, keeping the old entry as the
      // fallback should the shard die under us.
      fallback.emplace(v, std::make_pair(std::move(label), entry_epoch));
    } else {
      metrics_.record_label_cache(false);
    }
    auto& group = missing[owner];
    if (group.empty()) ++miss_shards;
    group.push_back(v);
    out.emplace(v, nullptr);  // dedupe placeholder, filled below
  }
  if (miss_shards == 0) return true;

  // Scatter: when the misses span several shards, fetch the groups
  // concurrently — each group serializes on its own shard channel, so the
  // round trips overlap instead of queueing behind one another.
  struct Fetched {
    Vertex vertex;
    std::shared_ptr<const VertexLabel> label;
    std::uint64_t epoch;
  };
  struct GroupResult {
    std::vector<Fetched> labels;
    Response error;
    bool failed = false;
  };
  std::vector<GroupResult> results(channels_.size());
  auto fetch_group = [this, &missing, &results, &rec, root_span,
                      &upstream](std::size_t shard) {
    GroupResult& r = results[shard];
    // One "router.fetch" span per shard group; its id becomes the parent
    // span the shard's own spans hang under, so the stitched tree shows
    // which scatter leg each shard-side lookup belongs to.
    server::TraceContext ctx = upstream;
    const std::uint64_t span = rec.new_span();
    if (rec.active()) ctx.parent_span = span;
    const std::uint64_t start = rec.active() ? obs::epoch_us() : 0;
    WallTimer group_timer;
    for (Vertex v : missing[shard]) {
      if (ctx.present && upstream.deadline_us > 0) {
        // Forward only the budget this request still has.
        const double used = group_timer.elapsed_us();
        ctx.deadline_us =
            used >= upstream.deadline_us
                ? 1
                : upstream.deadline_us - static_cast<std::uint32_t>(used);
      }
      std::uint64_t label_epoch = 0;
      auto label = fetch_label(v, ctx, r.error, label_epoch);
      if (label == nullptr) {
        r.failed = true;
        break;
      }
      r.labels.push_back(Fetched{v, std::move(label), label_epoch});
    }
    if (rec.active()) {
      rec.add("router.fetch", span, root_span, start,
              group_timer.elapsed_us(), static_cast<int>(shard));
    }
  };
  if (miss_shards == 1) {
    for (std::size_t s = 0; s < missing.size(); ++s) {
      if (!missing[s].empty()) fetch_group(s);
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(miss_shards);
    for (std::size_t s = 0; s < missing.size(); ++s) {
      if (!missing[s].empty()) threads.emplace_back(fetch_group, s);
    }
    for (auto& t : threads) t.join();
  }

  // Gather: merge the per-shard results. A failed group whose failure was
  // unavailability (not a refusal) may still be rescued: if every vertex it
  // left unfetched has a stale fallback entry, those are served degraded.
  // Otherwise the first failure wins and the placeholders are scrubbed so a
  // failed gather never leaves null labels behind for a later code path to
  // dereference.
  bool ok = true;
  for (std::size_t s = 0; s < results.size(); ++s) {
    GroupResult& r = results[s];
    for (auto& f : r.labels) {
      cache_put(f.vertex, f.label, f.epoch);
      out[f.vertex] = std::move(f.label);
    }
    if (!r.failed) continue;
    bool rescued =
        options_.stale_serve && r.error.status == Status::kTimeout;
    if (rescued) {
      for (Vertex v : missing[s]) {
        if (out[v] != nullptr) continue;  // fetched before the failure
        if (fallback.find(v) == fallback.end()) {
          rescued = false;
          break;
        }
      }
    }
    if (rescued) {
      for (Vertex v : missing[s]) {
        if (out[v] != nullptr) continue;
        auto& fb = fallback[v];
        degraded.note(true, fb.second);
        out[v] = std::move(fb.first);
      }
    } else if (ok) {
      ok = false;
      error = std::move(r.error);
    }
  }
  if (!ok) {
    for (auto it = out.begin(); it != out.end();) {
      it = it->second == nullptr ? out.erase(it) : std::next(it);
    }
  }
  return ok;
}

std::shared_ptr<const Router::PinnedPrepared> Router::prepared_get(
    const FaultSet& faults,
    const std::unordered_map<Vertex, std::shared_ptr<const VertexLabel>>&
        labels) {
  const FaultKey key = server::canonical_key(faults);
  const std::uint64_t hash = server::fault_hash(key);
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    const auto chain = prepared_index_.find(hash);
    if (chain != prepared_index_.end()) {
      for (const auto& it : chain->second) {
        if (it->key == key) {
          ++prepared_hits_;
          prepared_lru_.splice(prepared_lru_.begin(), prepared_lru_, it);
          return it->value;
        }
      }
    }
    ++prepared_misses_;
  }

  // Build outside the lock (same policy as the server's PreparedCache: two
  // racing builders do duplicate work; neither blocks other fault sets).
  SchemeParams params;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    params = meta_.params;
  }
  auto pinned = std::make_shared<PinnedPrepared>();
  std::vector<const VertexLabel*> fault_vertices;
  fault_vertices.reserve(faults.vertices().size());
  for (Vertex v : faults.vertices()) {
    const auto& label = labels.at(v);
    pinned->pins.push_back(label);
    fault_vertices.push_back(label.get());
  }
  std::vector<std::pair<const VertexLabel*, const VertexLabel*>> fault_edges;
  fault_edges.reserve(faults.edges().size());
  for (const auto& [a, b] : faults.edges()) {
    const auto& la = labels.at(a);
    const auto& lb = labels.at(b);
    pinned->pins.push_back(la);
    pinned->pins.push_back(lb);
    fault_edges.emplace_back(la.get(), lb.get());
  }
  pinned->prepared = std::make_unique<const PreparedFaults>(
      params, std::move(fault_vertices), std::move(fault_edges));

  std::lock_guard<std::mutex> lock(prepared_mu_);
  const auto chain = prepared_index_.find(hash);
  if (chain != prepared_index_.end()) {
    for (const auto& it : chain->second) {
      if (it->key == key) return it->value;  // the racing builder won
    }
  }
  prepared_lru_.push_front(PreparedEntry{key, pinned});
  prepared_index_[hash].push_back(prepared_lru_.begin());
  while (prepared_lru_.size() > std::max<std::size_t>(
                                    1, options_.prepared_capacity)) {
    const PreparedEntry& victim = prepared_lru_.back();
    const std::uint64_t victim_hash = server::fault_hash(victim.key);
    auto victim_chain = prepared_index_.find(victim_hash);
    if (victim_chain != prepared_index_.end()) {
      auto& vec = victim_chain->second;
      for (auto it = vec.begin(); it != vec.end(); ++it) {
        if ((*it)->key == victim.key) {
          vec.erase(it);
          break;
        }
      }
      if (vec.empty()) prepared_index_.erase(victim_chain);
    }
    prepared_lru_.pop_back();
    ++prepared_evictions_;
  }
  return pinned;
}

server::PreparedCache::Stats Router::prepared_stats() const {
  std::lock_guard<std::mutex> lock(prepared_mu_);
  server::PreparedCache::Stats s;
  s.hits = prepared_hits_;
  s.misses = prepared_misses_;
  s.evictions = prepared_evictions_;
  s.entries = prepared_lru_.size();
  return s;
}

std::string Router::prometheus() const {
  std::string out = metrics_.render_prometheus(prepared_stats());
  std::lock_guard<std::mutex> lock(fetch_hist_mu_);
  bool any = false;
  for (const Histogram& h : fetch_latency_) {
    if (!h.empty()) any = true;
  }
  if (any) {
    out +=
        "# HELP fsdl_router_shard_fetch_latency_microseconds GET_LABEL "
        "round-trip latency per owning shard.\n"
        "# TYPE fsdl_router_shard_fetch_latency_microseconds histogram\n";
    for (std::size_t i = 0; i < fetch_latency_.size(); ++i) {
      if (fetch_latency_[i].empty()) continue;
      server::append_prometheus_histogram(
          out, "fsdl_router_shard_fetch_latency_microseconds",
          "shard=\"" + std::to_string(i) + "\"", fetch_latency_[i]);
    }
  }
  return out;
}

Response Router::fleet_stats() {
  std::vector<server::ShardScrape> scrapes;
  scrapes.reserve(channels_.size());
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    server::ShardScrape s;
    s.shard = static_cast<unsigned>(i);
    Request mreq;
    mreq.opcode = Opcode::kMetrics;
    try {
      std::lock_guard<std::mutex> lock(channels_[i]->mu);
      server::ReplicaClient& client = channels_[i]->client;
      const server::Endpoint& ep = client.endpoint(client.primary());
      s.replica = ep.host + ":" + std::to_string(ep.port);
      Response mresp = client.call_idempotent(mreq);
      s.ok = mresp.ok();
      s.text = std::move(mresp.text);
    } catch (const std::exception&) {
      // A dead shard is a 0 in fsdl_fleet_scrape_ok, not a failed request:
      // the surviving shards' numbers are exactly what an operator needs
      // while a shard is down.
      s.ok = false;
    }
    scrapes.push_back(std::move(s));
  }
  Response resp;
  resp.text = prometheus() + server::render_fleet(scrapes);
  return resp;
}

std::string Router::health_text() const {
  const char* state = draining() ? "draining"
                     : watchdog_degraded() ? "degraded"
                                           : "ready";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s n=%u shards=%u plane=%s uptime_s=%" PRIu64
                " conns=%" PRId64,
                state, total_n_, shard_count(), plane_name(), uptime_s(),
                open_connections());
  return buf;
}

Response Router::handle_query(const Request& req) {
  WallTimer timer;
  obs::TraceRecorder rec(req.trace.trace_hi, req.trace.trace_lo,
                         req.trace.parent_span, req.trace.sampled());
  const std::uint64_t root_span = rec.new_span();
  const std::uint64_t root_start = rec.active() ? obs::epoch_us() : 0;
  if (req.pairs.empty()) return error_response("empty batch");
  const Vertex n = total_n_;
  for (const auto& [s, t] : req.pairs) {
    for (Vertex v : {s, t}) {
      if (v >= n) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "vertex id %u out of range (n=%u)", v,
                      n);
        return error_response(buf);
      }
    }
  }
  for (Vertex v : req.faults.vertices()) {
    if (v >= n) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "fault vertex id %u out of range (n=%u)",
                    v, n);
      return error_response(buf);
    }
  }
  for (const auto& [a, b] : req.faults.edges()) {
    for (Vertex v : {a, b}) {
      if (v >= n) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "fault edge id %u out of range (n=%u)",
                      v, n);
        return error_response(buf);
      }
    }
  }

  // The full label shopping list: endpoints, forbidden vertices, and both
  // endpoints of forbidden edges (the decoder filters each fault label's
  // edges, so edge faults need labels too).
  std::vector<Vertex> needed;
  needed.reserve(req.pairs.size() * 2 + req.faults.size() * 2);
  for (const auto& [s, t] : req.pairs) {
    needed.push_back(s);
    needed.push_back(t);
  }
  needed.insert(needed.end(), req.faults.vertices().begin(),
                req.faults.vertices().end());
  for (const auto& [a, b] : req.faults.edges()) {
    needed.push_back(a);
    needed.push_back(b);
  }

  // Trace context forwarded to the shards: the incoming one verbatim (so
  // propagation also works in FSDL_TRACE=OFF builds, where the recorder is
  // inert), upgraded to this hop's trace id when the event log is live.
  server::TraceContext fwd = req.trace;
  if (rec.active()) {
    fwd.present = true;
    fwd.trace_hi = rec.trace_hi();
    fwd.trace_lo = rec.trace_lo();
    if (rec.sampled()) fwd.flags |= server::TraceContext::kSampledFlag;
  }

  std::unordered_map<Vertex, std::shared_ptr<const VertexLabel>> labels;
  labels.reserve(needed.size());
  Response gather_error;
  DegradedServe degraded;
  const std::uint64_t assemble_span = rec.new_span();
  const std::uint64_t assemble_start = rec.active() ? obs::epoch_us() : 0;
  WallTimer assemble_timer;
  const bool gathered =
      gather_labels(needed, QueryTrace{rec, root_span}, fwd, labels,
                    gather_error, degraded);
  if (rec.active()) {
    rec.add("router.assemble", assemble_span, root_span, assemble_start,
            assemble_timer.elapsed_us());
  }
  if (!gathered) {
    if (rec.active()) {
      rec.add("router.query", root_span, rec.parent_span(), root_start,
              timer.elapsed_us());
    }
    rec.flush(false);
    return gather_error;
  }

  Response resp;
  resp.distances.reserve(req.pairs.size());
  QueryStats request_stats;
  const std::uint64_t decode_span = rec.new_span();
  const std::uint64_t decode_start = rec.active() ? obs::epoch_us() : 0;
  WallTimer decode_timer;
  if (req.faults.empty()) {
    SchemeParams params;
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      params = meta_.params;
    }
    for (const auto& [s, t] : req.pairs) {
      QueryInput in;
      in.source = labels.at(s).get();
      in.target = labels.at(t).get();
      const QueryResult r = decode_query(params, in);
      resp.distances.push_back(r.distance);
      request_stats.accumulate(r.stats);
    }
  } else {
    const auto prepared = prepared_get(req.faults, labels);
    for (const auto& [s, t] : req.pairs) {
      // PreparedFaults handles forbidden endpoints (returns kInfDist).
      const QueryResult r =
          prepared->prepared->query(*labels.at(s), *labels.at(t));
      resp.distances.push_back(r.distance);
      request_stats.accumulate(r.stats);
    }
  }
  if (degraded.any()) {
    // The distances above used at least one cached label whose shard could
    // not vouch for it. Same decode, honestly labeled: kDegraded + the
    // oldest snapshot epoch consulted.
    resp.status = Status::kDegraded;
    resp.epoch = degraded.oldest_epoch;
    metrics_.record_degraded(degraded.stale != 0
                                 ? server::DegradedReason::kStaleLabel
                                 : server::DegradedReason::kShardDown);
  }
  if (rec.active()) {
    rec.add("router.decode", decode_span, root_span, decode_start,
            decode_timer.elapsed_us());
    rec.add("router.query", root_span, rec.parent_span(), root_start,
            timer.elapsed_us());
  }
  rec.flush(false);
  metrics_.record(req.opcode == Opcode::kDist ? RequestType::kDist
                                              : RequestType::kBatch,
                  resp.distances.size(), timer.elapsed_us());
  metrics_.record_query_stats(request_stats);
  return resp;
}

Response Router::handle(const Request& req) {
  WallTimer timer;
  Response resp;
  switch (req.opcode) {
    case Opcode::kStats: {
      resp.text = metrics_.render(prepared_stats());
      metrics_.record(RequestType::kStats, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kMetrics: {
      resp.text = prometheus();
      metrics_.record(RequestType::kMetrics, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kFleetStats: {
      resp = fleet_stats();
      metrics_.record(RequestType::kFleetStats, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kHealth: {
      resp.text = health_text();
      metrics_.record(RequestType::kHealth, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kReload: {
      return error_response(
          "RELOAD refused: the router holds no labels of its own (reload "
          "the shard servers; the router's caches follow)");
    }
    case Opcode::kGetLabel: {
      // Proxy to the owning shard: a client behind the router can use the
      // fetch/decode split too (e.g. a second-tier router).
      const Vertex v = req.pairs.at(0).first;
      if (v >= total_n_) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "vertex id %u out of range (n=%u)", v,
                      total_n_);
        return error_response(buf);
      }
      const std::uint32_t owner = partitioner_.owner(v);
      ShardChannel& ch = *channels_[owner];
      try {
        std::lock_guard<std::mutex> lock(ch.mu);
        unsigned attempts = 0;
        if (options_.retry_budget_cap > 0) {
          attempts = 1 + static_cast<unsigned>(ch.tokens);
        }
        const std::uint64_t retries_before =
            ch.client.replica_stats().retries;
        try {
          resp = ch.client.call_idempotent_capped(req, attempts, 0.0);
          settle_budget(ch, retries_before, /*success=*/true);
        } catch (...) {
          settle_budget(ch, retries_before, /*success=*/false);
          throw;
        }
      } catch (const std::exception& e) {
        mark_shard_down(owner);
        return error_response("shard " + std::to_string(owner) +
                                  " unavailable: " + e.what(),
                              Status::kTimeout);
      }
      ch.down.store(false, std::memory_order_relaxed);
      metrics_.record(RequestType::kGetLabel, 0, timer.elapsed_us());
      return resp;
    }
    case Opcode::kDist:
    case Opcode::kBatch:
      return handle_query(req);
  }
  return error_response("unhandled opcode");
}

}  // namespace fsdl::shard
