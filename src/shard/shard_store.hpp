// Cutting a labeling into per-shard label files and reassembling them.
//
// A shard file is a full-width ForbiddenSetLabeling (same n, params,
// levels, codec as the original) whose label vector is sparse: only the
// vertices the shard owns under the consistent-hash ring carry bits, the
// rest are empty slots. Persistence (core/serialize.cpp, format v3) stores
// only the owned records plus the partition identity, so K shard files
// together cost the same label bytes as the one original file.
//
// split → serve → merge is round-trip exact: merging all K shards of a
// split yields a labeling that re-serializes byte-identically to the
// original file (asserted by shard_test and by the shard_pipeline ctest).
// merge() is deliberately strict — duplicate shards, mixed rings, mixed
// schemes, overlapping or missing labels are all hard errors, because a
// silently tolerated mismatch here would surface later as a wrong
// distance.
#pragma once

#include <cstdint>
#include <vector>

#include "core/labeling.hpp"
#include "shard/partition.hpp"
#include "util/bitstream.hpp"
#include "util/types.hpp"

namespace fsdl::shard {

class ShardStore {
 public:
  /// Cut an unsharded labeling into shard_count sparse labelings,
  /// result[s] owning exactly the vertices with owner(v) == s. Throws
  /// std::invalid_argument if scheme is already sharded or shard_count is
  /// 0; shard_count == 1 returns a single unsharded copy.
  static std::vector<ForbiddenSetLabeling> split(
      const ForbiddenSetLabeling& scheme, std::uint32_t shard_count,
      std::uint64_t ring_seed = kDefaultRingSeed,
      std::uint32_t ring_points = kDefaultRingPoints);

  /// Reassemble the original labeling from all K shards of one split
  /// (any order). Validates: every shard id 0..K-1 present exactly once,
  /// identical ring and scheme description, each vertex's label stored by
  /// exactly its ring owner. Throws std::invalid_argument on any mismatch.
  static ForbiddenSetLabeling merge(
      const std::vector<ForbiddenSetLabeling>& shards);

  /// Raw serialized bits of v's label (wire_label encoding needs the
  /// buffer itself, not a decode).
  static const BitWriter& raw_label(const ForbiddenSetLabeling& scheme,
                                    Vertex v) {
    return scheme.labels_[v];
  }
};

inline std::vector<ForbiddenSetLabeling> split_labeling(
    const ForbiddenSetLabeling& scheme, std::uint32_t shard_count,
    std::uint64_t ring_seed = kDefaultRingSeed,
    std::uint32_t ring_points = kDefaultRingPoints) {
  return ShardStore::split(scheme, shard_count, ring_seed, ring_points);
}

inline ForbiddenSetLabeling merge_labelings(
    const std::vector<ForbiddenSetLabeling>& shards) {
  return ShardStore::merge(shards);
}

}  // namespace fsdl::shard
