// Wire form of a single vertex label — the payload of a GET_LABEL reply.
//
// The router tier splits every distance query into *fetch* (pull the raw
// label bits of s and t, and of any fault vertices it has not cached, from
// the shards that own them) and *decode* (reconstruct the VertexLabels and
// run the forbidden-set decoder locally). For the fetch half to be
// self-describing, each blob carries the scheme description alongside the
// raw bits: a router can decode a label knowing nothing but the blob, and
// it can cross-check that every shard was cut from the *same* labeling
// (identical params / levels / codec / n) before ever combining labels
// from two shards into one answer.
//
// Blob layout (little-endian, fixed offsets, bounds-checked on decode):
//   version u8 (= 1)
//   epsilon f64, c u32, faithful_radii u8, all_pairs u8
//   top_level u32, vertex_bits u32, codec u8
//   total_n u32              — vertex count of the whole labeling
//   epoch u64                — serving snapshot epoch (informational;
//                              excluded from compatibility, see below)
//   vertex u32
//   bit_size u64, word_count u64, words u64[]
//
// The blob rides inside the response `text` field, so no response-codec
// change was needed; integrity comes from the frame CRC underneath.
#pragma once

#include <cstdint>
#include <string>

#include "core/label.hpp"
#include "core/labeling.hpp"
#include "core/params.hpp"
#include "util/types.hpp"

namespace fsdl::shard {

/// Scheme description carried by every wire label. Two labels may be
/// combined into one distance answer only if their metas are compatible.
struct WireLabelMeta {
  SchemeParams params;
  std::uint32_t top_level = 0;
  std::uint32_t vertex_bits = 1;
  LabelCodec codec = LabelCodec::kClassic;
  /// Vertex count of the whole labeling (not of one shard's slice).
  std::uint32_t total_n = 0;
  /// Snapshot epoch of the serving shard. Deliberately *not* part of
  /// compatible(): a restarted replica resets its epoch to 1 while serving
  /// byte-identical labels, and the labels of one scheme are position-
  /// independent — mixing epochs is safe as long as the scheme matches.
  std::uint64_t epoch = 0;

  /// Same decoding scheme (epoch excluded — see above).
  bool compatible(const WireLabelMeta& o) const noexcept {
    return params.epsilon == o.params.epsilon && params.c == o.params.c &&
           params.faithful_radii == o.params.faithful_radii &&
           params.lowest_level_all_pairs == o.params.lowest_level_all_pairs &&
           top_level == o.top_level && vertex_bits == o.vertex_bits &&
           codec == o.codec && total_n == o.total_n;
  }
};

/// A decoded GET_LABEL reply.
struct WireLabel {
  WireLabelMeta meta;
  Vertex vertex = 0;
  VertexLabel label;
};

/// Serialize vertex v's raw label bits plus the scheme description.
/// Precondition: scheme.stores_label(v) — encoding an unowned slot would
/// ship an empty buffer the decoder cannot use.
std::string encode_wire_label(const ForbiddenSetLabeling& scheme, Vertex v,
                              std::uint64_t epoch);

/// Parse and decode a blob. Throws std::runtime_error on any malformed
/// input (truncation, version mismatch, word count not covering bit_size,
/// trailing bytes).
WireLabel decode_wire_label(const std::string& blob);

}  // namespace fsdl::shard
