// Scatter-gather router over a fleet of sharded fsdl_serve processes.
//
//                         ┌── shard 0: replica A, replica B   (ReplicaClient)
//   client ──► Router ────┼── shard 1: replica A, replica B   (ReplicaClient)
//            (FrameServer)└── ...
//
// The router speaks the *existing* wire protocol on its front door — a
// client cannot tell a router from a single fsdl_serve holding the whole
// labeling — and decomposes every DIST/BATCH into the fetch/decode split
// the label format makes natural:
//
//   fetch:  the labels of s, t, every forbidden vertex, and both endpoints
//           of every forbidden edge are pulled with GET_LABEL from the
//           shards that own them (consistent-hash ring, shard/partition.hpp),
//           through one ReplicaClient per shard — so the failover unit is
//           (shard, replica) and the breakers / hedging / retry machinery
//           of the HA client applies per shard unchanged. Fetched labels
//           land in a bounded sharded LRU; a hot working set stops paying
//           the network round trip entirely.
//   decode: the forbidden-set decoder runs *in the router* on the gathered
//           labels (decode_query, or PreparedFaults cached per fault set —
//           the same Lemma 2.6 amortization the single server uses). The
//           answer is exactly what a monolithic server would compute: the
//           decoder is a pure function of the labels, and the labels are
//           byte-identical to the unsharded file's (split is lossless).
//
// Safety over availability: every label carries its scheme description
// (shard/wire_label.hpp) and the router refuses to combine labels from
// incompatible schemes; a shard that does not own a requested vertex
// refuses with a named error rather than guessing. A wrong ring
// configuration therefore degrades to visible errors, never to silently
// wrong distances. When every replica of an owning shard is down, the
// affected query fails with TIMEOUT (retryable) while queries touching
// only healthy shards keep answering.
//
// Graceful degradation (stale_serve, on by default): availability under
// shard loss, without ever lying about it.
//   * stale-label serving: a cache hit whose owning shard is down is served
//     anyway, and the response is marked Status::kDegraded carrying the
//     oldest snapshot epoch consulted — the client learns both that the
//     answer came from a cached snapshot and which one. A cache hit whose
//     epoch is older than the shard's current one is refetched while the
//     shard is up; if the fetch fails, the stale entry is the fallback.
//     Degraded responses are counted per reason in
//     fsdl_degraded_responses_total{reason=stale_label|shard_down}.
//   * retry budgets: each shard channel owns a token bucket; failover
//     attempts beyond a request's first each cost a token and successes
//     refill it, so a dead shard decays to ~one probe attempt per request
//     instead of amplifying every query into a full failover sweep.
//   * deadline-aware give-up: when the client's forwarded deadline is
//     already blown, the fetch is not attempted at all — no budget is spent
//     producing an answer nobody is waiting for.
//   * recovery: while a shard is marked down, the query path sends at most
//     one inline HEALTH probe per probe interval (default: the breaker
//     cooldown); a "ready" answer clears the mark, so full non-degraded
//     service resumes within one breaker half-open cycle of a restart.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/decoder.hpp"
#include "core/label.hpp"
#include "obs/trace.hpp"
#include "server/frame_server.hpp"
#include "server/prepared_cache.hpp"
#include "server/replica_client.hpp"
#include "shard/partition.hpp"
#include "shard/wire_label.hpp"
#include "util/stats.hpp"

namespace fsdl::shard {

struct RouterOptions {
  server::TransportOptions transport;
  /// shards[i] = replica endpoints of shard i; size() is the shard count
  /// the ring is built for. Every inner list needs >= 1 endpoint.
  std::vector<std::vector<server::Endpoint>> shards;
  /// Failover/breaker/hedging knobs applied to each shard's ReplicaClient.
  server::ReplicaClientOptions replica;
  /// Ring parameters; must match the values the labeling was split with
  /// (a mismatch is safe — shards refuse unowned vertices — but useless).
  std::uint64_t ring_seed = kDefaultRingSeed;
  std::uint32_t ring_points = kDefaultRingPoints;
  /// Decoded labels kept in the router's LRU, across all cache shards.
  std::size_t label_cache_capacity = 4096;
  std::size_t label_cache_shards = 8;
  /// Distinct fault sets kept prepared (each pins its fault labels).
  std::size_t prepared_capacity = 64;
  /// Degraded mode: serve cached labels with Status::kDegraded when their
  /// owning shard is unreachable (see the header comment). Off restores the
  /// fail-with-TIMEOUT behavior.
  bool stale_serve = true;
  /// Retry-budget token bucket per shard: every failover attempt beyond a
  /// request's first costs one token, every successful call refills
  /// `retry_budget_refill` (never above the cap). cap <= 0 disables the
  /// budget and restores unbounded (per-request-capped) failover sweeps.
  double retry_budget_cap = 8.0;
  double retry_budget_refill = 0.5;
  /// Minimum spacing of inline recovery probes to a down shard;
  /// 0 = replica.breaker_cooldown_ms.
  unsigned probe_interval_ms = 0;
};

class Router : public server::FrameServer {
 public:
  /// Throws std::invalid_argument on an empty shard list or an empty
  /// replica list for any shard.
  explicit Router(const RouterOptions& options);
  ~Router() override;

  /// Front-door dispatch: DIST/BATCH scatter-gather + local decode,
  /// GET_LABEL proxied to the owning shard, STATS/METRICS/HEALTH answered
  /// locally, RELOAD refused (reload the shards, not the router).
  server::Response handle(const server::Request& req) override;

  /// "ready|draining n=N shards=K" — N is learned from the shard fleet's
  /// HEALTH replies at start().
  std::string health_text() const;

  /// Aggregated stats of the prepared-fault-set cache (label-cache traffic
  /// is in the Metrics registry: fsdl_router_label_cache_*_total).
  server::PreparedCache::Stats prepared_stats() const;

  /// Router registry rendering plus the per-shard GET_LABEL round-trip
  /// latency histograms
  /// (fsdl_router_shard_fetch_latency_microseconds{shard="k"}).
  std::string prometheus() const;

  std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(channels_.size());
  }
  /// Vertex count of the routed labeling (0 before start()).
  Vertex num_vertices() const noexcept { return total_n_; }

 protected:
  /// Topology validation: one HEALTH round trip per shard, requiring each
  /// to report `shard=I/K` with I = its configured index and K = the
  /// configured shard count, and all to agree on n. Throws on mismatch —
  /// a router wired to the wrong fleet must not come up.
  void on_start() override;

 private:
  /// One shard's replica fan: ReplicaClient is single-threaded by design,
  /// so workers serialize on the channel mutex (label-cache hits skip it).
  struct ShardChannel {
    std::mutex mu;
    server::ReplicaClient client;
    /// Retry-budget tokens left (guarded by mu).
    double tokens;
    /// True after a fetch exhausted its replica attempts; read lock-free on
    /// the cache-hit path, cleared by a successful call or recovery probe.
    std::atomic<bool> down{false};
    /// Steady-clock ms gate: no recovery probe before this instant. CAS'd
    /// forward by whichever query thread wins the probe slot.
    std::atomic<std::uint64_t> next_probe_ms{0};
    /// Last snapshot epoch this shard reported (HEALTH at start(), then
    /// every fetched label). Cache entries below it are stale. Not a max:
    /// a restarted replica legitimately resets its epoch.
    std::atomic<std::uint64_t> known_epoch{0};
    ShardChannel(std::vector<server::Endpoint> endpoints,
                 const server::ReplicaClientOptions& options,
                 server::Metrics* metrics, double budget_tokens)
        : client(std::move(endpoints), options, metrics),
          tokens(budget_tokens) {}
  };

  /// Sharded LRU of decoded labels. Entries are shared_ptr so eviction
  /// never invalidates a query (or a PreparedFaults pin) in flight.
  struct CacheShard {
    struct Entry {
      Vertex vertex;
      std::shared_ptr<const VertexLabel> label;
      /// Snapshot epoch the label was fetched under (stale-serve marking).
      std::uint64_t epoch = 0;
    };
    std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Vertex, std::list<Entry>::iterator> index;
  };

  /// A prepared fault set plus the label pins that keep the raw pointers
  /// inside PreparedFaults alive for as long as any query holds this.
  struct PinnedPrepared {
    std::vector<std::shared_ptr<const VertexLabel>> pins;
    std::unique_ptr<const PreparedFaults> prepared;
  };
  struct PreparedEntry {
    server::FaultKey key;
    std::shared_ptr<const PinnedPrepared> value;
  };

  CacheShard& cache_shard(Vertex v);
  std::shared_ptr<const VertexLabel> cache_get(Vertex v,
                                               std::uint64_t* epoch = nullptr);
  void cache_put(Vertex v, std::shared_ptr<const VertexLabel> label,
                 std::uint64_t epoch);

  /// Degraded-serving bookkeeping for one query: how many labels were
  /// served from cache despite their shard being down or their epoch being
  /// behind, and the oldest such epoch (what Response::epoch reports).
  struct DegradedServe {
    unsigned stale = 0;
    unsigned shard_down = 0;
    std::uint64_t oldest_epoch = ~static_cast<std::uint64_t>(0);
    bool any() const noexcept { return stale + shard_down != 0; }
    void note(bool is_stale, std::uint64_t epoch) noexcept {
      (is_stale ? stale : shard_down) += 1;
      if (epoch < oldest_epoch) oldest_epoch = epoch;
    }
  };

  /// Settle the retry-budget bucket after one call on `ch` (must hold
  /// ch.mu): retries performed since `retries_before` are paid for, and a
  /// success earns the refill.
  void settle_budget(ShardChannel& ch, std::uint64_t retries_before,
                     bool success);
  /// Flag `shard` down and arm its probe gate one interval out.
  void mark_shard_down(std::size_t shard);
  /// True when `shard` can serve. While it is marked down, at most one
  /// caller per probe interval sends an inline HEALTH probe (try_lock only
  /// — never queue a cache hit behind a failover sweep) and clears the
  /// mark on a "ready" answer.
  bool shard_available(std::size_t shard);
  std::uint64_t probe_interval_ms() const;

  /// Fetch one vertex's label from its owning shard (cache bypassed by the
  /// caller). `trace` rides the GET_LABEL frame upstream; the round trip is
  /// also recorded into that shard's fetch-latency histogram. On failure
  /// fills `error` and returns nullptr; kError means the shard refused (bad
  /// vertex / incompatible scheme), kTimeout means every replica of the
  /// shard was unavailable (or the retry budget / client deadline ran out
  /// first). On success `epoch` reports the snapshot epoch the label was
  /// served under.
  std::shared_ptr<const VertexLabel> fetch_label(
      Vertex v, const server::TraceContext& trace, server::Response& error,
      std::uint64_t& epoch);

  /// The per-request recorder plus the span the fetch spans hang under.
  /// Bundled into a shard-namespace struct (rather than passed as an
  /// obs::TraceRecorder& parameter) so no fsdl::obs:: type name appears in
  /// any mangled symbol — the FSDL_TRACE=OFF nm guard asserts OFF binaries
  /// carry zero obs symbols, and parameter types leak into symbol names.
  struct QueryTrace {
    obs::TraceRecorder& rec;
    std::uint64_t root_span;
  };

  /// Cache-or-fetch every vertex in `needed` (deduplicated), gathering
  /// misses per owning shard and fetching shard groups concurrently when
  /// more than one shard is involved. Each shard group becomes one
  /// "router.fetch" span under `trace.root_span` (its id is the parent
  /// span the shard sees); `upstream` is the trace context to forward,
  /// minus the budget already spent. Returns false and fills `error` if
  /// any label could not be obtained; labels served despite a down shard
  /// or a stale epoch are tallied into `degraded` (stale-label serving).
  bool gather_labels(
      const std::vector<Vertex>& needed, QueryTrace trace,
      const server::TraceContext& upstream,
      std::unordered_map<Vertex, std::shared_ptr<const VertexLabel>>& out,
      server::Response& error, DegradedServe& degraded);

  /// FLEET_STATS body: own prometheus() + render_fleet over one METRICS
  /// scrape of every shard channel.
  server::Response fleet_stats();

  /// First fetched label fixes the scheme; later labels must match it.
  bool adopt_meta(const WireLabelMeta& meta, std::string& error);

  std::shared_ptr<const PinnedPrepared> prepared_get(
      const FaultSet& faults,
      const std::unordered_map<Vertex, std::shared_ptr<const VertexLabel>>&
          labels);

  server::Response handle_query(const server::Request& req);

  RouterOptions options_;
  Partitioner partitioner_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
  std::vector<std::unique_ptr<CacheShard>> cache_;
  std::size_t per_cache_shard_capacity_;

  /// GET_LABEL round-trip latency per owning shard (the straggler signal —
  /// which shard dominates scatter-gather). Guarded by fetch_hist_mu_; the
  /// channel mutex is not reused because prometheus() must not contend
  /// with in-flight fetches.
  mutable std::mutex fetch_hist_mu_;
  std::vector<Histogram> fetch_latency_;

  /// Scheme description adopted from the first fetched label; guarded by
  /// meta_mu_ (read on every fetch, written once).
  mutable std::mutex meta_mu_;
  bool meta_known_ = false;
  WireLabelMeta meta_;
  /// Learned from the fleet's HEALTH replies during on_start().
  Vertex total_n_ = 0;

  mutable std::mutex prepared_mu_;
  std::list<PreparedEntry> prepared_lru_;  // front = most recently used
  std::unordered_map<std::uint64_t,
                     std::vector<std::list<PreparedEntry>::iterator>>
      prepared_index_;
  std::uint64_t prepared_hits_ = 0;
  std::uint64_t prepared_misses_ = 0;
  std::uint64_t prepared_evictions_ = 0;
};

}  // namespace fsdl::shard
