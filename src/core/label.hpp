// Label structures and their bit-level serialization.
//
// A vertex label L(v) is the list of its per-level graphs H_i(v)
// (paper §2.1): for each level i in I, the net points N_{i-c-1} ∩ B(v, r_i)
// with their distances from v, and the short virtual edges (weight =
// d_G(x, y) <= λ_i) among those points and between v and those points.
//
// Labels are stored serialized; label length is reported as the exact bit
// count of this encoding (Lemma 2.5 is about bits, so we measure bits).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bitstream.hpp"
#include "util/types.hpp"

namespace fsdl {

/// One virtual edge inside a level graph; a and b index LevelLabel::points.
struct SketchEdge {
  std::uint32_t a;
  std::uint32_t b;
  Dist w;
  /// True for actual edges of G (the lowest-level rule admits these on a
  /// fault check alone, with no protected-ball certificate). For unweighted
  /// graphs this coincides with w == 1; the weighted extension needs the
  /// explicit flag.
  bool graph_edge = false;
};

/// H_i(v) for one level i.
struct LevelLabel {
  /// points[0] is always the label owner v; the rest are the net points of
  /// N_{i-c-1} ∩ B(v, r_i) in increasing id order (owner not repeated).
  std::vector<Vertex> points;
  /// dists[k] = d_G(v, points[k]); dists[0] == 0.
  std::vector<Dist> dists;
  /// Virtual edges with weight d_G(x, y) <= λ_i, endpoints as indices into
  /// `points`, a < b.
  std::vector<SketchEdge> edges;
};

/// Complete label of one vertex.
struct VertexLabel {
  Vertex owner = kNoVertex;
  /// Largest j with owner ∈ N_j — lets the decoder certify the owner's net
  /// membership when it appears as a virtual-edge endpoint.
  unsigned owner_net_level = 0;
  unsigned min_level = 0;
  unsigned top_level = 0;
  /// levels[k] corresponds to level min_level + k.
  std::vector<LevelLabel> levels;

  const LevelLabel& level(unsigned i) const {
    return levels.at(i - min_level);
  }
  bool has_level(unsigned i) const noexcept {
    return i >= min_level && i <= top_level;
  }
};

/// Label wire format.
///  - kClassic: fixed ⌈log₂ n⌉-bit point ids (the paper's accounting) and
///    absolute edge endpoints.
///  - kDelta: point ids gamma-coded as gaps of the sorted list; edges
///    sorted lexicographically and delta-coded. Same information, fewer
///    bits; measured in experiment E4.
enum class LabelCodec : std::uint8_t { kClassic = 0, kDelta = 1 };

/// Serialize; `vertex_bits` = bits per vertex id (⌈log₂ n⌉, fixed width as
/// in the paper's accounting).
void encode_label(const VertexLabel& label, unsigned vertex_bits,
                  BitWriter& out, LabelCodec codec = LabelCodec::kClassic);

/// Incremental encoding: the builder streams one level at a time into each
/// vertex's bit buffer, so whole decoded labels never sit in memory at once.
/// Field order matches encode_label exactly.
void encode_label_header(Vertex owner, unsigned owner_net_level,
                         unsigned min_level, unsigned top_level,
                         unsigned vertex_bits, BitWriter& out);
/// kDelta requires level.points[1..] in increasing id order (the builders
/// guarantee this) and sorts a copy of the edges internally.
void encode_level(const LevelLabel& level, Vertex owner, unsigned vertex_bits,
                  BitWriter& out, LabelCodec codec = LabelCodec::kClassic);

VertexLabel decode_label(BitReader& in, unsigned vertex_bits,
                         LabelCodec codec = LabelCodec::kClassic);

}  // namespace fsdl
