#include "core/weighted.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/wsearch.hpp"
#include "nets/weighted_nets.hpp"

namespace fsdl {
namespace {

constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

unsigned ceil_log2_plus1(Dist d) noexcept {
  unsigned t = 0;
  while ((Dist{1} << t) < static_cast<std::uint64_t>(d) + 1 && t < 31) ++t;
  return t;
}

/// Weighted double sweep: eccentricity of the farthest vertex from 0.
Dist weighted_sweep(const WeightedGraph& g) {
  auto dist = dijkstra_distances(g, 0);
  Vertex far = 0;
  Dist best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != kInfDist && dist[v] > best) {
      best = dist[v];
      far = v;
    }
  }
  dist = dijkstra_distances(g, far);
  best = 0;
  for (Dist d : dist) {
    if (d != kInfDist) best = std::max(best, d);
  }
  return best;
}

bool weighted_connected(const WeightedGraph& g) {
  const auto dist = dijkstra_distances(g, 0);
  return std::find(dist.begin(), dist.end(), kInfDist) == dist.end();
}

}  // namespace

class WeightedLabelingBuilder {
 public:
  static ForbiddenSetLabeling build(const WeightedGraph& g,
                                    const SchemeParams& params,
                                    const BuildOptions& options) {
    const Vertex n = g.num_vertices();
    if (n == 0) throw std::invalid_argument("empty graph");

    ForbiddenSetLabeling scheme;
    scheme.params_ = params;
    scheme.vertex_bits_ = bits_for(n);
    scheme.codec_ = options.codec;

    // Levels must reach the weighted diameter scale: up to log₂(n·W).
    unsigned top = ceil_log2_plus1(
        static_cast<Dist>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(n) * std::max<Weight>(g.max_weight(), 1),
            Dist{1} << 30)));
    if (options.cap_levels_at_diameter && weighted_connected(g)) {
      top = std::min(top, ceil_log2_plus1(2 * weighted_sweep(g)));
    }
    top = std::max(top, params.min_level());
    scheme.top_level_ = top;

    const NetHierarchy nets =
        build_weighted_net_hierarchy(g, top - params.c - 1);

    scheme.labels_.resize(n);
    for (Vertex v = 0; v < n; ++v) {
      encode_label_header(v, nets.max_level_of(v), params.min_level(), top,
                          scheme.vertex_bits_, scheme.labels_[v]);
    }

    DijkstraRunner search(g);
    std::vector<std::uint32_t> posn(n, kNone);
    std::vector<std::uint32_t> rank(n, kNone);

    for (unsigned i = params.min_level(); i <= top; ++i) {
      const unsigned q = params.net_level(i);
      const Dist lambda = params.lambda(i);
      const Dist radius = params.r(i);
      const auto& net = nets.level(q);
      const bool all_pairs =
          params.lowest_level_all_pairs || i > params.min_level();

      std::fill(rank.begin(), rank.end(), kNone);
      for (std::uint32_t idx = 0; idx < net.size(); ++idx) rank[net[idx]] = idx;

      std::vector<std::vector<std::pair<Vertex, Dist>>> lists(n);
      std::vector<std::vector<std::pair<Vertex, Dist>>> pair_adj(net.size());

      for (std::uint32_t idx = 0; idx < net.size(); ++idx) {
        const Vertex x = net[idx];
        search.run(x, radius, [&](Vertex v, Dist d) {
          lists[v].emplace_back(x, d);
          if (all_pairs && d > 0 && d <= lambda && v > x && rank[v] != kNone) {
            pair_adj[idx].emplace_back(v, d);
          }
        });
      }

      LevelLabel ll;
      for (Vertex v = 0; v < n; ++v) {
        ll.points.clear();
        ll.dists.clear();
        ll.edges.clear();

        ll.points.push_back(v);
        ll.dists.push_back(0);
        for (const auto& [x, d] : lists[v]) {
          if (x == v) continue;
          ll.points.push_back(x);
          ll.dists.push_back(d);
        }
        for (std::uint32_t k = 0; k < ll.points.size(); ++k) {
          posn[ll.points[k]] = k;
        }

        if (all_pairs) {
          for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
            if (ll.dists[k] <= lambda) {
              ll.edges.push_back({0, k, ll.dists[k], false});
            }
          }
          for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
            const std::uint32_t rx = rank[ll.points[k]];
            if (rx == kNone) continue;
            for (const auto& [y, d] : pair_adj[rx]) {
              const std::uint32_t j = posn[y];
              if (j == kNone || j == 0) continue;
              ll.edges.push_back({std::min(k, j), std::max(k, j), d, false});
            }
          }
        }
        if (i == params.min_level()) {
          // Real graph edges among ball members, with their true weights;
          // the decoder admits these on the fault check alone. A real edge
          // is always usable, even when heavier than λ or than the current
          // shortest path (which a fault may sever).
          for (std::uint32_t k = 0; k < ll.points.size(); ++k) {
            const Vertex x = ll.points[k];
            for (const auto& arc : g.arcs(x)) {
              if (arc.to <= x) continue;
              const std::uint32_t j = posn[arc.to];
              if (j == kNone) continue;
              ll.edges.push_back(
                  {std::min(k, j), std::max(k, j), arc.weight, true});
            }
          }
        }

        encode_level(ll, v, scheme.vertex_bits_, scheme.labels_[v],
                     options.codec);
        for (Vertex p : ll.points) posn[p] = kNone;
        lists[v].clear();
        lists[v].shrink_to_fit();
      }
    }
    for (auto& w : scheme.labels_) w.shrink_to_fit();
    return scheme;
  }
};

ForbiddenSetLabeling build_weighted_labeling(const WeightedGraph& g,
                                             const SchemeParams& params,
                                             const BuildOptions& options) {
  return WeightedLabelingBuilder::build(g, params, options);
}

}  // namespace fsdl
