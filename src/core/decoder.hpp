// Forbidden-set distance query decoder (paper §2.1, "Distance Queries").
//
// Input: labels of s, t, and every forbidden vertex/edge. The decoder
// builds the sketch graph H — per level, it keeps exactly those virtual
// edges for which it can *certify* that at least one endpoint lies outside
// every fault's protected ball PB_i(f) = B(f, λ_i) — then runs Dijkstra.
//
// Certification, per endpoint u against fault center f at level i:
//   * u ∈ N_{i-c-1} (true for every listed net point; true for an owner
//     when its recorded net level reaches i-c-1; true for everything at the
//     lowest level since N_0 = V): u is outside PB_i(f) iff u is missing
//     from f's level-i point list (then d(f,u) > r_i > λ_i) or is listed
//     with distance > λ_i. This is exact.
//   * u is an owner below its net level (typically s or t): triangulate
//     through u's nearest level-i net point M — f's list gives d(f, M)
//     exactly (or the lower bound r_i + 1 when absent), u's list gives
//     d(u, M), and d(f, u) >= d(f, M) - d(u, M) > λ_i certifies u outside.
//     The paper's analysis provides clearance d(u, F) > μ_i = λ_i + ρ_i
//     with d(u, M) < ρ_i / 2 in every case where it needs such an edge, so
//     this certificate always fires there and the (1+ε) bound is preserved.
//
// Only certified edges enter H, so every reported distance is realizable in
// G \ F regardless of parameters (Lemma 2.3 soundness, rechecked in tests).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/label.hpp"
#include "core/params.hpp"
#include "util/flat_map.hpp"
#include "util/types.hpp"

namespace fsdl {

// Work counters + stage timings of one decode. The counters are the units
// of the paper's cost bounds (pb_checks ⇔ Lemma 2.3 certification,
// dijkstra_relaxations ⇔ Lemma 2.6's sketch search); the *_us stages let a
// caller attribute wall time to the |F|²-certification term vs. the
// (1+1/ε)^{2α} sketch term without a tracing build (tools/fsdl_trace, the
// server's slow-query log). For a PreparedFaults query the stats start from
// the construction-time counters, so pb_checks includes the fault-label
// certification paid (once) for this fault set.
struct QueryStats {
  std::size_t sketch_vertices = 0;
  std::size_t sketch_edges = 0;
  std::size_t edges_considered = 0;
  std::size_t pb_checks = 0;
  std::size_t dijkstra_relaxations = 0;
  /// Sketch assembly: endpoint-label filtering + building H.
  double assemble_us = 0.0;
  /// Dijkstra over H only.
  double dijkstra_us = 0.0;

  void accumulate(const QueryStats& other) {
    sketch_vertices += other.sketch_vertices;
    sketch_edges += other.sketch_edges;
    edges_considered += other.edges_considered;
    pb_checks += other.pb_checks;
    dijkstra_relaxations += other.dijkstra_relaxations;
    assemble_us += other.assemble_us;
    dijkstra_us += other.dijkstra_us;
  }
};

struct QueryResult {
  Dist distance = kInfDist;
  /// Vertex ids (in G) of one shortest sketch path s..t; each consecutive
  /// pair is a certified virtual edge. Empty when unreachable.
  std::vector<Vertex> waypoints;
  QueryStats stats;
};

struct QueryInput {
  const VertexLabel* source = nullptr;
  const VertexLabel* target = nullptr;
  std::vector<const VertexLabel*> fault_vertices;
  std::vector<std::pair<const VertexLabel*, const VertexLabel*>> fault_edges;
};

/// Pure function of its inputs — safe to call concurrently from any number
/// of threads as long as the referenced labels are not mutated.
QueryResult decode_query(const SchemeParams& params, const QueryInput& in);

/// Two-phase decoding for the paper's router scenario: a router holds one
/// fault set F and answers many (s, t) queries against it. Construction
/// performs all the |F|-dependent work once — protected-ball tables per
/// level per fault center, plus the filtering of every fault label's edges
/// (the O(label·|F|²) part of Lemma 2.6); each query then only filters the
/// two endpoint labels and runs Dijkstra.
///
/// The referenced fault labels must outlive the PreparedFaults object.
///
/// Thread safety: construction does all the mutation; query() is const,
/// touches only immutable tables plus per-thread scratch (a thread_local
/// edge accumulator and sketch graph that keep their capacity across calls,
/// making the steady-state hot path allocation-free), and is safe from any
/// number of concurrent threads (the server's fault-set cache shares one
/// instance across its whole worker pool).
class PreparedFaults {
 public:
  PreparedFaults(
      const SchemeParams& params,
      std::vector<const VertexLabel*> fault_vertices,
      std::vector<std::pair<const VertexLabel*, const VertexLabel*>>
          fault_edges);

  /// Same answer as decode_query with the construction-time fault set.
  QueryResult query(const VertexLabel& source, const VertexLabel& target) const;

  std::size_t num_centers() const noexcept { return centers_.size(); }

  /// Wall time of the constructor — the once-per-fault-set O(label·|F|²)
  /// certification cost (Lemma 2.6's quadratic term).
  double prepare_us() const noexcept { return prepare_us_; }
  /// Counters accumulated during construction (also folded into every
  /// query's stats).
  const QueryStats& prepare_stats() const noexcept { return prepare_stats_; }

 private:
  struct LevelTables {
    /// pb[k]: open-addressed (vertex, distance) view of center k's level
    /// list, probed on every certification check — the decoder's hottest
    /// lookup.
    std::vector<FlatDistMap> pb;
  };

  bool vertex_faulty(Vertex v) const { return faulty_vertices_.contains(v); }

  /// Filter one label's level-i edges against the protected balls, merging
  /// survivors into `edges` (keyed on endpoint pair, min weight).
  void filter_label_edges(const VertexLabel& label, unsigned i,
                          EdgeAccumulator& edges, QueryStats& stats) const;

  SchemeParams params_;
  std::vector<const VertexLabel*> centers_;
  SortedSet<Vertex> center_owners_;
  SortedSet<Vertex> faulty_vertices_;
  SortedSet<std::uint64_t> faulty_edges_;
  unsigned min_level_ = 0;
  unsigned top_level_ = 0;
  /// Indexed by level - min_level_.
  std::vector<LevelTables> levels_;
  /// Edges contributed by the fault labels themselves, already filtered —
  /// the flat snapshot every query() seeds its edge accumulator from.
  std::vector<std::pair<std::uint64_t, Dist>> center_edges_;
  QueryStats prepare_stats_;
  double prepare_us_ = 0.0;
};

}  // namespace fsdl
