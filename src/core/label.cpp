#include "core/label.hpp"

#include <algorithm>
#include <stdexcept>

namespace fsdl {
namespace {

void encode_edges_classic(const std::vector<SketchEdge>& edges,
                          BitWriter& out) {
  out.write_gamma0(edges.size());
  for (const SketchEdge& e : edges) {
    out.write_gamma0(e.a);
    out.write_gamma0(e.b);
    out.write_gamma(e.w);
    out.write_bits(e.graph_edge ? 1 : 0, 1);
  }
}

void encode_edges_delta(std::vector<SketchEdge> edges, BitWriter& out) {
  std::sort(edges.begin(), edges.end(),
            [](const SketchEdge& x, const SketchEdge& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  out.write_gamma0(edges.size());
  std::uint32_t prev_a = 0, prev_b = 0;
  for (const SketchEdge& e : edges) {
    const std::uint32_t da = e.a - prev_a;
    out.write_gamma0(da);
    // b resets to absolute when a advances; gaps can be 0 (a graph edge may
    // duplicate a virtual pair), so gamma0 throughout.
    out.write_gamma0(da == 0 ? e.b - prev_b : e.b);
    out.write_gamma(e.w);
    out.write_bits(e.graph_edge ? 1 : 0, 1);
    prev_a = e.a;
    prev_b = e.b;
  }
}

void decode_edges_delta(std::vector<SketchEdge>& edges, BitReader& in) {
  std::uint32_t prev_a = 0, prev_b = 0;
  for (SketchEdge& e : edges) {
    const auto da = static_cast<std::uint32_t>(in.read_gamma0());
    const auto db = static_cast<std::uint32_t>(in.read_gamma0());
    e.a = prev_a + da;
    e.b = da == 0 ? prev_b + db : db;
    e.w = static_cast<Dist>(in.read_gamma());
    e.graph_edge = in.read_bits(1) != 0;
    prev_a = e.a;
    prev_b = e.b;
  }
}

}  // namespace

void encode_label_header(Vertex owner, unsigned owner_net_level,
                         unsigned min_level, unsigned top_level,
                         unsigned vertex_bits, BitWriter& out) {
  out.write_bits(owner, vertex_bits);
  out.write_gamma0(owner_net_level);
  out.write_gamma0(min_level);
  out.write_gamma0(top_level - min_level);
}

void encode_level(const LevelLabel& level, Vertex owner, unsigned vertex_bits,
                  BitWriter& out, LabelCodec codec) {
  if (level.points.empty() || level.points[0] != owner ||
      level.dists[0] != 0) {
    throw std::logic_error("encode_level: malformed level (owner slot)");
  }
  out.write_gamma0(level.points.size() - 1);
  if (codec == LabelCodec::kClassic) {
    for (std::size_t k = 1; k < level.points.size(); ++k) {
      out.write_bits(level.points[k], vertex_bits);
      out.write_gamma(level.dists[k]);  // distinct vertices → dist >= 1
    }
    encode_edges_classic(level.edges, out);
    return;
  }
  // kDelta: points[1..] are strictly increasing; code the gaps.
  Vertex prev = 0;
  for (std::size_t k = 1; k < level.points.size(); ++k) {
    const Vertex p = level.points[k];
    if (k > 1 && p <= prev) {
      throw std::logic_error("encode_level: kDelta needs sorted points");
    }
    out.write_gamma(k == 1 ? static_cast<std::uint64_t>(p) + 1
                           : static_cast<std::uint64_t>(p - prev));
    out.write_gamma(level.dists[k]);
    prev = p;
  }
  encode_edges_delta(level.edges, out);
}

void encode_label(const VertexLabel& label, unsigned vertex_bits,
                  BitWriter& out, LabelCodec codec) {
  if (label.levels.size() != label.top_level - label.min_level + 1) {
    throw std::logic_error("encode_label: level count mismatch");
  }
  encode_label_header(label.owner, label.owner_net_level, label.min_level,
                      label.top_level, vertex_bits, out);
  for (const LevelLabel& ll : label.levels) {
    encode_level(ll, label.owner, vertex_bits, out, codec);
  }
}

VertexLabel decode_label(BitReader& in, unsigned vertex_bits,
                         LabelCodec codec) {
  VertexLabel label;
  label.owner = static_cast<Vertex>(in.read_bits(vertex_bits));
  label.owner_net_level = static_cast<unsigned>(in.read_gamma0());
  label.min_level = static_cast<unsigned>(in.read_gamma0());
  label.top_level = label.min_level + static_cast<unsigned>(in.read_gamma0());
  label.levels.resize(label.top_level - label.min_level + 1);
  for (LevelLabel& ll : label.levels) {
    const std::size_t num_points = in.read_gamma0() + 1;
    ll.points.resize(num_points);
    ll.dists.resize(num_points);
    ll.points[0] = label.owner;
    ll.dists[0] = 0;
    if (codec == LabelCodec::kClassic) {
      for (std::size_t k = 1; k < num_points; ++k) {
        ll.points[k] = static_cast<Vertex>(in.read_bits(vertex_bits));
        ll.dists[k] = static_cast<Dist>(in.read_gamma());
      }
    } else {
      Vertex prev = 0;
      for (std::size_t k = 1; k < num_points; ++k) {
        const auto gap = static_cast<Vertex>(in.read_gamma());
        prev = k == 1 ? gap - 1 : prev + gap;
        ll.points[k] = prev;
        ll.dists[k] = static_cast<Dist>(in.read_gamma());
      }
    }
    const std::size_t num_edges = in.read_gamma0();
    ll.edges.resize(num_edges);
    if (codec == LabelCodec::kClassic) {
      for (SketchEdge& e : ll.edges) {
        e.a = static_cast<std::uint32_t>(in.read_gamma0());
        e.b = static_cast<std::uint32_t>(in.read_gamma0());
        e.w = static_cast<Dist>(in.read_gamma());
        e.graph_edge = in.read_bits(1) != 0;
      }
    } else {
      decode_edges_delta(ll.edges, in);
    }
  }
  return label;
}

}  // namespace fsdl
