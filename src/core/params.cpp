#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fsdl {
namespace {

// Radii never need to exceed any graph distance; clamping far below the
// Dist ceiling keeps every later addition overflow-free.
constexpr std::uint64_t kRadiusClamp = Dist{1} << 30;

Dist clamp_radius(std::uint64_t r) noexcept {
  return static_cast<Dist>(std::min(r, kRadiusClamp));
}

std::uint64_t pow2(unsigned e) noexcept {
  return e >= 63 ? kRadiusClamp : std::uint64_t{1} << e;
}

}  // namespace

SchemeParams SchemeParams::faithful(double eps) {
  if (eps <= 0) throw std::invalid_argument("epsilon must be positive");
  SchemeParams p;
  p.epsilon = eps;
  p.c = std::max<unsigned>(
      2, static_cast<unsigned>(std::ceil(std::log2(6.0 / eps))));
  p.faithful_radii = true;
  p.lowest_level_all_pairs = true;
  return p;
}

SchemeParams SchemeParams::compact(double eps, unsigned c_value) {
  if (eps <= 0) throw std::invalid_argument("epsilon must be positive");
  if (c_value < 2) throw std::invalid_argument("c must be >= 2 (Claim 1)");
  SchemeParams p;
  p.epsilon = eps;
  p.c = c_value;
  p.faithful_radii = false;
  p.lowest_level_all_pairs = false;
  return p;
}

Dist SchemeParams::rho(unsigned i) const noexcept {
  return i >= c ? clamp_radius(pow2(i - c)) : 1;
}

Dist SchemeParams::lambda(unsigned i) const noexcept {
  return clamp_radius(pow2(i + 1));
}

Dist SchemeParams::mu(unsigned i) const noexcept {
  return clamp_radius(static_cast<std::uint64_t>(rho(i)) + lambda(i));
}

Dist SchemeParams::r(unsigned i) const noexcept {
  if (faithful_radii) {
    // μ_{i+1} + 2^i + ρ_{i+1}
    return clamp_radius(static_cast<std::uint64_t>(mu(i + 1)) + pow2(i) +
                        rho(i + 1));
  }
  // Minimal sound radius: must exceed λ_i so that "not listed" implies
  // "outside the protected ball"; the ρ term keeps nearby net points of the
  // next level in reach.
  return clamp_radius(static_cast<std::uint64_t>(lambda(i)) + rho(i + 1) + 1);
}

unsigned failure_free_c(double eps) noexcept {
  if (eps >= 2.0) return 0;
  return static_cast<unsigned>(std::ceil(std::log2(2.0 / eps)));
}

}  // namespace fsdl
