// ForbiddenSetLabeling — construction and storage of the paper's
// forbidden-set (1+ε)-approximate distance labels (Theorem 2.1).
//
// The scheme object holds one serialized bit string per vertex plus the
// shared scheme description (n, parameters, level range). Decoding a label
// is cheap and done on demand; ForbiddenSetOracle caches decoded labels for
// repeated querying.
#pragma once

#include <cstddef>
#include <vector>

#include "core/label.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "shard/partition.hpp"
#include "util/bitstream.hpp"
#include "util/types.hpp"

namespace fsdl {

namespace shard {
class ShardStore;
}  // namespace shard

struct BuildOptions {
  /// Cap the top level at ⌈log₂(diam+1)⌉ instead of the paper's ⌈log₂ n⌉.
  /// Levels above the diameter scale are degenerate (a single net point
  /// covering everything), so this is a pure size optimization; set false
  /// to reproduce the paper's accounting exactly.
  bool cap_levels_at_diameter = true;

  /// Wire format for the serialized labels. kClassic matches the paper's
  /// fixed-width accounting; kDelta gap-codes sorted point/edge lists
  /// (identical information, fewer bits — measured in E4).
  LabelCodec codec = LabelCodec::kClassic;

  /// Construction worker threads. 0 = auto (FSDL_BUILD_THREADS environment
  /// override, else hardware concurrency). The produced labels are
  /// bit-identical for every thread count — see builder.cpp for the
  /// determinism argument — so this is purely a wall-clock knob.
  unsigned threads = 0;
};

class ForbiddenSetLabeling {
 public:
  /// Preprocess a connected unweighted graph. Polynomial time: one
  /// radius-truncated BFS per net point per level.
  static ForbiddenSetLabeling build(const Graph& g, const SchemeParams& params,
                                    const BuildOptions& options = {});

  const SchemeParams& params() const noexcept { return params_; }
  Vertex num_vertices() const noexcept { return static_cast<Vertex>(labels_.size()); }
  unsigned min_level() const noexcept { return params_.min_level(); }
  unsigned top_level() const noexcept { return top_level_; }
  unsigned vertex_bits() const noexcept { return vertex_bits_; }
  LabelCodec codec() const noexcept { return codec_; }

  /// Decode the label of v.
  VertexLabel label(Vertex v) const;

  /// Exact serialized size of L(v) in bits.
  std::size_t label_bits(Vertex v) const { return labels_[v].bit_size(); }

  std::size_t max_label_bits() const;
  double mean_label_bits() const;
  std::size_t total_bits() const;

  /// Partition identity: which shard of which consistent-hash ring this
  /// object holds. Default-constructed (shard 0 of 1) for anything built in
  /// process; set by shard::ShardStore::split and by deserialization. A
  /// sharded labeling still has num_vertices() slots — unowned vertices
  /// hold empty bit buffers and must not be decoded.
  const shard::PartitionInfo& partition() const noexcept { return partition_; }

  /// True when this object holds v's label bits (always true unsharded;
  /// equivalent to a nonempty stored buffer for a split labeling).
  bool stores_label(Vertex v) const {
    return !partition_.sharded() || labels_[v].bit_size() > 0;
  }

 private:
  // The weighted extension builds the same storage through its own
  // constructor logic (core/weighted.cpp); persistence reads/writes the raw
  // buffers (core/serialize.cpp); the shard store cuts and reassembles
  // them (shard/shard_store.cpp).
  friend class WeightedLabelingBuilder;
  friend class SchemeSerializer;
  friend class shard::ShardStore;

  SchemeParams params_;
  unsigned top_level_ = 0;
  unsigned vertex_bits_ = 1;
  LabelCodec codec_ = LabelCodec::kClassic;
  std::vector<BitWriter> labels_;
  shard::PartitionInfo partition_;
};

}  // namespace fsdl
