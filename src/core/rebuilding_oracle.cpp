#include "core/rebuilding_oracle.hpp"

#include <algorithm>

namespace fsdl {

RebuildingDynamicOracle::RebuildingDynamicOracle(Graph graph,
                                                 const SchemeParams& params,
                                                 std::size_t rebuild_threshold,
                                                 const BuildOptions& options)
    : original_(std::move(graph)), params_(params), options_(options),
      threshold_(rebuild_threshold) {
  scheme_ = std::make_unique<ForbiddenSetLabeling>(
      ForbiddenSetLabeling::build(original_, params_, options_));
  oracle_ = std::make_unique<ForbiddenSetOracle>(*scheme_);
}

void RebuildingDynamicOracle::rebuild() {
  // "Background" recomputation: labels for the current surviving graph.
  // Vertex ids are preserved (failed vertices become isolated), so queries
  // keep addressing the same names.
  const Graph survivor = apply_faults(original_, active_);
  scheme_ = std::make_unique<ForbiddenSetLabeling>(
      ForbiddenSetLabeling::build(survivor, params_, options_));
  oracle_ = std::make_unique<ForbiddenSetOracle>(*scheme_);
  delta_ = FaultSet{};
  ++rebuilds_;
}

void RebuildingDynamicOracle::maybe_rebuild() {
  if (delta_.size() > threshold_) rebuild();
}

void RebuildingDynamicOracle::fail_vertex(Vertex v) {
  if (active_.vertex_faulty(v)) return;
  active_.add_vertex(v);
  delta_.add_vertex(v);
  maybe_rebuild();
}

void RebuildingDynamicOracle::fail_edge(Vertex a, Vertex b) {
  if (active_.edge_faulty(a, b)) return;
  active_.add_edge(a, b);
  delta_.add_edge(a, b);
  maybe_rebuild();
}

void RebuildingDynamicOracle::restore_vertex(Vertex v) {
  if (!active_.vertex_faulty(v)) return;
  active_.remove_vertex(v);
  if (delta_.vertex_faulty(v)) {
    delta_.remove_vertex(v);  // labels never saw it: free
  } else {
    rebuild();  // absorbed into the base graph: labels must be refreshed
  }
}

void RebuildingDynamicOracle::restore_edge(Vertex a, Vertex b) {
  if (!active_.edge_faulty(a, b)) return;
  active_.remove_edge(a, b);
  if (delta_.edge_faulty(a, b)) {
    delta_.remove_edge(a, b);
  } else {
    rebuild();
  }
}

Dist RebuildingDynamicOracle::distance(Vertex s, Vertex t) const {
  // Absorbed faulty vertices are isolated in the base graph, so they come
  // out unreachable without any special casing; delta faults ride along as
  // the forbidden set.
  if (active_.vertex_faulty(s) || active_.vertex_faulty(t)) return kInfDist;
  return oracle_->distance(s, t, delta_);
}

}  // namespace fsdl
