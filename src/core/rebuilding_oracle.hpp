// Rebuilding dynamic oracle — the paper's full recovery story (§1
// Applications): after failures, keep answering (and routing) immediately
// via forbidden-set queries on the old labels; meanwhile, once enough
// failures accumulate, recompute the labels for the surviving graph "in
// the background" and reset the forbidden set.
//
// Concretely: queries run against labels built for a base graph
// G_base = G_original \ (absorbed faults), carrying only the *delta* —
// faults arrived since the last rebuild — as the forbidden set. Since query
// time grows ~|F|² (Lemma 2.6), bounding |delta| by the rebuild threshold
// bounds the per-query cost, at the price of occasional O(build)
// recomputations. threshold = ∞ degenerates to DynamicOracle; threshold = 0
// rebuilds on every failure (pure recomputation).
//
// Restoring an element still in the delta is free; restoring an element
// already absorbed into the base graph forces a rebuild (the labels no
// longer describe a supergraph of the surviving network).
#pragma once

#include <cstddef>
#include <memory>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/fault_view.hpp"

namespace fsdl {

class RebuildingDynamicOracle {
 public:
  RebuildingDynamicOracle(Graph graph, const SchemeParams& params,
                          std::size_t rebuild_threshold,
                          const BuildOptions& options = {});

  void fail_vertex(Vertex v);
  void fail_edge(Vertex a, Vertex b);
  void restore_vertex(Vertex v);
  void restore_edge(Vertex a, Vertex b);

  /// (1+ε)-approximate distance in the current surviving graph.
  Dist distance(Vertex s, Vertex t) const;

  /// All currently failed elements (delta + absorbed).
  const FaultSet& active_faults() const noexcept { return active_; }
  /// Failed elements the labels do not yet reflect.
  const FaultSet& delta_faults() const noexcept { return delta_; }

  std::size_t rebuilds() const noexcept { return rebuilds_; }
  std::size_t rebuild_threshold() const noexcept { return threshold_; }

 private:
  void rebuild();
  void maybe_rebuild();

  Graph original_;
  SchemeParams params_;
  BuildOptions options_;
  std::size_t threshold_;

  std::unique_ptr<ForbiddenSetLabeling> scheme_;
  std::unique_ptr<ForbiddenSetOracle> oracle_;
  FaultSet active_;
  FaultSet delta_;
  std::size_t rebuilds_ = 0;
};

}  // namespace fsdl
