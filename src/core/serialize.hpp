// Scheme persistence: write a built labeling to disk and reload it later —
// the deployment story behind the paper's hand-held-device motivation
// (precompute labels centrally, ship each device only the labels it needs).
//
// Binary little-endian format:
//   magic "FSDL" + version u32
//   SchemeParams  (epsilon f64, c u32, faithful_radii u8, all_pairs u8)
//   top_level u32, vertex_bits u32, n u32
//   per vertex: bit_size u64, word_count u64, words u64[]
#pragma once

#include <iosfwd>
#include <string>

#include "core/labeling.hpp"

namespace fsdl {

void save_labeling(const ForbiddenSetLabeling& scheme, std::ostream& os);
ForbiddenSetLabeling load_labeling(std::istream& is);

void save_labeling(const ForbiddenSetLabeling& scheme,
                   const std::string& path);
ForbiddenSetLabeling load_labeling(const std::string& path);

}  // namespace fsdl
