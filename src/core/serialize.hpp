// Scheme persistence: write a built labeling to disk and reload it later —
// the deployment story behind the paper's hand-held-device motivation
// (precompute labels centrally, ship each device only the labels it needs).
//
// Binary little-endian format, version 3:
//   magic "FSDL" + version u32
//   body_size u64            — bytes of body that follow
//   body:
//     SchemeParams  (epsilon f64, c u32, faithful_radii u8, all_pairs u8)
//     top_level u32, vertex_bits u32, codec u8
//     partition: shard_id u32, shard_count u32, ring_seed u64,
//                ring_points u32   (shard 0 of 1 = unsharded)
//     n u32                  — vertices of the *whole* labeling
//     stored u32             — label records that follow (== n unsharded)
//     per record, ascending: vertex u32, bit_size u64, word_count u64,
//                            words u64[]
//   crc32(body) u32          — integrity trailer
//
// The partition identity lives *inside* the CRC-covered body, never in the
// raw header: a flipped bit in the shard metadata must fail the checksum,
// not silently reroute queries to the wrong shard. Label records are
// vertex-tagged and sparse so a shard file stores only the labels its
// shard owns while still declaring the full n (every process agrees on the
// id space and the ownership ring).
//
// The CRC makes label files corruption-proof in the only sense that
// matters: a flipped bit (disk rot, torn copy, truncation) is rejected at
// load with a clear error instead of being decoded into structurally valid
// but wrong labels that would silently serve wrong distances. Version-1/2
// files are rejected with an actionable message — rebuild with
// `fsdl build`. Every length field is bounds-checked against the body
// before any allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/labeling.hpp"

namespace fsdl {

/// Thrown by load_labeling when the body CRC32 does not match: the file is
/// corrupt. A distinct type so callers (Server::reload) can classify the
/// failure directly instead of diffing the process-global counter, which
/// would misattribute a concurrent load's CRC failure elsewhere in the
/// process.
class LabelingCrcError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void save_labeling(const ForbiddenSetLabeling& scheme, std::ostream& os);
ForbiddenSetLabeling load_labeling(std::istream& is);

/// Crash-safe save: writes a unique temp file next to `path`, fsyncs, then
/// renames over `path` (util/atomic_file). A crash mid-save never leaves
/// the target missing or truncated — at worst a stale `.tmp.*` survives
/// next to the previous good file.
void save_labeling(const ForbiddenSetLabeling& scheme,
                   const std::string& path);
ForbiddenSetLabeling load_labeling(const std::string& path);

/// Process-wide count of label loads rejected because the body CRC32 did
/// not match (surfaced by the server's metrics as
/// fsdl_label_crc_failures_total).
std::uint64_t labeling_crc_failures() noexcept;

}  // namespace fsdl
