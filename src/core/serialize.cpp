#include "core/serialize.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/atomic_file.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"

namespace fsdl {
namespace {

constexpr char kMagic[4] = {'F', 'S', 'D', 'L'};
constexpr std::uint32_t kVersion = 3;

/// Refuse to even try reading bodies above this; a corrupt/garbage size
/// field must not drive allocation. 1 TiB is far beyond any labeling this
/// code can build (DESIGN.md's scale table tops out in megabits).
constexpr std::uint64_t kMaxBodyBytes = 1ull << 40;

std::atomic<std::uint64_t> g_crc_failures{0};

template <typename T>
void append_pod(std::string& out, const T& value) {
  const char* p = reinterpret_cast<const char*>(&value);
  out.append(p, sizeof(T));
}

/// Bounds-checked reader over the in-memory body. Every read is validated
/// against the body size *before* touching memory, so corrupt or
/// adversarial length fields fail cleanly instead of over-reading.
class BodyReader {
 public:
  BodyReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size_ - pos_ < sizeof(T)) {
      throw std::runtime_error("labeling file corrupt (truncated body)");
    }
    T value{};
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// num_words u64 words, bounds-checked without u64 multiply overflow.
  std::vector<std::uint64_t> words(std::uint64_t num_words) {
    if (num_words > (size_ - pos_) / sizeof(std::uint64_t)) {
      throw std::runtime_error("labeling file corrupt (word count exceeds "
                               "file size)");
    }
    std::vector<std::uint64_t> out(static_cast<std::size_t>(num_words));
    std::memcpy(out.data(), data_ + pos_,
                static_cast<std::size_t>(num_words) * sizeof(std::uint64_t));
    pos_ += static_cast<std::size_t>(num_words) * sizeof(std::uint64_t);
    return out;
  }

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::uint64_t labeling_crc_failures() noexcept {
  return g_crc_failures.load(std::memory_order_relaxed);
}

class SchemeSerializer {
 public:
  static void save(const ForbiddenSetLabeling& scheme, std::ostream& os) {
    // Serialize the body to memory first: the CRC covers exactly the bytes
    // between the size field and the trailer.
    if (FSDL_FAILPOINT("serialize.save.alloc")) throw std::bad_alloc();
    std::string body;
    append_pod(body, scheme.params_.epsilon);
    append_pod(body, static_cast<std::uint32_t>(scheme.params_.c));
    append_pod(body, static_cast<std::uint8_t>(scheme.params_.faithful_radii));
    append_pod(
        body, static_cast<std::uint8_t>(scheme.params_.lowest_level_all_pairs));
    append_pod(body, static_cast<std::uint32_t>(scheme.top_level_));
    append_pod(body, static_cast<std::uint32_t>(scheme.vertex_bits_));
    append_pod(body, static_cast<std::uint8_t>(scheme.codec_));
    // Partition identity inside the CRC-covered body (see header comment).
    append_pod(body, scheme.partition_.shard_id);
    append_pod(body, scheme.partition_.shard_count);
    append_pod(body, scheme.partition_.ring_seed);
    append_pod(body, scheme.partition_.ring_points);
    append_pod(body, static_cast<std::uint32_t>(scheme.labels_.size()));
    // Sparse, vertex-tagged records: a shard file stores only the labels it
    // owns. Empty buffers mark unowned slots (a built label is never empty
    // — the encoder always writes a header).
    std::uint32_t stored = 0;
    for (const BitWriter& label : scheme.labels_) {
      if (label.bit_size() > 0) ++stored;
    }
    append_pod(body, stored);
    for (std::uint32_t v = 0; v < scheme.labels_.size(); ++v) {
      const BitWriter& label = scheme.labels_[v];
      if (label.bit_size() == 0) continue;
      append_pod(body, v);
      append_pod(body, static_cast<std::uint64_t>(label.bit_size()));
      append_pod(body, static_cast<std::uint64_t>(label.words().size()));
      body.append(reinterpret_cast<const char*>(label.words().data()),
                  label.words().size() * sizeof(std::uint64_t));
    }

    os.write(kMagic, sizeof(kMagic));
    const std::uint32_t version = kVersion;
    os.write(reinterpret_cast<const char*>(&version), sizeof version);
    const std::uint64_t body_size = body.size();
    os.write(reinterpret_cast<const char*>(&body_size), sizeof body_size);
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    const std::uint32_t crc = crc32(body.data(), body.size());
    os.write(reinterpret_cast<const char*>(&crc), sizeof crc);
    if (!os) throw std::runtime_error("labeling write failed");
  }

  static ForbiddenSetLabeling load(std::istream& is) {
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw std::runtime_error("not a fsdl labeling file");
    }
    std::uint32_t version = 0;
    is.read(reinterpret_cast<char*>(&version), sizeof version);
    if (!is) throw std::runtime_error("labeling file truncated");
    if (version != kVersion) {
      throw std::runtime_error(
          "unsupported labeling file version " + std::to_string(version) +
          " (this build reads v" + std::to_string(kVersion) +
          "; rebuild the labels with `fsdl build`)");
    }
    std::uint64_t body_size = 0;
    is.read(reinterpret_cast<char*>(&body_size), sizeof body_size);
    if (!is) throw std::runtime_error("labeling file truncated");
    if (body_size > kMaxBodyBytes) {
      throw std::runtime_error("labeling file corrupt (implausible size)");
    }
    // Chunked read: a lying size field runs into EOF after the real bytes,
    // so memory use is bounded by the actual file size, not the claim.
    std::string body;
    constexpr std::size_t kChunk = 1u << 20;
    while (body.size() < body_size) {
      const auto hit = FSDL_FAILPOINT("serialize.load.read");
      if (hit.kind == failpoint::HitKind::kErrno) {
        // A disk error mid-read looks like a failed stream to the loader,
        // exactly as a real EIO surfaces through istream::read.
        is.setstate(std::ios::failbit);
        throw std::runtime_error("labeling file truncated");
      }
      const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
          hit.clamp(kChunk), body_size - body.size()));
      const std::size_t old = body.size();
      if (FSDL_FAILPOINT("serialize.load.alloc")) throw std::bad_alloc();
      body.resize(old + want);
      is.read(body.data() + old, static_cast<std::streamsize>(want));
      if (!is) throw std::runtime_error("labeling file truncated");
    }
    std::uint32_t stored_crc = 0;
    is.read(reinterpret_cast<char*>(&stored_crc), sizeof stored_crc);
    if (!is) throw std::runtime_error("labeling file truncated");
    // Simulated bit rot: corrupt the trailer we just read so the *real*
    // CRC comparison below fires, counter and all.
    if (FSDL_FAILPOINT("serialize.load.crc")) stored_crc ^= 1u;
    if (crc32(body.data(), body.size()) != stored_crc) {
      g_crc_failures.fetch_add(1, std::memory_order_relaxed);
      throw LabelingCrcError(
          "labeling file rejected: CRC32 mismatch (file is corrupt; "
          "rebuild or re-copy it)");
    }

    BodyReader r(body.data(), body.size());
    ForbiddenSetLabeling scheme;
    scheme.params_.epsilon = r.pod<double>();
    scheme.params_.c = r.pod<std::uint32_t>();
    scheme.params_.faithful_radii = r.pod<std::uint8_t>() != 0;
    scheme.params_.lowest_level_all_pairs = r.pod<std::uint8_t>() != 0;
    scheme.top_level_ = r.pod<std::uint32_t>();
    scheme.vertex_bits_ = r.pod<std::uint32_t>();
    scheme.codec_ = static_cast<LabelCodec>(r.pod<std::uint8_t>());
    scheme.partition_.shard_id = r.pod<std::uint32_t>();
    scheme.partition_.shard_count = r.pod<std::uint32_t>();
    scheme.partition_.ring_seed = r.pod<std::uint64_t>();
    scheme.partition_.ring_points = r.pod<std::uint32_t>();
    if (scheme.partition_.shard_count == 0 ||
        scheme.partition_.shard_id >= scheme.partition_.shard_count) {
      throw std::runtime_error("labeling file corrupt (shard id " +
                               std::to_string(scheme.partition_.shard_id) +
                               " out of range for shard count " +
                               std::to_string(scheme.partition_.shard_count) +
                               ")");
    }
    const std::uint32_t n = r.pod<std::uint32_t>();
    const std::uint32_t stored = r.pod<std::uint32_t>();
    if (stored > n) {
      throw std::runtime_error(
          "labeling file corrupt (stored label count exceeds vertex count)");
    }
    if (!scheme.partition_.sharded() && stored != n) {
      throw std::runtime_error(
          "labeling file corrupt (unsharded file missing labels)");
    }
    // Each record costs at least 20 body bytes; reject counts the body
    // cannot back before reserving.
    if (stored > r.remaining() / 20) {
      throw std::runtime_error("labeling file corrupt (label count exceeds "
                               "file size)");
    }
    scheme.labels_.assign(n, BitWriter{});
    std::uint64_t prev = 0;  // strictly ascending: next vertex >= prev
    for (std::uint32_t i = 0; i < stored; ++i) {
      const std::uint32_t v = r.pod<std::uint32_t>();
      if (v >= n || (i > 0 && v <= prev)) {
        throw std::runtime_error(
            "labeling file corrupt (label records not ascending)");
      }
      prev = v;
      const std::uint64_t bits = r.pod<std::uint64_t>();
      const std::uint64_t num_words = r.pod<std::uint64_t>();
      // A stored record must hold actual label bits — empty means unowned
      // and those slots are simply absent from the file.
      if (bits == 0) {
        throw std::runtime_error("labeling file corrupt (empty label record)");
      }
      // bits/64 never overflows; num_words is bounds-checked against the
      // remaining body inside words().
      if (num_words < bits / 64 + (bits % 64 != 0)) {
        throw std::runtime_error("labeling file corrupt (word count)");
      }
      scheme.labels_[v] = BitWriter::from_words(
          r.words(num_words), static_cast<std::size_t>(bits));
    }
    if (!r.done()) {
      throw std::runtime_error("labeling file corrupt (trailing bytes)");
    }
    return scheme;
  }
};

void save_labeling(const ForbiddenSetLabeling& scheme, std::ostream& os) {
  SchemeSerializer::save(scheme, os);
}

ForbiddenSetLabeling load_labeling(std::istream& is) {
  return SchemeSerializer::load(is);
}

void save_labeling(const ForbiddenSetLabeling& scheme,
                   const std::string& path) {
  // Crash-safe: serialize to memory, then unique tmp + fsync + rename. A
  // process killed mid-save can leave a stale `path + ".tmp.*"` behind,
  // but the file at `path` is always either the previous complete labeling
  // or the new one — never missing and never truncated.
  std::ostringstream buffer(std::ios::binary);
  save_labeling(scheme, buffer);
  const std::string bytes = buffer.str();
  std::string error;
  if (!atomic_write_file(path, bytes.data(), bytes.size(), &error)) {
    throw std::runtime_error("labeling save failed: " + error);
  }
}

ForbiddenSetLabeling load_labeling(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (FSDL_FAILPOINT("serialize.load.open")) {
    is.setstate(std::ios::failbit);
  }
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_labeling(is);
}

}  // namespace fsdl
