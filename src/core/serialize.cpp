#include "core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fsdl {
namespace {

constexpr char kMagic[4] = {'F', 'S', 'D', 'L'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("labeling file truncated");
  return value;
}

}  // namespace

class SchemeSerializer {
 public:
  static void save(const ForbiddenSetLabeling& scheme, std::ostream& os) {
    os.write(kMagic, sizeof(kMagic));
    write_pod(os, kVersion);
    write_pod(os, scheme.params_.epsilon);
    write_pod(os, static_cast<std::uint32_t>(scheme.params_.c));
    write_pod(os, static_cast<std::uint8_t>(scheme.params_.faithful_radii));
    write_pod(os,
              static_cast<std::uint8_t>(scheme.params_.lowest_level_all_pairs));
    write_pod(os, static_cast<std::uint32_t>(scheme.top_level_));
    write_pod(os, static_cast<std::uint32_t>(scheme.vertex_bits_));
    write_pod(os, static_cast<std::uint8_t>(scheme.codec_));
    write_pod(os, static_cast<std::uint32_t>(scheme.labels_.size()));
    for (const BitWriter& label : scheme.labels_) {
      write_pod(os, static_cast<std::uint64_t>(label.bit_size()));
      write_pod(os, static_cast<std::uint64_t>(label.words().size()));
      os.write(reinterpret_cast<const char*>(label.words().data()),
               static_cast<std::streamsize>(label.words().size() *
                                            sizeof(std::uint64_t)));
    }
    if (!os) throw std::runtime_error("labeling write failed");
  }

  static ForbiddenSetLabeling load(std::istream& is) {
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw std::runtime_error("not a fsdl labeling file");
    }
    if (read_pod<std::uint32_t>(is) != kVersion) {
      throw std::runtime_error("unsupported labeling file version");
    }
    ForbiddenSetLabeling scheme;
    scheme.params_.epsilon = read_pod<double>(is);
    scheme.params_.c = read_pod<std::uint32_t>(is);
    scheme.params_.faithful_radii = read_pod<std::uint8_t>(is) != 0;
    scheme.params_.lowest_level_all_pairs = read_pod<std::uint8_t>(is) != 0;
    scheme.top_level_ = read_pod<std::uint32_t>(is);
    scheme.vertex_bits_ = read_pod<std::uint32_t>(is);
    scheme.codec_ = static_cast<LabelCodec>(read_pod<std::uint8_t>(is));
    const std::uint32_t n = read_pod<std::uint32_t>(is);
    scheme.labels_.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      const std::uint64_t bits = read_pod<std::uint64_t>(is);
      const std::uint64_t num_words = read_pod<std::uint64_t>(is);
      if (num_words < (bits + 63) / 64) {
        throw std::runtime_error("labeling file corrupt (word count)");
      }
      std::vector<std::uint64_t> words(num_words);
      is.read(reinterpret_cast<char*>(words.data()),
              static_cast<std::streamsize>(num_words * sizeof(std::uint64_t)));
      if (!is) throw std::runtime_error("labeling file truncated");
      scheme.labels_.push_back(
          BitWriter::from_words(std::move(words), static_cast<std::size_t>(bits)));
    }
    return scheme;
  }
};

void save_labeling(const ForbiddenSetLabeling& scheme, std::ostream& os) {
  SchemeSerializer::save(scheme, os);
}

ForbiddenSetLabeling load_labeling(std::istream& is) {
  return SchemeSerializer::load(is);
}

void save_labeling(const ForbiddenSetLabeling& scheme,
                   const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_labeling(scheme, os);
}

ForbiddenSetLabeling load_labeling(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_labeling(is);
}

}  // namespace fsdl
