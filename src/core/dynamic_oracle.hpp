// Fully-dynamic (1+ε) distance oracle (the application noted in §1 via
// Abraham, Chechik & Gavoille, STOC 2012): maintain a current fault set
// incrementally — fail/restore vertices and edges — and answer distance
// queries on the current surviving graph without rebuilding any labels.
//
// Update cost is O(1) amortized (set maintenance only); query cost is the
// labeling query time, O((1+1/ε)^{2α} |F|² log n) with |F| the *current*
// number of failures. Labels never change.
#pragma once

#include "core/oracle.hpp"
#include "graph/fault_view.hpp"

namespace fsdl {

class DynamicOracle {
 public:
  explicit DynamicOracle(const ForbiddenSetOracle& oracle)
      : oracle_(&oracle) {}

  void fail_vertex(Vertex v) { faults_.add_vertex(v); }
  void restore_vertex(Vertex v) { faults_.remove_vertex(v); }
  void fail_edge(Vertex a, Vertex b) { faults_.add_edge(a, b); }
  void restore_edge(Vertex a, Vertex b) { faults_.remove_edge(a, b); }

  /// (1+ε)-approximate distance in the current surviving graph.
  Dist distance(Vertex s, Vertex t) const {
    return oracle_->distance(s, t, faults_);
  }

  const FaultSet& current_faults() const noexcept { return faults_; }

 private:
  const ForbiddenSetOracle* oracle_;
  FaultSet faults_;
};

}  // namespace fsdl
