// Weighted extension of the forbidden-set labeling scheme.
//
// The paper treats unweighted graphs; road networks (its motivating
// application) are weighted, and its companion planar result
// (Abraham–Chechik–Gavoille, STOC 2012) handles weights in [1, M]. This
// extension runs the identical construction over the weighted shortest-path
// metric: weighted nets, Dijkstra-truncated ball sweeps, levels up to
// ⌈log₂(weighted diameter)⌉, and real graph edges (with their weights,
// flagged graph_edge) at the lowest level.
//
// Resulting labels use the same format and the same decoder as the
// unweighted scheme, so ForbiddenSetOracle / ConnectivityOracle /
// DynamicOracle work unchanged.
//
// Guarantees: *soundness* (every answer is a realizable G\F path length,
// Lemma 2.3's argument is metric-agnostic) holds unconditionally. The
// worst-case (1+ε) bound is proved by the paper only for the unweighted
// case; for weights in [1, W] the same argument gives 1 + ε + O(W/2^c)
// (net snapping overshoots by at most one edge weight), which the weighted
// tests and bench E12 probe empirically.
#pragma once

#include "core/labeling.hpp"
#include "graph/wgraph.hpp"

namespace fsdl {

ForbiddenSetLabeling build_weighted_labeling(const WeightedGraph& g,
                                             const SchemeParams& params,
                                             const BuildOptions& options = {});

}  // namespace fsdl
