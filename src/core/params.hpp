// Scheme parameters (paper §2.1).
//
// The paper fixes, for precision ε and c = max{⌈log₂(6/ε)⌉, 2}:
//     ρ_i = 2^{i-c}     net-domination radius at level i
//     λ_i = 2^{i+1}     max virtual-edge length stored/accepted at level i
//     μ_i = ρ_i + λ_i   fault-clearance radius used by the analysis
//     r_i = μ_{i+1} + 2^i + ρ_{i+1}    label ball radius at level i
// and level i draws its points from net N_{i-c-1}, with levels
// I = {c+1, …, ⌈log₂ n⌉}.
//
// Those constants are enormous in practice (the paper's label bound carries
// a max{512^{2α}, (1536/ε)^{2α}} factor), so we also provide a *compact*
// preset with the same algorithmic structure but the smallest radii that
// keep the decoder sound (r_i > λ_i, so absence from a label still certifies
// "outside the protected ball"). Compact mode additionally stores only real
// graph edges (weight 1) at the lowest level. Soundness — every returned
// distance is achievable in G\F — holds for ANY parameters; the worst-case
// (1+ε)-stretch proof applies to the faithful preset only.
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace fsdl {

struct SchemeParams {
  /// Target precision (informational for compact mode).
  double epsilon = 1.0;

  /// Net-fineness shift: level i uses net N_{i-c-1}. c >= 2 (Claim 1).
  unsigned c = 3;

  /// Paper radii (true) vs minimal sound radii (false).
  bool faithful_radii = true;

  /// Store all pairwise short edges at the lowest level (paper) vs only
  /// weight-1 graph edges (compact).
  bool lowest_level_all_pairs = true;

  /// Paper setting for precision eps: c = max{⌈log₂(6/ε)⌉, 2}.
  static SchemeParams faithful(double eps);

  /// Compact sound preset with an explicit net-fineness knob.
  static SchemeParams compact(double eps, unsigned c_value = 2);

  // --- derived radii (computed in 64-bit, clamped to avoid overflow) ---
  Dist rho(unsigned i) const noexcept;     // 2^{i-c} (>= 1)
  Dist lambda(unsigned i) const noexcept;  // 2^{i+1}
  Dist mu(unsigned i) const noexcept;      // rho(i) + lambda(i)
  Dist r(unsigned i) const noexcept;       // ball radius at level i

  /// Lowest level of I.
  unsigned min_level() const noexcept { return c + 1; }

  /// Net level used by label level i (requires i >= c + 1).
  unsigned net_level(unsigned i) const noexcept { return i - c - 1; }
};

/// Failure-free warm-up scheme constant: c = max{0, ⌈log₂(2/ε)⌉}.
unsigned failure_free_c(double eps) noexcept;

}  // namespace fsdl
