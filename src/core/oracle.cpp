#include "core/oracle.hpp"

#include <stdexcept>

#include "obs/trace.hpp"

namespace fsdl {

ForbiddenSetOracle::ForbiddenSetOracle(const ForbiddenSetLabeling& scheme)
    : scheme_(&scheme), cache_(scheme.num_vertices()) {}

ForbiddenSetOracle::~ForbiddenSetOracle() {
  for (auto& slot : cache_) delete slot.load(std::memory_order_relaxed);
}

const VertexLabel& ForbiddenSetOracle::label(Vertex v) const {
  auto& slot = cache_.at(v);
  const VertexLabel* cached = slot.load(std::memory_order_acquire);
  if (cached != nullptr) {
    FSDL_COUNT(kLabelCacheHit, 1);
    return *cached;
  }
  FSDL_COUNT(kLabelCacheMiss, 1);
  // Decode outside the publish; losers of the race delete their copy.
  const VertexLabel* fresh = new VertexLabel(scheme_->label(v));
  if (slot.compare_exchange_strong(cached, fresh, std::memory_order_release,
                                   std::memory_order_acquire)) {
    return *fresh;
  }
  delete fresh;
  return *cached;
}

void ForbiddenSetOracle::warm() const {
  for (Vertex v = 0; v < scheme_->num_vertices(); ++v) label(v);
}

QueryResult ForbiddenSetOracle::query(Vertex s, Vertex t,
                                      const FaultSet& faults) const {
  QueryInput in;
  in.source = &label(s);
  in.target = &label(t);
  in.fault_vertices.reserve(faults.vertices().size());
  for (Vertex f : faults.vertices()) in.fault_vertices.push_back(&label(f));
  in.fault_edges.reserve(faults.edges().size());
  for (const auto& [a, b] : faults.edges()) {
    in.fault_edges.emplace_back(&label(a), &label(b));
  }
  return decode_query(scheme_->params(), in);
}

PreparedFaults ForbiddenSetOracle::prepare(const FaultSet& faults) const {
  std::vector<const VertexLabel*> fault_vertices;
  fault_vertices.reserve(faults.vertices().size());
  for (Vertex f : faults.vertices()) fault_vertices.push_back(&label(f));
  std::vector<std::pair<const VertexLabel*, const VertexLabel*>> fault_edges;
  fault_edges.reserve(faults.edges().size());
  for (const auto& [a, b] : faults.edges()) {
    fault_edges.emplace_back(&label(a), &label(b));
  }
  return PreparedFaults(scheme_->params(), std::move(fault_vertices),
                        std::move(fault_edges));
}

Dist ForbiddenSetOracle::distance(Vertex s, Vertex t,
                                  const FaultSet& faults) const {
  return query(s, t, faults).distance;
}

}  // namespace fsdl
