// Failure-free (1+ε)-approximate distance labeling (paper §2.1 warm-up).
//
// Label of v: for each level i ∈ {c, …, top} with c = max{0, ⌈log₂(2/ε)⌉},
// the net points N_{i-c} ∩ B(v, 2^{i+1} - 1) with their exact distances
// from v. Decoder: find a level where t's nearest level net point appears
// in s's list and return d(s, M) + d(M, t). Stretch <= 1 + ε, label length
// O(1 + 1/ε)^α log² n bits.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitstream.hpp"
#include "util/types.hpp"

namespace fsdl {

/// Decoded failure-free label.
struct FFLabel {
  Vertex owner = kNoVertex;
  unsigned min_level = 0;
  unsigned top_level = 0;
  /// levels[k] = (net point, distance) pairs for level min_level + k,
  /// sorted by net point id. Contains (owner, 0) when owner is a net point.
  std::vector<std::vector<std::pair<Vertex, Dist>>> levels;
};

class FailureFreeLabeling {
 public:
  static FailureFreeLabeling build(const Graph& g, double eps,
                                   bool cap_levels_at_diameter = true);

  double epsilon() const noexcept { return epsilon_; }
  unsigned c() const noexcept { return c_; }
  Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(labels_.size());
  }

  FFLabel label(Vertex v) const;
  std::size_t label_bits(Vertex v) const { return labels_[v].bit_size(); }
  std::size_t max_label_bits() const;
  std::size_t total_bits() const;

  /// Convenience: decode both labels and run the estimator.
  Dist distance(Vertex s, Vertex t) const;

  /// The pure decoder: labels in, (1+ε)-approximate distance out.
  static Dist decode_distance(const FFLabel& s, const FFLabel& t);

 private:
  double epsilon_ = 1.0;
  unsigned c_ = 0;
  unsigned vertex_bits_ = 1;
  std::vector<BitWriter> labels_;
};

}  // namespace fsdl
