// Forbidden-set connectivity oracle (used by the Theorem 3.1 experiments).
//
// Connectivity is the "very large ε" special case of distance: u and v are
// connected in G\F iff the distance decoder finds any certified path. The
// lower bound of Theorem 3.1 applies to this interface, so the
// reconstruction attack in src/lowerbound drives exactly this adapter.
#pragma once

#include <vector>

#include "core/oracle.hpp"
#include "graph/components.hpp"
#include "util/bitstream.hpp"

namespace fsdl {

/// The paper's §3 contrast case: in the FAILURE-FREE setting, connectivity
/// needs only ⌈log₂ c⌉-bit labels (the component id), versus the
/// Ω(2^{α/2} + log n) lower bound once forbidden sets enter. Returns the
/// per-vertex labels and reports their exact bit width.
struct ComponentLabels {
  std::vector<Vertex> id;   // component id per vertex
  unsigned bits_per_label;  // ⌈log₂ c⌉ (>= 1)

  bool connected(Vertex u, Vertex v) const { return id[u] == id[v]; }
};

inline ComponentLabels failure_free_connectivity_labels(const Graph& g) {
  const Components c = connected_components(g);
  return {c.id, bits_for(std::max<Vertex>(c.count, 2))};
}

class ConnectivityOracle {
 public:
  explicit ConnectivityOracle(const ForbiddenSetOracle& oracle)
      : oracle_(&oracle) {}

  bool connected(Vertex s, Vertex t, const FaultSet& faults) const {
    return oracle_->distance(s, t, faults) != kInfDist;
  }

 private:
  const ForbiddenSetOracle* oracle_;
};

}  // namespace fsdl
