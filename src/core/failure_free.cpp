#include "core/failure_free.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "core/params.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "nets/net_hierarchy.hpp"

namespace fsdl {

FailureFreeLabeling FailureFreeLabeling::build(const Graph& g, double eps,
                                               bool cap_levels_at_diameter) {
  const Vertex n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("empty graph");
  if (eps <= 0) throw std::invalid_argument("epsilon must be positive");

  FailureFreeLabeling scheme;
  scheme.epsilon_ = eps;
  scheme.c_ = failure_free_c(eps);
  scheme.vertex_bits_ = bits_for(n);

  unsigned top = default_top_level(n);
  if (cap_levels_at_diameter && is_connected(g)) {
    const Dist sweep = double_sweep_lower_bound(g);
    unsigned t = 0;
    while ((Dist{1} << t) < 2 * sweep + 1 && t < 31) ++t;
    top = std::min(top, t);
  }
  top = std::max(top, scheme.c_);

  const NetHierarchy nets = build_net_hierarchy(g, top - scheme.c_);

  scheme.labels_.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    BitWriter& out = scheme.labels_[v];
    out.write_bits(v, scheme.vertex_bits_);
    out.write_gamma0(scheme.c_);        // min level
    out.write_gamma0(top - scheme.c_);  // level span
  }

  BfsRunner bfs(g);
  for (unsigned i = scheme.c_; i <= top; ++i) {
    const unsigned q = i - scheme.c_;
    const Dist radius = (i + 1 >= 31 ? (Dist{1} << 30) : (Dist{1} << (i + 1))) - 1;
    std::vector<std::vector<std::pair<Vertex, Dist>>> lists(n);
    for (Vertex x : nets.level(q)) {
      bfs.run(x, radius, [&](Vertex v, Dist d) { lists[v].emplace_back(x, d); });
    }
    for (Vertex v = 0; v < n; ++v) {
      BitWriter& out = scheme.labels_[v];
      out.write_gamma0(lists[v].size());
      for (const auto& [x, d] : lists[v]) {
        out.write_bits(x, scheme.vertex_bits_);
        out.write_gamma0(d);
      }
    }
  }
  return scheme;
}

FFLabel FailureFreeLabeling::label(Vertex v) const {
  BitReader in(labels_.at(v));
  FFLabel l;
  l.owner = static_cast<Vertex>(in.read_bits(vertex_bits_));
  l.min_level = static_cast<unsigned>(in.read_gamma0());
  l.top_level = l.min_level + static_cast<unsigned>(in.read_gamma0());
  l.levels.resize(l.top_level - l.min_level + 1);
  for (auto& lv : l.levels) {
    lv.resize(in.read_gamma0());
    for (auto& [x, d] : lv) {
      x = static_cast<Vertex>(in.read_bits(vertex_bits_));
      d = static_cast<Dist>(in.read_gamma0());
    }
  }
  return l;
}

Dist FailureFreeLabeling::decode_distance(const FFLabel& s, const FFLabel& t) {
  if (s.owner == t.owner) return 0;
  Dist best = kInfDist;
  for (std::size_t k = 0; k < s.levels.size() && k < t.levels.size(); ++k) {
    // s's level-k list as a map for O(1) membership.
    std::unordered_map<Vertex, Dist> in_s;
    in_s.reserve(s.levels[k].size());
    for (const auto& [x, d] : s.levels[k]) in_s.emplace(x, d);

    // M_{i-c}(t): the nearest net point to t at this level.
    // (Scanning the whole list and taking the best certified estimate can
    // only improve on the paper's "nearest point" rule, and stays sound —
    // every estimate is a real path length through a net point.)
    for (const auto& [x, dt] : t.levels[k]) {
      const auto it = in_s.find(x);
      if (it != in_s.end()) {
        best = std::min(best, static_cast<Dist>(it->second + dt));
      }
    }
  }
  return best;
}

Dist FailureFreeLabeling::distance(Vertex s, Vertex t) const {
  const FFLabel ls = label(s);
  const FFLabel lt = label(t);
  return decode_distance(ls, lt);
}

std::size_t FailureFreeLabeling::max_label_bits() const {
  std::size_t best = 0;
  for (const auto& w : labels_) best = std::max(best, w.bit_size());
  return best;
}

std::size_t FailureFreeLabeling::total_bits() const {
  std::size_t sum = 0;
  for (const auto& w : labels_) sum += w.bit_size();
  return sum;
}

}  // namespace fsdl
