#include "core/decoder.hpp"

#include <algorithm>

#include "graph/dijkstra.hpp"
#include "graph/fault_view.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace fsdl {
namespace {

/// Index of the nearest net point (slot >= 1) in a level list, or 0 if the
/// list has no net points.
std::uint32_t nearest_point_slot(const LevelLabel& ll) {
  std::uint32_t best = 0;
  Dist best_d = kInfDist;
  for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
    if (ll.dists[k] < best_d) {
      best_d = ll.dists[k];
      best = k;
    }
  }
  return best;
}

/// Per-thread reusable scratch for the assemble stage. query() is const and
/// called concurrently from the server's worker pool, so the reuse is per
/// thread; capacity sticks across calls, so a warmed-up thread assembles
/// without heap allocation. Never borrowed across a nested call: the only
/// two users (PreparedFaults construction and query) never nest.
EdgeAccumulator& edge_scratch() {
  static thread_local EdgeAccumulator acc;
  return acc;
}

SketchGraph& sketch_scratch() {
  static thread_local SketchGraph h;
  return h;
}

}  // namespace

PreparedFaults::PreparedFaults(
    const SchemeParams& params,
    std::vector<const VertexLabel*> fault_vertices,
    std::vector<std::pair<const VertexLabel*, const VertexLabel*>> fault_edges)
    : params_(params) {
  FSDL_SPAN("prepare");
  const WallTimer prepare_timer;
  {
    std::vector<Vertex> faulty;
    faulty.reserve(fault_vertices.size());
    for (const VertexLabel* f : fault_vertices) faulty.push_back(f->owner);
    faulty_vertices_ = SortedSet<Vertex>(std::move(faulty));
  }
  {
    std::vector<std::uint64_t> keys;
    keys.reserve(fault_edges.size());
    for (const auto& [a, b] : fault_edges) {
      keys.push_back(FaultSet::edge_key(a->owner, b->owner));
    }
    faulty_edges_ = SortedSet<std::uint64_t>(std::move(keys));
  }

  // Protected-ball centers: forbidden vertices plus both endpoints of every
  // forbidden edge (the latter are ball centers but remain usable vertices).
  auto add_center = [&](const VertexLabel* l) {
    for (const VertexLabel* seen : centers_) {
      if (seen->owner == l->owner) return;
    }
    centers_.push_back(l);
  };
  for (const VertexLabel* f : fault_vertices) add_center(f);
  for (const auto& [a, b] : fault_edges) {
    add_center(a);
    add_center(b);
  }
  {
    std::vector<Vertex> owners;
    owners.reserve(centers_.size());
    for (const VertexLabel* c : centers_) owners.push_back(c->owner);
    center_owners_ = SortedSet<Vertex>(std::move(owners));
  }
  if (centers_.empty()) {
    prepare_us_ = prepare_timer.elapsed_us();
    return;
  }

  min_level_ = centers_.front()->min_level;
  top_level_ = centers_.front()->top_level;
  levels_.resize(top_level_ - min_level_ + 1);
  std::vector<std::pair<Vertex, Dist>> entries;
  for (unsigned i = min_level_; i <= top_level_; ++i) {
    auto& tables = levels_[i - min_level_];
    tables.pb.reserve(centers_.size());
    for (std::size_t k = 0; k < centers_.size(); ++k) {
      const LevelLabel& ll = centers_[k]->level(i);
      entries.clear();
      entries.reserve(ll.points.size());
      for (std::size_t j = 0; j < ll.points.size(); ++j) {
        entries.emplace_back(ll.points[j], ll.dists[j]);  // slot 0: d = 0
      }
      tables.pb.emplace_back(entries);
    }
  }

  // The fault labels' own edge contributions do not depend on (s, t):
  // filter them once and snapshot the survivors for query() to seed from.
  EdgeAccumulator& edges = edge_scratch();
  edges.clear();
  for (const VertexLabel* center : centers_) {
    for (unsigned i = min_level_; i <= top_level_; ++i) {
      filter_label_edges(*center, i, edges, prepare_stats_);
    }
  }
  center_edges_ = edges.entries();
  prepare_us_ = prepare_timer.elapsed_us();
  FSDL_COUNT(kEdgesConsidered, prepare_stats_.edges_considered);
  FSDL_COUNT(kSafeEdgeChecks, prepare_stats_.pb_checks);
}

void PreparedFaults::filter_label_edges(const VertexLabel& label, unsigned i,
                                        EdgeAccumulator& edges,
                                        QueryStats& stats) const {
  const LevelLabel& ll = label.level(i);
  const Dist lambda = params_.lambda(i);
  const Dist radius = params_.r(i);
  const unsigned q = params_.net_level(i);
  const unsigned min_level = label.min_level;

  // Owner triangulation anchor: nearest net point of this level list.
  const std::uint32_t anchor = nearest_point_slot(ll);
  const bool owner_in_nq = label.owner_net_level >= q || q == 0;
  const auto* tables =
      levels_.empty() ? nullptr : &levels_[i - min_level_];

  // Certify endpoint `slot` outside PB_i(center k).
  auto certified_out = [&](std::uint32_t slot, std::size_t k) -> bool {
    ++stats.pb_checks;
    const Vertex u = ll.points[slot];
    const FlatDistMap& pb = tables->pb[k];
    const bool in_nq = slot != 0 || owner_in_nq;
    if (in_nq) {
      const Dist* d = pb.find(u);
      return d == nullptr || *d > lambda;
    }
    // Owner below net level: triangulate through the nearest net point.
    if (anchor == 0) return false;
    const Vertex m = ll.points[anchor];
    const Dist d_um = ll.dists[anchor];
    const Dist* d = pb.find(m);
    const Dist d_mf_lb = d == nullptr ? radius + 1 : *d;
    return d_mf_lb > d_um && d_mf_lb - d_um > lambda;
  };

  for (const SketchEdge& e : ll.edges) {
    ++stats.edges_considered;
    const Vertex x = ll.points[e.a];
    const Vertex y = ll.points[e.b];
    if (i == min_level && e.graph_edge) {
      // Lowest-level rule: real graph edges survive iff neither endpoint
      // nor the edge itself is forbidden.
      if (!vertex_faulty(x) && !vertex_faulty(y) &&
          (faulty_edges_.empty() ||
           !faulty_edges_.contains(FaultSet::edge_key(x, y)))) {
        edges.keep_min(FaultSet::edge_key(x, y), e.w);
      }
      continue;
    }
    bool survives = true;
    for (std::size_t k = 0; k < centers_.size() && survives; ++k) {
      survives = certified_out(e.a, k) || certified_out(e.b, k);
    }
    if (survives) edges.keep_min(FaultSet::edge_key(x, y), e.w);
  }
}

QueryResult PreparedFaults::query(const VertexLabel& source,
                                  const VertexLabel& target) const {
  FSDL_SPAN("query");
  QueryResult result;
  result.stats = prepare_stats_;

  if (vertex_faulty(source.owner) || vertex_faulty(target.owner)) {
    return result;  // endpoints forbidden: unreachable by definition
  }
  if (source.owner == target.owner) {
    result.distance = 0;
    result.waypoints = {source.owner};
    return result;
  }

  const WallTimer assemble_timer;
  SketchGraph& h = sketch_scratch();
  h.clear();
  std::size_t endpoint_pb_checks = 0;
  {
    FSDL_SPAN("assemble");
    // Seed from the prepared center contributions, then add the two
    // endpoint labels' survivors. Both scratch structures retain capacity
    // across queries, so this loop allocates nothing in steady state.
    EdgeAccumulator& edges = edge_scratch();
    edges.clear();
    edges.reserve(center_edges_.size());
    for (const auto& [key, w] : center_edges_) edges.keep_min(key, w);
    for (const VertexLabel* l : {&source, &target}) {
      if (center_owners_.contains(l->owner)) continue;  // already contributed
      for (unsigned i = l->min_level; i <= l->top_level; ++i) {
        filter_label_edges(*l, i, edges, result.stats);
      }
    }

    h.reserve(edges.size() + 2);
    h.intern(source.owner);
    h.intern(target.owner);
    for (const auto& [key, w] : edges.entries()) {
      const Vertex x = static_cast<Vertex>(key >> 32);
      const Vertex y = static_cast<Vertex>(key & 0xffffffffu);
      h.add_edge(h.intern(x), h.intern(y), w);
    }
    result.stats.sketch_vertices = h.num_vertices();
    result.stats.sketch_edges = h.num_edges();
    endpoint_pb_checks = result.stats.pb_checks - prepare_stats_.pb_checks;
  }
  result.stats.assemble_us = assemble_timer.elapsed_us();

  const WallTimer dijkstra_timer;
  std::vector<SketchGraph::Index> path;
  {
    FSDL_SPAN("dijkstra");
    result.distance =
        sketch_shortest_path(h, h.find(source.owner), h.find(target.owner),
                             &path, &result.stats.dijkstra_relaxations);
  }
  result.stats.dijkstra_us = dijkstra_timer.elapsed_us();
  FSDL_COUNT(kSketchVertices, result.stats.sketch_vertices);
  FSDL_COUNT(kSketchEdges, result.stats.sketch_edges);
  FSDL_COUNT(kEdgesConsidered,
             result.stats.edges_considered - prepare_stats_.edges_considered);
  FSDL_COUNT(kSafeEdgeChecks, endpoint_pb_checks);
  FSDL_COUNT(kDijkstraRelaxations, result.stats.dijkstra_relaxations);

  if (result.distance != kInfDist) {
    result.waypoints.reserve(path.size());
    for (const auto idx : path) {
      result.waypoints.push_back(h.external_id(idx));
    }
  }
  return result;
}

QueryResult decode_query(const SchemeParams& params, const QueryInput& in) {
  const PreparedFaults prepared(params, in.fault_vertices, in.fault_edges);
  return prepared.query(*in.source, *in.target);
}

}  // namespace fsdl
