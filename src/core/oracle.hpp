// ForbiddenSetOracle — the §1 "byproduct": a centralized (1+ε) forbidden-set
// distance oracle assembled from the labeling scheme by storing every
// vertex's label in a table. Size is n × label-length, independent of how
// many faults a query carries.
#pragma once

#include <memory>
#include <vector>

#include "core/decoder.hpp"
#include "core/labeling.hpp"
#include "graph/fault_view.hpp"

namespace fsdl {

class ForbiddenSetOracle {
 public:
  /// Keeps a reference to the scheme; decodes labels lazily and caches them.
  explicit ForbiddenSetOracle(const ForbiddenSetLabeling& scheme);

  /// (1+ε)-approximate d_{G\F}(s, t); kInfDist when disconnected or when an
  /// endpoint is itself forbidden.
  Dist distance(Vertex s, Vertex t, const FaultSet& faults) const;

  /// Full query result (distance, sketch path waypoints, work counters).
  QueryResult query(Vertex s, Vertex t, const FaultSet& faults) const;

  /// Amortized interface for the router scenario: pay the |F|-dependent
  /// work once, then answer many (s, t) queries against the same faults.
  PreparedFaults prepare(const FaultSet& faults) const;

  /// Decoded label access (also used by the routing scheme).
  const VertexLabel& label(Vertex v) const;

  const ForbiddenSetLabeling& scheme() const noexcept { return *scheme_; }

  /// Oracle size = total bits across all stored labels.
  std::size_t size_bits() const { return scheme_->total_bits(); }

 private:
  const ForbiddenSetLabeling* scheme_;
  // Lazy per-vertex decode cache. Not thread-safe (single-threaded library).
  mutable std::vector<std::unique_ptr<VertexLabel>> cache_;
};

}  // namespace fsdl
