// ForbiddenSetOracle — the §1 "byproduct": a centralized (1+ε) forbidden-set
// distance oracle assembled from the labeling scheme by storing every
// vertex's label in a table. Size is n × label-length, independent of how
// many faults a query carries.
#pragma once

#include <atomic>
#include <vector>

#include "core/decoder.hpp"
#include "core/labeling.hpp"
#include "graph/fault_view.hpp"

namespace fsdl {

/// Thread safety: after construction, every const member is safe to call
/// from any number of threads concurrently (the lazy label cache publishes
/// decoded labels with an atomic compare-exchange; a decode race wastes one
/// duplicate decode, never corrupts). The query server relies on this.
class ForbiddenSetOracle {
 public:
  /// Keeps a reference to the scheme; decodes labels lazily and caches them.
  explicit ForbiddenSetOracle(const ForbiddenSetLabeling& scheme);
  ~ForbiddenSetOracle();

  ForbiddenSetOracle(const ForbiddenSetOracle&) = delete;
  ForbiddenSetOracle& operator=(const ForbiddenSetOracle&) = delete;

  /// (1+ε)-approximate d_{G\F}(s, t); kInfDist when disconnected or when an
  /// endpoint is itself forbidden.
  Dist distance(Vertex s, Vertex t, const FaultSet& faults) const;

  /// Full query result (distance, sketch path waypoints, work counters).
  QueryResult query(Vertex s, Vertex t, const FaultSet& faults) const;

  /// Amortized interface for the router scenario: pay the |F|-dependent
  /// work once, then answer many (s, t) queries against the same faults.
  PreparedFaults prepare(const FaultSet& faults) const;

  /// Decoded label access (also used by the routing scheme). Safe under
  /// concurrent callers; the returned reference stays valid for the
  /// oracle's lifetime (entries are never evicted).
  const VertexLabel& label(Vertex v) const;

  /// Decode every label up front — optional warm-up so a serving process
  /// pays decode cost at startup instead of on first touch.
  void warm() const;

  const ForbiddenSetLabeling& scheme() const noexcept { return *scheme_; }

  /// Oracle size = total bits across all stored labels.
  std::size_t size_bits() const { return scheme_->total_bits(); }

 private:
  const ForbiddenSetLabeling* scheme_;
  // Lazy per-vertex decode cache. Each slot is null until first use, then
  // holds an immutable decoded label published via compare-exchange.
  mutable std::vector<std::atomic<const VertexLabel*>> cache_;
};

}  // namespace fsdl
