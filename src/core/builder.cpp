// Label construction (paper §2.1, "Labels").
//
// For each level i ∈ I = {c+1, …, top}:
//   - level i draws its points from net N_q, q = i - c - 1;
//   - every net point x ∈ N_q runs a BFS truncated at radius r_i; each
//     visited vertex v records (x, d_G(v, x)) — this inverts "collect
//     N_q ∩ B(v, r_i)" into per-net-point work;
//   - the same BFS records net-point pair distances <= λ_i (the virtual
//     edges); per vertex, the level's edge set is assembled from the pairs
//     whose endpoints both landed in its ball, plus owner-to-point edges.
//
// Total work is Σ_i Σ_{x ∈ N_q} |B(x, r_i)| ⋅ deg — the net density and the
// ball radius grow/shrink in lockstep, giving n ⋅ 2^{O(α)} per level.
//
// Parallel construction (BuildOptions::threads). Each level runs three
// passes:
//   1. BFS fan-out over net points — each net point's truncated BFS is an
//      independent read-only walk of G, so workers run them concurrently
//      with per-worker BfsRunner scratch, writing into per-net-point output
//      slots (visits[idx], pair_adj[idx]). A slot's content depends only on
//      the graph and its source, never on which worker ran it.
//   2. Serial inversion of visits into per-vertex ball lists. Iterating net
//      points in net order reproduces the serial builder's increasing-
//      net-point ordering of lists[v] exactly; this pass is O(Σ|B|) plain
//      appends, a sliver of the BFS edge-scan work it follows.
//   3. Assemble+encode fan-out over vertices — each vertex's level graph is
//      a pure function of lists[v], pair_adj, and rank, and is encoded into
//      its own preallocated labels_[v] BitWriter with per-worker posn /
//      LevelLabel scratch. Distinct vector slots, no shared mutation.
// Hence labels are bit-identical for every thread count, which
// parallel_build_test asserts and the CI thread matrix re-checks. With a
// single worker, passes 1-2 fuse into the classic direct-append loop (no
// per-net-point visit buffers), so the serial build pays no staging tax.
#include <algorithm>
#include <stdexcept>

#include "core/labeling.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "nets/net_hierarchy.hpp"
#include "util/parallel.hpp"

namespace fsdl {
namespace {

constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

unsigned ceil_log2_plus1(Dist d) noexcept {
  unsigned t = 0;
  while ((Dist{1} << t) < d + 1 && t < 31) ++t;
  return t;
}

}  // namespace

ForbiddenSetLabeling ForbiddenSetLabeling::build(const Graph& g,
                                                 const SchemeParams& params,
                                                 const BuildOptions& options) {
  const Vertex n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("empty graph");

  ForbiddenSetLabeling scheme;
  scheme.params_ = params;
  scheme.vertex_bits_ = bits_for(n);
  scheme.codec_ = options.codec;

  unsigned top = default_top_level(n);
  if (options.cap_levels_at_diameter && is_connected(g)) {
    // diam <= 2 * ecc(any vertex); the double-sweep endpoint's eccentricity
    // is usually the diameter itself. 2^top >= diam is what correctness of
    // the top-level case needs.
    const Dist sweep = double_sweep_lower_bound(g);
    top = std::min(top, ceil_log2_plus1(2 * sweep));
  }
  top = std::max(top, params.min_level());
  scheme.top_level_ = top;

  const unsigned net_top = top - params.c - 1;
  const NetHierarchy nets = build_net_hierarchy(g, net_top);

  scheme.labels_.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    encode_label_header(v, nets.max_level_of(v), params.min_level(), top,
                        scheme.vertex_bits_, scheme.labels_[v]);
  }

  const unsigned threads = resolve_threads(options.threads);
  // Per-worker scratch. Workers never share a slot: worker t touches only
  // runners[t], posn[t], scratch[t].
  std::vector<BfsRunner> runners;
  runners.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) runners.emplace_back(g);
  // posn[t]: position of a vertex in the current label's point list.
  std::vector<std::vector<std::uint32_t>> posn(
      threads, std::vector<std::uint32_t>(n, kNone));
  std::vector<LevelLabel> scratch(threads);
  // Shared, read-only during the fan-outs: rank of a vertex within the
  // current level's net (or kNone).
  std::vector<std::uint32_t> rank(n, kNone);

  for (unsigned i = params.min_level(); i <= top; ++i) {
    const unsigned q = params.net_level(i);
    const Dist lambda = params.lambda(i);
    const Dist radius = params.r(i);
    const auto& net = nets.level(q);
    const bool all_pairs = params.lowest_level_all_pairs || i > params.min_level();

    std::fill(rank.begin(), rank.end(), kNone);
    for (std::uint32_t idx = 0; idx < net.size(); ++idx) rank[net[idx]] = idx;

    // Pass 1 — one truncated BFS per net point, fanned out over workers.
    // visits[idx] = (vertex, distance) pairs of B(net[idx], r_i) in BFS
    // order; pair_adj[rank(x)] = net points y > x with d_G(x, y) <= λ_i.
    // Pass 2 — invert per-source visit lists into per-vertex ball lists:
    // lists[v] = (net point, distance) pairs with d <= r_i. Iterating the
    // net in order yields increasing net-point id order in every lists[v]
    // regardless of which worker ran which BFS. Each visit list is released
    // as soon as it is consumed. With a single worker the two passes fuse:
    // the BFS callback appends straight into lists[v], skipping the visit
    // buffers entirely — the net iteration order alone already yields the
    // same per-vertex ordering, so the output is unchanged.
    std::vector<std::vector<std::pair<Vertex, Dist>>> lists(n);
    std::vector<std::vector<std::pair<Vertex, Dist>>> pair_adj(net.size());
    if (threads <= 1) {
      for (std::uint32_t idx = 0; idx < net.size(); ++idx) {
        const Vertex x = net[idx];
        auto& pairs = pair_adj[idx];
        runners[0].run(x, radius, [&](Vertex v, Dist d) {
          lists[v].emplace_back(x, d);
          if (all_pairs && d > 0 && d <= lambda && v > x && rank[v] != kNone) {
            pairs.emplace_back(v, d);
          }
        });
      }
    } else {
      std::vector<std::vector<std::pair<Vertex, Dist>>> visits(net.size());
      parallel_for(net.size(), threads, [&](unsigned tid, std::size_t idx) {
        const Vertex x = net[idx];
        auto& vis = visits[idx];
        auto& pairs = pair_adj[idx];
        runners[tid].run(x, radius, [&](Vertex v, Dist d) {
          vis.emplace_back(v, d);
          if (all_pairs && d > 0 && d <= lambda && v > x && rank[v] != kNone) {
            pairs.emplace_back(v, d);
          }
        });
      });
      for (std::uint32_t idx = 0; idx < net.size(); ++idx) {
        const Vertex x = net[idx];
        for (const auto& [v, d] : visits[idx]) lists[v].emplace_back(x, d);
        std::vector<std::pair<Vertex, Dist>>().swap(visits[idx]);
      }
    }

    // Pass 3 — assemble and encode each vertex's level graph, fanned out
    // over vertices; each writes only its own labels_[v] slot.
    parallel_for(n, threads, [&](unsigned tid, std::size_t vi) {
      const Vertex v = static_cast<Vertex>(vi);
      LevelLabel& ll = scratch[tid];
      std::vector<std::uint32_t>& pos = posn[tid];
      ll.points.clear();
      ll.dists.clear();
      ll.edges.clear();

      // Take ownership of this vertex's ball list; its buffer is freed when
      // `list` leaves scope instead of surviving to the end of the level.
      const auto list = std::move(lists[v]);
      ll.points.push_back(v);
      ll.dists.push_back(0);
      for (const auto& [x, d] : list) {
        if (x == v) continue;  // owner occupies slot 0
        ll.points.push_back(x);
        ll.dists.push_back(d);
      }
      for (std::uint32_t k = 0; k < ll.points.size(); ++k) {
        pos[ll.points[k]] = k;
      }

      if (all_pairs) {
        // Owner-to-point edges (v, x) with d <= λ_i.
        for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
          if (ll.dists[k] <= lambda) {
            ll.edges.push_back({0, k, ll.dists[k],
                                i == params.min_level() && ll.dists[k] == 1});
          }
        }
        // Net-point pair edges; each unordered pair is stored under its
        // smaller endpoint, so this visits it exactly once.
        for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
          const std::uint32_t rx = rank[ll.points[k]];
          if (rx == kNone) continue;  // owner-only entries are never here
          for (const auto& [y, d] : pair_adj[rx]) {
            const std::uint32_t j = pos[y];
            if (j == kNone || j == 0) continue;  // absent, or owner (covered)
            ll.edges.push_back({std::min(k, j), std::max(k, j), d,
                                i == params.min_level() && d == 1});
          }
        }
      } else {
        // Compact lowest level: real graph edges among ball members only.
        for (std::uint32_t k = 0; k < ll.points.size(); ++k) {
          const Vertex x = ll.points[k];
          for (Vertex y : g.neighbors(x)) {
            if (y <= x) continue;
            const std::uint32_t j = pos[y];
            if (j == kNone) continue;
            ll.edges.push_back({std::min(k, j), std::max(k, j), 1, true});
          }
        }
      }

      encode_level(ll, v, scheme.vertex_bits_, scheme.labels_[v],
                   options.codec);
      for (Vertex p : ll.points) pos[p] = kNone;
    });
  }
  for (auto& w : scheme.labels_) w.shrink_to_fit();
  return scheme;
}

VertexLabel ForbiddenSetLabeling::label(Vertex v) const {
  BitReader reader(labels_.at(v));
  return decode_label(reader, vertex_bits_, codec_);
}

std::size_t ForbiddenSetLabeling::max_label_bits() const {
  std::size_t best = 0;
  for (const auto& w : labels_) best = std::max(best, w.bit_size());
  return best;
}

double ForbiddenSetLabeling::mean_label_bits() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(total_bits()) / static_cast<double>(labels_.size());
}

std::size_t ForbiddenSetLabeling::total_bits() const {
  std::size_t sum = 0;
  for (const auto& w : labels_) sum += w.bit_size();
  return sum;
}

}  // namespace fsdl
