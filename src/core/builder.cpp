// Label construction (paper §2.1, "Labels").
//
// For each level i ∈ I = {c+1, …, top}:
//   - level i draws its points from net N_q, q = i - c - 1;
//   - every net point x ∈ N_q runs a BFS truncated at radius r_i; each
//     visited vertex v records (x, d_G(v, x)) — this inverts "collect
//     N_q ∩ B(v, r_i)" into per-net-point work;
//   - the same BFS records net-point pair distances <= λ_i (the virtual
//     edges); per vertex, the level's edge set is assembled from the pairs
//     whose endpoints both landed in its ball, plus owner-to-point edges.
//
// Total work is Σ_i Σ_{x ∈ N_q} |B(x, r_i)| ⋅ deg — the net density and the
// ball radius grow/shrink in lockstep, giving n ⋅ 2^{O(α)} per level.
#include <algorithm>
#include <stdexcept>

#include "core/labeling.hpp"
#include "graph/bfs.hpp"
#include "graph/components.hpp"
#include "graph/diameter.hpp"
#include "nets/net_hierarchy.hpp"

namespace fsdl {
namespace {

constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

unsigned ceil_log2_plus1(Dist d) noexcept {
  unsigned t = 0;
  while ((Dist{1} << t) < d + 1 && t < 31) ++t;
  return t;
}

}  // namespace

ForbiddenSetLabeling ForbiddenSetLabeling::build(const Graph& g,
                                                 const SchemeParams& params,
                                                 const BuildOptions& options) {
  const Vertex n = g.num_vertices();
  if (n == 0) throw std::invalid_argument("empty graph");

  ForbiddenSetLabeling scheme;
  scheme.params_ = params;
  scheme.vertex_bits_ = bits_for(n);
  scheme.codec_ = options.codec;

  unsigned top = default_top_level(n);
  if (options.cap_levels_at_diameter && is_connected(g)) {
    // diam <= 2 * ecc(any vertex); the double-sweep endpoint's eccentricity
    // is usually the diameter itself. 2^top >= diam is what correctness of
    // the top-level case needs.
    const Dist sweep = double_sweep_lower_bound(g);
    top = std::min(top, ceil_log2_plus1(2 * sweep));
  }
  top = std::max(top, params.min_level());
  scheme.top_level_ = top;

  const unsigned net_top = top - params.c - 1;
  const NetHierarchy nets = build_net_hierarchy(g, net_top);

  scheme.labels_.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    encode_label_header(v, nets.max_level_of(v), params.min_level(), top,
                        scheme.vertex_bits_, scheme.labels_[v]);
  }

  BfsRunner bfs(g);
  // Scratch: position of a vertex in the current label's point list.
  std::vector<std::uint32_t> posn(n, kNone);
  // Scratch: rank of a vertex within the current level's net (or kNone).
  std::vector<std::uint32_t> rank(n, kNone);

  for (unsigned i = params.min_level(); i <= top; ++i) {
    const unsigned q = params.net_level(i);
    const Dist lambda = params.lambda(i);
    const Dist radius = params.r(i);
    const auto& net = nets.level(q);
    const bool all_pairs = params.lowest_level_all_pairs || i > params.min_level();

    std::fill(rank.begin(), rank.end(), kNone);
    for (std::uint32_t idx = 0; idx < net.size(); ++idx) rank[net[idx]] = idx;

    // lists[v] = (net point, distance) pairs with d <= r_i, in increasing
    // net-point id order (net is sorted and appends happen per source).
    std::vector<std::vector<std::pair<Vertex, Dist>>> lists(n);
    // pair_adj[rank(x)] = net points y > x with d_G(x, y) <= λ_i.
    std::vector<std::vector<std::pair<Vertex, Dist>>> pair_adj(net.size());

    for (std::uint32_t idx = 0; idx < net.size(); ++idx) {
      const Vertex x = net[idx];
      bfs.run(x, radius, [&](Vertex v, Dist d) {
        lists[v].emplace_back(x, d);
        if (all_pairs && d > 0 && d <= lambda && v > x && rank[v] != kNone) {
          pair_adj[idx].emplace_back(v, d);
        }
      });
    }

    LevelLabel ll;
    for (Vertex v = 0; v < n; ++v) {
      ll.points.clear();
      ll.dists.clear();
      ll.edges.clear();

      ll.points.push_back(v);
      ll.dists.push_back(0);
      for (const auto& [x, d] : lists[v]) {
        if (x == v) continue;  // owner occupies slot 0
        ll.points.push_back(x);
        ll.dists.push_back(d);
      }
      for (std::uint32_t k = 0; k < ll.points.size(); ++k) {
        posn[ll.points[k]] = k;
      }

      if (all_pairs) {
        // Owner-to-point edges (v, x) with d <= λ_i.
        for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
          if (ll.dists[k] <= lambda) {
            ll.edges.push_back({0, k, ll.dists[k],
                                i == params.min_level() && ll.dists[k] == 1});
          }
        }
        // Net-point pair edges; each unordered pair is stored under its
        // smaller endpoint, so this visits it exactly once.
        for (std::uint32_t k = 1; k < ll.points.size(); ++k) {
          const std::uint32_t rx = rank[ll.points[k]];
          if (rx == kNone) continue;  // owner-only entries are never here
          for (const auto& [y, d] : pair_adj[rx]) {
            const std::uint32_t j = posn[y];
            if (j == kNone || j == 0) continue;  // absent, or owner (covered)
            ll.edges.push_back({std::min(k, j), std::max(k, j), d,
                                i == params.min_level() && d == 1});
          }
        }
      } else {
        // Compact lowest level: real graph edges among ball members only.
        for (std::uint32_t k = 0; k < ll.points.size(); ++k) {
          const Vertex x = ll.points[k];
          for (Vertex y : g.neighbors(x)) {
            if (y <= x) continue;
            const std::uint32_t j = posn[y];
            if (j == kNone) continue;
            ll.edges.push_back({std::min(k, j), std::max(k, j), 1, true});
          }
        }
      }

      encode_level(ll, v, scheme.vertex_bits_, scheme.labels_[v],
                     options.codec);
      for (Vertex p : ll.points) posn[p] = kNone;
      lists[v].clear();
      lists[v].shrink_to_fit();
    }
  }
  for (auto& w : scheme.labels_) w.shrink_to_fit();
  return scheme;
}

VertexLabel ForbiddenSetLabeling::label(Vertex v) const {
  BitReader reader(labels_.at(v));
  return decode_label(reader, vertex_bits_, codec_);
}

std::size_t ForbiddenSetLabeling::max_label_bits() const {
  std::size_t best = 0;
  for (const auto& w : labels_) best = std::max(best, w.bit_size());
  return best;
}

double ForbiddenSetLabeling::mean_label_bits() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(total_bits()) / static_cast<double>(labels_.size());
}

std::size_t ForbiddenSetLabeling::total_bits() const {
  std::size_t sum = 0;
  for (const auto& w : labels_) sum += w.bit_size();
  return sum;
}

}  // namespace fsdl
