# Empty compiler generated dependencies file for fsdl_cli.
# This may be replaced when dependencies are built.
