file(REMOVE_RECURSE
  "CMakeFiles/fsdl_cli.dir/fsdl_cli.cpp.o"
  "CMakeFiles/fsdl_cli.dir/fsdl_cli.cpp.o.d"
  "fsdl"
  "fsdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
