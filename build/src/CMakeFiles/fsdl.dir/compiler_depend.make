# Empty compiler generated dependencies file for fsdl.
# This may be replaced when dependencies are built.
