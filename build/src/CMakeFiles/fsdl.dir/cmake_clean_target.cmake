file(REMOVE_RECURSE
  "libfsdl.a"
)
