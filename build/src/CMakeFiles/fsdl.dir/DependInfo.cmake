
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/apsp_oracle.cpp" "src/CMakeFiles/fsdl.dir/baseline/apsp_oracle.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/baseline/apsp_oracle.cpp.o.d"
  "/root/repo/src/baseline/hub_labeling.cpp" "src/CMakeFiles/fsdl.dir/baseline/hub_labeling.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/baseline/hub_labeling.cpp.o.d"
  "/root/repo/src/baseline/sensitivity_oracle.cpp" "src/CMakeFiles/fsdl.dir/baseline/sensitivity_oracle.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/baseline/sensitivity_oracle.cpp.o.d"
  "/root/repo/src/baseline/tree_labeling.cpp" "src/CMakeFiles/fsdl.dir/baseline/tree_labeling.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/baseline/tree_labeling.cpp.o.d"
  "/root/repo/src/core/builder.cpp" "src/CMakeFiles/fsdl.dir/core/builder.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/builder.cpp.o.d"
  "/root/repo/src/core/decoder.cpp" "src/CMakeFiles/fsdl.dir/core/decoder.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/decoder.cpp.o.d"
  "/root/repo/src/core/failure_free.cpp" "src/CMakeFiles/fsdl.dir/core/failure_free.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/failure_free.cpp.o.d"
  "/root/repo/src/core/label.cpp" "src/CMakeFiles/fsdl.dir/core/label.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/label.cpp.o.d"
  "/root/repo/src/core/oracle.cpp" "src/CMakeFiles/fsdl.dir/core/oracle.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/oracle.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/fsdl.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/params.cpp.o.d"
  "/root/repo/src/core/rebuilding_oracle.cpp" "src/CMakeFiles/fsdl.dir/core/rebuilding_oracle.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/rebuilding_oracle.cpp.o.d"
  "/root/repo/src/core/serialize.cpp" "src/CMakeFiles/fsdl.dir/core/serialize.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/serialize.cpp.o.d"
  "/root/repo/src/core/weighted.cpp" "src/CMakeFiles/fsdl.dir/core/weighted.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/core/weighted.cpp.o.d"
  "/root/repo/src/graph/bfs.cpp" "src/CMakeFiles/fsdl.dir/graph/bfs.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/bfs.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/fsdl.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/diameter.cpp" "src/CMakeFiles/fsdl.dir/graph/diameter.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/diameter.cpp.o.d"
  "/root/repo/src/graph/dijkstra.cpp" "src/CMakeFiles/fsdl.dir/graph/dijkstra.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/dijkstra.cpp.o.d"
  "/root/repo/src/graph/fault_view.cpp" "src/CMakeFiles/fsdl.dir/graph/fault_view.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/fault_view.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/fsdl.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/fsdl.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/fsdl.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/wfault.cpp" "src/CMakeFiles/fsdl.dir/graph/wfault.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/wfault.cpp.o.d"
  "/root/repo/src/graph/wgraph.cpp" "src/CMakeFiles/fsdl.dir/graph/wgraph.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/wgraph.cpp.o.d"
  "/root/repo/src/graph/wsearch.cpp" "src/CMakeFiles/fsdl.dir/graph/wsearch.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/graph/wsearch.cpp.o.d"
  "/root/repo/src/lowerbound/attack.cpp" "src/CMakeFiles/fsdl.dir/lowerbound/attack.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/lowerbound/attack.cpp.o.d"
  "/root/repo/src/lowerbound/family.cpp" "src/CMakeFiles/fsdl.dir/lowerbound/family.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/lowerbound/family.cpp.o.d"
  "/root/repo/src/metric/balls.cpp" "src/CMakeFiles/fsdl.dir/metric/balls.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/metric/balls.cpp.o.d"
  "/root/repo/src/metric/doubling.cpp" "src/CMakeFiles/fsdl.dir/metric/doubling.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/metric/doubling.cpp.o.d"
  "/root/repo/src/metric/exact_doubling.cpp" "src/CMakeFiles/fsdl.dir/metric/exact_doubling.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/metric/exact_doubling.cpp.o.d"
  "/root/repo/src/nets/net_hierarchy.cpp" "src/CMakeFiles/fsdl.dir/nets/net_hierarchy.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/nets/net_hierarchy.cpp.o.d"
  "/root/repo/src/nets/weighted_nets.cpp" "src/CMakeFiles/fsdl.dir/nets/weighted_nets.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/nets/weighted_nets.cpp.o.d"
  "/root/repo/src/routing/routing_scheme.cpp" "src/CMakeFiles/fsdl.dir/routing/routing_scheme.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/routing/routing_scheme.cpp.o.d"
  "/root/repo/src/routing/simulator.cpp" "src/CMakeFiles/fsdl.dir/routing/simulator.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/routing/simulator.cpp.o.d"
  "/root/repo/src/util/bitstream.cpp" "src/CMakeFiles/fsdl.dir/util/bitstream.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/util/bitstream.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/fsdl.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/fsdl.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/fsdl.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
