# Empty dependencies file for bench_stretch.
# This may be replaced when dependencies are built.
