file(REMOVE_RECURSE
  "CMakeFiles/bench_stretch.dir/bench_stretch.cpp.o"
  "CMakeFiles/bench_stretch.dir/bench_stretch.cpp.o.d"
  "bench_stretch"
  "bench_stretch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
