# Empty dependencies file for bench_nets.
# This may be replaced when dependencies are built.
