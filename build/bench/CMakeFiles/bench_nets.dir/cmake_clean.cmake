file(REMOVE_RECURSE
  "CMakeFiles/bench_nets.dir/bench_nets.cpp.o"
  "CMakeFiles/bench_nets.dir/bench_nets.cpp.o.d"
  "bench_nets"
  "bench_nets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
