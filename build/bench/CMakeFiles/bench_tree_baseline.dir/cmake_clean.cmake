file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_baseline.dir/bench_tree_baseline.cpp.o"
  "CMakeFiles/bench_tree_baseline.dir/bench_tree_baseline.cpp.o.d"
  "bench_tree_baseline"
  "bench_tree_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
