# Empty dependencies file for bench_tree_baseline.
# This may be replaced when dependencies are built.
