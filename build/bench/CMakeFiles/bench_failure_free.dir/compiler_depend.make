# Empty compiler generated dependencies file for bench_failure_free.
# This may be replaced when dependencies are built.
