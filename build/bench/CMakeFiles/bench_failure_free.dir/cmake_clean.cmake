file(REMOVE_RECURSE
  "CMakeFiles/bench_failure_free.dir/bench_failure_free.cpp.o"
  "CMakeFiles/bench_failure_free.dir/bench_failure_free.cpp.o.d"
  "bench_failure_free"
  "bench_failure_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failure_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
