# Empty compiler generated dependencies file for bench_hub_labels.
# This may be replaced when dependencies are built.
