file(REMOVE_RECURSE
  "CMakeFiles/bench_hub_labels.dir/bench_hub_labels.cpp.o"
  "CMakeFiles/bench_hub_labels.dir/bench_hub_labels.cpp.o.d"
  "bench_hub_labels"
  "bench_hub_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hub_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
