# Empty compiler generated dependencies file for bench_oracle_vs_dijkstra.
# This may be replaced when dependencies are built.
