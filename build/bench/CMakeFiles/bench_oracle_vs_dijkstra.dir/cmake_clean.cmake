file(REMOVE_RECURSE
  "CMakeFiles/bench_oracle_vs_dijkstra.dir/bench_oracle_vs_dijkstra.cpp.o"
  "CMakeFiles/bench_oracle_vs_dijkstra.dir/bench_oracle_vs_dijkstra.cpp.o.d"
  "bench_oracle_vs_dijkstra"
  "bench_oracle_vs_dijkstra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oracle_vs_dijkstra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
