# Empty compiler generated dependencies file for bench_rebuilding.
# This may be replaced when dependencies are built.
