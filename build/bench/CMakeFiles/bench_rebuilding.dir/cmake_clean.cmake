file(REMOVE_RECURSE
  "CMakeFiles/bench_rebuilding.dir/bench_rebuilding.cpp.o"
  "CMakeFiles/bench_rebuilding.dir/bench_rebuilding.cpp.o.d"
  "bench_rebuilding"
  "bench_rebuilding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rebuilding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
