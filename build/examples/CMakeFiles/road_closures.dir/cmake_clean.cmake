file(REMOVE_RECURSE
  "CMakeFiles/road_closures.dir/road_closures.cpp.o"
  "CMakeFiles/road_closures.dir/road_closures.cpp.o.d"
  "road_closures"
  "road_closures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_closures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
