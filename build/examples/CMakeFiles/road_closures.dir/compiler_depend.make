# Empty compiler generated dependencies file for road_closures.
# This may be replaced when dependencies are built.
