# Empty compiler generated dependencies file for weighted_roads.
# This may be replaced when dependencies are built.
