file(REMOVE_RECURSE
  "CMakeFiles/weighted_roads.dir/weighted_roads.cpp.o"
  "CMakeFiles/weighted_roads.dir/weighted_roads.cpp.o.d"
  "weighted_roads"
  "weighted_roads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_roads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
