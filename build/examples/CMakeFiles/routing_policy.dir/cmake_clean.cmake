file(REMOVE_RECURSE
  "CMakeFiles/routing_policy.dir/routing_policy.cpp.o"
  "CMakeFiles/routing_policy.dir/routing_policy.cpp.o.d"
  "routing_policy"
  "routing_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
