# Empty dependencies file for routing_policy.
# This may be replaced when dependencies are built.
