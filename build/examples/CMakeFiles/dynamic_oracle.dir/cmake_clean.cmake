file(REMOVE_RECURSE
  "CMakeFiles/dynamic_oracle.dir/dynamic_oracle.cpp.o"
  "CMakeFiles/dynamic_oracle.dir/dynamic_oracle.cpp.o.d"
  "dynamic_oracle"
  "dynamic_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
