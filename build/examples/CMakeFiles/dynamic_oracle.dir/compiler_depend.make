# Empty compiler generated dependencies file for dynamic_oracle.
# This may be replaced when dependencies are built.
