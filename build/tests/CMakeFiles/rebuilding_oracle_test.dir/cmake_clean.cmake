file(REMOVE_RECURSE
  "CMakeFiles/rebuilding_oracle_test.dir/rebuilding_oracle_test.cpp.o"
  "CMakeFiles/rebuilding_oracle_test.dir/rebuilding_oracle_test.cpp.o.d"
  "rebuilding_oracle_test"
  "rebuilding_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebuilding_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
