# Empty compiler generated dependencies file for rebuilding_oracle_test.
# This may be replaced when dependencies are built.
