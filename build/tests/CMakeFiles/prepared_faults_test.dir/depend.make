# Empty dependencies file for prepared_faults_test.
# This may be replaced when dependencies are built.
