file(REMOVE_RECURSE
  "CMakeFiles/prepared_faults_test.dir/prepared_faults_test.cpp.o"
  "CMakeFiles/prepared_faults_test.dir/prepared_faults_test.cpp.o.d"
  "prepared_faults_test"
  "prepared_faults_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prepared_faults_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
