file(REMOVE_RECURSE
  "CMakeFiles/forbidden_set_test.dir/forbidden_set_test.cpp.o"
  "CMakeFiles/forbidden_set_test.dir/forbidden_set_test.cpp.o.d"
  "forbidden_set_test"
  "forbidden_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forbidden_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
