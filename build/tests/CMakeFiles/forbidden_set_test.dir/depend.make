# Empty dependencies file for forbidden_set_test.
# This may be replaced when dependencies are built.
