file(REMOVE_RECURSE
  "CMakeFiles/label_test.dir/label_test.cpp.o"
  "CMakeFiles/label_test.dir/label_test.cpp.o.d"
  "label_test"
  "label_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
