file(REMOVE_RECURSE
  "CMakeFiles/hub_labeling_test.dir/hub_labeling_test.cpp.o"
  "CMakeFiles/hub_labeling_test.dir/hub_labeling_test.cpp.o.d"
  "hub_labeling_test"
  "hub_labeling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hub_labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
