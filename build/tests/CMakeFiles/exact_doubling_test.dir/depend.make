# Empty dependencies file for exact_doubling_test.
# This may be replaced when dependencies are built.
