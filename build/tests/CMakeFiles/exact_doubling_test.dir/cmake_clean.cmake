file(REMOVE_RECURSE
  "CMakeFiles/exact_doubling_test.dir/exact_doubling_test.cpp.o"
  "CMakeFiles/exact_doubling_test.dir/exact_doubling_test.cpp.o.d"
  "exact_doubling_test"
  "exact_doubling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_doubling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
