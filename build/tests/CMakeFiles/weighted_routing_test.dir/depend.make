# Empty dependencies file for weighted_routing_test.
# This may be replaced when dependencies are built.
