file(REMOVE_RECURSE
  "CMakeFiles/weighted_routing_test.dir/weighted_routing_test.cpp.o"
  "CMakeFiles/weighted_routing_test.dir/weighted_routing_test.cpp.o.d"
  "weighted_routing_test"
  "weighted_routing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
