file(REMOVE_RECURSE
  "CMakeFiles/tree_labeling_test.dir/tree_labeling_test.cpp.o"
  "CMakeFiles/tree_labeling_test.dir/tree_labeling_test.cpp.o.d"
  "tree_labeling_test"
  "tree_labeling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_labeling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
