file(REMOVE_RECURSE
  "CMakeFiles/dijkstra_test.dir/dijkstra_test.cpp.o"
  "CMakeFiles/dijkstra_test.dir/dijkstra_test.cpp.o.d"
  "dijkstra_test"
  "dijkstra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dijkstra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
