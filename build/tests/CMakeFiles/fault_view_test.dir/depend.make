# Empty dependencies file for fault_view_test.
# This may be replaced when dependencies are built.
