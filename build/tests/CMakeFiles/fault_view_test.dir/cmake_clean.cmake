file(REMOVE_RECURSE
  "CMakeFiles/fault_view_test.dir/fault_view_test.cpp.o"
  "CMakeFiles/fault_view_test.dir/fault_view_test.cpp.o.d"
  "fault_view_test"
  "fault_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
