# Empty dependencies file for failure_free_test.
# This may be replaced when dependencies are built.
