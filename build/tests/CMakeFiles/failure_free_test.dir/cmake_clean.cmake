file(REMOVE_RECURSE
  "CMakeFiles/failure_free_test.dir/failure_free_test.cpp.o"
  "CMakeFiles/failure_free_test.dir/failure_free_test.cpp.o.d"
  "failure_free_test"
  "failure_free_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_free_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
