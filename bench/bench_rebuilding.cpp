// E15 — rebuild-threshold trade-off of the rebuilding dynamic oracle.
//
// The paper's recovery story: answer immediately via forbidden-set queries,
// recompute labels "in the background" once failures accumulate. The
// threshold k bounds the forbidden-set size carried per query: queries cost
// ~|delta|² (Lemma 2.6), rebuilds cost a full label construction. Expected
// shape: mean query time grows with the threshold, total rebuild time
// shrinks; the sweet spot depends on the query:failure ratio.
#include "bench/common.hpp"
#include "core/rebuilding_oracle.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E15: rebuilding dynamic oracle — threshold sweep\n";

  const Graph g = make_grid2d(13, 13);
  Table table({"threshold", "failures", "queries", "rebuilds",
               "mean_query_us", "total_rebuild_s", "violations"});
  for (std::size_t threshold : {std::size_t{0}, std::size_t{2}, std::size_t{4},
                                std::size_t{8}, std::size_t{1000}}) {
    RebuildingDynamicOracle oracle(g, SchemeParams::faithful(1.0), threshold);
    Rng rng(2029);
    FaultSet mirror;
    Summary query_us;
    std::size_t failures = 0, queries = 0, violations = 0;
    double rebuild_s = 0;

    for (int step = 0; step < 30; ++step) {
      // One failure event...
      const Vertex v = rng.vertex(g.num_vertices());
      if (!mirror.vertex_faulty(v)) {
        WallTimer t;
        oracle.fail_vertex(v);
        rebuild_s += t.elapsed_seconds();  // ≈ 0 unless a rebuild fired
        mirror.add_vertex(v);
        ++failures;
      }
      // ...then a burst of queries.
      for (int q = 0; q < 20; ++q) {
        const Vertex s = rng.vertex(g.num_vertices());
        const Vertex t = rng.vertex(g.num_vertices());
        WallTimer timer;
        const Dist est = oracle.distance(s, t);
        query_us.add(timer.elapsed_us());
        ++queries;
        const Dist truth = distance_avoiding(g, s, t, mirror);
        if (truth == kInfDist ? est != kInfDist
                              : (est < truth || est > 2 * truth)) {
          ++violations;
        }
      }
    }
    table.row()
        .cell(static_cast<unsigned long long>(threshold))
        .cell(static_cast<unsigned long long>(failures))
        .cell(static_cast<unsigned long long>(queries))
        .cell(static_cast<unsigned long long>(oracle.rebuilds()))
        .cell(query_us.mean(), 1)
        .cell(rebuild_s, 2)
        .cell(static_cast<unsigned long long>(violations));
  }
  emit(table, "E15: query cost vs rebuild cost (expect violations = 0)");
  return 0;
}
