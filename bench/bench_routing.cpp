// E7 — Theorem 2.7: forbidden-set routing with stretch 1+ε.
//
// Simulates packet forwarding on G\F across families and fault counts.
// Paper-predicted shape: 100% delivery, hop stretch <= 1+ε (plus the
// O(ε)-scale final-mile slack of the chain descent, see DESIGN.md),
// per-vertex routing tables within a constant factor of the distance label.
#include "bench/common.hpp"
#include "routing/simulator.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E7 (Theorem 2.7): forbidden-set routing\n";

  Table table({"family", "n", "|F|", "routes", "delivered", "blocked",
               "mean_stretch", "max_stretch", "mean_header_bits"});
  Table sizes({"family", "n", "mean_label_bits", "mean_table_bits",
               "table/label"});
  for (const char* family : {"path", "cycle", "grid", "tree", "roads"}) {
    const Graph g = workload(family);
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    const ForbiddenSetOracle oracle(scheme);
    const auto routing = ForbiddenSetRouting::build(g, scheme);

    const double mean_label =
        scheme.total_bits() / static_cast<double>(g.num_vertices());
    const double mean_table = routing.total_table_bits() /
                              static_cast<double>(g.num_vertices());
    sizes.row()
        .cell(family)
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell(mean_label, 0)
        .cell(mean_table, 0)
        .cell(mean_table / mean_label, 3);

    for (unsigned nf : {0u, 2u, 4u, 8u}) {
      Rng rng(61 + nf);
      Summary stretch, header;
      int routes = 0, delivered = 0, blocked = 0;
      for (int trial = 0; trial < 150; ++trial) {
        const Vertex s = rng.vertex(g.num_vertices());
        const Vertex t = rng.vertex(g.num_vertices());
        if (s == t) continue;
        const FaultSet f = sample_faults(g, rng, s, t, nf, /*edges=*/true);
        const Dist exact = distance_avoiding(g, s, t, f);
        if (exact == kInfDist) continue;
        ++routes;
        const RouteResult rr = route_packet(g, routing, oracle, s, t, f);
        if (rr.delivered) {
          ++delivered;
          stretch.add(static_cast<double>(rr.hops) / exact);
          header.add(static_cast<double>(rr.header_bits));
        } else {
          ++blocked;
        }
      }
      table.row()
          .cell(family)
          .cell(static_cast<unsigned long long>(g.num_vertices()))
          .cell(static_cast<unsigned long long>(nf))
          .cell(static_cast<long long>(routes))
          .cell(static_cast<long long>(delivered))
          .cell(static_cast<long long>(blocked))
          .cell(stretch.empty() ? 0.0 : stretch.mean(), 4)
          .cell(stretch.empty() ? 0.0 : stretch.max(), 4)
          .cell(header.empty() ? 0.0 : header.mean(), 0);
    }
  }
  emit(table, "E7: routing delivery and hop stretch (expect delivered=routes)");
  emit(sizes, "E7b: routing table size vs label size");
  return 0;
}
