// E12 — weighted extension: the scheme over integer-weighted graphs.
//
// Sweeps the max edge weight W on paths and grids, measuring observed
// stretch against weighted ground truth and label size. Expected shape:
// soundness everywhere (0 violations), stretch within 1 + ε + O(W/2^c)
// (the weighted net-snapping slack; the paper proves the unweighted case
// only), label bits growing mildly with W through the extra levels
// (top level = ⌈log₂(weighted diameter)⌉).
#include "bench/common.hpp"
#include "core/weighted.hpp"
#include "graph/wfault.hpp"
#include "graph/wgraph.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E12: weighted extension (library extension, empirical)\n";

  Table table({"family", "n", "W", "levels", "mean_bits", "queries",
               "mean_stretch", "max_stretch", "violations"});
  for (const char* family : {"path", "grid"}) {
    for (Weight max_w : {1u, 2u, 4u, 8u, 16u}) {
      Rng rng(17);
      const Graph base = std::string(family) == "path" ? make_path(220)
                                                       : make_grid2d(12, 12);
      const WeightedGraph g = max_w == 1 ? weighted_from(base)
                                         : weighted_from(base, max_w, rng);
      const auto scheme =
          build_weighted_labeling(g, SchemeParams::faithful(1.0));
      const ForbiddenSetOracle oracle(scheme);

      Summary stretch;
      std::size_t queries = 0, violations = 0;
      for (int trial = 0; trial < 300; ++trial) {
        const Vertex s = rng.vertex(g.num_vertices());
        const Vertex t = rng.vertex(g.num_vertices());
        FaultSet f;
        for (unsigned k = 0; k < 3; ++k) {
          const Vertex x = rng.vertex(g.num_vertices());
          if (x != s && x != t) f.add_vertex(x);
        }
        const Dist exact = weighted_distance_avoiding(g, s, t, f);
        const Dist approx = oracle.distance(s, t, f);
        ++queries;
        if (exact == kInfDist) {
          if (approx != kInfDist) ++violations;
          continue;
        }
        if (approx < exact || approx == kInfDist) {
          ++violations;
          continue;
        }
        if (exact > 0) stretch.add(static_cast<double>(approx) / exact);
      }
      table.row()
          .cell(family)
          .cell(static_cast<unsigned long long>(g.num_vertices()))
          .cell(static_cast<unsigned long long>(max_w))
          .cell(static_cast<unsigned long long>(scheme.top_level() -
                                                scheme.min_level() + 1))
          .cell(scheme.mean_label_bits(), 0)
          .cell(static_cast<unsigned long long>(queries))
          .cell(stretch.empty() ? 1.0 : stretch.mean(), 4)
          .cell(stretch.empty() ? 1.0 : stretch.max(), 4)
          .cell(static_cast<unsigned long long>(violations));
    }
  }
  emit(table, "E12: weighted graphs — stretch and size vs max weight W");
  return 0;
}
