// E14 — amortized queries against a fixed fault set (the router scenario).
//
// A router holds one forbidden set F and answers many (s, t) queries.
// PreparedFaults pays the |F|-quadratic certification work once; each query
// then costs only the two endpoint labels plus Dijkstra. Expected shape:
// per-query latency of the prepared path flattens as |F| grows, while the
// one-shot path keeps its superlinear growth (E5).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

struct Fixture {
  Graph g;
  std::unique_ptr<ForbiddenSetLabeling> scheme;
  std::unique_ptr<ForbiddenSetOracle> oracle;
  std::vector<Vertex> pool;
};

Fixture& fixture() {
  static Fixture f = [] {
    Fixture fx;
    fx.g = make_path(8192);
    fx.scheme = std::make_unique<ForbiddenSetLabeling>(
        ForbiddenSetLabeling::build(fx.g, SchemeParams::compact(1.0, 3)));
    fx.oracle = std::make_unique<ForbiddenSetOracle>(*fx.scheme);
    Rng rng(17);
    fx.pool = rng.sample_distinct(fx.g.num_vertices(), 256);
    return fx;
  }();
  return f;
}

FaultSet make_faults(Fixture& fx, unsigned count, Rng& rng) {
  FaultSet f;
  while (f.size() < count) {
    f.add_vertex(fx.pool[rng.below(fx.pool.size())]);
  }
  return f;
}

void BM_OneShot(benchmark::State& state) {
  Fixture& fx = fixture();
  Rng rng(23);
  const FaultSet f = make_faults(fx, static_cast<unsigned>(state.range(0)), rng);
  for (auto _ : state) {
    const Vertex s = fx.pool[rng.below(fx.pool.size())];
    const Vertex t = fx.pool[rng.below(fx.pool.size())];
    benchmark::DoNotOptimize(fx.oracle->distance(s, t, f));
  }
  state.counters["F"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_OneShot)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_Prepared(benchmark::State& state) {
  Fixture& fx = fixture();
  Rng rng(23);
  const FaultSet f = make_faults(fx, static_cast<unsigned>(state.range(0)), rng);
  const PreparedFaults prepared = fx.oracle->prepare(f);
  for (auto _ : state) {
    const Vertex s = fx.pool[rng.below(fx.pool.size())];
    const Vertex t = fx.pool[rng.below(fx.pool.size())];
    benchmark::DoNotOptimize(
        prepared.query(fx.oracle->label(s), fx.oracle->label(t)).distance);
  }
  state.counters["F"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Prepared)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_PrepareCost(benchmark::State& state) {
  Fixture& fx = fixture();
  Rng rng(23);
  const FaultSet f = make_faults(fx, static_cast<unsigned>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.oracle->prepare(f).num_centers());
  }
  state.counters["F"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PrepareCost)->Arg(4)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
