// E9 — parameter ablation: the label-size / stretch frontier.
//
// The paper's constants are dictated by c(ε) and the r_i radii. This
// experiment sweeps the presets on one α = 2 instance and one α = 1
// instance and reports (mean label bits, observed stretch under faults) per
// configuration — the trade-off DESIGN.md calls out: faithful radii buy the
// worst-case proof at orders-of-magnitude label cost; compact radii keep
// soundness and lose only a little observed stretch.
#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

struct Config {
  std::string name;
  SchemeParams params;
  bool guaranteed;  // worst-case (1+eps) proof applies
};

void sweep(const char* instance_name, const Graph& g,
           const std::vector<Config>& configs, Table& table) {
  for (const auto& cfg : configs) {
    WallTimer timer;
    const auto scheme = ForbiddenSetLabeling::build(g, cfg.params);
    const double build_s = timer.elapsed_seconds();
    const ForbiddenSetOracle oracle(scheme);
    const StretchSample s =
        measure_stretch(g, oracle, /*faults=*/3, /*edges=*/true, 250, 99);
    table.row()
        .cell(instance_name)
        .cell(cfg.name)
        .cell(static_cast<unsigned long long>(cfg.params.c))
        .cell(cfg.guaranteed ? "proved" : "empirical")
        .cell(scheme.mean_label_bits(), 0)
        .cell(static_cast<unsigned long long>(scheme.max_label_bits()))
        .cell(s.stretch.empty() ? 1.0 : s.stretch.mean(), 4)
        .cell(s.stretch.empty() ? 1.0 : s.stretch.max(), 4)
        .cell(static_cast<unsigned long long>(s.violations))
        .cell(build_s, 2);
  }
}

}  // namespace

int main() {
  std::cout << "E9: parameter ablation — label size vs observed stretch\n";

  const std::vector<Config> configs = {
      {"faithful eps=3", SchemeParams::faithful(3.0), true},
      {"faithful eps=1", SchemeParams::faithful(1.0), true},
      {"compact c=4", SchemeParams::compact(1.0, 4), false},
      {"compact c=3", SchemeParams::compact(1.0, 3), false},
      {"compact c=2", SchemeParams::compact(1.0, 2), false},
  };

  Table table({"instance", "config", "c", "guarantee", "mean_bits", "max_bits",
               "mean_stretch", "max_stretch", "violations", "build_s"});
  sweep("grid-14x14", workload("grid"), configs, table);
  sweep("path-1024", make_path(1024), configs, table);
  // Compact-only rows on instances too large for faithful construction.
  const std::vector<Config> compact_only = {
      {"compact c=3", SchemeParams::compact(1.0, 3), false},
      {"compact c=2", SchemeParams::compact(1.0, 2), false},
  };
  sweep("tree-1023", make_balanced_tree(2, 9), compact_only, table);
  sweep("grid-24x24", make_grid2d(24, 24), compact_only, table);
  emit(table, "E9: size/stretch frontier (violations must be 0 everywhere)");

  // Level-cap ablation: the diameter cap only removes degenerate levels.
  // The cap matters on graphs whose diameter is far below n (grids), and is
  // a no-op when diameter ~ n (paths).
  Table cap({"instance", "levels_capped", "levels_paper", "bits_capped",
             "bits_paper"});
  for (const auto& [name, g] :
       std::vector<std::pair<std::string, Graph>>{
           {"grid-14x14", workload("grid")}, {"path-512", make_path(512)}}) {
    BuildOptions paper;
    paper.cap_levels_at_diameter = false;
    const auto capped = ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    const auto full =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0), paper);
    cap.row()
        .cell(name)
        .cell(static_cast<unsigned long long>(capped.top_level() -
                                              capped.min_level() + 1))
        .cell(static_cast<unsigned long long>(full.top_level() -
                                              full.min_level() + 1))
        .cell(capped.mean_label_bits(), 0)
        .cell(full.mean_label_bits(), 0);
  }
  emit(cap, "E9b: diameter level-cap ablation");
  return 0;
}
