// E6 — the §1 byproduct: label-table oracle vs recompute-from-scratch vs
// single-fault sensitivity oracle.
//
// Two comparisons:
//   (1) n = 32768 path: our (1+ε) label oracle vs exact BFS on G\F. The
//       oracle's per-query work depends on |F| and the label size, not on
//       n; BFS grows with n. On laptop-scale instances BFS still wins on
//       raw centralized latency (the scheme's constants are large), but the
//       *data touched per query* — the paper's hand-held-device argument —
//       is (2+|F|) labels for us versus the entire graph for BFS; both
//       numbers are printed below.
//   (2) n = 4096: the same pair plus the single-fault sensitivity oracle,
//       which is exact and fast but supports only |F| = 1 and needs O(n²)
//       space (it cannot exist at the n used in (1) on this machine).
#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/exact_oracle.hpp"
#include "baseline/sensitivity_oracle.hpp"
#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

struct Setup {
  Graph g;
  std::unique_ptr<ForbiddenSetLabeling> scheme;
  std::unique_ptr<ForbiddenSetOracle> ours;
  std::unique_ptr<ExactOracle> bfs;
  std::unique_ptr<SensitivityOracle> sens;  // only in the small setup
  std::vector<Vertex> pool;
};

Setup make_instance(Vertex n, bool with_sensitivity) {
  Setup x;
  x.g = make_path(n);
  x.scheme = std::make_unique<ForbiddenSetLabeling>(
      ForbiddenSetLabeling::build(x.g, SchemeParams::compact(1.0, 2)));
  x.ours = std::make_unique<ForbiddenSetOracle>(*x.scheme);
  x.bfs = std::make_unique<ExactOracle>(x.g);
  if (with_sensitivity) x.sens = std::make_unique<SensitivityOracle>(x.g);
  Rng rng(31);
  x.pool = rng.sample_distinct(x.g.num_vertices(), 256);
  std::cout << "n=" << n << " sizes (bits): labels=" << x.ours->size_bits()
            << " graph=" << x.bfs->size_bits()
            << (x.sens ? " sensitivity=" + std::to_string(x.sens->size_bits())
                       : std::string(" sensitivity=n/a"))
            << "\n";
  const double mean_label = x.scheme->mean_label_bits();
  std::cout << "n=" << n << " bits touched per |F|=1 query: ours="
            << static_cast<std::size_t>(3 * mean_label)
            << " (3 labels)  bfs=" << x.bfs->size_bits()
            << " (whole graph)  ratio="
            << static_cast<double>(x.bfs->size_bits()) / (3 * mean_label)
            << "x\n";
  return x;
}

Setup& big() {
  static Setup s = make_instance(32768, /*with_sensitivity=*/false);
  return s;
}
Setup& small() {
  static Setup s = make_instance(4096, /*with_sensitivity=*/true);
  return s;
}

struct QueryGen {
  Rng rng{41};
  Vertex s = 0, t = 0, f = 0;
  void next(const Setup& x) {
    s = x.pool[rng.below(x.pool.size())];
    do {
      t = x.pool[rng.below(x.pool.size())];
    } while (t == s);
    do {
      f = x.pool[rng.below(x.pool.size())];
    } while (f == s || f == t);
  }
};

template <typename Answer>
void run(benchmark::State& state, Setup& x, Answer&& answer) {
  QueryGen q;
  for (auto _ : state) {
    q.next(x);
    benchmark::DoNotOptimize(answer(x, q));
  }
}

Dist ours_answer(const Setup& x, const QueryGen& q) {
  FaultSet faults;
  faults.add_vertex(q.f);
  return x.ours->distance(q.s, q.t, faults);
}

Dist bfs_answer(const Setup& x, const QueryGen& q) {
  FaultSet faults;
  faults.add_vertex(q.f);
  return x.bfs->distance(q.s, q.t, faults);
}

void BM_LabelOracle_n32768(benchmark::State& state) { run(state, big(), ours_answer); }
void BM_BfsRecompute_n32768(benchmark::State& state) { run(state, big(), bfs_answer); }
void BM_LabelOracle_n4096(benchmark::State& state) { run(state, small(), ours_answer); }
void BM_BfsRecompute_n4096(benchmark::State& state) { run(state, small(), bfs_answer); }
void BM_Sensitivity_n4096(benchmark::State& state) {
  run(state, small(), [](const Setup& x, const QueryGen& q) {
    return x.sens->distance_avoiding_vertex(q.s, q.t, q.f);
  });
}

BENCHMARK(BM_LabelOracle_n32768)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BfsRecompute_n32768)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_LabelOracle_n4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BfsRecompute_n4096)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Sensitivity_n4096)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
