// E21 — scatter-gather router latency: fsdl_router in front of a sharded
// fleet vs. a client talking to one monolithic server directly.
//
// One table: p50/p99/QPS for direct serving and for the router at shard
// counts 1, 2, 4 (one replica per shard, loopback TCP), plus the router's
// label-LRU hit rate. The router pays an extra network hop per *cold*
// label, so its latency premium over direct is bounded by the cache miss
// rate: with a warm working set (the steady state the LRU exists for) the
// decode happens router-side on cached labels and the premium shrinks to
// one hop of framing. p99 at 2 and 4 shards also shows the scatter cost —
// a cold query must wait for its slowest owning shard.
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "shard/router.hpp"
#include "shard/shard_store.hpp"

namespace fsdl::bench {
namespace {

struct LoadResult {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Mixed DIST/BATCH (8:1) against whatever speaks the protocol on `port`;
/// the fault pool is small and recurring, so the prepared caches on both
/// architectures stay warm and the comparison isolates transport + label
/// locality.
LoadResult drive(std::uint16_t port, const Graph& g, unsigned client_threads,
                 unsigned requests, std::uint64_t seed) {
  std::vector<FaultSet> pool(4);
  Rng pool_rng(seed);
  for (auto& f : pool) {
    while (f.size() < 2) f.add_vertex(pool_rng.vertex(g.num_vertices()));
  }

  std::mutex agg_mu;
  Histogram latency(1.25);
  std::uint64_t queries = 0;
  WallTimer wall;
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < client_threads; ++tid) {
    threads.emplace_back([&, tid] {
      Rng rng(seed ^ (0x9E37u + tid));
      server::Client client;
      client.connect("127.0.0.1", port);
      Histogram local(1.25);
      std::uint64_t local_queries = 0;
      for (unsigned r = 0; r < requests; ++r) {
        const FaultSet& faults = pool[rng.below(pool.size())];
        WallTimer timer;
        if (r % 8 == 7) {
          std::vector<std::pair<Vertex, Vertex>> pairs;
          for (int k = 0; k < 8; ++k) {
            pairs.emplace_back(rng.vertex(g.num_vertices()),
                               rng.vertex(g.num_vertices()));
          }
          local_queries += client.batch(pairs, faults).size();
        } else {
          (void)client.dist(rng.vertex(g.num_vertices()),
                            rng.vertex(g.num_vertices()), faults);
          ++local_queries;
        }
        local.add(timer.elapsed_us());
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      queries += local_queries;
      latency.merge(local);
    });
  }
  for (auto& t : threads) t.join();
  const double secs = wall.elapsed_seconds();

  LoadResult out;
  out.qps = secs > 0 ? static_cast<double>(queries) / secs : 0.0;
  out.p50_us = latency.percentile(50);
  out.p99_us = latency.percentile(99);
  return out;
}

}  // namespace
}  // namespace fsdl::bench

int main() {
  using namespace fsdl;
  using namespace fsdl::bench;

  const Graph g = workload("grid");
  const auto scheme =
      ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
  constexpr unsigned kClients = 4;
  constexpr unsigned kRequests = 300;

  std::cout << "E21 | router scatter-gather: grid n=" << g.num_vertices()
            << ", faithful eps=1, loopback TCP, mixed DIST/BATCH (8:1), "
               "|F|=2 warm pool, 1 replica/shard\n"
            << "prediction: router p50 approaches direct once the label LRU "
               "is warm; p99 grows with shard count (cold scatter waits on "
               "the slowest shard)\n\n";

  Table t({"config", "p50_us", "p99_us", "qps", "label_hit"});

  {
    server::ServerOptions options;
    options.workers = 4;
    options.cache_capacity = 64;
    server::Server srv(ForbiddenSetLabeling(scheme), options);
    srv.start();
    const auto r = drive(srv.port(), g, kClients, kRequests, /*seed=*/31);
    srv.stop();
    t.row()
        .cell("direct")
        .cell(r.p50_us, 1)
        .cell(r.p99_us, 1)
        .cell(r.qps, 0)
        .cell("-");
  }

  for (const unsigned shards : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<server::Server>> fleet;
    shard::RouterOptions ropt;
    ropt.transport.workers = 4;
    auto add_server = [&](ForbiddenSetLabeling piece) {
      server::ServerOptions options;
      options.workers = 2;
      fleet.push_back(
          std::make_unique<server::Server>(std::move(piece), options));
      fleet.back()->start();
      ropt.shards.push_back(
          {server::Endpoint{"127.0.0.1", fleet.back()->port()}});
    };
    if (shards == 1) {
      add_server(ForbiddenSetLabeling(scheme));  // unsharded == 1-shard
    } else {
      for (auto& piece : shard::split_labeling(scheme, shards)) {
        add_server(std::move(piece));
      }
    }

    shard::Router router(ropt);
    router.start();
    const auto r =
        drive(router.port(), g, kClients, kRequests, /*seed=*/31 + shards);
    const double hits =
        static_cast<double>(router.metrics().label_cache(true));
    const double misses =
        static_cast<double>(router.metrics().label_cache(false));
    const double hit_rate =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
    router.stop();
    for (auto& s : fleet) s->stop();

    char name[32];
    std::snprintf(name, sizeof name, "router K=%u", shards);
    t.row()
        .cell(name)
        .cell(r.p50_us, 1)
        .cell(r.p99_us, 1)
        .cell(r.qps, 0)
        .cell(hit_rate, 3);
  }

  emit(t, "E21: router vs direct serving (latency, throughput, label LRU)");
  return 0;
}
