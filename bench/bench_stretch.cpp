// E3 — Theorem 2.1 / Lemma 2.4: forbidden-set stretch with faithful
// parameters.
//
// Sweeps families × |F| (vertex and mixed vertex+edge faults) with ε = 1
// and ε = 3 faithful parameters; reports observed stretch against BFS on
// G\F. Paper-predicted shape: max stretch <= 1 + ε, zero soundness
// violations, disconnections detected exactly.
#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E3 (Theorem 2.1): forbidden-set stretch, faithful parameters\n";

  Table table({"family", "n", "eps", "|F|", "faults", "queries", "disconn",
               "mean_stretch", "max_stretch", "bound", "violations"});
  for (const char* family : {"path", "cycle", "grid", "tree", "disk"}) {
    const Graph g = workload(family);
    for (double eps : {3.0, 1.0}) {
      const auto scheme =
          ForbiddenSetLabeling::build(g, SchemeParams::faithful(eps));
      const ForbiddenSetOracle oracle(scheme);
      for (unsigned nf : {0u, 1u, 2u, 4u, 8u}) {
        for (bool edges : {false, true}) {
          if (nf == 0 && edges) continue;
          const StretchSample s =
              measure_stretch(g, oracle, nf, edges, 250, 1234 + nf);
          table.row()
              .cell(family)
              .cell(static_cast<unsigned long long>(g.num_vertices()))
              .cell(eps, 1)
              .cell(static_cast<unsigned long long>(nf))
              .cell(edges ? "mixed" : "vertex")
              .cell(static_cast<unsigned long long>(s.queries))
              .cell(static_cast<unsigned long long>(s.disconnected))
              .cell(s.stretch.empty() ? 1.0 : s.stretch.mean(), 4)
              .cell(s.stretch.empty() ? 1.0 : s.stretch.max(), 4)
              .cell(1.0 + eps, 1)
              .cell(static_cast<unsigned long long>(s.violations));
        }
      }
    }
  }
  emit(table, "E3: forbidden-set stretch (expect max <= bound, violations = 0)");
  return 0;
}
