// E4 — Lemma 2.5: forbidden-set label length.
//
// (a) bits vs n at fixed ε on paths (α = 1), faithful parameters — paper
//     shape: O(log² n) growth, i.e. bits / log²n flattens;
// (b) bits vs ε at fixed n — paper shape: growth like (1+1/ε)^{2α}
//     (via c(ε)); and the α-dependence: the same construction on an α = 2
//     family is orders of magnitude bigger (the 2^{O(α)} constants).
#include <cmath>

#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E4 (Lemma 2.5): label length accounting\n";

  Table by_n({"family", "n", "levels", "mean_bits", "max_bits",
              "bits/log2n^2"});
  for (Vertex n : {128u, 256u, 512u, 1024u, 2048u}) {
    const Graph g = make_path(n);
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    const double l2 = std::log2(static_cast<double>(n));
    by_n.row()
        .cell("path")
        .cell(static_cast<unsigned long long>(n))
        .cell(static_cast<unsigned long long>(scheme.top_level() -
                                              scheme.min_level() + 1))
        .cell(scheme.mean_label_bits(), 0)
        .cell(static_cast<unsigned long long>(scheme.max_label_bits()))
        .cell(scheme.mean_label_bits() / (l2 * l2), 0);
  }
  emit(by_n, "E4a: faithful label bits vs n (paths, eps=1)");

  Table by_eps({"family", "n", "eps", "c", "mean_bits", "max_bits"});
  {
    const Graph g = make_path(512);
    for (double eps : {6.0, 3.0, 1.5, 1.0, 0.5, 0.25}) {
      const auto scheme =
          ForbiddenSetLabeling::build(g, SchemeParams::faithful(eps));
      by_eps.row()
          .cell("path")
          .cell(512ULL)
          .cell(eps, 2)
          .cell(static_cast<unsigned long long>(scheme.params().c))
          .cell(scheme.mean_label_bits(), 0)
          .cell(static_cast<unsigned long long>(scheme.max_label_bits()));
    }
  }
  emit(by_eps, "E4b: faithful label bits vs eps (growth driven by c(eps))");

  Table by_alpha({"family", "alpha", "n", "mean_bits", "max_bits"});
  for (const char* family : {"path", "cycle", "tree", "grid", "king", "disk"}) {
    const Graph g = workload(family);
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    by_alpha.row()
        .cell(family)
        .cell(nominal_alpha(family), 0)
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell(scheme.mean_label_bits(), 0)
        .cell(static_cast<unsigned long long>(scheme.max_label_bits()));
  }
  emit(by_alpha,
       "E4c: faithful label bits across families (the 2^{O(alpha)} factor)");

  Table per_level({"level", "lambda_i", "r_i", "points", "edges",
                   "level_bits(v0)"});
  {
    const Graph g = make_grid2d(14, 14);
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    const VertexLabel label = scheme.label(97);  // interior-ish vertex
    for (unsigned i = label.min_level; i <= label.top_level; ++i) {
      const LevelLabel& ll = label.level(i);
      // Approximate this level's encoded footprint.
      const std::size_t bits =
          ll.points.size() * (8 + 6) + ll.edges.size() * 24;
      per_level.row()
          .cell(static_cast<unsigned long long>(i))
          .cell(static_cast<unsigned long long>(scheme.params().lambda(i)))
          .cell(static_cast<unsigned long long>(scheme.params().r(i)))
          .cell(static_cast<unsigned long long>(ll.points.size()))
          .cell(static_cast<unsigned long long>(ll.edges.size()))
          .cell(static_cast<unsigned long long>(bits));
    }
  }
  emit(per_level, "E4d: per-level label profile (grid 14x14, vertex 97)");

  Table codec({"family", "n", "classic_bits", "delta_bits", "saving"});
  for (const char* family : {"path", "grid", "disk"}) {
    const Graph g = workload(family);
    BuildOptions delta;
    delta.codec = LabelCodec::kDelta;
    const auto classic =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    const auto packed =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0), delta);
    codec.row()
        .cell(family)
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell(classic.mean_label_bits(), 0)
        .cell(packed.mean_label_bits(), 0)
        .cell(1.0 - packed.mean_label_bits() / classic.mean_label_bits(), 3);
  }
  emit(codec, "E4e: label codec ablation (classic fixed-width vs delta)");
  return 0;
}
