// E11 — related-work comparison: Courcelle–Twigg at treewidth 1 vs our
// scheme on trees.
//
// Trees are the one graph class where both approaches apply: the
// treewidth-based scheme is exact with O(log² n) bits, ours is (1+ε) with
// the 2^{O(α)} constants. Expected shape: the tree scheme's labels are
// orders of magnitude smaller and exact; ours pays its constants but
// answers within 1+ε — and, unlike the tree scheme, would keep working on
// any bounded-doubling graph.
#include "baseline/tree_labeling.hpp"
#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E11: tree-exact (Courcelle–Twigg, width 1) vs ours on trees\n";

  struct Instance {
    std::string name;
    Graph g;
  };
  Rng gen(13);
  std::vector<Instance> instances;
  instances.push_back({"path-512", make_path(512)});
  instances.push_back({"binary-tree-511", make_balanced_tree(2, 8)});
  instances.push_back({"caterpillar-200", make_caterpillar(50, 3)});
  {
    GraphBuilder b(400);
    for (Vertex v = 1; v < 400; ++v) b.add_edge(v, gen.vertex(v));
    instances.push_back({"random-tree-400", b.build()});
  }

  Table table({"instance", "n", "scheme", "mean_bits", "max_bits",
               "mean_stretch", "max_stretch", "violations", "exact?"});
  for (auto& inst : instances) {
    const auto tree_scheme = TreeDistanceLabeling::build(inst.g);
    const auto our_scheme =
        ForbiddenSetLabeling::build(inst.g, SchemeParams::faithful(1.0));
    const ForbiddenSetOracle oracle(our_scheme);

    // Shared workload.
    Rng rng(21);
    Summary tree_stretch, our_stretch;
    std::size_t tree_bad = 0, our_bad = 0;
    for (int trial = 0; trial < 400; ++trial) {
      const Vertex s = rng.vertex(inst.g.num_vertices());
      const Vertex t = rng.vertex(inst.g.num_vertices());
      FaultSet f;
      for (unsigned k = 0; k < 2; ++k) {
        const Vertex x = rng.vertex(inst.g.num_vertices());
        if (x != s && x != t) f.add_vertex(x);
      }
      const Dist exact = distance_avoiding(inst.g, s, t, f);
      const Dist a = tree_scheme.distance(s, t, f);
      const Dist b = oracle.distance(s, t, f);
      if (exact == kInfDist) {
        if (a != kInfDist) ++tree_bad;
        if (b != kInfDist) ++our_bad;
        continue;
      }
      if (a != exact) ++tree_bad;  // the tree scheme must be exact
      if (b < exact || b == kInfDist) ++our_bad;
      if (exact > 0) {
        tree_stretch.add(static_cast<double>(a) / exact);
        if (b != kInfDist) our_stretch.add(static_cast<double>(b) / exact);
      }
    }

    std::size_t tree_total = 0;
    for (Vertex v = 0; v < inst.g.num_vertices(); ++v) {
      tree_total += tree_scheme.label_bits(v);
    }
    table.row()
        .cell(inst.name)
        .cell(static_cast<unsigned long long>(inst.g.num_vertices()))
        .cell("tree-exact")
        .cell(tree_total / static_cast<double>(inst.g.num_vertices()), 0)
        .cell(static_cast<unsigned long long>(tree_scheme.max_label_bits()))
        .cell(tree_stretch.empty() ? 1.0 : tree_stretch.mean(), 4)
        .cell(tree_stretch.empty() ? 1.0 : tree_stretch.max(), 4)
        .cell(static_cast<unsigned long long>(tree_bad))
        .cell("yes");
    table.row()
        .cell(inst.name)
        .cell(static_cast<unsigned long long>(inst.g.num_vertices()))
        .cell("fsdl eps=1")
        .cell(our_scheme.mean_label_bits(), 0)
        .cell(static_cast<unsigned long long>(our_scheme.max_label_bits()))
        .cell(our_stretch.empty() ? 1.0 : our_stretch.mean(), 4)
        .cell(our_stretch.empty() ? 1.0 : our_stretch.max(), 4)
        .cell(static_cast<unsigned long long>(our_bad))
        .cell("1+eps");
  }
  emit(table, "E11: exact width-1 labels vs (1+eps) doubling labels on trees");
  return 0;
}
