// E13 — the §1 hub-label connection: exact 2-hop labels (PLL) vs the
// paper's schemes, failure-free.
//
// The paper argues its forbidden-set labels extend hub labeling toward
// failures. This experiment quantifies the price: per-vertex bits of (a)
// exact PLL hub labels, (b) our failure-free (1+ε) labels, (c) our full
// forbidden-set labels — the fault-tolerance premium. Expected shape:
// (a) < (b) << (c), with (a) exact and (b), (c) within 1+ε.
#include "baseline/hub_labeling.hpp"
#include "bench/common.hpp"
#include "core/failure_free.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E13: exact hub labels vs (1+eps) labels vs forbidden-set labels\n";

  Table table({"family", "n", "scheme", "mean_bits", "max_bits", "exact",
               "fault_tolerant"});
  for (const char* family : {"path", "cycle", "grid", "tree", "disk"}) {
    const Graph g = workload(family);
    const HubLabeling hubs = HubLabeling::build(g);
    const auto ff = FailureFreeLabeling::build(g, 1.0);
    const auto fs = ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));

    table.row()
        .cell(family)
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell("hub (PLL)")
        .cell(hubs.total_bits() / static_cast<double>(g.num_vertices()), 0)
        .cell(static_cast<unsigned long long>(
            [&] {
              std::size_t best = 0;
              for (Vertex v = 0; v < g.num_vertices(); ++v) {
                best = std::max(best, hubs.label_bits(v));
              }
              return best;
            }()))
        .cell("yes")
        .cell("no");
    table.row()
        .cell(family)
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell("ff eps=1")
        .cell(ff.total_bits() / static_cast<double>(g.num_vertices()), 0)
        .cell(static_cast<unsigned long long>(ff.max_label_bits()))
        .cell("1+eps")
        .cell("no");
    table.row()
        .cell(family)
        .cell(static_cast<unsigned long long>(g.num_vertices()))
        .cell("fsdl eps=1")
        .cell(fs.mean_label_bits(), 0)
        .cell(static_cast<unsigned long long>(fs.max_label_bits()))
        .cell("1+eps")
        .cell("yes");
  }
  emit(table, "E13: the fault-tolerance premium in label bits");

  // Hub-count scaling: the net-hierarchy ordering keeps hubs logarithmic
  // on paths — the property hub-label practice relies on.
  Table scaling({"n", "mean_hubs", "max_hubs", "mean_bits"});
  for (Vertex n : {256u, 1024u, 4096u, 16384u}) {
    const Graph g = make_path(n);
    const HubLabeling hubs = HubLabeling::build(g);
    scaling.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(hubs.mean_hubs(), 1)
        .cell(static_cast<unsigned long long>(hubs.max_hubs()))
        .cell(hubs.total_bits() / static_cast<double>(n), 0);
  }
  emit(scaling, "E13b: PLL hub counts on paths (expect ~log n growth)");
  return 0;
}
