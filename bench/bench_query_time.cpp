// E5 — Lemma 2.6: query time O((1+1/ε)^{2α} · |F|² · log n).
//
// google-benchmark over |F| on a 8192-vertex path (compact parameters so
// the instance is large enough for timing to be meaningful) and over ε on a
// fixed small instance. Paper-predicted shape: superlinear (≈ quadratic)
// growth in |F|; growth in 1/ε via the per-level ball constants.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench/common.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

struct Fixture {
  Graph g;
  std::unique_ptr<ForbiddenSetLabeling> scheme;
  std::unique_ptr<ForbiddenSetOracle> oracle;
  std::vector<Vertex> pool;  // restrict queries to a pool so the decoded-
                             // label cache stays small
};

Fixture& path_fixture() {
  static Fixture f = [] {
    Fixture fx;
    fx.g = make_path(8192);
    fx.scheme = std::make_unique<ForbiddenSetLabeling>(
        ForbiddenSetLabeling::build(fx.g, SchemeParams::compact(1.0, 3)));
    fx.oracle = std::make_unique<ForbiddenSetOracle>(*fx.scheme);
    Rng rng(17);
    fx.pool = rng.sample_distinct(fx.g.num_vertices(), 256);
    return fx;
  }();
  return f;
}

void BM_QueryVsFaults(benchmark::State& state) {
  Fixture& fx = path_fixture();
  const auto num_faults = static_cast<unsigned>(state.range(0));
  Rng rng(23);
  std::size_t edges_considered = 0, queries = 0;
  for (auto _ : state) {
    const Vertex s = fx.pool[rng.below(fx.pool.size())];
    const Vertex t = fx.pool[rng.below(fx.pool.size())];
    FaultSet f;
    while (f.size() < num_faults) {
      const Vertex x = fx.pool[rng.below(fx.pool.size())];
      if (x != s && x != t) f.add_vertex(x);
    }
    const QueryResult qr = fx.oracle->query(s, t, f);
    benchmark::DoNotOptimize(qr.distance);
    edges_considered += qr.stats.edges_considered;
    ++queries;
  }
  state.counters["edges_considered"] =
      benchmark::Counter(static_cast<double>(edges_considered) / queries);
  state.counters["F"] = static_cast<double>(num_faults);
}
BENCHMARK(BM_QueryVsFaults)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

Fixture& eps_fixture(double eps) {
  static std::map<int, std::unique_ptr<Fixture>> cache;
  const int key = static_cast<int>(eps * 10);
  auto& slot = cache[key];
  if (!slot) {
    slot = std::make_unique<Fixture>();
    // A path long enough that the c(ε)-driven ball constants differ
    // across ε instead of saturating at the graph diameter.
    slot->g = make_path(1024);
    slot->scheme = std::make_unique<ForbiddenSetLabeling>(
        ForbiddenSetLabeling::build(slot->g, SchemeParams::faithful(eps)));
    slot->oracle = std::make_unique<ForbiddenSetOracle>(*slot->scheme);
  }
  return *slot;
}

void BM_QueryVsEpsilon(benchmark::State& state) {
  // Faithful parameters; ε drives the per-level constants via c(ε).
  const double eps = static_cast<double>(state.range(0)) / 10.0;
  Fixture& fx = eps_fixture(eps);
  const Graph& g = fx.g;
  const ForbiddenSetOracle& oracle = *fx.oracle;
  Rng rng(29);
  for (auto _ : state) {
    const Vertex s = rng.vertex(g.num_vertices());
    const Vertex t = rng.vertex(g.num_vertices());
    FaultSet f;
    for (int k = 0; k < 4; ++k) {
      const Vertex x = rng.vertex(g.num_vertices());
      if (x != s && x != t) f.add_vertex(x);
    }
    benchmark::DoNotOptimize(oracle.distance(s, t, f));
  }
  state.counters["eps"] = eps;
}
BENCHMARK(BM_QueryVsEpsilon)->Arg(30)->Arg(10)->Arg(5)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
