// E22 — distributed-tracing overhead at the router tier: what does the
// trace-context wire extension cost a scatter-gather fleet, and what does
// actually recording + flushing spans cost on top?
//
// A 2-shard fleet (1 replica each, loopback TCP) behind fsdl_router, the
// same mixed DIST/BATCH workload three times:
//
//   no-ctx       requests without the extension — the PR 2 baseline; the
//                33-byte block is absent and must cost nothing.
//   ctx/unsampled every request carries a trace context with sampled=0:
//                the wire pays the block and every hop propagates it, but
//                no spans are recorded (the steady state at low sample
//                rates — this is the row that must stay ~free).
//   ctx/sampled  sampled=1 on every request with event logs open: every
//                hop buffers spans and flushes JSON lines (the worst case;
//                production samples a few percent).
//
// In FSDL_TRACE=OFF builds the event log cannot open and the recorder is
// compiled out; the sampled row then measures only the wire + propagation
// cost, which the table notes.
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"
#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "shard/router.hpp"
#include "shard/shard_store.hpp"

namespace fsdl::bench {
namespace {

enum class TraceMode { kNone, kUnsampled, kSampled };

struct LoadResult {
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Mixed DIST/BATCH (8:1) against the router on `port`; identical to the
/// E21 driver except every request optionally carries a trace context.
LoadResult drive(std::uint16_t port, const Graph& g, unsigned client_threads,
                 unsigned requests, std::uint64_t seed, TraceMode mode) {
  std::vector<FaultSet> pool(4);
  Rng pool_rng(seed);
  for (auto& f : pool) {
    while (f.size() < 2) f.add_vertex(pool_rng.vertex(g.num_vertices()));
  }

  std::mutex agg_mu;
  Histogram latency(1.25);
  std::uint64_t queries = 0;
  WallTimer wall;
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < client_threads; ++tid) {
    threads.emplace_back([&, tid] {
      Rng rng(seed ^ (0x9E37u + tid));
      server::Client client;
      client.connect("127.0.0.1", port);
      Histogram local(1.25);
      std::uint64_t local_queries = 0;
      for (unsigned r = 0; r < requests; ++r) {
        const FaultSet& faults = pool[rng.below(pool.size())];
        server::TraceContext ctx;
        if (mode != TraceMode::kNone) {
          ctx.present = true;
          do { ctx.trace_hi = rng.next(); } while (ctx.trace_hi == 0);
          do { ctx.trace_lo = rng.next(); } while (ctx.trace_lo == 0);
          do { ctx.parent_span = rng.next(); } while (ctx.parent_span == 0);
          if (mode == TraceMode::kSampled) {
            ctx.flags |= server::TraceContext::kSampledFlag;
          }
          ctx.deadline_us = 2'000'000;
        }
        WallTimer timer;
        if (r % 8 == 7) {
          std::vector<std::pair<Vertex, Vertex>> pairs;
          for (int k = 0; k < 8; ++k) {
            pairs.emplace_back(rng.vertex(g.num_vertices()),
                               rng.vertex(g.num_vertices()));
          }
          local_queries += client.batch(pairs, faults, ctx).size();
        } else {
          (void)client.dist(rng.vertex(g.num_vertices()),
                            rng.vertex(g.num_vertices()), faults, ctx);
          ++local_queries;
        }
        local.add(timer.elapsed_us());
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      queries += local_queries;
      latency.merge(local);
    });
  }
  for (auto& t : threads) t.join();
  const double secs = wall.elapsed_seconds();

  LoadResult out;
  out.qps = secs > 0 ? static_cast<double>(queries) / secs : 0.0;
  out.p50_us = latency.percentile(50);
  out.p99_us = latency.percentile(99);
  return out;
}

}  // namespace
}  // namespace fsdl::bench

int main() {
  using namespace fsdl;
  using namespace fsdl::bench;

  const Graph g = workload("grid");
  const auto scheme =
      ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
  constexpr unsigned kClients = 4;
  constexpr unsigned kRequests = 300;
  constexpr unsigned kShards = 2;

  const std::string event_log = "bench_fleet_trace_events.jsonl";
  const bool recording = obs::open_event_log(event_log, "router");

  std::cout << "E22 | trace overhead at the router tier: grid n="
            << g.num_vertices()
            << ", faithful eps=1, 2 shards x 1 replica, loopback TCP, "
               "mixed DIST/BATCH (8:1), |F|=2 warm pool\n"
            << "prediction: the 33-byte extension is noise on loopback "
               "(unsampled row ~= no-ctx row); always-on sampling pays "
               "JSON formatting + a locked fwrite per hop\n"
            << (recording
                    ? ""
                    : "note: FSDL_TRACE=OFF build — the sampled row pays "
                      "only wire + propagation, no span recording\n")
            << "\n";

  Table t({"config", "p50_us", "p99_us", "qps"});

  std::vector<std::unique_ptr<server::Server>> fleet;
  shard::RouterOptions ropt;
  ropt.transport.workers = 4;
  for (auto& piece : shard::split_labeling(scheme, kShards)) {
    server::ServerOptions options;
    options.workers = 2;
    fleet.push_back(
        std::make_unique<server::Server>(std::move(piece), options));
    fleet.back()->start();
    ropt.shards.push_back(
        {server::Endpoint{"127.0.0.1", fleet.back()->port()}});
  }
  shard::Router router(ropt);
  router.start();

  // Warm the router's label LRU and the fleet's prepared caches so the
  // first measured row does not pay cold misses the later rows skip.
  (void)drive(router.port(), g, kClients, kRequests / 2, /*seed=*/46,
              TraceMode::kNone);

  const struct { const char* name; TraceMode mode; } rows[] = {
      {"no-ctx", TraceMode::kNone},
      {"ctx/unsampled", TraceMode::kUnsampled},
      {"ctx/sampled", TraceMode::kSampled},
  };
  std::uint64_t seed = 47;
  for (const auto& row : rows) {
    const auto r = drive(router.port(), g, kClients, kRequests, seed++,
                         row.mode);
    t.row().cell(row.name).cell(r.p50_us, 1).cell(r.p99_us, 1).cell(r.qps, 0);
  }

  router.stop();
  for (auto& s : fleet) s->stop();
  if (recording) {
    obs::close_event_log();
    std::remove(event_log.c_str());
  }

  emit(t, "E22: trace-context + span-recording overhead behind the router");
  return 0;
}
