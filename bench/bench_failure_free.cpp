// E2 — §2.1 warm-up: failure-free (1+ε) distance labeling.
//
// Sweeps families × ε, measuring observed stretch against BFS ground truth
// and the label length in bits. Paper-predicted shape: observed stretch
// <= 1 + ε everywhere, label bits growing with 1/ε (as (1+1/ε)^α) and with
// log² n in n.
#include <cmath>

#include "baseline/apsp_oracle.hpp"
#include "bench/common.hpp"
#include "core/failure_free.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E2 (warm-up scheme): stretch <= 1+ε and label bits vs ε\n";

  Table table({"family", "n", "eps", "c", "mean_label_bits", "max_label_bits",
               "mean_stretch", "max_stretch", "bound", "ok"});
  for (const char* family : {"path", "cycle", "grid", "tree", "disk"}) {
    const Graph g = workload(family);
    const ApspOracle exact(g);
    for (double eps : {2.0, 1.0, 0.5, 0.25}) {
      const auto scheme = FailureFreeLabeling::build(g, eps);
      Summary stretch;
      Rng rng(5);
      for (int k = 0; k < 4000; ++k) {
        const Vertex s = rng.vertex(g.num_vertices());
        const Vertex t = rng.vertex(g.num_vertices());
        const Dist d = exact.distance(s, t);
        if (d == 0 || d == kInfDist) continue;
        const Dist est = scheme.distance(s, t);
        stretch.add(static_cast<double>(est) / d);
      }
      table.row()
          .cell(family)
          .cell(static_cast<unsigned long long>(g.num_vertices()))
          .cell(eps, 2)
          .cell(static_cast<unsigned long long>(scheme.c()))
          .cell(scheme.total_bits() / static_cast<double>(g.num_vertices()), 0)
          .cell(static_cast<unsigned long long>(scheme.max_label_bits()))
          .cell(stretch.mean(), 4)
          .cell(stretch.max(), 4)
          .cell(1.0 + eps, 2)
          .cell(stretch.max() <= 1.0 + eps + 1e-9 ? "yes" : "NO");
    }
  }
  emit(table, "E2: failure-free labeling, stretch and label size vs eps");

  // Size scaling in n on one family (path: faithful construction feasible
  // far beyond the α=2 workloads).
  Table growth({"n", "log2n^2", "mean_label_bits", "bits/log2n^2"});
  for (Vertex n : {256u, 512u, 1024u, 2048u, 4096u}) {
    const Graph g = make_path(n);
    const auto scheme = FailureFreeLabeling::build(g, 1.0);
    const double l2 = std::log2(static_cast<double>(n));
    const double mean =
        scheme.total_bits() / static_cast<double>(g.num_vertices());
    growth.row()
        .cell(static_cast<unsigned long long>(n))
        .cell(l2 * l2, 1)
        .cell(mean, 0)
        .cell(mean / (l2 * l2), 1);
  }
  emit(growth, "E2b: label bits vs n on paths (paper: O(log^2 n) shape)");
  return 0;
}
