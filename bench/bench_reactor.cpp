// E23 — the epoll reactor data plane vs the historical
// thread-per-connection plane.
//
// Three tables:
//  1. Idle-connection capacity: open C quiet connections, then probe with
//     32 DIST round-trips (2 s deadline each). The thread-per-connection
//     plane parks one pool job per *connection*, so a handful of idlers
//     starve the worker pool and probes time out; the reactor holds an
//     idle connection for one fd + ~half a KB and keeps serving at 1k,
//     10k, 50k idlers.
//  2. Flash crowd: 64 clients fire the *same* fault set at a cold cache
//     simultaneously. Without coalescing every concurrently scheduled
//     worker pays the prepare (misses ≈ concurrency); the reactor's
//     leader/follower batching funnels the crowd through one prepare
//     (misses ≈ 1 per key).
//  3. Low-concurrency sanity: 2 closed-loop clients, warm cache — the
//     reactor's event loop and batching window must not tax the common
//     case (leaders never wait on the window).
//
// The idle connections' *client* ends live in forked child processes
// (which touch nothing but syscalls after fork), so the parent's
// RLIMIT_NOFILE budget is spent only on the server-side fds — one per
// connection. The limit is raised as far as the kernel allows at startup
// and the requested connection counts are clamped (and reported) to what
// the resulting budget can hold.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace fsdl::bench {
namespace {

const char* plane_name(server::DataPlane p) {
  return p == server::DataPlane::kEpollReactor ? "reactor" : "thread";
}

/// Raise RLIMIT_NOFILE as far as the kernel allows; return the resulting
/// soft limit.
std::size_t raise_fd_limit() {
  rlimit want{};
  want.rlim_cur = 1u << 20;
  want.rlim_max = 1u << 20;
  if (::setrlimit(RLIMIT_NOFILE, &want) != 0) {
    rlimit have{};
    ::getrlimit(RLIMIT_NOFILE, &have);
    have.rlim_cur = have.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &have);
    ::getrlimit(RLIMIT_NOFILE, &have);
    return static_cast<std::size_t>(have.rlim_cur);
  }
  return static_cast<std::size_t>(want.rlim_cur);
}

int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct IdleResult {
  std::size_t opened = 0;
  double open_s = 0;
  unsigned probes_ok = 0;
  unsigned probes_total = 0;
  double probe_p50_us = 0;
  double probe_p99_us = 0;
};

/// One forked holder of `share` idle client-end connections. All holders
/// are forked while the parent still has a handful of fds (the inherited
/// set must not eat the child's own budget), wait for the `go` pipe's
/// EOF broadcast, connect, report how many stuck (4 bytes on `report_fd`)
/// and block on `hold_fd` until its EOF. Post-fork the child only makes
/// syscalls, so forking from a threaded parent is safe.
pid_t spawn_idle_holder(std::uint16_t port, std::size_t share, int go[2],
                        int report[2], int hold[2]) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  ::close(go[1]);
  ::close(report[0]);
  ::close(hold[1]);
  char byte;
  (void)!::read(go[0], &byte, 1);  // EOF once every sibling exists
  std::uint32_t opened = 0;
  for (std::size_t k = 0; k < share; ++k) {
    if (raw_connect(port) < 0) break;  // fds stay open until _exit
    ++opened;
  }
  (void)!::write(report[1], &opened, sizeof opened);
  (void)!::read(hold[0], &byte, 1);  // EOF when the parent is done
  ::_exit(0);
}

/// Open `conns` idle connections against a fresh server on `plane`, then
/// measure whether 32 DIST probes still get through. Probing stops after 3
/// consecutive failures — on a starved plane every probe costs its full
/// 2 s deadline, and three in a row already *is* the result.
IdleResult idle_capacity(const ForbiddenSetLabeling& scheme,
                         server::DataPlane plane, std::size_t conns) {
  server::ServerOptions options;
  options.workers = 4;
  options.data_plane = plane;
  options.listen_backlog = 4096;
  server::Server srv(ForbiddenSetLabeling(scheme), options);
  srv.start();

  // Client ends live in children (~15k per child leaves headroom under
  // their inherited fd limit); the parent pays one server-end fd per
  // accepted connection.
  constexpr std::size_t kPerChild = 15000;
  int go[2], report[2], hold[2];
  if (::pipe(go) != 0 || ::pipe(report) != 0 || ::pipe(hold) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  IdleResult out;
  std::vector<pid_t> children;
  for (std::size_t remaining = conns; remaining > 0;) {
    const std::size_t share = remaining < kPerChild ? remaining : kPerChild;
    const pid_t pid = spawn_idle_holder(srv.port(), share, go, report, hold);
    if (pid < 0) {
      std::perror("fork");
      break;
    }
    children.push_back(pid);
    remaining -= share;
  }
  WallTimer open_timer;
  ::close(go[0]);
  ::close(go[1]);  // EOF broadcast: all holders connect at once
  for (std::size_t k = 0; k < children.size(); ++k) {
    std::uint32_t opened = 0;
    if (::read(report[0], &opened, sizeof opened) == sizeof opened) {
      out.opened += opened;
    }
  }
  out.open_s = open_timer.elapsed_seconds();

  server::ClientOptions copt;
  copt.connect_timeout_ms = 2000;
  copt.recv_timeout_ms = 2000;
  copt.send_timeout_ms = 2000;
  Histogram latency(1.25);
  out.probes_total = 32;
  unsigned consecutive_failures = 0;
  for (unsigned k = 0; k < out.probes_total; ++k) {
    try {
      server::Client probe(copt);
      probe.connect("127.0.0.1", srv.port());
      WallTimer timer;
      (void)probe.dist(0, 1, FaultSet{});
      latency.add(timer.elapsed_us());
      ++out.probes_ok;
      consecutive_failures = 0;
    } catch (const std::exception&) {
      if (++consecutive_failures >= 3) break;
    }
  }
  if (!latency.empty()) {
    out.probe_p50_us = latency.percentile(50);
    out.probe_p99_us = latency.percentile(99);
  }

  ::close(hold[1]);  // EOF -> children drop their connections and exit
  ::close(hold[0]);
  ::close(report[0]);
  ::close(report[1]);
  for (pid_t pid : children) ::waitpid(pid, nullptr, 0);
  srv.stop();
  return out;
}

struct CrowdResult {
  std::uint64_t prepare_misses = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batch_groups = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// 64 clients, one shared (cold) fault set, released together: how many
/// times does the server pay the prepare?
CrowdResult flash_crowd(const ForbiddenSetLabeling& scheme, const Graph& g,
                        server::DataPlane plane, unsigned batch_window_us) {
  constexpr unsigned kClients = 64;
  server::ServerOptions options;
  options.workers = kClients;  // admission never throttles the crowd
  options.data_plane = plane;
  options.batch_window_us = batch_window_us;
  server::Server srv(ForbiddenSetLabeling(scheme), options);
  srv.start();

  FaultSet faults = [&] {
    Rng rng(0xF1A5);
    FaultSet f;
    while (f.size() < 8) f.add_vertex(rng.vertex(g.num_vertices()));
    return f;
  }();

  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  std::mutex agg_mu;
  Histogram latency(1.25);
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kClients; ++tid) {
    threads.emplace_back([&, tid] {
      Rng rng(0xBEEF + tid);
      server::Client client;
      client.connect("127.0.0.1", srv.port());
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      WallTimer timer;
      (void)client.dist(rng.vertex(g.num_vertices()),
                        rng.vertex(g.num_vertices()), faults);
      const double us = timer.elapsed_us();
      std::lock_guard<std::mutex> lock(agg_mu);
      latency.add(us);
    });
  }
  while (ready.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  CrowdResult out;
  const auto cache = srv.cache_stats();
  out.prepare_misses = cache.misses;
  out.cache_hits = cache.hits;
  out.batch_groups = srv.metrics().batch_groups();
  out.p50_us = latency.percentile(50);
  out.p99_us = latency.percentile(99);
  srv.stop();
  return out;
}

struct LowResult {
  double p50_us = 0;
  double p99_us = 0;
  double qps = 0;
};

/// 2 closed-loop clients over a warm fault pool: the no-contention path.
LowResult low_concurrency(const ForbiddenSetLabeling& scheme, const Graph& g,
                          server::DataPlane plane) {
  server::ServerOptions options;
  options.workers = 4;
  options.data_plane = plane;
  server::Server srv(ForbiddenSetLabeling(scheme), options);
  srv.start();

  std::vector<FaultSet> pool(4);
  Rng pool_rng(0x5EED);
  for (auto& f : pool) {
    while (f.size() < 2) f.add_vertex(pool_rng.vertex(g.num_vertices()));
  }

  constexpr unsigned kClients = 2;
  constexpr unsigned kRequests = 1500;
  std::mutex agg_mu;
  Histogram latency(1.25);
  std::uint64_t queries = 0;
  WallTimer wall;
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < kClients; ++tid) {
    threads.emplace_back([&, tid] {
      Rng rng(0xAB1E + tid);
      server::Client client;
      client.connect("127.0.0.1", srv.port());
      Histogram local(1.25);
      for (unsigned r = 0; r < kRequests; ++r) {
        const FaultSet& faults = pool[rng.below(pool.size())];
        WallTimer timer;
        (void)client.dist(rng.vertex(g.num_vertices()),
                          rng.vertex(g.num_vertices()), faults);
        local.add(timer.elapsed_us());
      }
      std::lock_guard<std::mutex> lock(agg_mu);
      queries += kRequests;
      latency.merge(local);
    });
  }
  for (auto& t : threads) t.join();
  const double secs = wall.elapsed_seconds();

  LowResult out;
  out.p50_us = latency.percentile(50);
  out.p99_us = latency.percentile(99);
  out.qps = secs > 0 ? static_cast<double>(queries) / secs : 0.0;
  srv.stop();
  return out;
}

}  // namespace
}  // namespace fsdl::bench

int main() {
  using namespace fsdl;
  using namespace fsdl::bench;

  const std::size_t fd_limit = raise_fd_limit();
  const Graph g = workload("grid");
  const auto scheme =
      ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));

  std::cout << "E23 | reactor data plane: grid n=" << g.num_vertices()
            << ", faithful eps=1, loopback TCP, fd limit " << fd_limit
            << "\nprediction: the reactor's per-connection cost is one fd + "
               "buffers, so idle capacity is fd-bound, not thread-bound; "
               "flash crowds collapse to ~1 prepare per key; the event loop "
               "adds no latency at low concurrency\n\n";

  // --- 1. idle-connection capacity ---------------------------------------
  // Client ends live in forked holders, so the parent's budget is one
  // server-end fd per connection; leave headroom for the server's own fds
  // and clamp honestly. (This container pins RLIMIT_NOFILE at 20000 with
  // CAP_SYS_RESOURCE dropped, so the 50k point clamps to ~19k here.)
  const std::size_t conn_budget = fd_limit > 600 ? fd_limit - 600 : 0;
  Table idle({"plane", "conns", "opened", "open_s", "probes_ok", "probe_p50_us",
              "probe_p99_us"});
  struct Point {
    server::DataPlane plane;
    std::size_t conns;
  };
  const std::vector<Point> points = {
      {server::DataPlane::kThreadPerConnection, 1000},
      {server::DataPlane::kThreadPerConnection, 10000},
      {server::DataPlane::kEpollReactor, 1000},
      {server::DataPlane::kEpollReactor, 10000},
      {server::DataPlane::kEpollReactor, 50000},
  };
  for (const auto& pt : points) {
    std::size_t conns = pt.conns;
    if (conns > conn_budget) {
      std::printf("clamping %zu idle conns to fd budget %zu\n", conns,
                  conn_budget);
      conns = conn_budget;
    }
    const auto r = idle_capacity(scheme, pt.plane, conns);
    char ok[16];
    std::snprintf(ok, sizeof ok, "%u/%u", r.probes_ok, r.probes_total);
    idle.row()
        .cell(plane_name(pt.plane))
        .cell(static_cast<double>(pt.conns), 0)
        .cell(static_cast<double>(r.opened), 0)
        .cell(r.open_s, 2)
        .cell(ok)
        .cell(r.probe_p50_us, 1)
        .cell(r.probe_p99_us, 1);
  }
  emit(idle, "E23a: idle-connection capacity (32 DIST probes, 2s deadline)");

  // --- 2. flash crowd ----------------------------------------------------
  Table crowd({"config", "prepares", "cache_hits", "batch_groups", "p50_us",
               "p99_us"});
  struct CrowdCfg {
    const char* name;
    server::DataPlane plane;
    unsigned window_us;
  };
  const std::vector<CrowdCfg> cfgs = {
      {"thread", server::DataPlane::kThreadPerConnection, 0},
      {"reactor w=0", server::DataPlane::kEpollReactor, 0},
      {"reactor w=100us", server::DataPlane::kEpollReactor, 100},
      {"reactor w=1ms", server::DataPlane::kEpollReactor, 1000},
  };
  for (const auto& cfg : cfgs) {
    const auto r = flash_crowd(scheme, g, cfg.plane, cfg.window_us);
    crowd.row()
        .cell(cfg.name)
        .cell(static_cast<double>(r.prepare_misses), 0)
        .cell(static_cast<double>(r.cache_hits), 0)
        .cell(static_cast<double>(r.batch_groups), 0)
        .cell(r.p50_us, 1)
        .cell(r.p99_us, 1);
  }
  emit(crowd, "E23b: flash crowd (64 clients, one cold fault-set key)");

  // --- 3. low-concurrency sanity -----------------------------------------
  Table low({"plane", "p50_us", "p99_us", "qps"});
  for (const auto plane : {server::DataPlane::kThreadPerConnection,
                           server::DataPlane::kEpollReactor}) {
    const auto r = low_concurrency(scheme, g, plane);
    low.row()
        .cell(plane_name(plane))
        .cell(r.p50_us, 1)
        .cell(r.p99_us, 1)
        .cell(r.qps, 0);
  }
  emit(low, "E23c: low-concurrency latency (2 closed-loop clients)");
  return 0;
}
