// E10 — preprocessing cost: "all labels can be computed in polynomial time".
//
// Measures wall-clock label construction across n per family, one build per
// configuration. Paper-predicted shape: near-linear growth in n·log n for
// fixed α and ε (each level costs one truncated BFS per net point).
//
// E18 — thread-scaling mode (`--threads [LIST]`): sweeps
// BuildOptions::threads over 1, 2, 4, …, hardware concurrency (or an
// explicit comma-separated LIST) on a 10^4-vertex grid (`--grid S` for an
// SxS grid instead) and emits one JSON line per configuration with the
// wall time, speedup over the serial build, and a bit-identity check of
// the produced labels against the serial run. Exits non-zero on any
// identity mismatch, so the sweep doubles as a determinism gate in
// scripts.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "bench/common.hpp"
#include "core/failure_free.hpp"
#include "core/serialize.hpp"
#include "util/parallel.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

void BM_BuildPathCompact(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = make_path(n);
  for (auto _ : state) {
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::compact(1.0, 2));
    benchmark::DoNotOptimize(scheme.total_bits());
    state.counters["mean_label_bits"] = scheme.mean_label_bits();
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_BuildPathCompact)
    ->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BuildPathFaithful(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = make_path(n);
  for (auto _ : state) {
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    benchmark::DoNotOptimize(scheme.total_bits());
    state.counters["mean_label_bits"] = scheme.mean_label_bits();
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_BuildPathFaithful)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BuildDiskCompact(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(5);
  const Graph g = largest_component_subgraph(
      make_unit_disk(n, 0.09 * std::sqrt(800.0 / n) + 0.02, rng));
  for (auto _ : state) {
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::compact(1.0, 2));
    benchmark::DoNotOptimize(scheme.total_bits());
    state.counters["mean_label_bits"] = scheme.mean_label_bits();
  }
  state.counters["n_actual"] = g.num_vertices();
}
BENCHMARK(BM_BuildDiskCompact)
    ->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BuildFailureFree(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = make_path(n);
  for (auto _ : state) {
    const auto scheme = FailureFreeLabeling::build(g, 1.0);
    benchmark::DoNotOptimize(scheme.total_bits());
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_BuildFailureFree)
    ->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

/// The E18 sweep. Compact parameters keep the 10^4-vertex grid build in
/// the seconds range; the speedup shape is the same as faithful's because
/// both spend their time in the identical per-net-point BFS fan-out.
int run_threads_sweep(const std::vector<unsigned>& requested, unsigned side) {
  const Graph g = make_grid2d(side, side);
  const SchemeParams params = SchemeParams::compact(1.0, 2);

  std::vector<unsigned> sweep = requested;
  if (sweep.empty()) {
    const unsigned hw = resolve_threads(0);
    for (unsigned t = 1; t < hw; t <<= 1) sweep.push_back(t);
    sweep.push_back(hw);
  }

  const auto serialized = [&](unsigned threads) {
    BuildOptions options;
    options.threads = threads;
    const WallTimer timer;
    const auto scheme = ForbiddenSetLabeling::build(g, params, options);
    std::ostringstream out;
    save_labeling(scheme, out);
    return std::make_tuple(timer.elapsed_seconds(), scheme.total_bits(),
                           out.str());
  };

  const auto [serial_s, serial_bits, serial_blob] = serialized(1);
  bool all_identical = true;
  for (const unsigned t : sweep) {
    const auto [build_s, bits, blob] = serialized(t);
    const bool identical = blob == serial_blob && bits == serial_bits;
    all_identical = all_identical && identical;
    std::printf(
        "{\"bench\":\"construction_threads\",\"graph\":\"grid%ux%u\","
        "\"n\":%u,\"threads\":%u,\"build_s\":%.3f,\"speedup_vs_1\":%.2f,"
        "\"total_bits\":%zu,\"identical_to_serial\":%s}\n",
        side, side, g.num_vertices(), t, build_s, serial_s / build_s, bits,
        identical ? "true" : "false");
    std::fflush(stdout);
  }
  return all_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = false;
  std::vector<unsigned> list;
  unsigned side = 100;  // 10^4-vertex grid by default
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--threads") == 0) {
      sweep = true;
      if (k + 1 < argc && argv[k + 1][0] != '-') {
        std::stringstream ss(argv[++k]);
        for (std::string item; std::getline(ss, item, ',');) {
          const long v = std::strtol(item.c_str(), nullptr, 10);
          if (v > 0) list.push_back(static_cast<unsigned>(v));
        }
      }
    } else if (std::strcmp(argv[k], "--grid") == 0 && k + 1 < argc) {
      side = static_cast<unsigned>(std::strtol(argv[++k], nullptr, 10));
    }
  }
  if (sweep) return run_threads_sweep(list, side);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
