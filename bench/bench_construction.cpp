// E10 — preprocessing cost: "all labels can be computed in polynomial time".
//
// Measures wall-clock label construction across n per family, one build per
// configuration. Paper-predicted shape: near-linear growth in n·log n for
// fixed α and ε (each level costs one truncated BFS per net point).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/common.hpp"
#include "core/failure_free.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

void BM_BuildPathCompact(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = make_path(n);
  for (auto _ : state) {
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::compact(1.0, 2));
    benchmark::DoNotOptimize(scheme.total_bits());
    state.counters["mean_label_bits"] = scheme.mean_label_bits();
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_BuildPathCompact)
    ->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BuildPathFaithful(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = make_path(n);
  for (auto _ : state) {
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
    benchmark::DoNotOptimize(scheme.total_bits());
    state.counters["mean_label_bits"] = scheme.mean_label_bits();
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_BuildPathFaithful)
    ->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BuildDiskCompact(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(5);
  const Graph g = largest_component_subgraph(
      make_unit_disk(n, 0.09 * std::sqrt(800.0 / n) + 0.02, rng));
  for (auto _ : state) {
    const auto scheme =
        ForbiddenSetLabeling::build(g, SchemeParams::compact(1.0, 2));
    benchmark::DoNotOptimize(scheme.total_bits());
    state.counters["mean_label_bits"] = scheme.mean_label_bits();
  }
  state.counters["n_actual"] = g.num_vertices();
}
BENCHMARK(BM_BuildDiskCompact)
    ->Arg(200)->Arg(400)->Arg(800)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_BuildFailureFree(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = make_path(n);
  for (auto _ : state) {
    const auto scheme = FailureFreeLabeling::build(g, 1.0);
    benchmark::DoNotOptimize(scheme.total_bits());
  }
  state.counters["n"] = n;
}
BENCHMARK(BM_BuildFailureFree)
    ->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
