// E17 — observability overhead: what does the tracer cost the hot path?
//
// The obs layer promises (DESIGN.md §Instrumentation): compiled out by
// default (zero cost, no symbols), and when compiled in (-DFSDL_TRACE=ON)
// the counters-only level stays under 5% throughput overhead because
// instrumentation batches one count() per stage, never one per edge.
//
// This bench measures the same PreparedFaults query workload at the three
// runtime levels (off / counters / spans) and reports throughput plus
// overhead relative to the off row. In a default build set_level() is a
// no-op, so all rows measure the identical uninstrumented binary — the
// table then documents the baseline rather than an overhead.
#include <algorithm>

#include "bench/common.hpp"
#include "core/decoder.hpp"
#include "obs/trace.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

struct Workload {
  const ForbiddenSetOracle& oracle;
  std::vector<PreparedFaults> pool;
  std::vector<std::pair<Vertex, Vertex>> pairs;
};

double run_queries(const Workload& w) {
  WallTimer timer;
  Dist sink = 0;
  for (std::size_t k = 0; k < w.pairs.size(); ++k) {
    const auto& prepared = w.pool[k % w.pool.size()];
    const auto [s, t] = w.pairs[k];
    sink ^= prepared.query(w.oracle.label(s), w.oracle.label(t)).distance;
  }
  const double us = timer.elapsed_us();
  // Keep the accumulated distances observable so the loop cannot fold.
  if (sink == 0xDEADBEEF) std::cout << "";
  return us;
}

}  // namespace

int main() {
  std::cout << "E17 — tracer overhead at runtime levels off/counters/spans\n";
#if FSDL_TRACE_ENABLED
  std::cout << "build: FSDL_TRACE=ON (levels take effect)\n";
#else
  std::cout << "build: FSDL_TRACE=OFF (obs compiled out; rows are the "
               "identical baseline)\n";
#endif

  const Graph g = make_grid2d(24, 24);
  const auto scheme =
      ForbiddenSetLabeling::build(g, SchemeParams::compact(1.0));
  const ForbiddenSetOracle oracle(scheme);
  oracle.warm();

  Rng rng(41);
  Workload w{oracle, {}, {}};
  for (int k = 0; k < 4; ++k) {
    FaultSet f;
    while (f.size() < 4) f.add_vertex(rng.vertex(g.num_vertices()));
    w.pool.push_back(oracle.prepare(f));
  }
  constexpr std::size_t kQueries = 10000;
  for (std::size_t k = 0; k < kQueries; ++k) {
    w.pairs.emplace_back(rng.vertex(g.num_vertices()),
                         rng.vertex(g.num_vertices()));
  }

  const struct {
    const char* name;
    obs::Level level;
  } levels[] = {
      {"off", obs::Level::kOff},
      {"counters", obs::Level::kCounters},
      {"spans", obs::Level::kSpans},
  };

  // Alternate the levels across repetitions so drift (thermal, cache state)
  // spreads evenly; keep each level's best run.
  double best_us[3] = {0, 0, 0};
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int l = 0; l < 3; ++l) {
      obs::set_level(levels[l].level);
      const double us = run_queries(w);
      if (rep == 0 || us < best_us[l]) best_us[l] = us;
    }
  }
  obs::set_level(obs::Level::kOff);

  Table table({"level", "queries", "best_ms", "q/s", "overhead_pct"});
  for (int l = 0; l < 3; ++l) {
    const double qps = 1e6 * static_cast<double>(kQueries) / best_us[l];
    const double overhead = 100.0 * (best_us[l] / best_us[0] - 1.0);
    table.row()
        .cell(levels[l].name)
        .cell(static_cast<unsigned long long>(kQueries))
        .cell(best_us[l] / 1000.0, 2)
        .cell(qps, 0)
        .cell(overhead, 2);
  }
  table.print(std::cout, "E17: PreparedFaults query throughput by trace level "
                         "(grid 24x24, |F|=4)");

#if FSDL_TRACE_ENABLED
  const double counters_overhead = 100.0 * (best_us[1] / best_us[0] - 1.0);
  std::cout << (counters_overhead < 5.0 ? "PASS" : "FAIL")
            << ": counters-only overhead " << counters_overhead
            << "% (budget < 5%)\n";
  return counters_overhead < 5.0 ? 0 : 1;
#else
  return 0;
#endif
}
