// E8 — Theorem 3.1: the Ω(2^{α/2} + log n) label-length lower bound.
//
// (a) Entropy accounting of the family F_{n,α}: free edges per vertex
//     (= the per-vertex lower bound) as α = 2d grows — paper shape:
//     roughly ×2 per unit of d (i.e., 2^{α/2}).
// (b) The constructive reconstruction attack through our own scheme: the
//     everywhere-failure queries recover each sampled family member
//     exactly, demonstrating the labels necessarily carry |E(G)| bits in
//     aggregate.
#include <cmath>

#include "bench/common.hpp"
#include "core/connectivity.hpp"
#include "lowerbound/attack.hpp"
#include "lowerbound/family.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E8 (Theorem 3.1): lower-bound family accounting and attack\n";

  Table entropy({"p", "d", "alpha", "n", "|E(G)|", "|E(H)|", "free_edges",
                 "bits/vertex", "2^{alpha/2}"});
  // d >= 2 only: H_{p,d} (hence the family) is defined for even d >= 2; the
  // d = 1 member G_{n,1} = P_n enters through the counting argument below.
  for (const auto& [p, d] : std::vector<std::pair<Vertex, unsigned>>{
           {4, 2}, {6, 2}, {8, 2}, {4, 3}, {3, 4}, {4, 4}, {3, 5}}) {
    const FamilyStats s = family_stats(p, d);
    entropy.row()
        .cell(static_cast<unsigned long long>(s.p))
        .cell(static_cast<unsigned long long>(s.d))
        .cell(static_cast<unsigned long long>(s.alpha))
        .cell(static_cast<unsigned long long>(s.n))
        .cell(static_cast<unsigned long long>(s.edges_full))
        .cell(static_cast<unsigned long long>(s.edges_half))
        .cell(static_cast<unsigned long long>(s.free_edges))
        .cell(s.bits_per_vertex, 2)
        .cell(std::pow(2.0, s.alpha / 2.0), 1);
  }
  emit(entropy,
       "E8a: family entropy — bits/vertex tracks 2^{alpha/2} (Theorem 3.1)");

  Table attack({"instance", "n", "m", "queries", "|F|/query",
                "reconstructed", "attack_ms"});
  Rng rng(2028);
  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"path-24 (G_{24,1})", make_path(24)});
  cases.push_back({"member(3,2) #1", sample_family_member(3, 2, rng)});
  cases.push_back({"member(3,2) #2", sample_family_member(3, 2, rng)});
  cases.push_back({"member(4,2)", sample_family_member(4, 2, rng)});
  for (auto& c : cases) {
    const auto scheme =
        ForbiddenSetLabeling::build(c.g, SchemeParams::faithful(1.0));
    const ForbiddenSetOracle oracle(scheme);
    const ConnectivityOracle conn(oracle);
    WallTimer timer;
    const Graph rec = reconstruct_via_connectivity(conn, c.g.num_vertices());
    const double ms = timer.elapsed_ms();
    const auto n = c.g.num_vertices();
    attack.row()
        .cell(c.name)
        .cell(static_cast<unsigned long long>(n))
        .cell(static_cast<unsigned long long>(c.g.num_edges()))
        .cell(static_cast<unsigned long long>(n) * (n - 1) / 2)
        .cell(static_cast<unsigned long long>(n - 2))
        .cell(same_graph(c.g, rec) ? "EXACT" : "WRONG")
        .cell(ms, 1);
  }
  emit(attack, "E8b: everywhere-failure reconstruction attack (expect EXACT)");
  return 0;
}
