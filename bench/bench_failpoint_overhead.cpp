// E24 — disarmed failpoint overhead: the fault-injection hooks sit on the
// hottest I/O paths (atomic_file writes, the reactor's recv/send loops),
// so the registry promises that a disarmed FSDL_FAILPOINT() is one relaxed
// atomic load and nothing else — no string hashing, no lock, no map.
//
// This bench measures a noinline mixer function three ways: with no hook
// at all (baseline), with a disarmed hook (the production configuration),
// and with the registry armed on an UNRELATED point (the worst case a
// torture run inflicts on untargeted sites: every hit takes the mutex and
// misses the map). It gates the disarmed delta at an absolute budget and
// exits nonzero past it, so CI catches anyone adding work to the fast
// path. The armed rows are informative only — torture runs are allowed to
// be slow.
#include <cstdint>

#include "bench/common.hpp"
#include "util/failpoint.hpp"

using namespace fsdl;
using namespace fsdl::bench;

namespace {

// splitmix64-style mixing: enough work that the loop is a realistic call
// site, little enough that a stray branch or lock would show.
inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

__attribute__((noinline)) std::uint64_t run_plain(std::uint64_t iters) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t k = 0; k < iters; ++k) acc = mix(acc + k);
  return acc;
}

__attribute__((noinline)) std::uint64_t run_guarded(std::uint64_t iters) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t k = 0; k < iters; ++k) {
    const auto hit = FSDL_FAILPOINT("bench.hot");
    if (hit.kind == failpoint::HitKind::kErrno) return 0;  // never disarmed
    acc = mix(acc + k);
  }
  return acc;
}

double best_ns_per_call(std::uint64_t (*fn)(std::uint64_t),
                        std::uint64_t iters, int reps, std::uint64_t& sink) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    sink ^= fn(iters);
    const double ns = timer.elapsed_us() * 1000.0;
    if (rep == 0 || ns < best) best = ns;
  }
  return best / static_cast<double>(iters);
}

}  // namespace

int main() {
  std::cout << "E24 — failpoint guard cost per call site\n";
  constexpr std::uint64_t kIters = 50'000'000;
  constexpr int kReps = 5;
  // The production promise: a disarmed guard may add at most this much to
  // a call site. A relaxed load folds into noise; a mutex or map lookup
  // would blow past it by an order of magnitude even on a loaded box.
  constexpr double kDisarmedBudgetNs = 1.5;

  std::uint64_t sink = 0;
  failpoint::disarm_all();
  const double plain_ns = best_ns_per_call(run_plain, kIters, kReps, sink);
  const double disarmed_ns = best_ns_per_call(run_guarded, kIters, kReps, sink);

  // Torture-run worst case for an untargeted site: registry armed, but on
  // a different point, so every hit pays evaluate() and misses the map.
  if (failpoint::arm("bench.other=off") != "") return 2;
  const double other_armed_ns =
      best_ns_per_call(run_guarded, kIters, kReps, sink);
  // And a targeted-but-never-firing site (counted on every hit).
  if (failpoint::arm("bench.hot=errno:EIO@nth:" +
                     std::to_string(kIters + 1)) != "") {
    return 2;
  }
  const double hot_armed_ns =
      best_ns_per_call(run_guarded, kIters / 10, kReps, sink);
  failpoint::disarm_all();
  if (sink == 0xDEADBEEF) std::cout << "";  // keep the loops observable

  const double disarmed_delta = disarmed_ns - plain_ns;
  Table table({"configuration", "ns_per_call", "delta_ns"});
  table.row().cell("no hook (baseline)").cell(plain_ns, 3).cell(0.0, 3);
  table.row()
      .cell("disarmed hook")
      .cell(disarmed_ns, 3)
      .cell(disarmed_delta, 3);
  table.row()
      .cell("armed, other point")
      .cell(other_armed_ns, 3)
      .cell(other_armed_ns - plain_ns, 3);
  table.row()
      .cell("armed, this point (no fire)")
      .cell(hot_armed_ns, 3)
      .cell(hot_armed_ns - plain_ns, 3);
  emit(table, "E24: per-call cost of FSDL_FAILPOINT by registry state "
              "(best of " + std::to_string(kReps) + ")");

  const bool pass = disarmed_delta < kDisarmedBudgetNs;
  std::cout << (pass ? "PASS" : "FAIL") << ": disarmed guard costs "
            << disarmed_delta << " ns/call (budget < " << kDisarmedBudgetNs
            << " ns)\n";
  return pass ? 0 : 1;
}
