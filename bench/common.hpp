// Shared helpers for the experiment binaries (E1–E10, see DESIGN.md §4).
//
// Each binary regenerates one "table": it prints the workload parameters,
// the paper's predicted shape, and the measured numbers via util/table.
#pragma once

#include <iostream>
#include <string>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/components.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fsdl::bench {

/// Named workload graphs sized so faithful-parameter label construction
/// stays within laptop memory (the scheme's constants are the paper's).
inline Graph workload(const std::string& name) {
  Rng rng(0xC0FFEE);
  if (name == "path") return make_path(240);
  if (name == "cycle") return make_cycle(200);
  if (name == "grid") return make_grid2d(14, 14);
  if (name == "tree") return make_balanced_tree(2, 7);
  if (name == "king") return make_king_grid(11, 11);
  if (name == "disk") {
    return largest_component_subgraph(make_unit_disk(220, 0.11, rng));
  }
  if (name == "roads") return make_perturbed_grid(15, 15, 0.12, rng);
  throw std::invalid_argument("unknown workload " + name);
}

/// Nominal doubling dimension of each workload family.
inline double nominal_alpha(const std::string& name) {
  if (name == "path" || name == "cycle") return 1.0;
  if (name == "tree") return 1.0;  // bounded-degree tree, small balls
  return 2.0;
}

/// Random fault set avoiding s and t; mixes vertices and edges when asked.
inline FaultSet sample_faults(const Graph& g, Rng& rng, Vertex s, Vertex t,
                              unsigned count, bool include_edges = false) {
  FaultSet f;
  unsigned guard = 0;
  while (f.size() < count && ++guard < 20 * count + 20) {
    if (include_edges && rng.chance(0.4)) {
      const Vertex a = rng.vertex(g.num_vertices());
      const auto nb = g.neighbors(a);
      if (!nb.empty()) f.add_edge(a, nb[rng.below(nb.size())]);
    } else {
      const Vertex x = rng.vertex(g.num_vertices());
      if (x != s && x != t) f.add_vertex(x);
    }
  }
  return f;
}

struct StretchSample {
  Summary stretch;       // over connected, d > 0 queries
  std::size_t queries = 0;
  std::size_t disconnected = 0;
  std::size_t violations = 0;  // approx < exact (must stay 0)
};

/// Sample random (s, t, F) queries and compare the oracle with ground truth.
inline StretchSample measure_stretch(const Graph& g,
                                     const ForbiddenSetOracle& oracle,
                                     unsigned num_faults, bool include_edges,
                                     int trials, std::uint64_t seed) {
  Rng rng(seed);
  StretchSample out;
  for (int k = 0; k < trials; ++k) {
    const Vertex s = rng.vertex(g.num_vertices());
    const Vertex t = rng.vertex(g.num_vertices());
    const FaultSet f = sample_faults(g, rng, s, t, num_faults, include_edges);
    const Dist exact = distance_avoiding(g, s, t, f);
    const Dist approx = oracle.distance(s, t, f);
    ++out.queries;
    if (exact == kInfDist) {
      ++out.disconnected;
      if (approx != kInfDist) ++out.violations;
      continue;
    }
    if (approx < exact || approx == kInfDist) {
      ++out.violations;
      continue;
    }
    if (exact > 0) {
      out.stretch.add(static_cast<double>(approx) / exact);
    }
  }
  return out;
}

inline void emit(const Table& table, const std::string& title) {
  table.print(std::cout, title);
  std::cout << "\n-- csv --\n";
  table.print_csv(std::cout);
}

}  // namespace fsdl::bench
