// E1 — Lemma 2.2: the net hierarchy's packing bound.
//
// For each workload family, sample (v, i, R) and measure
//     ratio = |B(v, R) ∩ N_i| / (4R / 2^i)^α.
// Lemma 2.2 asserts ratio <= 2 at every scale. The table reports the worst
// observed ratio per family along with net sizes; the experiment passes if
// every ratio stays below 2.
#include <cmath>

#include "bench/common.hpp"
#include "graph/bfs.hpp"
#include "nets/net_hierarchy.hpp"

using namespace fsdl;
using namespace fsdl::bench;

int main() {
  std::cout << "E1 (Lemma 2.2): packing bound |B(v,R) ∩ N_i| <= 2·(4R/2^i)^α\n";

  // Larger instances than the faithful-label workloads: nets alone are cheap.
  struct Instance {
    const char* name;
    Graph graph;
    double alpha;
  };
  Rng gen(7);
  std::vector<Instance> instances;
  instances.push_back({"path-4096", make_path(4096), 1.0});
  instances.push_back({"cycle-4096", make_cycle(4096), 1.0});
  instances.push_back({"grid-48x48", make_grid2d(48, 48), 2.0});
  instances.push_back({"king-32x32", make_king_grid(32, 32), 2.0});
  instances.push_back(
      {"disk-2000",
       largest_component_subgraph(make_unit_disk(2000, 0.035, gen)), 2.0});

  Table table({"family", "n", "levels", "|N_top|", "samples", "worst_ratio",
               "bound", "ok"});
  for (auto& inst : instances) {
    const unsigned top = default_top_level(inst.graph.num_vertices());
    const NetHierarchy nets = build_net_hierarchy(inst.graph, top);
    Rng rng(99);
    BfsRunner bfs(inst.graph);
    double worst = 0.0;
    const int samples = 300;
    for (int k = 0; k < samples; ++k) {
      const Vertex v = rng.vertex(inst.graph.num_vertices());
      const unsigned i = static_cast<unsigned>(rng.below(top + 1));
      const Dist radius =
          static_cast<Dist>((Dist{1} << i) * (1 + rng.below(8)));
      std::size_t count = 0;
      bfs.run(v, radius, [&](Vertex u, Dist) {
        if (nets.in_level(u, i)) ++count;
      });
      const double bound = std::pow(4.0 * radius / std::pow(2.0, i), inst.alpha);
      worst = std::max(worst, static_cast<double>(count) / bound);
    }
    table.row()
        .cell(inst.name)
        .cell(static_cast<unsigned long long>(inst.graph.num_vertices()))
        .cell(static_cast<unsigned long long>(top + 1))
        .cell(static_cast<unsigned long long>(nets.level(top).size()))
        .cell(static_cast<long long>(samples))
        .cell(worst, 4)
        .cell(2.0, 1)
        .cell(worst <= 2.0 ? "yes" : "NO");
  }
  emit(table, "E1: net packing ratios (paper bound: 2.0)");
  return 0;
}
