// E16 — serving throughput: the query server under concurrent load.
//
// Two tables:
//   (a) QPS vs. worker threads — a fixed mixed workload (DIST + BATCH, one
//       warm fault set pool) against servers with 1/2/4/8 workers; the
//       shared read-only oracle should scale until client count bounds it.
//   (b) cache-hit ratio and QPS vs. fault-set churn — the PreparedFaults
//       LRU pays Lemma 2.6's O(|F|²) certification once per distinct fault
//       set; as churn rises toward every-request-a-new-fault-set, the hit
//       rate falls and per-query cost climbs back toward one-shot decoding.
//       The cache-warm row must beat the cache-cold row in QPS (the
//       acceptance gate for the serving subsystem).
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "server/client.hpp"
#include "server/server.hpp"

namespace fsdl::bench {
namespace {

struct LoadResult {
  double qps = 0;
  double mean_us = 0;
  double p99_us = 0;
  double hit_rate = 0;
};

/// Drive `server` with `client_threads` loopback connections; each sends
/// `requests` frames (7 of 8 are DIST, every 8th a BATCH of 8). With
/// probability `churn` a request carries a never-seen-before fault set (a
/// guaranteed certification miss); otherwise it reuses one of `pool_size`
/// recurring sets. churn = 0 is the cache-warm extreme, churn = 1 the
/// cache-cold one.
LoadResult drive(server::Server& server, const Graph& g,
                 unsigned client_threads, unsigned requests,
                 unsigned pool_size, double churn, std::uint64_t seed) {
  std::vector<FaultSet> pool(pool_size);
  Rng pool_rng(seed);
  for (auto& f : pool) {
    while (f.size() < 2) f.add_vertex(pool_rng.vertex(g.num_vertices()));
  }

  std::mutex agg_mu;
  Histogram latency(1.25);
  std::atomic<std::uint64_t> queries{0};
  WallTimer wall;
  std::vector<std::thread> threads;
  for (unsigned tid = 0; tid < client_threads; ++tid) {
    threads.emplace_back([&, tid] {
      Rng rng(seed ^ (0x9E37u + tid));
      server::Client client;
      client.connect("127.0.0.1", server.port());
      Histogram local(1.25);
      std::uint64_t local_queries = 0;
      std::uint64_t fresh_tag = 1;
      for (unsigned r = 0; r < requests; ++r) {
        FaultSet faults;
        if (churn > 0.0 && rng.chance(churn)) {
          // Never-seen fault set: the tag makes it unique across the run,
          // so this request must pay the full |F|² certification.
          faults.add_vertex(rng.vertex(g.num_vertices()));
          faults.add_vertex(
              static_cast<Vertex>((tid * 131071ull + fresh_tag++) %
                                  g.num_vertices()));
        } else {
          faults = pool[rng.below(pool.size())];
        }
        WallTimer timer;
        if (r % 8 == 7) {
          std::vector<std::pair<Vertex, Vertex>> pairs;
          for (int k = 0; k < 8; ++k) {
            pairs.emplace_back(rng.vertex(g.num_vertices()),
                               rng.vertex(g.num_vertices()));
          }
          local_queries += client.batch(pairs, faults).size();
        } else {
          (void)client.dist(rng.vertex(g.num_vertices()),
                            rng.vertex(g.num_vertices()), faults);
          ++local_queries;
        }
        local.add(timer.elapsed_us());
      }
      queries.fetch_add(local_queries);
      std::lock_guard<std::mutex> lock(agg_mu);
      latency.merge(local);
    });
  }
  for (auto& t : threads) t.join();
  const double secs = wall.elapsed_seconds();

  LoadResult out;
  out.qps = secs > 0 ? static_cast<double>(queries.load()) / secs : 0.0;
  out.mean_us = latency.mean();
  out.p99_us = latency.percentile(99);
  out.hit_rate = server.cache_stats().hit_rate();
  return out;
}

}  // namespace
}  // namespace fsdl::bench

int main() {
  using namespace fsdl;
  using namespace fsdl::bench;

  const Graph g = workload("grid");
  const auto scheme =
      ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
  const ForbiddenSetOracle oracle(scheme);
  oracle.warm();

  std::cout << "E16 | serving throughput: grid n=" << g.num_vertices()
            << ", faithful eps=1, loopback TCP, mixed DIST/BATCH (8:1), "
               "|F|=2\n"
            << "prediction: QPS grows with workers until client-bound; "
               "hit rate falls and QPS drops as fault-set churn rises\n\n";

  {
    Table t({"workers", "clients", "qps", "mean_us", "p99_us"});
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      server::ServerOptions options;
      options.workers = workers;
      options.cache_capacity = 64;
      server::Server srv(oracle, options);
      srv.start();
      const auto r = drive(srv, g, /*client_threads=*/8, /*requests=*/400,
                           /*pool_size=*/4, /*churn=*/0.0, /*seed=*/17);
      srv.stop();
      t.row()
          .cell(static_cast<long long>(workers))
          .cell(8LL)
          .cell(r.qps, 0)
          .cell(r.mean_us, 1)
          .cell(r.p99_us, 1);
    }
    emit(t, "E16a: QPS vs worker threads (warm cache)");
  }

  std::cout << "\n";

  {
    Table t({"churn", "hit_rate", "qps", "mean_us", "p99_us"});
    struct Row {
      const char* name;
      double churn;
    };
    for (const Row& row : {Row{"0.00 (warm)", 0.0}, Row{"0.10", 0.1},
                           Row{"0.50", 0.5}, Row{"1.00 (cold)", 1.0}}) {
      server::ServerOptions options;
      options.workers = 4;
      options.cache_capacity = 64;
      server::Server srv(oracle, options);
      srv.start();
      const auto r = drive(srv, g, /*client_threads=*/4, /*requests=*/300,
                           /*pool_size=*/4, row.churn, /*seed=*/23);
      srv.stop();
      t.row()
          .cell(row.name)
          .cell(r.hit_rate, 3)
          .cell(r.qps, 0)
          .cell(r.mean_us, 1)
          .cell(r.p99_us, 1);
    }
    emit(t, "E16b: cache-hit ratio & QPS vs fault-set churn");
  }
  return 0;
}
