// Forbidden-set routing with a private routing policy (§1 application).
//
// A router decides that, for security or economic reasons, traffic must not
// transit a set of nodes it distrusts. It adds them to its private
// forbidden set, recomputes the sketch path from labels alone, and packets
// are forwarded around the region — no global route recomputation, and the
// routing tables of other routers never change.
//
//   $ ./examples/routing_policy
#include <cstdio>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "routing/simulator.hpp"

int main() {
  using namespace fsdl;

  // An autonomous system shaped like a 12x12 torus of routers.
  const Graph net = make_torus2d(12, 12);
  const auto scheme =
      ForbiddenSetLabeling::build(net, SchemeParams::faithful(1.0));
  const ForbiddenSetOracle oracle(scheme);
  const auto routing = ForbiddenSetRouting::build(net, scheme);
  std::printf("network: %u routers; routing tables: mean %.1f KiB\n",
              net.num_vertices(),
              routing.total_table_bits() / 8192.0 / net.num_vertices());

  const Vertex src = 0;
  const Vertex dst = 6 * 12 + 6;  // diagonally opposite on the torus

  auto show_route = [&](const char* title, const FaultSet& policy) {
    const RouteResult rr = route_packet(net, routing, oracle, src, dst, policy);
    std::printf("\n%s\n", title);
    if (!rr.delivered) {
      std::printf("  packet NOT delivered (%s)\n",
                  rr.blocked_by_fault ? "blocked by forbidden node"
                                      : "no route known");
      return;
    }
    std::printf("  delivered in %u hops, header %zu bits\n  route:", rr.hops,
                rr.header_bits);
    for (Vertex v : rr.path) std::printf(" %u", v);
    std::printf("\n");
  };

  const FaultSet open_policy;
  show_route("default policy (no restrictions):", open_policy);

  // The operator distrusts a column of transit routers.
  FaultSet policy;
  for (Vertex r = 2; r <= 9; ++r) policy.add_vertex(r * 12 + 3);
  show_route("policy: avoid distrusted transit column 3 (rows 2..9):", policy);

  // Tighten further: also forbid a link on the southern detour.
  policy.add_edge(11 * 12 + 3, 11 * 12 + 4);
  show_route("policy: ... and the southern link (11,3)-(11,4):", policy);

  // Verify the policy was honoured.
  {
    const RouteResult rr = route_packet(net, routing, oracle, src, dst, policy);
    bool clean = rr.delivered;
    for (Vertex v : rr.path) {
      if (policy.vertex_faulty(v)) clean = false;
    }
    std::printf("\npolicy honoured on final route: %s\n",
                clean ? "yes" : "NO (bug!)");
  }
  return 0;
}
