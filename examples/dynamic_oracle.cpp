// Fully-dynamic distance oracle (§1, via Abraham–Chechik–Gavoille 2012).
//
// Failures and recoveries arrive as a stream; the oracle maintains the
// current fault set and answers (1+ε)-approximate distance queries on the
// surviving graph at every point in time. Labels are computed once;
// updates cost O(1).
//
//   $ ./examples/dynamic_oracle
#include <cstdio>

#include "core/dynamic_oracle.hpp"
#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace fsdl;

  const Graph g = make_king_grid(11, 11);
  const auto scheme = ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
  const ForbiddenSetOracle oracle(scheme);
  DynamicOracle dyn(oracle);

  const Vertex s = 0, t = g.num_vertices() - 1;
  std::printf("n=%u, tracking d(%u, %u) through a failure/recovery stream\n\n",
              g.num_vertices(), s, t);
  std::printf("%-6s %-26s %8s %10s\n", "time", "event", "|F|", "distance");

  auto snapshot = [&](int time, const char* event) {
    const Dist d = dyn.distance(s, t);
    if (d == kInfDist) {
      std::printf("%-6d %-26s %8zu %10s\n", time, event,
                  dyn.current_faults().size(), "cut off");
    } else {
      std::printf("%-6d %-26s %8zu %10u\n", time, event,
                  dyn.current_faults().size(), d);
    }
  };

  snapshot(0, "initial");

  Rng rng(99);
  std::vector<Vertex> down;
  int time = 0;
  for (int step = 0; step < 12; ++step) {
    ++time;
    const bool fail = down.empty() || rng.chance(0.65);
    if (fail) {
      Vertex v = rng.vertex(g.num_vertices());
      while (v == s || v == t) v = rng.vertex(g.num_vertices());
      dyn.fail_vertex(v);
      down.push_back(v);
      char event[64];
      std::snprintf(event, sizeof event, "node %u fails", v);
      snapshot(time, event);
    } else {
      const std::size_t pick = rng.below(down.size());
      const Vertex v = down[pick];
      down.erase(down.begin() + static_cast<std::ptrdiff_t>(pick));
      dyn.restore_vertex(v);
      char event[64];
      std::snprintf(event, sizeof event, "node %u recovers", v);
      snapshot(time, event);
    }
  }

  // Mass recovery: back to the initial distance, proving no drift.
  for (Vertex v : down) dyn.restore_vertex(v);
  snapshot(++time, "all nodes recovered");
  return 0;
}
