// Weighted road network (library extension): travel times instead of hop
// counts, with fault-tolerant routing.
//
// Roads have integer travel times in [1, 8]; the weighted labeling answers
// time-distance queries under closures, and the weighted routing scheme
// actually drives the route.
//
//   $ ./examples/weighted_roads
#include <cstdio>

#include "core/oracle.hpp"
#include "core/weighted.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "graph/wfault.hpp"
#include "graph/wgraph.hpp"
#include "routing/simulator.hpp"
#include "util/rng.hpp"

int main() {
  using namespace fsdl;
  Rng rng(42);

  // A 12x12 street grid with random travel times per segment.
  const Graph base = make_grid2d(12, 12);
  const WeightedGraph city = weighted_from(base, /*max_weight=*/8, rng);
  std::printf("city: %u intersections, %zu segments, travel times 1..%u\n",
              city.num_vertices(), city.num_edges(), city.max_weight());

  const auto scheme = build_weighted_labeling(city, SchemeParams::faithful(1.0));
  const ForbiddenSetOracle oracle(scheme);
  const auto routing = ForbiddenSetRouting::build(city, scheme);

  const Vertex home = 0;
  const Vertex office = city.num_vertices() - 1;

  auto drive = [&](const char* when, const FaultSet& closures) {
    const Dist truth = weighted_distance_avoiding(city, home, office, closures);
    const RouteResult rr =
        route_packet(city, routing, oracle, home, office, closures);
    if (!rr.delivered) {
      std::printf("%-26s no route (exact: %s)\n", when,
                  truth == kInfDist ? "none either" : "exists — BUG");
      return;
    }
    std::printf("%-26s driven %u min over %u segments (optimal %u min)\n",
                when, rr.length, rr.hops, truth);
  };

  FaultSet closures;
  drive("monday, clear roads:", closures);

  // The fastest route's middle intersection gets blocked.
  {
    const QueryResult plan = oracle.query(home, office, closures);
    if (plan.waypoints.size() > 2) {
      closures.add_vertex(plan.waypoints[plan.waypoints.size() / 2]);
    }
  }
  drive("accident mid-route:", closures);

  // Rush hour: a couple of segments near home are closed too.
  closures.add_edge(0, 1);
  drive("plus closed segment:", closures);

  // Weekend: everything reopens.
  const FaultSet clear;
  drive("weekend, reopened:", clear);
  return 0;
}
