// Quickstart: build forbidden-set distance labels for a small grid and
// answer one query with a failed vertex — the whole public API in ~60 lines.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace fsdl;

  // 1. A graph of low doubling dimension: the 12x12 grid (α ≈ 2).
  const Graph g = make_grid2d(12, 12);
  std::printf("graph: n=%u m=%zu\n", g.num_vertices(), g.num_edges());

  // 2. Preprocess: one label per vertex. SchemeParams::faithful(eps) uses
  //    the paper's exact constants, guaranteeing stretch 1+eps.
  const double eps = 1.0;
  const auto scheme = ForbiddenSetLabeling::build(g, SchemeParams::faithful(eps));
  std::printf("labels: mean %.0f bits, max %zu bits (guaranteed stretch %.1f)\n",
              scheme.mean_label_bits(), scheme.max_label_bits(), 1.0 + eps);

  // 3. An oracle is just the table of all labels.
  const ForbiddenSetOracle oracle(scheme);

  // 4. Query corner to corner, before and after failures. A query reads
  //    only the labels of s, t and the failed elements — nothing else.
  const Vertex s = 0, t = 143;
  const FaultSet no_faults;
  std::printf("d(s, t)            = %u\n", oracle.distance(s, t, no_faults));

  FaultSet faults;
  faults.add_vertex(6 * 12 + 6);  // a router in the middle dies
  faults.add_edge(0, 1);          // a link next to s dies too
  const QueryResult qr = oracle.query(s, t, faults);
  std::printf("d(s, t | faults)   = %u\n", qr.distance);

  // 5. The answer is constructive: consecutive waypoints are endpoints of
  //    fault-avoiding shortest subpaths.
  std::printf("waypoints:");
  for (Vertex w : qr.waypoints) std::printf(" %u", w);
  std::printf("\nsketch graph: %zu vertices, %zu edges, %zu edge-checks\n",
              qr.stats.sketch_vertices, qr.stats.sketch_edges,
              qr.stats.edges_considered);
  return 0;
}
