// Road-network closures — the paper's §1 motivating application.
//
// A hand-held device stores only the labels relevant to its route; when it
// learns about closures (failed intersections/road segments) it re-answers
// distance queries locally, without downloading the whole map or waiting
// for a global recomputation. This example simulates a day of incidents on
// a perturbed-grid "city" and compares the label-based answers with full
// recomputation.
//
//   $ ./examples/road_closures
#include <cstdio>

#include "baseline/exact_oracle.hpp"
#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/components.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fsdl;
  Rng rng(20260704);

  // A 16x16 street grid. (make_perturbed_grid gives a more organic map but
  // renumbers vertices; the plain grid keeps row/column ids readable here.)
  const Graph city = make_grid2d(16, 16);
  std::printf("city: %u intersections, %zu road segments\n",
              city.num_vertices(), city.num_edges());

  WallTimer build_timer;
  const auto scheme =
      ForbiddenSetLabeling::build(city, SchemeParams::faithful(1.0));
  const ForbiddenSetOracle oracle(scheme);
  const ExactOracle reference(city);
  std::printf("preprocessing: %.2fs, %.1f KiB/label average\n",
              build_timer.elapsed_seconds(), scheme.mean_label_bits() / 8192.0);

  // The device's commute: straight across town along 8th avenue (row 8).
  // (Corner-to-corner trips in an L1 grid dodge any partial wall for free;
  // a mid-row commute actually has to detour.)
  const Vertex home = 8 * 16 + 0;
  const Vertex office = 8 * 16 + 15;

  FaultSet closures;  // the device's current view of incidents
  std::printf("\n%-28s %10s %10s %8s\n", "event", "label est.", "exact",
              "stretch");
  auto report = [&](const char* event) {
    const Dist est = oracle.distance(home, office, closures);
    const Dist exact = reference.distance(home, office, closures);
    if (exact == kInfDist) {
      std::printf("%-28s %10s %10s %8s\n", event, "no route", "no route", "-");
    } else {
      std::printf("%-28s %10u %10u %7.3fx\n", event, est, exact,
                  static_cast<double>(est) / exact);
    }
  };

  report("morning, all clear");

  // Incident 1: an accident blocks an intersection on today's best route.
  {
    const auto route = shortest_path_avoiding(city, home, office, closures);
    closures.add_vertex(route[route.size() / 2]);
  }
  report("accident on the route");

  // Incident 2: flooding closes 5th street (column 8) between rows 4 and
  // 12 — now every route must climb around the closure.
  for (Vertex r = 4; r <= 12; ++r) {
    const Vertex v = r * 16 + 8;
    if (v != home && v != office) closures.add_vertex(v);
  }
  report("5th street flooded");

  // Incident 3: a whole block north of the flood is cordoned off too.
  for (Vertex dr = 1; dr < 4; ++dr) {
    for (Vertex dc = 6; dc < 9; ++dc) {
      const Vertex v = dr * 16 + dc;
      if (v < city.num_vertices() && v != home && v != office) {
        closures.add_vertex(v);
      }
    }
  }
  report("block cordoned off");

  // Evening: everything reopens (the labels never changed).
  FaultSet clear;
  closures = clear;
  report("evening, reopened");

  std::printf(
      "\nNote: labels were computed once; every row above reused them.\n");
  return 0;
}
