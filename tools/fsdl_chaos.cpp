// fsdl_chaos — a fault-injecting TCP proxy for hardening tests.
//
//   fsdl_chaos --upstream-port U [--upstream-host H] [--listen-port P]
//              [--seed S] [--drop-p D] [--delay-p D --delay-ms M]
//              [--truncate-p T] [--flip-p F] [--chaos-s W]
//
// Sits between a client (fsdl_loadgen) and fsdl_serve and misbehaves on
// purpose, in both directions, with deterministic seeded randomness:
//
//   drop      sever the connection mid-stream (both halves)
//   delay     stall a chunk by --delay-ms (exercises client recv deadlines)
//   truncate  forward only a prefix of a chunk, then sever
//   flip      flip one random bit in a forwarded chunk (exercises the
//             frame CRC — a flipped bit must surface as a checksum error,
//             never as a wrong distance)
//
// Faults are injected only during the first --chaos-s seconds after startup
// (0 = forever); afterwards the proxy forwards bytes verbatim, so one
// loadgen run through the proxy sees a chaos window followed by calm — the
// recovery phase the chaos pipeline asserts on.
//
// Prints "fsdl_chaos: ... port=N" on stdout once listening (P=0 picks an
// ephemeral port), mirroring fsdl_serve so scripts can scrape the port.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "util/rng.hpp"

namespace {

using fsdl::Rng;

struct Options {
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  std::uint16_t listen_port = 0;
  std::uint64_t seed = 1;
  double drop_p = 0.0;
  double delay_p = 0.0;
  unsigned delay_ms = 50;
  double truncate_p = 0.0;
  double flip_p = 0.0;
  double chaos_s = 0.0;  // 0 = chaos never ends
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: fsdl_chaos --upstream-port U [--upstream-host H]\n"
      "                  [--listen-port P] [--seed S] [--drop-p D]\n"
      "                  [--delay-p D --delay-ms M] [--truncate-p T]\n"
      "                  [--flip-p F] [--chaos-s W]\n");
  std::exit(2);
}

std::atomic<std::uint64_t> g_drops{0};
std::atomic<std::uint64_t> g_delays{0};
std::atomic<std::uint64_t> g_truncates{0};
std::atomic<std::uint64_t> g_flips{0};

/// One proxied connection: both relay threads share the fd pair so a fault
/// in either direction can sever the whole connection.
struct Conn {
  int client_fd;
  int upstream_fd;
  void sever() const {
    ::shutdown(client_fd, SHUT_RDWR);
    ::shutdown(upstream_fd, SHUT_RDWR);
  }
};

/// Relay src -> dst until EOF/error, injecting faults while chaos is on.
void relay(std::shared_ptr<Conn> conn, int src, int dst, Rng rng,
           const Options& opt,
           std::chrono::steady_clock::time_point chaos_end) {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(src, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    std::size_t len = static_cast<std::size_t>(n);

    const bool chaos_on = opt.chaos_s == 0.0 ||
                          std::chrono::steady_clock::now() < chaos_end;
    if (chaos_on) {
      if (rng.chance(opt.drop_p)) {
        g_drops.fetch_add(1, std::memory_order_relaxed);
        break;  // sever without forwarding
      }
      if (rng.chance(opt.delay_p)) {
        g_delays.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(opt.delay_ms));
      }
      bool truncate_after = false;
      if (len > 1 && rng.chance(opt.truncate_p)) {
        g_truncates.fetch_add(1, std::memory_order_relaxed);
        len = 1 + static_cast<std::size_t>(rng.below(len - 1));
        truncate_after = true;  // forward the prefix, then sever
      }
      if (rng.chance(opt.flip_p)) {
        g_flips.fetch_add(1, std::memory_order_relaxed);
        const std::size_t bit = static_cast<std::size_t>(rng.below(len * 8));
        chunk[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      std::size_t sent = 0;
      bool send_failed = false;
      while (sent < len) {
        const ssize_t m = ::send(dst, chunk + sent, len - sent, MSG_NOSIGNAL);
        if (m < 0 && errno == EINTR) continue;
        if (m <= 0) {
          send_failed = true;
          break;
        }
        sent += static_cast<std::size_t>(m);
      }
      if (send_failed || truncate_after) break;
      continue;
    }

    std::size_t sent = 0;
    bool send_failed = false;
    while (sent < len) {
      const ssize_t m = ::send(dst, chunk + sent, len - sent, MSG_NOSIGNAL);
      if (m < 0 && errno == EINTR) continue;
      if (m <= 0) {
        send_failed = true;
        break;
      }
      sent += static_cast<std::size_t>(m);
    }
    if (send_failed) break;
  }
  conn->sever();
}

int connect_upstream(const Options& opt) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt.upstream_port);
  if (::inet_pton(AF_INET, opt.upstream_host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* {
      if (k + 1 >= argc) usage("missing argument value");
      return argv[++k];
    };
    if (arg == "--upstream-host") opt.upstream_host = next();
    else if (arg == "--upstream-port") opt.upstream_port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--listen-port") opt.listen_port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--drop-p") opt.drop_p = std::strtod(next(), nullptr);
    else if (arg == "--delay-p") opt.delay_p = std::strtod(next(), nullptr);
    else if (arg == "--delay-ms") opt.delay_ms = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--truncate-p") opt.truncate_p = std::strtod(next(), nullptr);
    else if (arg == "--flip-p") opt.flip_p = std::strtod(next(), nullptr);
    else if (arg == "--chaos-s") opt.chaos_s = std::strtod(next(), nullptr);
    else usage("unknown option");
  }
  if (opt.upstream_port == 0) usage("--upstream-port is required");

  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) {
    std::fprintf(stderr, "error: socket() failed\n");
    return 1;
  }
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opt.listen_port);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(lfd, 64) < 0) {
    std::fprintf(stderr, "error: bind/listen failed: %s\n",
                 std::strerror(errno));
    return 1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len);

  std::printf("fsdl_chaos: upstream=%s:%u seed=%llu drop=%.3g delay=%.3g/"
              "%ums truncate=%.3g flip=%.3g chaos_s=%.3g port=%u\n",
              opt.upstream_host.c_str(), opt.upstream_port,
              static_cast<unsigned long long>(opt.seed), opt.drop_p,
              opt.delay_p, opt.delay_ms, opt.truncate_p, opt.flip_p,
              opt.chaos_s, ntohs(addr.sin_port));
  std::fflush(stdout);

  const auto chaos_end =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<long>(opt.chaos_s * 1e6));

  std::uint64_t conn_id = 0;
  for (;;) {
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const int ufd = connect_upstream(opt);
    if (ufd < 0) {
      ::close(cfd);
      continue;
    }
    ++conn_id;
    auto conn = std::make_shared<Conn>(Conn{cfd, ufd});
    // Two relay threads per connection, each with its own deterministic
    // stream of fault decisions. The closer thread owns both fds.
    std::thread forward(relay, conn, cfd, ufd, Rng(opt.seed * 2654435761u +
                                                   conn_id * 2),
                        std::cref(opt), chaos_end);
    std::thread backward([conn, cfd, ufd, &opt, chaos_end, conn_id] {
      relay(conn, ufd, cfd,
            Rng(opt.seed * 2654435761u + conn_id * 2 + 1), opt, chaos_end);
    });
    std::thread([conn, f = std::move(forward), b = std::move(backward)]()
                    mutable {
      f.join();
      b.join();
      ::close(conn->client_fd);
      ::close(conn->upstream_fd);
    }).detach();
  }
  return 0;
}
