// fsdl_router — scatter-gather front door for a sharded fsdl_serve fleet.
//
//   fsdl_router --shard HOST:PORT[,HOST:PORT...] [--shard ...] ...
//               [--port P] [--workers N] [--backlog B]
//               [--recv-timeout-ms T] [--send-timeout-ms T] [--max-queued Q]
//               [--drain-ms D] [--data-plane reactor|thread]
//               [--reactor-threads N] [--batch-window-us U]
//               [--label-cache C] [--label-cache-shards S]
//               [--prepared-cache P]
//               [--ring-seed S] [--ring-points P]
//               [--max-attempts A] [--breaker-threshold F]
//               [--breaker-cooldown-ms MS] [--hedge-us U]
//               [--upstream-connect-ms T] [--upstream-recv-ms T]
//               [--upstream-send-ms T]
//               [--no-stale-serve] [--retry-budget N] [--retry-refill R]
//               [--probe-interval-ms MS]
//               [--watchdog-ms MS] [--watchdog-stall-ms MS]
//               [--watchdog-abort-ms MS]
//               [--metrics-dump FILE] [--metrics-interval S]
//               [--trace-log FILE]
//
// Degraded mode (on unless --no-stale-serve): when every replica of an
// owning shard is down, cached labels it owns are still served and the
// response is marked DEGRADED with the serving epoch
// (fsdl_degraded_responses_total{reason=stale_label|shard_down} counts
// them). --retry-budget/--retry-refill shape the per-shard failover token
// bucket; --probe-interval-ms paces the inline recovery probes. The
// watchdog flags control the reactor/worker liveness monitor
// (--watchdog-abort-ms > 0 turns a hard wedge into SIGABRT + core).
//
// Each --shard flag names the replica endpoints of one shard, in shard-id
// order: the i-th --shard is shard i. The router speaks the ordinary fsdl
// wire protocol on its own port — clients (fsdl_loadgen included) cannot
// tell it from a single server holding the whole labeling — and answers
// DIST/BATCH by fetching the needed labels with GET_LABEL from the owning
// shards (one HA ReplicaClient per shard: breakers, failover, optional
// hedging) and running the forbidden-set decoder locally. See
// src/shard/router.hpp for the design and the safety argument.
//
// At startup the router health-checks every shard and refuses to come up
// unless each reports the expected `shard=I/K` identity and all agree on n
// — a mis-wired fleet fails fast instead of misrouting queries.
//
// SIGINT/SIGTERM drain gracefully; --metrics-dump writes the Prometheus
// exposition (including fsdl_router_label_fetches_total,
// fsdl_router_label_cache_{hits,misses}_total, the per-shard failover
// counters, and fsdl_router_shard_fetch_latency_microseconds{shard="k"})
// every --metrics-interval seconds and once at shutdown. The FLEET_STATS
// opcode additionally scrapes every shard's METRICS and merges the fleet
// into one exposition (see server/fleet.hpp). --trace-log FILE appends
// distributed-tracing span records (JSON lines, svc="router") for sampled
// requests; stitch with fsdl_trace --stitch. Needs -DFSDL_TRACE=ON.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "obs/trace.hpp"
#include "server/replica_client.hpp"
#include "shard/router.hpp"
#include "util/atomic_file.hpp"
#include "util/failpoint.hpp"

namespace {

int g_shutdown_pipe[2] = {-1, -1};

void on_terminate(int) {
  const char byte = 't';
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: fsdl_router --shard HOST:PORT[,HOST:PORT...] [--shard ...]\n"
      "                   [--port P] [--workers N] [--backlog B]\n"
      "                   [--recv-timeout-ms T] [--send-timeout-ms T]\n"
      "                   [--max-queued Q] [--drain-ms D]\n"
      "                   [--data-plane reactor|thread]\n"
      "                   [--reactor-threads N] [--batch-window-us U]\n"
      "                   [--label-cache C] [--label-cache-shards S]\n"
      "                   [--prepared-cache P]\n"
      "                   [--ring-seed S] [--ring-points P]\n"
      "                   [--max-attempts A] [--breaker-threshold F]\n"
      "                   [--breaker-cooldown-ms MS] [--hedge-us U]\n"
      "                   [--upstream-connect-ms T] [--upstream-recv-ms T]\n"
      "                   [--upstream-send-ms T]\n"
      "                   [--no-stale-serve] [--retry-budget N]\n"
      "                   [--retry-refill R] [--probe-interval-ms MS]\n"
      "                   [--watchdog-ms MS] [--watchdog-stall-ms MS]\n"
      "                   [--watchdog-abort-ms MS]\n"
      "                   [--metrics-dump FILE] [--metrics-interval S]\n"
      "                   [--trace-log FILE]\n"
      "\n"
      "                   [--failpoints SPEC]   (also: env FSDL_FAILPOINTS)\n"
      "The i-th --shard flag lists the replica endpoints of shard i.\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsdl;
  {
    const std::string error = failpoint::arm_from_env();
    if (!error.empty()) {
      std::fprintf(stderr, "fsdl_router: FSDL_FAILPOINTS: %s\n",
                   error.c_str());
      return 2;
    }
  }
  shard::RouterOptions options;
  std::string metrics_path;
  double metrics_interval_s = 5.0;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--failpoints" && k + 1 < argc) {
      const std::string error = failpoint::arm(argv[++k]);
      if (!error.empty()) usage(error.c_str());
    } else if (arg == "--shard" && k + 1 < argc) {
      try {
        options.shards.push_back(server::parse_endpoints(argv[++k]));
      } catch (const std::exception& e) {
        usage(e.what());
      }
    } else if (arg == "--port" && k + 1 < argc) {
      options.transport.port = static_cast<std::uint16_t>(std::atoi(argv[++k]));
    } else if (arg == "--workers" && k + 1 < argc) {
      options.transport.workers = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--backlog" && k + 1 < argc) {
      options.transport.listen_backlog = std::atoi(argv[++k]);
    } else if (arg == "--recv-timeout-ms" && k + 1 < argc) {
      options.transport.recv_timeout_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--send-timeout-ms" && k + 1 < argc) {
      options.transport.send_timeout_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--max-queued" && k + 1 < argc) {
      options.transport.max_queued_connections =
          static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--drain-ms" && k + 1 < argc) {
      options.transport.drain_deadline_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--data-plane" && k + 1 < argc) {
      const std::string plane = argv[++k];
      if (plane == "reactor") {
        options.transport.data_plane = server::DataPlane::kEpollReactor;
      } else if (plane == "thread") {
        options.transport.data_plane = server::DataPlane::kThreadPerConnection;
      } else {
        usage("--data-plane must be 'reactor' or 'thread'");
      }
    } else if (arg == "--reactor-threads" && k + 1 < argc) {
      options.transport.reactor_threads =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--batch-window-us" && k + 1 < argc) {
      options.transport.batch_window_us =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--label-cache" && k + 1 < argc) {
      options.label_cache_capacity =
          static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--label-cache-shards" && k + 1 < argc) {
      options.label_cache_shards =
          static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--prepared-cache" && k + 1 < argc) {
      options.prepared_capacity = static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--ring-seed" && k + 1 < argc) {
      options.ring_seed = std::strtoull(argv[++k], nullptr, 0);
    } else if (arg == "--ring-points" && k + 1 < argc) {
      options.ring_points =
          static_cast<std::uint32_t>(std::strtoul(argv[++k], nullptr, 10));
    } else if (arg == "--max-attempts" && k + 1 < argc) {
      options.replica.max_attempts = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--breaker-threshold" && k + 1 < argc) {
      options.replica.breaker_threshold =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--breaker-cooldown-ms" && k + 1 < argc) {
      options.replica.breaker_cooldown_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--hedge-us" && k + 1 < argc) {
      options.replica.hedge_us = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--upstream-connect-ms" && k + 1 < argc) {
      options.replica.client.connect_timeout_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--upstream-recv-ms" && k + 1 < argc) {
      options.replica.client.recv_timeout_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--upstream-send-ms" && k + 1 < argc) {
      options.replica.client.send_timeout_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--no-stale-serve") {
      options.stale_serve = false;
    } else if (arg == "--retry-budget" && k + 1 < argc) {
      options.retry_budget_cap = std::strtod(argv[++k], nullptr);
    } else if (arg == "--retry-refill" && k + 1 < argc) {
      options.retry_budget_refill = std::strtod(argv[++k], nullptr);
    } else if (arg == "--probe-interval-ms" && k + 1 < argc) {
      options.probe_interval_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--watchdog-ms" && k + 1 < argc) {
      options.transport.watchdog_interval_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--watchdog-stall-ms" && k + 1 < argc) {
      options.transport.watchdog_stall_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--watchdog-abort-ms" && k + 1 < argc) {
      options.transport.watchdog_abort_ms =
          static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--metrics-dump" && k + 1 < argc) {
      metrics_path = argv[++k];
    } else if (arg == "--metrics-interval" && k + 1 < argc) {
      metrics_interval_s = std::strtod(argv[++k], nullptr);
    } else if (arg == "--trace-log" && k + 1 < argc) {
      const char* path = argv[++k];
      if (!obs::open_event_log(path, "router")) {
        std::fprintf(stderr,
                     "fsdl_router: warning: cannot open trace log %s%s\n",
                     path,
                     FSDL_TRACE_ENABLED
                         ? ""
                         : " (built without FSDL_TRACE, --trace-log has no "
                           "effect)");
      }
    } else {
      usage("unknown option");
    }
  }
  if (options.shards.empty()) usage("need at least one --shard");
  if (metrics_interval_s <= 0) usage("--metrics-interval must be > 0");

  try {
    shard::Router router(options);

    if (::pipe(g_shutdown_pipe) != 0) {
      std::fprintf(stderr, "error: pipe() failed\n");
      return 1;
    }
    std::signal(SIGINT, on_terminate);
    std::signal(SIGTERM, on_terminate);

    router.start();  // validates fleet topology; throws on mismatch
    std::printf("fsdl_router: shards=%u n=%u workers=%u label-cache=%zu "
                "prepared-cache=%zu port=%u\n",
                router.shard_count(), router.num_vertices(),
                options.transport.workers, options.label_cache_capacity,
                options.prepared_capacity, router.port());
    std::fflush(stdout);

    const int timeout_ms =
        metrics_path.empty() ? -1
                             : static_cast<int>(metrics_interval_s * 1000.0);
    const auto flush_metrics = [&] {
      std::string error;
      if (!atomic_write_file(metrics_path, router.prometheus(), &error)) {
        std::fprintf(stderr, "fsdl_router: cannot write metrics to %s: %s\n",
                     metrics_path.c_str(), error.c_str());
      }
    };
    for (;;) {
      struct pollfd pfd{g_shutdown_pipe[0], POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (rc == 0) {  // metrics flush tick
        flush_metrics();
        continue;
      }
      char byte = 't';
      [[maybe_unused]] ssize_t nread = ::read(g_shutdown_pipe[0], &byte, 1);
      break;
    }
    std::printf("\nfsdl_router: shutting down...\n");
    router.stop();
    if (!metrics_path.empty()) flush_metrics();
    std::printf("%s", router.metrics().render(router.prepared_stats()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
