// fsdl_loadgen — load generator / correctness checker for fsdl_serve.
//
//   fsdl_loadgen --port P | --endpoints H:P1,H:P2,...
//                [--host H] [--threads N] [--requests R]
//                [--batch B] [--fault-pool K] [--faults F] [--churn C]
//                [--stats-every M] [--n N | --verify graph.edges]
//                [--eps E] [--seed S] [--retries R] [--timeout-ms T]
//                [--hedge-us U] [--think-us U] [--min-success RATE]
//                [--metrics-dump FILE] [--allow-transport-errors]
//                [--trace-sample P] [--trace-log FILE]
//                [--open-loop RATE --connections N]
//
// Open-loop mode (--open-loop RATE, requests/second): instead of N closed
// feedback loops (each thread waits for its answer before sending the
// next, so a slow server throttles its own load), the generator keeps a
// pool of --connections persistent connections and injects requests on a
// Poisson arrival process of aggregate rate RATE, split as independent
// rate/N processes per connection (their superposition is the requested
// Poisson stream). Latency is measured from the *scheduled* arrival time,
// so when the server falls behind, queueing delay is charged to the
// request — the honest open-loop number a closed loop hides (coordinated
// omission). --requests is the TOTAL request budget across the pool in
// this mode, and the report adds per-connection p99 (median and max over
// connections). --verify is not supported in open-loop mode.
//
// Distributed tracing (works in any build — the context is plain protocol):
// with --trace-sample P every request carries a trace-context extension
// (fresh 128-bit trace id, client span id as parent, the run's --timeout-ms
// as the deadline budget) and sets the sampled flag with probability P;
// servers built with -DFSDL_TRACE=ON and started with --trace-log record
// their spans for sampled traces. --trace-log FILE here appends the
// client-side "client.request" root spans (same JSON-lines schema), so
// fsdl_trace --stitch can show the full client→router→shard tree. A
// verification violation prints its request's trace id alongside the
// (s, t, F) tuple — grep the event logs for that id to see where the
// offending query went.
//
// Resilience knobs (the chaos pipeline's client side): --retries arms the
// client's retry/failover policy for idempotent queries, --timeout-ms sets
// the connect/recv/send deadlines, and --allow-transport-errors keeps
// transport failures out of the exit status (verification violations
// always fail the run — corruption must surface as an error, never as a
// wrong distance).
//
// High availability knobs (the HA pipeline's client side): --endpoints
// fans each thread's traffic over N replicas through a ReplicaClient
// (sticky primary, per-endpoint circuit breaker, failover on
// OVERLOADED/TIMEOUT/DRAINING and transport errors); --hedge-us U fires a
// backup request on a second replica when the primary hasn't answered
// within U microseconds and takes the first answer; --think-us stretches
// the run (idle time between requests) so chaos events land mid-run;
// --min-success RATE fails the exit status when fewer than RATE of all
// requests got an answer; --metrics-dump FILE writes the *client-side*
// Prometheus exposition (fsdl_failovers_total, fsdl_hedged_requests_total)
// atomically at the end of the run.
//
// N client threads, one connection each, R requests per thread. Each
// request draws its fault set from a pool of K pre-generated sets; with
// probability C the thread switches to a different pool entry first
// (fault-set churn = cache pressure on the server's PreparedFaults LRU).
// B = 0 sends single DIST requests, B > 0 sends BATCH frames of B pairs.
// Every M-th request additionally sends a STATS probe.
//
// With --verify, every returned distance δ is checked against the exact
// ground truth d = d_{G\F} from a BFS on the local graph copy:
// d ≤ δ ≤ (1+ε)·d (and δ = ∞ iff d = ∞). Exit status is nonzero if any
// violation occurred — this is the end-to-end acceptance gate.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "graph/fault_view.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "server/client.hpp"
#include "server/metrics.hpp"
#include "server/replica_client.hpp"
#include "util/atomic_file.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace fsdl;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned threads = 4;
  unsigned requests = 1000;
  unsigned batch = 0;
  unsigned fault_pool = 4;
  unsigned faults = 2;
  double churn = 0.1;
  unsigned stats_every = 100;
  Vertex n = 0;
  std::string verify_graph;
  double eps = 1.0;
  std::uint64_t seed = 1;
  unsigned retries = 0;
  unsigned timeout_ms = 0;
  bool allow_transport_errors = false;
  /// Replica endpoints ("--endpoints h:p,h:p"); empty = single host:port.
  std::vector<server::Endpoint> endpoints;
  unsigned hedge_us = 0;
  unsigned think_us = 0;
  /// Minimum fraction of requests that must get an answer (0 disables).
  double min_success = 0.0;
  std::string metrics_dump;
  /// > 0: every request carries a trace context; the sampled flag is set
  /// with this probability.
  double trace_sample = 0.0;
  /// Client-side event log for "client.request" root spans.
  std::string trace_log;
  /// > 0: open-loop mode at this aggregate arrival rate (requests/second).
  double open_loop = 0.0;
  /// Open-loop connection pool size (0 = default 16).
  unsigned connections = 0;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: fsdl_loadgen --port P [--host H] [--threads N] [--requests R]\n"
      "                    [--batch B] [--fault-pool K] [--faults F]\n"
      "                    [--churn C] [--stats-every M]\n"
      "                    [--n N | --verify graph.edges] [--eps E] "
      "[--seed S]\n"
      "                    [--retries R] [--timeout-ms T] "
      "[--allow-transport-errors]\n"
      "                    [--endpoints H:P1,H:P2,...] [--hedge-us U]\n"
      "                    [--think-us U] [--min-success RATE]\n"
      "                    [--metrics-dump FILE]\n"
      "                    [--trace-sample P] [--trace-log FILE]\n"
      "                    [--open-loop RATE --connections N]\n");
  std::exit(2);
}

/// One counter per wire Status value (kOk..kDegraded).
constexpr std::size_t kNumStatuses = 6;

struct SharedState {
  Options opt;
  const Graph* graph = nullptr;  // non-null with --verify
  std::vector<FaultSet> fault_pool;
  std::atomic<bool> first_violation_reported{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> transport_errors{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> successes{0};
  /// Final replies by wire Status (a retried request counts its last
  /// reply); degraded is an answer, broken out so SLO math can count it
  /// separately from ok.
  std::atomic<std::uint64_t> status_counts[kNumStatuses]{};
  /// Client-side registry shared by every worker's ReplicaClient; its
  /// Prometheus exposition is what --metrics-dump writes.
  server::Metrics client_metrics;
  std::mutex agg_mu;
  Histogram latency_us{1.25};
  /// Fleet-wide replica stats, merged under agg_mu as workers exit.
  server::ReplicaStats replica_stats;
  /// Open-loop mode: one p99 (in us) per connection, pushed under agg_mu.
  std::vector<double> conn_p99_us;
  /// --trace-log destination; one whole JSON line per fputs under trace_mu.
  std::mutex trace_mu;
  FILE* trace_file = nullptr;
};

/// Append one "client.request" root span to the event log (same schema as
/// the server-side logs — see obs/trace.hpp). Plain jsonl, no fsdl::obs:
/// client-side tracing must work in FSDL_TRACE=OFF builds too.
void log_client_span(SharedState& state, std::uint64_t trace_hi,
                     std::uint64_t trace_lo, std::uint64_t span,
                     std::uint64_t start_us, double dur_us) {
  JsonlWriter w;
  w.field_u64("ts", start_us)
      .field("svc", "client")
      .field_u64("pid", static_cast<std::uint64_t>(::getpid()))
      .field_hex128("trace", trace_hi, trace_lo)
      .field_hex64("span", span)
      .field_hex64("parent", 0)
      .field("name", "client.request")
      .field_double("dur_us", dur_us)
      .field("kind", "span");
  const std::string line = w.line() + "\n";
  std::lock_guard<std::mutex> lock(state.trace_mu);
  std::fputs(line.c_str(), state.trace_file);
  std::fflush(state.trace_file);
}

/// Wall-clock epoch micros (the event-log time base; obs::epoch_us is
/// unavailable in OFF builds).
std::uint64_t wall_epoch_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void merge_replica_stats(server::ReplicaStats& into,
                         const server::ReplicaStats& from) {
  if (into.endpoints.size() < from.endpoints.size()) {
    into.endpoints.resize(from.endpoints.size());
  }
  for (std::size_t k = 0; k < from.endpoints.size(); ++k) {
    into.endpoints[k].requests += from.endpoints[k].requests;
    into.endpoints[k].failures += from.endpoints[k].failures;
    into.endpoints[k].breaker_opens += from.endpoints[k].breaker_opens;
    into.endpoints[k].probes += from.endpoints[k].probes;
  }
  into.failovers += from.failovers;
  into.retries += from.retries;
  into.sheds_seen += from.sheds_seen;
  into.hedges_fired += from.hedges_fired;
  into.hedges_won += from.hedges_won;
  into.hedges_lost += from.hedges_lost;
}

/// "v3 v9 e(4,5)" — the fault set spelled out for a violation report.
std::string describe_faults(const FaultSet& faults) {
  std::string out;
  for (Vertex v : faults.vertices()) {
    if (!out.empty()) out += ' ';
    out += 'v' + std::to_string(v);
  }
  for (const auto& [a, b] : faults.edges()) {
    if (!out.empty()) out += ' ';
    out += "e(" + std::to_string(a) + ',' + std::to_string(b) + ')';
  }
  return out.empty() ? std::string("empty") : out;
}

/// δ within [d, (1+ε)d]; infinities must agree exactly.
bool bound_ok(Dist exact, Dist approx, double eps) {
  if (exact == kInfDist || approx == kInfDist) return exact == approx;
  if (approx < exact) return false;
  return static_cast<double>(approx) <=
         (1.0 + eps) * static_cast<double>(exact) + 1e-9;
}

void worker(SharedState& state, unsigned tid) {
  const Options& opt = state.opt;
  Rng rng(state.opt.seed * 7919 + tid);
  server::ReplicaClientOptions ropt;
  ropt.client.connect_timeout_ms = opt.timeout_ms;
  ropt.client.recv_timeout_ms = opt.timeout_ms;
  ropt.client.send_timeout_ms = opt.timeout_ms;
  // --retries R = R extra attempts after the first, spread over the
  // replica set (same meaning the single-endpoint client gave it).
  ropt.max_attempts = opt.retries + 1;
  ropt.hedge_us = opt.hedge_us;
  ropt.seed = opt.seed * 104729 + tid;
  server::ReplicaClient client(opt.endpoints, ropt, &state.client_metrics);
  Histogram local_latency{1.25};
  std::uint64_t local_violations = 0;
  std::uint64_t local_queries = 0;
  std::uint64_t local_successes = 0;
  std::uint64_t local_transport_errors = 0;
  std::uint64_t local_status[kNumStatuses] = {};
  try {
    std::size_t fault_idx = tid % state.fault_pool.size();
    for (unsigned r = 0; r < opt.requests; ++r) {
      if (rng.chance(opt.churn)) {
        fault_idx = rng.below(state.fault_pool.size());
      }
      const FaultSet& faults = state.fault_pool[fault_idx];
      std::vector<std::pair<Vertex, Vertex>> pairs;
      const unsigned npairs = opt.batch == 0 ? 1 : opt.batch;
      pairs.reserve(npairs);
      for (unsigned k = 0; k < npairs; ++k) {
        pairs.emplace_back(rng.vertex(opt.n), rng.vertex(opt.n));
      }
      if (opt.think_us != 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(opt.think_us));
      }

      // Fresh trace ids per request; the sampled bit (probability
      // --trace-sample) decides whether servers flush their spans. The
      // context itself rides every request so shard-side slow-query
      // reports stay attributable even for unsampled traffic.
      server::TraceContext trace;
      std::uint64_t client_span = 0;
      if (opt.trace_sample > 0.0) {
        trace.present = true;
        do { trace.trace_hi = rng.next(); } while (trace.trace_hi == 0);
        do { trace.trace_lo = rng.next(); } while (trace.trace_lo == 0);
        do { client_span = rng.next(); } while (client_span == 0);
        trace.parent_span = client_span;
        if (rng.chance(opt.trace_sample)) {
          trace.flags |= server::TraceContext::kSampledFlag;
        }
        if (opt.timeout_ms > 0) trace.deadline_us = opt.timeout_ms * 1000u;
      }
      const std::uint64_t span_start =
          state.trace_file != nullptr ? wall_epoch_us() : 0;
      WallTimer timer;
      server::Request req;
      req.opcode =
          opt.batch == 0 ? server::Opcode::kDist : server::Opcode::kBatch;
      req.pairs = pairs;
      req.faults = faults;
      req.trace = trace;
      server::Response resp;
      try {
        // The raw Response, not the dist()/batch() shorthands: the final
        // report breaks replies down by wire status, and a DEGRADED answer
        // carries the serving epoch the violation report needs.
        resp = client.call_idempotent(req);
      } catch (const std::exception& e) {
        // Every replica failed (or a hard protocol error). Skip this
        // request; the client reconnects on the next one. Lost requests
        // count as transport errors, never as silent success.
        ++local_transport_errors;
        if (local_transport_errors <= 3) {
          std::fprintf(stderr, "thread %u request %u: %s\n", tid, r, e.what());
        }
        continue;
      }
      const auto status_idx = static_cast<std::size_t>(resp.status);
      if (status_idx < kNumStatuses) ++local_status[status_idx];
      if (!resp.answered() || resp.distances.size() != pairs.size()) {
        // A definitive non-answer (timeout/overloaded/... survived the
        // retry policy). Same books as a transport error: the request got
        // no distances.
        ++local_transport_errors;
        if (local_transport_errors <= 3) {
          std::fprintf(stderr, "thread %u request %u: %s: %s\n", tid, r,
                       server::status_name(resp.status), resp.text.c_str());
        }
        continue;
      }
      const std::vector<Dist>& answers = resp.distances;
      local_latency.add(timer.elapsed_us());
      local_queries += answers.size();
      ++local_successes;
      if (state.trace_file != nullptr && trace.sampled()) {
        log_client_span(state, trace.trace_hi, trace.trace_lo, client_span,
                        span_start, timer.elapsed_us());
      }

      if (state.graph != nullptr) {
        // "epoch=live" for a normal answer (the replica's current labels);
        // a DEGRADED answer names the stale snapshot that served it, so a
        // violation is attributable to the exact label version at fault.
        const std::string epoch_str =
            resp.status == server::Status::kDegraded
                ? std::to_string(resp.epoch)
                : std::string("live");
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          const Dist exact = distance_avoiding(*state.graph, pairs[k].first,
                                               pairs[k].second, faults);
          if (!bound_ok(exact, answers[k], opt.eps)) {
            ++local_violations;
            // The first offender gets the full (s, t, F) tuple so the
            // failure reproduces with one fsdl query invocation.
            if (!state.first_violation_reported.exchange(true)) {
              // trace= is all zeros without --trace-sample; with it, the
              // id to grep for in the fleet's event logs.
              std::fprintf(stderr,
                           "first violation: s=%u t=%u F={%s} exact=%u "
                           "served=%u eps=%.3g epoch=%s "
                           "trace=%016llx%016llx\n",
                           pairs[k].first, pairs[k].second,
                           describe_faults(faults).c_str(), exact, answers[k],
                           opt.eps, epoch_str.c_str(),
                           static_cast<unsigned long long>(trace.trace_hi),
                           static_cast<unsigned long long>(trace.trace_lo));
            }
            std::fprintf(
                stderr,
                "violation: d(%u,%u |F|=%zu) exact=%u served=%u epoch=%s\n",
                pairs[k].first, pairs[k].second, faults.size(), exact,
                answers[k], epoch_str.c_str());
          }
        }
      }
      if (opt.stats_every != 0 && (r + 1) % opt.stats_every == 0) {
        try {
          (void)client.stats();
        } catch (const std::exception&) {
          // STATS is a probe, not part of the measured workload; a failed
          // probe costs nothing (the replica client reconnects on the next
          // query).
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "thread %u: %s\n", tid, e.what());
    ++local_transport_errors;
  }
  state.violations.fetch_add(local_violations);
  state.queries.fetch_add(local_queries);
  state.successes.fetch_add(local_successes);
  state.transport_errors.fetch_add(local_transport_errors);
  for (std::size_t s = 0; s < kNumStatuses; ++s) {
    state.status_counts[s].fetch_add(local_status[s]);
  }
  std::lock_guard<std::mutex> lock(state.agg_mu);
  state.latency_us.merge(local_latency);
  merge_replica_stats(state.replica_stats, client.replica_stats());
}

/// One connection of the open-loop pool: an independent Poisson arrival
/// process of rate (--open-loop / --connections) over a single persistent
/// connection. Latency is charged from the *scheduled* arrival — a request
/// that waits behind a slow predecessor on this connection pays that wait,
/// which is exactly the queueing delay a closed loop hides.
void open_loop_worker(SharedState& state, unsigned tid, unsigned requests) {
  const Options& opt = state.opt;
  Rng rng(opt.seed * 7919 + tid);
  server::ReplicaClientOptions ropt;
  ropt.client.connect_timeout_ms = opt.timeout_ms;
  ropt.client.recv_timeout_ms = opt.timeout_ms;
  ropt.client.send_timeout_ms = opt.timeout_ms;
  ropt.max_attempts = opt.retries + 1;
  ropt.seed = opt.seed * 104729 + tid;
  server::ReplicaClient client(opt.endpoints, ropt, &state.client_metrics);
  Histogram local_latency{1.25};
  std::uint64_t local_queries = 0;
  std::uint64_t local_successes = 0;
  std::uint64_t local_transport_errors = 0;
  std::uint64_t local_status[kNumStatuses] = {};
  const double mean_gap_us =
      1e6 * static_cast<double>(opt.connections) / opt.open_loop;
  auto scheduled = std::chrono::steady_clock::now();
  std::size_t fault_idx = tid % state.fault_pool.size();
  for (unsigned r = 0; r < requests; ++r) {
    double u;
    do { u = rng.uniform(); } while (u <= 0.0);
    scheduled += std::chrono::microseconds(
        static_cast<std::int64_t>(-std::log(u) * mean_gap_us));
    // If we're behind schedule this returns immediately: the arrival is
    // queued, and its latency below includes the time already lost.
    std::this_thread::sleep_until(scheduled);
    if (rng.chance(opt.churn)) {
      fault_idx = rng.below(state.fault_pool.size());
    }
    const FaultSet& faults = state.fault_pool[fault_idx];
    std::vector<std::pair<Vertex, Vertex>> pairs;
    const unsigned npairs = opt.batch == 0 ? 1 : opt.batch;
    pairs.reserve(npairs);
    for (unsigned k = 0; k < npairs; ++k) {
      pairs.emplace_back(rng.vertex(opt.n), rng.vertex(opt.n));
    }
    server::Request req;
    req.opcode =
        opt.batch == 0 ? server::Opcode::kDist : server::Opcode::kBatch;
    req.pairs = pairs;
    req.faults = faults;
    server::Response resp;
    try {
      resp = client.call_idempotent(req);
    } catch (const std::exception& e) {
      ++local_transport_errors;
      if (local_transport_errors <= 3) {
        std::fprintf(stderr, "conn %u request %u: %s\n", tid, r, e.what());
      }
      continue;
    }
    const auto status_idx = static_cast<std::size_t>(resp.status);
    if (status_idx < kNumStatuses) ++local_status[status_idx];
    if (!resp.answered() || resp.distances.size() != pairs.size()) {
      ++local_transport_errors;
      if (local_transport_errors <= 3) {
        std::fprintf(stderr, "conn %u request %u: %s: %s\n", tid, r,
                     server::status_name(resp.status), resp.text.c_str());
      }
      continue;
    }
    local_queries += resp.distances.size();
    ++local_successes;
    const double lat_us =
        std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - scheduled)
            .count();
    local_latency.add(lat_us);
  }
  state.queries.fetch_add(local_queries);
  state.successes.fetch_add(local_successes);
  state.transport_errors.fetch_add(local_transport_errors);
  for (std::size_t s = 0; s < kNumStatuses; ++s) {
    state.status_counts[s].fetch_add(local_status[s]);
  }
  std::lock_guard<std::mutex> lock(state.agg_mu);
  if (!local_latency.empty()) {
    state.conn_p99_us.push_back(local_latency.percentile(99));
  }
  state.latency_us.merge(local_latency);
  merge_replica_stats(state.replica_stats, client.replica_stats());
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* {
      if (k + 1 >= argc) usage("missing argument value");
      return argv[++k];
    };
    if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--threads") opt.threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--requests") opt.requests = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--batch") opt.batch = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--fault-pool") opt.fault_pool = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--faults") opt.faults = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--churn") opt.churn = std::strtod(next(), nullptr);
    else if (arg == "--stats-every") opt.stats_every = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--n") opt.n = static_cast<Vertex>(std::atol(next()));
    else if (arg == "--verify") opt.verify_graph = next();
    else if (arg == "--eps") opt.eps = std::strtod(next(), nullptr);
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--retries") opt.retries = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--timeout-ms") opt.timeout_ms = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--allow-transport-errors") opt.allow_transport_errors = true;
    else if (arg == "--endpoints") {
      try {
        opt.endpoints = server::parse_endpoints(next());
      } catch (const std::exception& e) {
        usage(e.what());
      }
    }
    else if (arg == "--hedge-us") opt.hedge_us = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--think-us") opt.think_us = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--min-success") opt.min_success = std::strtod(next(), nullptr);
    else if (arg == "--metrics-dump") opt.metrics_dump = next();
    else if (arg == "--trace-sample") opt.trace_sample = std::strtod(next(), nullptr);
    else if (arg == "--trace-log") opt.trace_log = next();
    else if (arg == "--open-loop") opt.open_loop = std::strtod(next(), nullptr);
    else if (arg == "--connections") opt.connections = static_cast<unsigned>(std::atoi(next()));
    else usage("unknown option");
  }
  if (opt.endpoints.empty()) {
    if (opt.port == 0) usage("--port or --endpoints is required");
    opt.endpoints.push_back({opt.host, opt.port});
  }
  if (opt.fault_pool == 0) opt.fault_pool = 1;
  if (opt.open_loop > 0.0) {
    if (opt.connections == 0) opt.connections = 16;
    if (!opt.verify_graph.empty()) {
      usage("--verify is not supported with --open-loop");
    }
  } else if (opt.connections != 0) {
    usage("--connections requires --open-loop");
  }

  try {
    Graph graph;
    SharedState state;
    if (!opt.verify_graph.empty()) {
      graph = load_graph(opt.verify_graph);
      state.graph = &graph;
      opt.n = graph.num_vertices();
    }
    if (opt.n == 0) usage("need --n or --verify to size the workload");

    // Pre-generate the fault-set pool (vertex faults; with a graph at hand,
    // mix in real edge faults too).
    Rng pool_rng(opt.seed);
    state.fault_pool.resize(opt.fault_pool);
    for (auto& f : state.fault_pool) {
      unsigned guard = 0;
      while (f.size() < opt.faults && ++guard < 20 * opt.faults + 20) {
        if (state.graph != nullptr && pool_rng.chance(0.3)) {
          const Vertex a = pool_rng.vertex(opt.n);
          const auto nb = state.graph->neighbors(a);
          if (!nb.empty()) f.add_edge(a, nb[pool_rng.below(nb.size())]);
        } else {
          f.add_vertex(pool_rng.vertex(opt.n));
        }
      }
    }
    state.opt = opt;
    if (!opt.trace_log.empty()) {
      state.trace_file = std::fopen(opt.trace_log.c_str(), "a");
      if (state.trace_file == nullptr) {
        std::fprintf(stderr, "cannot open --trace-log %s\n",
                     opt.trace_log.c_str());
        return 1;
      }
    }

    WallTimer wall;
    std::vector<std::thread> threads;
    if (opt.open_loop > 0.0) {
      // --requests is the total budget; split it evenly over the pool.
      const unsigned per_conn =
          (opt.requests + opt.connections - 1) / opt.connections;
      threads.reserve(opt.connections);
      for (unsigned tid = 0; tid < opt.connections; ++tid) {
        threads.emplace_back(open_loop_worker, std::ref(state), tid, per_conn);
      }
    } else {
      threads.reserve(opt.threads);
      for (unsigned tid = 0; tid < opt.threads; ++tid) {
        threads.emplace_back(worker, std::ref(state), tid);
      }
    }
    for (auto& t : threads) t.join();
    const double secs = wall.elapsed_seconds();

    const std::uint64_t q = state.queries.load();
    if (opt.open_loop > 0.0) {
      std::printf("loadgen: open-loop rate=%.0f/s connections=%u batch=%u "
                  "fault_pool=%u churn=%.2f\n",
                  opt.open_loop, opt.connections, opt.batch, opt.fault_pool,
                  opt.churn);
    } else {
      std::printf("loadgen: threads=%u requests/thread=%u batch=%u "
                  "fault_pool=%u churn=%.2f\n",
                  opt.threads, opt.requests, opt.batch, opt.fault_pool,
                  opt.churn);
    }
    std::printf("queries: %llu in %.2fs  ->  %.0f q/s\n",
                static_cast<unsigned long long>(q), secs,
                secs > 0 ? static_cast<double>(q) / secs : 0.0);
    if (!state.latency_us.empty()) {
      std::printf("request latency us: mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                  "max=%.1f\n",
                  state.latency_us.mean(), state.latency_us.percentile(50),
                  state.latency_us.percentile(95),
                  state.latency_us.percentile(99), state.latency_us.max());
    }
    if (!state.conn_p99_us.empty()) {
      std::sort(state.conn_p99_us.begin(), state.conn_p99_us.end());
      std::printf("per-conn p99 us: median=%.1f max=%.1f (over %zu "
                  "connections)\n",
                  state.conn_p99_us[state.conn_p99_us.size() / 2],
                  state.conn_p99_us.back(), state.conn_p99_us.size());
    }
    const std::uint64_t attempted =
        opt.open_loop > 0.0
            ? static_cast<std::uint64_t>(
                  (opt.requests + opt.connections - 1) / opt.connections) *
                  opt.connections
            : static_cast<std::uint64_t>(opt.threads) * opt.requests;
    const double success_rate =
        attempted == 0 ? 1.0
                       : static_cast<double>(state.successes.load()) /
                             static_cast<double>(attempted);
    // Final replies by wire status. `ok` and `degraded` are both answers
    // (degraded = a stale-label serve under shard loss, tagged with the
    // snapshot epoch); the rest are the definitive non-answers that
    // survived the retry policy. `error` = kError protocol rejections.
    const auto sc = [&](server::Status s) {
      return static_cast<unsigned long long>(
          state.status_counts[static_cast<std::size_t>(s)].load());
    };
    std::printf("status breakdown: ok=%llu degraded=%llu timeout=%llu "
                "overloaded=%llu draining=%llu error=%llu\n",
                sc(server::Status::kOk), sc(server::Status::kDegraded),
                sc(server::Status::kTimeout), sc(server::Status::kOverloaded),
                sc(server::Status::kDraining), sc(server::Status::kError));
    const server::ReplicaStats& rs = state.replica_stats;
    std::printf(
        "resilience: retries=%llu sheds_seen=%llu transport_errors=%llu "
        "success_rate=%.4f\n",
        static_cast<unsigned long long>(rs.retries),
        static_cast<unsigned long long>(rs.sheds_seen),
        static_cast<unsigned long long>(state.transport_errors.load()),
        success_rate);
    for (std::size_t k = 0; k < rs.endpoints.size(); ++k) {
      std::printf("replica %s:%u: requests=%llu failures=%llu "
                  "breaker_opens=%llu probes=%llu\n",
                  opt.endpoints[k].host.c_str(), opt.endpoints[k].port,
                  static_cast<unsigned long long>(rs.endpoints[k].requests),
                  static_cast<unsigned long long>(rs.endpoints[k].failures),
                  static_cast<unsigned long long>(
                      rs.endpoints[k].breaker_opens),
                  static_cast<unsigned long long>(rs.endpoints[k].probes));
    }
    std::printf("ha: failovers=%llu hedges_fired=%llu hedges_won=%llu "
                "hedges_lost=%llu\n",
                static_cast<unsigned long long>(rs.failovers),
                static_cast<unsigned long long>(rs.hedges_fired),
                static_cast<unsigned long long>(rs.hedges_won),
                static_cast<unsigned long long>(rs.hedges_lost));
    if (state.graph != nullptr) {
      std::printf("verified against exact baseline (eps=%.3g): %llu "
                  "violations\n",
                  opt.eps,
                  static_cast<unsigned long long>(state.violations.load()));
    }

    // Client-side Prometheus dump (failovers/hedges as a scraper would see
    // them); atomic so a concurrent reader never sees a torn file.
    if (!opt.metrics_dump.empty()) {
      std::string error;
      if (!atomic_write_file(
              opt.metrics_dump,
              state.client_metrics.render_prometheus(
                  server::PreparedCache::Stats{}),
              &error)) {
        std::fprintf(stderr, "cannot write metrics dump to %s: %s\n",
                     opt.metrics_dump.c_str(), error.c_str());
      }
    }

    // Final server-side snapshot; best effort (under chaos the probe
    // connection itself can be hit). Try each replica until one answers.
    // The probe gets the run's deadlines: a wedged replica (e.g. SIGSTOPped
    // by the chaos supervisor) must fail the probe, not hang the whole
    // loadgen run on a deadline-less recv.
    server::ClientOptions probe_opt;
    probe_opt.connect_timeout_ms = opt.timeout_ms;
    probe_opt.recv_timeout_ms = opt.timeout_ms;
    probe_opt.send_timeout_ms = opt.timeout_ms;
    for (const auto& ep : opt.endpoints) {
      try {
        server::Client probe(probe_opt);
        probe.connect(ep.host, ep.port);
        std::printf("--- server stats (%s:%u) ---\n%s", ep.host.c_str(),
                    ep.port, probe.stats().c_str());
        break;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "stats probe %s:%u failed: %s\n", ep.host.c_str(),
                     ep.port, e.what());
      }
    }

    if (state.trace_file != nullptr) std::fclose(state.trace_file);

    const bool failed =
        state.violations.load() != 0 ||
        (!opt.allow_transport_errors && state.transport_errors.load() != 0) ||
        success_rate < opt.min_success;
    if (success_rate < opt.min_success) {
      std::fprintf(stderr, "FAIL: success_rate %.4f < --min-success %.4f\n",
                   success_rate, opt.min_success);
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
