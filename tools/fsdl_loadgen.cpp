// fsdl_loadgen — load generator / correctness checker for fsdl_serve.
//
//   fsdl_loadgen --port P [--host H] [--threads N] [--requests R]
//                [--batch B] [--fault-pool K] [--faults F] [--churn C]
//                [--stats-every M] [--n N | --verify graph.edges]
//                [--eps E] [--seed S] [--retries R] [--timeout-ms T]
//                [--allow-transport-errors]
//
// Resilience knobs (the chaos pipeline's client side): --retries arms the
// client's exponential-backoff retry policy for idempotent queries,
// --timeout-ms sets the connect/recv/send deadlines, and
// --allow-transport-errors keeps transport failures out of the exit status
// (verification violations always fail the run — corruption must surface
// as an error, never as a wrong distance).
//
// N client threads, one connection each, R requests per thread. Each
// request draws its fault set from a pool of K pre-generated sets; with
// probability C the thread switches to a different pool entry first
// (fault-set churn = cache pressure on the server's PreparedFaults LRU).
// B = 0 sends single DIST requests, B > 0 sends BATCH frames of B pairs.
// Every M-th request additionally sends a STATS probe.
//
// With --verify, every returned distance δ is checked against the exact
// ground truth d = d_{G\F} from a BFS on the local graph copy:
// d ≤ δ ≤ (1+ε)·d (and δ = ∞ iff d = ∞). Exit status is nonzero if any
// violation occurred — this is the end-to-end acceptance gate.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/fault_view.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "server/client.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace fsdl;

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  unsigned threads = 4;
  unsigned requests = 1000;
  unsigned batch = 0;
  unsigned fault_pool = 4;
  unsigned faults = 2;
  double churn = 0.1;
  unsigned stats_every = 100;
  Vertex n = 0;
  std::string verify_graph;
  double eps = 1.0;
  std::uint64_t seed = 1;
  unsigned retries = 0;
  unsigned timeout_ms = 0;
  bool allow_transport_errors = false;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: fsdl_loadgen --port P [--host H] [--threads N] [--requests R]\n"
      "                    [--batch B] [--fault-pool K] [--faults F]\n"
      "                    [--churn C] [--stats-every M]\n"
      "                    [--n N | --verify graph.edges] [--eps E] "
      "[--seed S]\n"
      "                    [--retries R] [--timeout-ms T] "
      "[--allow-transport-errors]\n");
  std::exit(2);
}

struct SharedState {
  Options opt;
  const Graph* graph = nullptr;  // non-null with --verify
  std::vector<FaultSet> fault_pool;
  std::atomic<bool> first_violation_reported{false};
  std::atomic<std::uint64_t> violations{0};
  std::atomic<std::uint64_t> transport_errors{0};
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> sheds_seen{0};
  std::mutex agg_mu;
  Histogram latency_us{1.25};
};

/// "v3 v9 e(4,5)" — the fault set spelled out for a violation report.
std::string describe_faults(const FaultSet& faults) {
  std::string out;
  for (Vertex v : faults.vertices()) {
    if (!out.empty()) out += ' ';
    out += 'v' + std::to_string(v);
  }
  for (const auto& [a, b] : faults.edges()) {
    if (!out.empty()) out += ' ';
    out += "e(" + std::to_string(a) + ',' + std::to_string(b) + ')';
  }
  return out.empty() ? std::string("empty") : out;
}

/// δ within [d, (1+ε)d]; infinities must agree exactly.
bool bound_ok(Dist exact, Dist approx, double eps) {
  if (exact == kInfDist || approx == kInfDist) return exact == approx;
  if (approx < exact) return false;
  return static_cast<double>(approx) <=
         (1.0 + eps) * static_cast<double>(exact) + 1e-9;
}

void worker(SharedState& state, unsigned tid) {
  const Options& opt = state.opt;
  Rng rng(state.opt.seed * 7919 + tid);
  server::ClientOptions copt;
  copt.connect_timeout_ms = opt.timeout_ms;
  copt.recv_timeout_ms = opt.timeout_ms;
  copt.send_timeout_ms = opt.timeout_ms;
  copt.max_retries = opt.retries;
  copt.retry_seed = opt.seed * 104729 + tid;
  server::Client client(copt);
  Histogram local_latency{1.25};
  std::uint64_t local_violations = 0;
  std::uint64_t local_queries = 0;
  std::uint64_t local_transport_errors = 0;
  try {
    client.connect(opt.host, opt.port);
    std::size_t fault_idx = tid % state.fault_pool.size();
    for (unsigned r = 0; r < opt.requests; ++r) {
      if (rng.chance(opt.churn)) {
        fault_idx = rng.below(state.fault_pool.size());
      }
      const FaultSet& faults = state.fault_pool[fault_idx];
      std::vector<std::pair<Vertex, Vertex>> pairs;
      const unsigned npairs = opt.batch == 0 ? 1 : opt.batch;
      pairs.reserve(npairs);
      for (unsigned k = 0; k < npairs; ++k) {
        pairs.emplace_back(rng.vertex(opt.n), rng.vertex(opt.n));
      }

      WallTimer timer;
      std::vector<Dist> answers;
      try {
        if (opt.batch == 0) {
          answers.push_back(
              client.dist(pairs[0].first, pairs[0].second, faults));
        } else {
          answers = client.batch(pairs, faults);
        }
      } catch (const std::exception& e) {
        // Retries exhausted (or a hard protocol error). Skip this request;
        // the client reconnects on the next one. Lost requests count as
        // transport errors, never as silent success.
        ++local_transport_errors;
        if (local_transport_errors <= 3) {
          std::fprintf(stderr, "thread %u request %u: %s\n", tid, r, e.what());
        }
        continue;
      }
      local_latency.add(timer.elapsed_us());
      local_queries += answers.size();

      if (state.graph != nullptr) {
        for (std::size_t k = 0; k < pairs.size(); ++k) {
          const Dist exact = distance_avoiding(*state.graph, pairs[k].first,
                                               pairs[k].second, faults);
          if (!bound_ok(exact, answers[k], opt.eps)) {
            ++local_violations;
            // The first offender gets the full (s, t, F) tuple so the
            // failure reproduces with one fsdl query invocation.
            if (!state.first_violation_reported.exchange(true)) {
              std::fprintf(stderr,
                           "first violation: s=%u t=%u F={%s} exact=%u "
                           "served=%u eps=%.3g\n",
                           pairs[k].first, pairs[k].second,
                           describe_faults(faults).c_str(), exact, answers[k],
                           opt.eps);
            }
            std::fprintf(stderr,
                         "violation: d(%u,%u |F|=%zu) exact=%u served=%u\n",
                         pairs[k].first, pairs[k].second, faults.size(), exact,
                         answers[k]);
          }
        }
      }
      if (opt.stats_every != 0 && (r + 1) % opt.stats_every == 0) {
        try {
          (void)client.stats();
        } catch (const std::exception&) {
          // STATS is a probe, not part of the measured workload; a failed
          // probe only costs the connection (rebuilt on the next query).
          client.close();
        }
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "thread %u: %s\n", tid, e.what());
    ++local_transport_errors;
  }
  state.violations.fetch_add(local_violations);
  state.queries.fetch_add(local_queries);
  state.transport_errors.fetch_add(local_transport_errors);
  state.retries.fetch_add(client.retries());
  state.sheds_seen.fetch_add(client.sheds_seen());
  std::lock_guard<std::mutex> lock(state.agg_mu);
  state.latency_us.merge(local_latency);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* {
      if (k + 1 >= argc) usage("missing argument value");
      return argv[++k];
    };
    if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--threads") opt.threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--requests") opt.requests = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--batch") opt.batch = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--fault-pool") opt.fault_pool = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--faults") opt.faults = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--churn") opt.churn = std::strtod(next(), nullptr);
    else if (arg == "--stats-every") opt.stats_every = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--n") opt.n = static_cast<Vertex>(std::atol(next()));
    else if (arg == "--verify") opt.verify_graph = next();
    else if (arg == "--eps") opt.eps = std::strtod(next(), nullptr);
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--retries") opt.retries = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--timeout-ms") opt.timeout_ms = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--allow-transport-errors") opt.allow_transport_errors = true;
    else usage("unknown option");
  }
  if (opt.port == 0) usage("--port is required");
  if (opt.fault_pool == 0) opt.fault_pool = 1;

  try {
    Graph graph;
    SharedState state;
    if (!opt.verify_graph.empty()) {
      graph = load_graph(opt.verify_graph);
      state.graph = &graph;
      opt.n = graph.num_vertices();
    }
    if (opt.n == 0) usage("need --n or --verify to size the workload");

    // Pre-generate the fault-set pool (vertex faults; with a graph at hand,
    // mix in real edge faults too).
    Rng pool_rng(opt.seed);
    state.fault_pool.resize(opt.fault_pool);
    for (auto& f : state.fault_pool) {
      unsigned guard = 0;
      while (f.size() < opt.faults && ++guard < 20 * opt.faults + 20) {
        if (state.graph != nullptr && pool_rng.chance(0.3)) {
          const Vertex a = pool_rng.vertex(opt.n);
          const auto nb = state.graph->neighbors(a);
          if (!nb.empty()) f.add_edge(a, nb[pool_rng.below(nb.size())]);
        } else {
          f.add_vertex(pool_rng.vertex(opt.n));
        }
      }
    }
    state.opt = opt;

    WallTimer wall;
    std::vector<std::thread> threads;
    threads.reserve(opt.threads);
    for (unsigned tid = 0; tid < opt.threads; ++tid) {
      threads.emplace_back(worker, std::ref(state), tid);
    }
    for (auto& t : threads) t.join();
    const double secs = wall.elapsed_seconds();

    const std::uint64_t q = state.queries.load();
    std::printf("loadgen: threads=%u requests/thread=%u batch=%u "
                "fault_pool=%u churn=%.2f\n",
                opt.threads, opt.requests, opt.batch, opt.fault_pool,
                opt.churn);
    std::printf("queries: %llu in %.2fs  ->  %.0f q/s\n",
                static_cast<unsigned long long>(q), secs,
                secs > 0 ? static_cast<double>(q) / secs : 0.0);
    if (!state.latency_us.empty()) {
      std::printf("request latency us: mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
                  "max=%.1f\n",
                  state.latency_us.mean(), state.latency_us.percentile(50),
                  state.latency_us.percentile(95),
                  state.latency_us.percentile(99), state.latency_us.max());
    }
    std::printf("resilience: retries=%llu sheds_seen=%llu "
                "transport_errors=%llu\n",
                static_cast<unsigned long long>(state.retries.load()),
                static_cast<unsigned long long>(state.sheds_seen.load()),
                static_cast<unsigned long long>(state.transport_errors.load()));
    if (state.graph != nullptr) {
      std::printf("verified against exact baseline (eps=%.3g): %llu "
                  "violations\n",
                  opt.eps,
                  static_cast<unsigned long long>(state.violations.load()));
    }

    // Final server-side snapshot; best effort (under chaos the probe
    // connection itself can be hit).
    try {
      server::Client probe;
      probe.connect(opt.host, opt.port);
      std::printf("--- server stats ---\n%s", probe.stats().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "stats probe failed: %s\n", e.what());
    }

    const bool failed =
        state.violations.load() != 0 ||
        (!opt.allow_transport_errors && state.transport_errors.load() != 0);
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
