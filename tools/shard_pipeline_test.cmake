# Sharded serving pipeline, four acts (the fourth in trace builds only):
#
#   1. Split/merge: cut the labeling into 2 shard files with fsdl
#      shard_split, reassemble them (in the wrong order, deliberately) with
#      fsdl shard_merge, and require the result to be BYTE-IDENTICAL to the
#      original unsharded file. Also: a server started with a wrong
#      --shard-id/--shard-count assertion must refuse to come up.
#   2. Router under fire: 2 shards x 2 replicas behind fsdl_router; a
#      verified loadgen workload runs through the router while one replica
#      of one shard is SIGKILLed mid-run. Gates: >= 99% answered (loadgen
#      --min-success), ZERO exact-verification violations, and the router's
#      Prometheus dump shows fsdl_failovers_total > 0 plus live
#      fsdl_router_label_fetches_total / label_cache counters (the label
#      LRU is sized below n so fetches keep flowing all run).
#   3. The router's own HEALTH answers ready with the fleet's n.
#   4. (TRACE_ENABLED builds) Distributed tracing + fleet stats: a fresh
#      traced fleet serves fully-sampled load; fsdl_trace --stitch must
#      join the four processes' event logs into one client -> router ->
#      shard tree covering both fetch shards, and a FLEET_STATS probe must
#      return the merged exposition with both shards scraped.
function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(graph ${WORK_DIR}/shard_graph.edges)
set(scheme ${WORK_DIR}/shard_scheme.fsdl)
set(prefix ${WORK_DIR}/shard_scheme)
set(shard0 ${WORK_DIR}/shard_scheme.shard0of2)
set(shard1 ${WORK_DIR}/shard_scheme.shard1of2)
set(merged ${WORK_DIR}/shard_merged.fsdl)
set(router_prom ${WORK_DIR}/shard_router_metrics.prom)
set(router_log ${WORK_DIR}/shard_router.log)

# Fixed ports (distinct from the ha_pipeline pair; RUN_SERIAL guards both).
set(port_s0r1 45121)
set(port_s0r2 45122)
set(port_s1r1 45123)
set(port_s1r2 45124)
set(port_router 45126)

run_checked(${FSDL_BIN} gen grid 8 8 ${graph})
run_checked(${FSDL_BIN} build ${graph} ${scheme} --eps 1.0)

# --- Act 1: lossless split/merge + the shard-identity assertion. ----------
run_checked(${FSDL_BIN} shard_split ${scheme} ${prefix} 2)
if(NOT EXISTS ${shard0} OR NOT EXISTS ${shard1})
  message(FATAL_ERROR "shard_split did not write both shard files")
endif()
# Merge in reversed order: reassembly must not depend on argv order.
run_checked(${FSDL_BIN} shard_merge ${merged} ${shard1} ${shard0})
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${scheme} ${merged}
                RESULT_VARIABLE cmp)
if(NOT cmp EQUAL 0)
  message(FATAL_ERROR
          "merged labeling is not byte-identical to the original")
endif()
# A server told it holds shard 1 while the file says shard 0 must not start.
execute_process(
  COMMAND ${SERVE_BIN} ${shard0} --port 0 --shard-id 1 --shard-count 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "server accepted a wrong --shard-id assertion")
endif()
if(NOT err MATCHES "shard 0/2")
  message(FATAL_ERROR "shard-assertion error does not name the file's "
                      "partition:\n${err}")
endif()

# --- Act 2: 2 shards x 2 replicas, router in front, SIGKILL mid-run. ------
execute_process(
  COMMAND sh -ec "\
    '${SERVE_BIN}' '${shard0}' --port ${port_s0r1} --workers 2 \
        --shard-id 0 --shard-count 2 --drain-ms 500 \
        > '${WORK_DIR}/shard_s0r1.log' 2>&1 & \
    s0r1=$!; \
    '${SERVE_BIN}' '${shard0}' --port ${port_s0r2} --workers 2 \
        --shard-id 0 --shard-count 2 --drain-ms 500 \
        > '${WORK_DIR}/shard_s0r2.log' 2>&1 & \
    s0r2=$!; \
    '${SERVE_BIN}' '${shard1}' --port ${port_s1r1} --workers 2 \
        --shard-id 1 --shard-count 2 --drain-ms 500 \
        > '${WORK_DIR}/shard_s1r1.log' 2>&1 & \
    s1r1=$!; \
    '${SERVE_BIN}' '${shard1}' --port ${port_s1r2} --workers 2 \
        --shard-id 1 --shard-count 2 --drain-ms 500 \
        > '${WORK_DIR}/shard_s1r2.log' 2>&1 & \
    s1r2=$!; \
    router=; \
    trap 'kill $s0r1 $s0r2 $s1r1 $s1r2 $router 2>/dev/null || true' EXIT; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${WORK_DIR}/shard_s0r1.log' && \
      grep -q 'port=' '${WORK_DIR}/shard_s0r2.log' && \
      grep -q 'port=' '${WORK_DIR}/shard_s1r1.log' && \
      grep -q 'port=' '${WORK_DIR}/shard_s1r2.log' && break; \
      sleep 0.1; \
    done; \
    '${ROUTER_BIN}' \
        --shard 127.0.0.1:${port_s0r1},127.0.0.1:${port_s0r2} \
        --shard 127.0.0.1:${port_s1r1},127.0.0.1:${port_s1r2} \
        --port ${port_router} --workers 4 --label-cache 16 \
        --breaker-cooldown-ms 200 --drain-ms 500 \
        --metrics-dump '${router_prom}' --metrics-interval 0.3 \
        > '${router_log}' 2> '${router_log}.err' & \
    router=$!; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${router_log}' && break; sleep 0.1; \
    done; \
    grep -q 'port=' '${router_log}' || \
      { echo 'router never came up'; cat '${router_log}.err'; exit 1; }; \
    '${LOADGEN_BIN}' --port ${port_router} \
        --threads 4 --requests 700 --think-us 8000 --fault-pool 3 \
        --faults 2 --churn 0.2 --stats-every 0 --verify '${graph}' \
        --eps 1.0 --seed 13 --retries 5 --timeout-ms 2000 \
        --min-success 0.99 --allow-transport-errors & \
    lg=$!; \
    sleep 1.5; \
    kill -9 $s0r1; \
    echo '=== shard 0 replica 1 SIGKILLed ==='; \
    wait $lg; \
    '${SERVE_BIN}' --health 127.0.0.1:${port_router}; \
    kill -INT $router; wait $router; \
    kill -INT $s0r2 $s1r1 $s1r2; wait $s0r2 $s1r1 $s1r2"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "router pipeline failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "verified against exact baseline[^\n]* 0 violations")
  message(FATAL_ERROR "violations through the router:\n${out}")
endif()

# --- Act 3: the router's health + metrics tell the sharding story. --------
if(NOT out MATCHES "ready n=64 shards=2")
  message(FATAL_ERROR "router HEALTH missing fleet identity:\n${out}")
endif()
if(NOT EXISTS ${router_prom})
  message(FATAL_ERROR "no router metrics dump")
endif()
file(READ ${router_prom} prom_text)
if(NOT prom_text MATCHES "fsdl_failovers_total [1-9]")
  message(FATAL_ERROR
          "no failovers in the router dump after SIGKILL:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "fsdl_router_label_fetches_total{result=\"ok\"} [1-9]")
  message(FATAL_ERROR "no successful label fetches recorded:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "fsdl_router_label_cache_hits_total [1-9]")
  message(FATAL_ERROR "label cache recorded no hits:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "fsdl_router_label_cache_misses_total [1-9]")
  message(FATAL_ERROR "label cache recorded no misses:\n${prom_text}")
endif()

# --- Act 4 (trace builds only): distributed tracing + fleet stats. --------
# A fresh 2-shard fleet (one replica each) and the router all write
# --trace-log event logs; every loadgen request carries a sampled trace
# context (--trace-sample 1) and the label cache is tiny so scatter-gather
# fetches hit both shards. Gates: fsdl_trace --stitch joins the three logs
# into at least one complete client -> router -> shard tree spanning both
# fetch shards, and a FLEET_STATS probe returns the merged exposition with
# both shards scraped.
if(NOT TRACE_ENABLED)
  message(STATUS "trace act skipped (FSDL_TRACE=OFF build)")
  return()
endif()

set(trace_client ${WORK_DIR}/shard_trace_client.jsonl)
set(trace_router ${WORK_DIR}/shard_trace_router.jsonl)
set(trace_shard0 ${WORK_DIR}/shard_trace_shard0.jsonl)
set(trace_shard1 ${WORK_DIR}/shard_trace_shard1.jsonl)
set(fleet_prom ${WORK_DIR}/shard_fleet_stats.prom)
file(REMOVE ${trace_client} ${trace_router} ${trace_shard0} ${trace_shard1}
     ${fleet_prom})

execute_process(
  COMMAND sh -ec "\
    '${SERVE_BIN}' '${shard0}' --port ${port_s0r1} --workers 2 \
        --shard-id 0 --shard-count 2 --drain-ms 500 \
        --trace-log '${trace_shard0}' \
        > '${WORK_DIR}/shard_t_s0.log' 2>&1 & \
    s0=$!; \
    '${SERVE_BIN}' '${shard1}' --port ${port_s1r1} --workers 2 \
        --shard-id 1 --shard-count 2 --drain-ms 500 \
        --trace-log '${trace_shard1}' \
        > '${WORK_DIR}/shard_t_s1.log' 2>&1 & \
    s1=$!; \
    router=; \
    trap 'kill $s0 $s1 $router 2>/dev/null || true' EXIT; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${WORK_DIR}/shard_t_s0.log' && \
      grep -q 'port=' '${WORK_DIR}/shard_t_s1.log' && break; \
      sleep 0.1; \
    done; \
    '${ROUTER_BIN}' \
        --shard 127.0.0.1:${port_s0r1} \
        --shard 127.0.0.1:${port_s1r1} \
        --port ${port_router} --workers 2 --label-cache 4 \
        --drain-ms 500 --trace-log '${trace_router}' \
        > '${WORK_DIR}/shard_t_router.log' 2>&1 & \
    router=$!; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${WORK_DIR}/shard_t_router.log' && break; sleep 0.1; \
    done; \
    grep -q 'port=' '${WORK_DIR}/shard_t_router.log' || \
      { echo 'traced router never came up'; \
        cat '${WORK_DIR}/shard_t_router.log'; exit 1; }; \
    '${LOADGEN_BIN}' --port ${port_router} \
        --threads 2 --requests 60 --think-us 1000 --fault-pool 3 \
        --faults 2 --stats-every 0 --n 64 --seed 29 --timeout-ms 2000 \
        --trace-sample 1 --trace-log '${trace_client}'; \
    '${SERVE_BIN}' --fleet-stats 127.0.0.1:${port_router} \
        > '${fleet_prom}'; \
    kill -INT $router; wait $router; \
    kill -INT $s0 $s1; wait $s0 $s1"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "traced pipeline failed (${rc}):\n${out}\n${err}")
endif()

foreach(log ${trace_client} ${trace_router} ${trace_shard0} ${trace_shard1})
  if(NOT EXISTS ${log})
    message(FATAL_ERROR "trace log ${log} was never written")
  endif()
endforeach()

# Cross-process stitching is the gate: at least one trace must join spans
# from all four processes' logs and fan out to both shards.
run_checked(${TRACE_BIN} --stitch
            ${trace_client} ${trace_router} ${trace_shard0} ${trace_shard1}
            --expect-services client,router,shard --expect-fetch-shards 2)

# The merged FLEET_STATS exposition shows both shards scraped plus the
# router's own per-shard fetch-latency histograms.
file(READ ${fleet_prom} fleet_text)
foreach(shard_id 0 1)
  if(NOT fleet_text MATCHES "fsdl_fleet_scrape_ok{shard=\"${shard_id}\",replica=\"[^\"]*\"} 1")
    message(FATAL_ERROR
            "shard ${shard_id} missing from FLEET_STATS:\n${fleet_text}")
  endif()
  if(NOT fleet_text MATCHES "fsdl_router_shard_fetch_latency_microseconds_count{shard=\"${shard_id}\"} [1-9]")
    message(FATAL_ERROR
            "no fetch-latency histogram for shard ${shard_id}:\n${fleet_text}")
  endif()
endforeach()
if(NOT fleet_text MATCHES "fsdl_fleet_request_latency_microseconds_count")
  message(FATAL_ERROR "no merged fleet histogram:\n${fleet_text}")
endif()
