// fsdl — command-line front end.
//
//   fsdl gen <family> <args...> <out.edges>   generate a graph
//       families: path N | cycle N | grid R C | torus R C | king R C |
//                 tree ARITY DEPTH | disk N RADIUS SEED | roads R C DROP SEED
//   fsdl build <graph.edges> <out.fsdl> [--eps E] [--compact C] [--threads N]
//       preprocess labels (faithful by default; --compact C for the sound
//       small-label preset with net shift C; --threads N construction
//       workers, 0 = hardware concurrency — output is bit-identical for
//       every N)
//   fsdl stats <scheme.fsdl>
//       print label-size statistics
//   fsdl query <scheme.fsdl> S T [-v F]... [-e A B]...
//       forbidden-set distance query from labels only
//   fsdl exact <graph.edges> S T [-v F]... [-e A B]...
//       ground-truth BFS on G\F (for comparison)
//   fsdl shard_split <scheme.fsdl> <out-prefix> K [--ring-seed S]
//                    [--ring-points P]
//       cut an unsharded labeling into K per-shard label files
//       (<out-prefix>.shard<I>of<K>), each carrying its partition identity
//       inside the CRC-covered body; vertices are assigned by the
//       consistent-hash ring (src/shard/partition.hpp)
//   fsdl shard_merge <out.fsdl> <shard.fsdl>...
//       reassemble the full labeling from all K shard files; the result is
//       byte-identical to the original unsharded file (asserted in
//       shard_test and the shard_pipeline ctest)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "core/serialize.hpp"
#include "graph/components.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "shard/shard_store.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace fsdl;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  fsdl gen <family> <args...> <out.edges>\n"
               "  fsdl build <graph.edges> <out.fsdl> [--eps E] [--compact C]"
               " [--threads N]\n"
               "  fsdl stats <scheme.fsdl>\n"
               "  fsdl query <scheme.fsdl> S T [-v F]... [-e A B]...\n"
               "  fsdl exact <graph.edges> S T [-v F]... [-e A B]...\n"
               "  fsdl shard_split <scheme.fsdl> <out-prefix> K"
               " [--ring-seed S] [--ring-points P]\n"
               "  fsdl shard_merge <out.fsdl> <shard.fsdl>...\n");
  std::exit(2);
}

long arg_int(const std::vector<std::string>& args, std::size_t k) {
  if (k >= args.size()) usage("missing numeric argument");
  return std::strtol(args[k].c_str(), nullptr, 10);
}

int cmd_gen(const std::vector<std::string>& args) {
  if (args.size() < 3) usage("gen: need family, args, output path");
  const std::string& family = args[0];
  const std::string& out = args.back();
  Graph g;
  if (family == "path") {
    g = make_path(static_cast<Vertex>(arg_int(args, 1)));
  } else if (family == "cycle") {
    g = make_cycle(static_cast<Vertex>(arg_int(args, 1)));
  } else if (family == "grid") {
    g = make_grid2d(static_cast<Vertex>(arg_int(args, 1)),
                    static_cast<Vertex>(arg_int(args, 2)));
  } else if (family == "torus") {
    g = make_torus2d(static_cast<Vertex>(arg_int(args, 1)),
                     static_cast<Vertex>(arg_int(args, 2)));
  } else if (family == "king") {
    g = make_king_grid(static_cast<Vertex>(arg_int(args, 1)),
                       static_cast<Vertex>(arg_int(args, 2)));
  } else if (family == "tree") {
    g = make_balanced_tree(static_cast<unsigned>(arg_int(args, 1)),
                           static_cast<unsigned>(arg_int(args, 2)));
  } else if (family == "disk") {
    Rng rng(static_cast<std::uint64_t>(arg_int(args, 3)));
    g = largest_component_subgraph(make_unit_disk(
        static_cast<Vertex>(arg_int(args, 1)),
        std::strtod(args[2].c_str(), nullptr), rng));
  } else if (family == "roads") {
    Rng rng(static_cast<std::uint64_t>(arg_int(args, 4)));
    g = make_perturbed_grid(static_cast<Vertex>(arg_int(args, 1)),
                            static_cast<Vertex>(arg_int(args, 2)),
                            std::strtod(args[3].c_str(), nullptr), rng);
  } else {
    usage("gen: unknown family");
  }
  save_graph(g, out);
  std::printf("wrote %s: n=%u m=%zu\n", out.c_str(), g.num_vertices(),
              g.num_edges());
  return 0;
}

int cmd_build(const std::vector<std::string>& args) {
  if (args.size() < 2) usage("build: need graph and output path");
  double eps = 1.0;
  long compact_c = -1;
  BuildOptions build_options;
  for (std::size_t k = 2; k < args.size(); ++k) {
    if (args[k] == "--eps" && k + 1 < args.size()) {
      eps = std::strtod(args[++k].c_str(), nullptr);
    } else if (args[k] == "--compact" && k + 1 < args.size()) {
      compact_c = std::strtol(args[++k].c_str(), nullptr, 10);
    } else if (args[k] == "--threads" && k + 1 < args.size()) {
      build_options.threads =
          static_cast<unsigned>(std::strtol(args[++k].c_str(), nullptr, 10));
    } else {
      usage("build: unknown option");
    }
  }
  const Graph g = load_graph(args[0]);
  const SchemeParams params =
      compact_c >= 0 ? SchemeParams::compact(eps, static_cast<unsigned>(compact_c))
                     : SchemeParams::faithful(eps);
  WallTimer timer;
  const auto scheme = ForbiddenSetLabeling::build(g, params, build_options);
  std::printf("built labels for n=%u in %.2fs (%s, eps=%.3g, c=%u, threads=%u)\n",
              g.num_vertices(), timer.elapsed_seconds(),
              params.faithful_radii ? "faithful" : "compact", eps, params.c,
              resolve_threads(build_options.threads));
  save_labeling(scheme, args[1]);
  std::printf("wrote %s: mean %.0f bits/label, max %zu bits\n",
              args[1].c_str(), scheme.mean_label_bits(),
              scheme.max_label_bits());
  return 0;
}

int cmd_stats(const std::vector<std::string>& args) {
  if (args.size() != 1) usage("stats: need scheme path");
  const auto scheme = load_labeling(args[0]);
  Summary bits;
  for (Vertex v = 0; v < scheme.num_vertices(); ++v) {
    bits.add(static_cast<double>(scheme.label_bits(v)));
  }
  std::printf("scheme: n=%u levels=[%u..%u] %s eps=%.3g c=%u\n",
              scheme.num_vertices(), scheme.min_level(), scheme.top_level(),
              scheme.params().faithful_radii ? "faithful" : "compact",
              scheme.params().epsilon, scheme.params().c);
  std::printf("label bits: min=%.0f mean=%.0f median=%.0f p95=%.0f max=%.0f\n",
              bits.min(), bits.mean(), bits.median(), bits.percentile(95),
              bits.max());
  std::printf("total: %zu bits (%.1f MiB)\n", scheme.total_bits(),
              static_cast<double>(scheme.total_bits()) / 8.0 / 1024 / 1024);
  return 0;
}

FaultSet parse_faults(const std::vector<std::string>& args, std::size_t from) {
  FaultSet f;
  for (std::size_t k = from; k < args.size();) {
    if (args[k] == "-v" && k + 1 < args.size()) {
      f.add_vertex(static_cast<Vertex>(arg_int(args, k + 1)));
      k += 2;
    } else if (args[k] == "-e" && k + 2 < args.size()) {
      f.add_edge(static_cast<Vertex>(arg_int(args, k + 1)),
                 static_cast<Vertex>(arg_int(args, k + 2)));
      k += 3;
    } else {
      usage("bad fault specification");
    }
  }
  return f;
}

int cmd_query(const std::vector<std::string>& args) {
  if (args.size() < 3) usage("query: need scheme, S, T");
  const auto scheme = load_labeling(args[0]);
  const ForbiddenSetOracle oracle(scheme);
  const auto s = static_cast<Vertex>(arg_int(args, 1));
  const auto t = static_cast<Vertex>(arg_int(args, 2));
  const FaultSet f = parse_faults(args, 3);
  WallTimer timer;
  const QueryResult qr = oracle.query(s, t, f);
  const double us = timer.elapsed_us();
  if (qr.distance == kInfDist) {
    std::printf("d(%u, %u | %zu faults) = unreachable   [%.0f us]\n", s, t,
                f.size(), us);
  } else {
    std::printf("d(%u, %u | %zu faults) <= %u   [%.0f us]\nwaypoints:", s, t,
                f.size(), qr.distance, us);
    for (Vertex w : qr.waypoints) std::printf(" %u", w);
    std::printf("\n");
  }
  return 0;
}

int cmd_exact(const std::vector<std::string>& args) {
  if (args.size() < 3) usage("exact: need graph, S, T");
  const Graph g = load_graph(args[0]);
  const auto s = static_cast<Vertex>(arg_int(args, 1));
  const auto t = static_cast<Vertex>(arg_int(args, 2));
  const FaultSet f = parse_faults(args, 3);
  const Dist d = distance_avoiding(g, s, t, f);
  if (d == kInfDist) {
    std::printf("d(%u, %u | %zu faults) = unreachable\n", s, t, f.size());
  } else {
    std::printf("d(%u, %u | %zu faults) = %u\n", s, t, f.size(), d);
  }
  return 0;
}

int cmd_shard_split(const std::vector<std::string>& args) {
  if (args.size() < 3) usage("shard_split: need scheme, out-prefix, K");
  const std::string& prefix = args[1];
  const long shard_count = arg_int(args, 2);
  if (shard_count < 2) usage("shard_split: K must be >= 2");
  std::uint64_t ring_seed = shard::kDefaultRingSeed;
  std::uint32_t ring_points = shard::kDefaultRingPoints;
  for (std::size_t k = 3; k < args.size(); ++k) {
    if (args[k] == "--ring-seed" && k + 1 < args.size()) {
      ring_seed = std::strtoull(args[++k].c_str(), nullptr, 0);
    } else if (args[k] == "--ring-points" && k + 1 < args.size()) {
      ring_points =
          static_cast<std::uint32_t>(std::strtoul(args[++k].c_str(), nullptr, 10));
    } else {
      usage("shard_split: unknown option");
    }
  }
  const auto scheme = load_labeling(args[0]);
  const auto pieces = shard::split_labeling(
      scheme, static_cast<std::uint32_t>(shard_count), ring_seed, ring_points);
  for (const auto& piece : pieces) {
    const shard::PartitionInfo part = piece.partition();
    char suffix[48];
    std::snprintf(suffix, sizeof suffix, ".shard%uof%u", part.shard_id,
                  part.shard_count);
    const std::string path = prefix + suffix;
    save_labeling(piece, path);
    std::size_t stored = 0, bits = 0;
    for (Vertex v = 0; v < piece.num_vertices(); ++v) {
      if (piece.label_bits(v) > 0) {
        ++stored;
        bits += piece.label_bits(v);
      }
    }
    std::printf("wrote %s: %zu/%u labels, %.1f MiB\n", path.c_str(), stored,
                piece.num_vertices(),
                static_cast<double>(bits) / 8.0 / 1024 / 1024);
  }
  return 0;
}

int cmd_shard_merge(const std::vector<std::string>& args) {
  if (args.size() < 2) usage("shard_merge: need output path and shard files");
  std::vector<ForbiddenSetLabeling> pieces;
  pieces.reserve(args.size() - 1);
  for (std::size_t k = 1; k < args.size(); ++k) {
    pieces.push_back(load_labeling(args[k]));
  }
  const auto merged = shard::merge_labelings(pieces);
  save_labeling(merged, args[0]);
  std::printf("wrote %s: n=%u merged from %zu shards\n", args[0].c_str(),
              merged.num_vertices(), pieces.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Fault-injection arming for save/load torture (tools/fsdl_crashtest.cpp
  // drives `fsdl build` children with FSDL_FAILPOINTS set).
  {
    const std::string error = failpoint::arm_from_env();
    if (!error.empty()) {
      std::fprintf(stderr, "fsdl: FSDL_FAILPOINTS: %s\n", error.c_str());
      return 2;
    }
  }
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "build") return cmd_build(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "exact") return cmd_exact(args);
    if (cmd == "shard_split") return cmd_shard_split(args);
    if (cmd == "shard_merge") return cmd_shard_merge(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage("unknown command");
}
