# High-availability pipeline, two acts:
#
#   1. Kill-restart: two replicas serve one verified workload through the
#      replica-aware client. One replica is SIGKILLed mid-run and later
#      restarted on the same port. The run must finish with ZERO
#      verification violations and >= 99% of requests answered (loadgen's
#      --min-success gate), the clients must report failovers, and the
#      client-side Prometheus dump must show fsdl_failovers_total > 0.
#   2. Hot reload: SIGHUP swaps the label file under verified load with
#      zero wrong answers; a CRC-corrupted file is rejected while the old
#      labels keep serving (epoch unchanged, crc_failed counter bumped);
#      the --health probe reports the post-reload epoch.
function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

set(graph ${WORK_DIR}/ha_graph.edges)
set(scheme ${WORK_DIR}/ha_scheme.fsdl)
set(live_scheme ${WORK_DIR}/ha_live.fsdl)
set(r1log ${WORK_DIR}/ha_replica1.log)
set(r1blog ${WORK_DIR}/ha_replica1_restarted.log)
set(r2log ${WORK_DIR}/ha_replica2.log)
set(client_prom ${WORK_DIR}/ha_client_metrics.prom)
set(reload_log ${WORK_DIR}/ha_reload_server.log)
set(server_prom ${WORK_DIR}/ha_server_metrics.prom)

# Fixed ports: the killed replica must come back on the SAME address for
# the restart to count as recovery (SO_REUSEADDR makes the rebind safe).
set(port1 45117)
set(port2 45118)

run_checked(${FSDL_BIN} gen grid 8 8 ${graph})
run_checked(${FSDL_BIN} build ${graph} ${scheme} --eps 1.0)

# --- Act 1: SIGKILL one of two replicas mid-run, then restart it. ---------
execute_process(
  COMMAND sh -ec "\
    '${SERVE_BIN}' '${scheme}' --port ${port1} --workers 2 --drain-ms 500 \
        > '${r1log}' 2> '${r1log}.err' & \
    r1=$!; \
    '${SERVE_BIN}' '${scheme}' --port ${port2} --workers 2 --drain-ms 500 \
        > '${r2log}' 2> '${r2log}.err' & \
    r2=$!; \
    r1b=; \
    trap 'kill $r1 $r2 $r1b 2>/dev/null || true' EXIT; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${r1log}' && grep -q 'port=' '${r2log}' && break; \
      sleep 0.1; \
    done; \
    '${LOADGEN_BIN}' --endpoints 127.0.0.1:${port1},127.0.0.1:${port2} \
        --threads 4 --requests 700 --think-us 8000 --fault-pool 3 \
        --faults 2 --churn 0.2 --stats-every 0 --verify '${graph}' \
        --eps 1.0 --seed 11 --retries 5 --timeout-ms 2000 \
        --min-success 0.99 --metrics-dump '${client_prom}' \
        --allow-transport-errors & \
    lg=$!; \
    sleep 1.5; \
    kill -9 $r1; \
    echo '=== replica 1 SIGKILLed ==='; \
    sleep 1.0; \
    '${SERVE_BIN}' '${scheme}' --port ${port1} --workers 2 --drain-ms 500 \
        > '${r1blog}' 2> '${r1blog}.err' & \
    r1b=$!; \
    for k in $(seq 1 100); do \
      '${SERVE_BIN}' --health 127.0.0.1:${port1} >/dev/null 2>&1 && break; \
      sleep 0.1; \
    done; \
    echo '=== replica 1 restarted ==='; \
    '${SERVE_BIN}' --health 127.0.0.1:${port1}; \
    wait $lg; \
    kill -INT $r2 $r1b; \
    wait $r2 $r1b"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "kill-restart pipeline failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "verified against exact baseline[^\n]* 0 violations")
  message(FATAL_ERROR "violations during kill-restart:\n${out}")
endif()
if(NOT out MATCHES "ha: failovers=[1-9]")
  message(FATAL_ERROR "clients reported no failovers after SIGKILL:\n${out}")
endif()
if(NOT out MATCHES "ready epoch=1")
  message(FATAL_ERROR "restarted replica never became ready:\n${out}")
endif()
if(NOT EXISTS ${client_prom})
  message(FATAL_ERROR "no client-side metrics dump")
endif()
file(READ ${client_prom} client_prom_text)
if(NOT client_prom_text MATCHES "fsdl_failovers_total [1-9]")
  message(FATAL_ERROR "failovers missing from client Prometheus dump:\n${client_prom_text}")
endif()

# --- Act 2: SIGHUP hot reload under load; corrupt reload rejected. --------
execute_process(
  COMMAND sh -ec "\
    cp '${scheme}' '${live_scheme}'; \
    '${SERVE_BIN}' '${live_scheme}' --port 0 --workers 4 --drain-ms 500 \
        --metrics-dump '${server_prom}' --metrics-interval 0.3 \
        > '${reload_log}' 2> '${reload_log}.err' & \
    spid=$!; \
    trap 'kill $spid 2>/dev/null || true' EXIT; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${reload_log}' && break; sleep 0.1; \
    done; \
    sport=$(sed -n 's/.*port=\\([0-9][0-9]*\\).*/\\1/p' '${reload_log}'); \
    test -n \"$sport\" || { echo 'no server port'; exit 1; }; \
    '${LOADGEN_BIN}' --port $sport --threads 4 --requests 700 \
        --think-us 4000 --fault-pool 3 --faults 2 --churn 0.2 \
        --stats-every 0 --verify '${graph}' --eps 1.0 --seed 12 \
        --retries 5 --timeout-ms 2000 & \
    lg=$!; \
    sleep 0.8; \
    kill -HUP $spid; \
    echo '=== good reload signaled ==='; \
    sleep 0.8; \
    b=$(od -An -tu1 -j25 -N1 '${live_scheme}' | tr -d ' '); \
    printf \"$(printf '\\\\%03o' $(( (b + 1) % 256 )))\" | \
      dd of='${live_scheme}' bs=1 seek=25 count=1 conv=notrunc 2>/dev/null; \
    kill -HUP $spid; \
    echo '=== corrupt reload signaled ==='; \
    sleep 0.8; \
    '${SERVE_BIN}' --health 127.0.0.1:$sport; \
    wait $lg; \
    kill -INT $spid; \
    wait $spid"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hot-reload pipeline failed (${rc}):\n${out}\n${err}")
endif()
# Zero wrong answers across both swaps, and the strict loadgen run (no
# tolerated transport errors) proves queries never even hiccuped.
if(NOT out MATCHES "verified against exact baseline[^\n]* 0 violations")
  message(FATAL_ERROR "violations during hot reload:\n${out}")
endif()
if(NOT out MATCHES "transport_errors=0")
  message(FATAL_ERROR "reload cost requests:\n${out}")
endif()
# The good reload bumped the epoch; the corrupt one did not (2, not 3).
if(NOT out MATCHES "ready epoch=2")
  message(FATAL_ERROR "server not on epoch 2 after good+corrupt reload:\n${out}")
endif()
file(READ ${reload_log} srv_out)
if(NOT srv_out MATCHES "reloaded .* epoch=2")
  message(FATAL_ERROR "good reload not logged:\n${srv_out}")
endif()
file(READ ${reload_log}.err srv_err)
if(NOT srv_err MATCHES "reload failed .*still serving epoch=2")
  message(FATAL_ERROR "corrupt reload not rejected in place:\n${srv_err}")
endif()
file(READ ${server_prom} prom_text)
if(NOT prom_text MATCHES "fsdl_label_reloads_total{result=\"ok\"} 1")
  message(FATAL_ERROR "ok reload missing from Prometheus:\n${prom_text}")
endif()
if(NOT prom_text MATCHES "fsdl_label_reloads_total{result=\"crc_failed\"} 1")
  message(FATAL_ERROR "crc_failed reload missing from Prometheus:\n${prom_text}")
endif()
