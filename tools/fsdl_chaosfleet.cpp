// fsdl_chaosfleet — seeded fleet chaos orchestrator for the degraded-mode
// acceptance gate.
//
//   fsdl_chaosfleet --serve-bin PATH --graph FILE --shard0 FILE --shard1 FILE
//                   [--base-port P] [--seed S] [--eps E] [--log-dir DIR]
//                   [--prom-dump FILE]
//
// Drives a real 2 shards x 2 replicas fsdl_serve fleet (fork/exec, logs per
// process under --log-dir) behind an in-process Router, and runs a scripted
// fault schedule against it while an embedded load generator verifies every
// answered distance against an exact BFS baseline:
//
//   warm      prime the router's label cache (every vertex fetched once)
//   healthy   baseline load, everything up
//   replica   SIGKILL one replica of shard 1 (failover inside the router)
//   pause     SIGSTOP a replica of shard 0 for the whole burst, then
//             SIGCONT (recv deadlines + failover; a stopped process is the
//             one failure SIGKILL cannot simulate: the port stays open)
//   shard     SIGKILL the remaining shard-1 replica — whole-shard loss.
//             Cached labels keep answering with Status::kDegraded + the
//             serving epoch; every degraded distance is verified against
//             the same snapshot oracle, so stale serving is availability
//             without wrong answers.
//   restart   bring one shard-1 replica back and require 100% non-degraded
//             service again within one breaker half-open cycle.
//
// SLO gates (any failure exits 1):
//   * >= 99% of load-phase requests answered, degraded counted separately;
//   * zero verification violations (degraded included — checked against the
//     (1+eps) bound of the snapshot that served them);
//   * every DEGRADED response names a snapshot epoch >= 1;
//   * the shard-loss phase actually served degraded (count > 0), and the
//     router's Prometheus dump shows fsdl_degraded_responses_total > 0;
//   * recovery: a full sweep of shard-1 queries answers OK within the
//     recovery deadline after the restart.
//
// Self-skipping: environments where fork/exec or SIGSTOP job control are
// unavailable (some sandboxes) make the whole scenario unrunnable; the tool
// detects that up front and exits 77 (the ctest SKIP_RETURN_CODE).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/fault_view.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "server/client.hpp"
#include "server/metrics.hpp"
#include "server/replica_client.hpp"
#include "shard/partition.hpp"
#include "shard/router.hpp"
#include "util/atomic_file.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsdl;

constexpr int kSkipExit = 77;

struct Options {
  std::string serve_bin;
  std::string graph_path;
  std::string shard0;
  std::string shard1;
  std::uint16_t base_port = 45131;
  std::uint64_t seed = 1;
  double eps = 1.0;
  std::string log_dir = ".";
  std::string prom_dump;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: fsdl_chaosfleet --serve-bin PATH --graph FILE\n"
               "                       --shard0 FILE --shard1 FILE\n"
               "                       [--base-port P] [--seed S] [--eps E]\n"
               "                       [--log-dir DIR] [--prom-dump FILE]\n");
  std::exit(2);
}

/// fork/exec one fsdl_serve with stdout+stderr appended to `log_path`.
/// Returns -1 when fork itself fails (the self-skip signal).
pid_t spawn(const std::vector<std::string>& argv, const std::string& log_path) {
  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    const int fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      if (fd > 2) ::close(fd);
    }
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    std::fprintf(stderr, "execv %s: %s\n", args[0], std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

void kill_and_reap(pid_t pid) {
  if (pid <= 0) return;
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
}

/// Probe the environment: fork a trivial child, SIGSTOP it, require the
/// kernel to report it stopped, then SIGCONT + SIGKILL it. Any failure
/// means the chaos schedule cannot run here.
bool fork_and_sigstop_work() {
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    for (;;) ::pause();
  }
  bool ok = ::kill(pid, SIGSTOP) == 0;
  if (ok) {
    int status = 0;
    ok = ::waitpid(pid, &status, WUNTRACED) == pid && WIFSTOPPED(status);
  }
  ::kill(pid, SIGCONT);
  kill_and_reap(pid);
  return ok;
}

/// Wait until the server on `port` answers HEALTH with "ready...".
bool wait_ready(std::uint16_t port, unsigned timeout_ms) {
  server::ClientOptions copt;
  copt.connect_timeout_ms = 300;
  copt.recv_timeout_ms = 300;
  copt.send_timeout_ms = 300;
  const auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < give_up) {
    try {
      server::Client probe(copt);
      probe.connect("127.0.0.1", port);
      if (probe.health().rfind("ready", 0) == 0) return true;
    } catch (const std::exception&) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

/// δ within [d, (1+ε)d]; infinities must agree exactly.
bool bound_ok(Dist exact, Dist approx, double eps) {
  if (exact == kInfDist || approx == kInfDist) return exact == approx;
  if (approx < exact) return false;
  return static_cast<double>(approx) <=
         (1.0 + eps) * static_cast<double>(exact) + 1e-9;
}

struct Tally {
  std::uint64_t attempted = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;  // transport errors + definitive non-answers
  std::uint64_t violations = 0;
  std::uint64_t epoch_zero_degraded = 0;

  std::uint64_t answered() const { return ok + degraded; }
  void merge(const Tally& t) {
    attempted += t.attempted;
    ok += t.ok;
    degraded += t.degraded;
    failed += t.failed;
    violations += t.violations;
    epoch_zero_degraded += t.epoch_zero_degraded;
  }
};

/// The embedded load generator: closed-loop bursts against the router's
/// front door over a ReplicaClient (single endpoint + retries), every
/// answered distance verified against the exact baseline.
struct Loadgen {
  const Graph& graph;
  server::ReplicaClient client;
  Rng rng;
  double eps;

  Loadgen(const Graph& g, std::uint16_t router_port, std::uint64_t seed,
          double eps_in)
      : graph(g),
        client({{"127.0.0.1", router_port}}, make_ropt(seed)),
        rng(seed * 7919 + 17),
        eps(eps_in) {}

  static server::ReplicaClientOptions make_ropt(std::uint64_t seed) {
    server::ReplicaClientOptions ropt;
    ropt.client.connect_timeout_ms = 2000;
    ropt.client.recv_timeout_ms = 3000;
    ropt.client.send_timeout_ms = 3000;
    ropt.max_attempts = 5;
    ropt.seed = seed * 104729 + 3;
    return ropt;
  }

  /// One burst of `nreq` DIST requests with endpoints and fault vertices
  /// drawn from `domain`; `fault_size` faults per request.
  Tally burst(const char* phase, unsigned nreq,
              const std::vector<Vertex>& domain, unsigned fault_size) {
    Tally t;
    for (unsigned r = 0; r < nreq; ++r) {
      server::Request req;
      req.opcode = server::Opcode::kDist;
      const Vertex s = domain[rng.below(domain.size())];
      const Vertex tt = domain[rng.below(domain.size())];
      req.pairs.emplace_back(s, tt);
      for (unsigned f = 0; f < fault_size; ++f) {
        req.faults.add_vertex(domain[rng.below(domain.size())]);
      }
      ++t.attempted;
      server::Response resp;
      try {
        resp = client.call_idempotent(req);
      } catch (const std::exception& e) {
        ++t.failed;
        if (t.failed <= 3) {
          std::fprintf(stderr, "[%s] request %u: %s\n", phase, r, e.what());
        }
        continue;
      }
      if (!resp.answered() || resp.distances.size() != 1) {
        ++t.failed;
        if (t.failed <= 3) {
          std::fprintf(stderr, "[%s] request %u: %s: %s\n", phase, r,
                       server::status_name(resp.status), resp.text.c_str());
        }
        continue;
      }
      if (resp.status == server::Status::kDegraded) {
        ++t.degraded;
        if (resp.epoch == 0) ++t.epoch_zero_degraded;
      } else {
        ++t.ok;
      }
      const Dist exact = distance_avoiding(graph, s, tt, req.faults);
      if (!bound_ok(exact, resp.distances[0], eps)) {
        ++t.violations;
        std::fprintf(stderr,
                     "[%s] violation: d(%u,%u |F|=%zu) exact=%u served=%u "
                     "epoch=%llu status=%s\n",
                     phase, s, tt, req.faults.size(), exact, resp.distances[0],
                     static_cast<unsigned long long>(resp.epoch),
                     server::status_name(resp.status));
      }
    }
    std::printf("phase %-8s attempted=%llu ok=%llu degraded=%llu failed=%llu "
                "violations=%llu\n",
                phase, static_cast<unsigned long long>(t.attempted),
                static_cast<unsigned long long>(t.ok),
                static_cast<unsigned long long>(t.degraded),
                static_cast<unsigned long long>(t.failed),
                static_cast<unsigned long long>(t.violations));
    std::fflush(stdout);
    return t;
  }
};

/// Sum every sample of `counter` (all label values) in a Prometheus text
/// exposition — crude but enough to assert "> 0".
std::uint64_t prom_total(const std::string& text, const std::string& counter) {
  std::uint64_t total = 0;
  std::size_t pos = 0;
  while ((pos = text.find(counter, pos)) != std::string::npos) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol;
    if (line.compare(0, 1, "#") == 0) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    total += std::strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* {
      if (k + 1 >= argc) usage("missing argument value");
      return argv[++k];
    };
    if (arg == "--serve-bin") opt.serve_bin = next();
    else if (arg == "--graph") opt.graph_path = next();
    else if (arg == "--shard0") opt.shard0 = next();
    else if (arg == "--shard1") opt.shard1 = next();
    else if (arg == "--base-port") opt.base_port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--eps") opt.eps = std::strtod(next(), nullptr);
    else if (arg == "--log-dir") opt.log_dir = next();
    else if (arg == "--prom-dump") opt.prom_dump = next();
    else usage("unknown option");
  }
  if (opt.serve_bin.empty() || opt.graph_path.empty() || opt.shard0.empty() ||
      opt.shard1.empty()) {
    usage("--serve-bin, --graph, --shard0 and --shard1 are required");
  }

  if (!fork_and_sigstop_work()) {
    std::fprintf(stderr,
                 "chaosfleet: fork/SIGSTOP job control unavailable here; "
                 "skipping\n");
    return kSkipExit;
  }

  Graph graph;
  try {
    graph = load_graph(opt.graph_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot load --graph: %s\n", e.what());
    return 1;
  }
  const Vertex n = graph.num_vertices();

  // Fleet layout: shard s replica r listens on base_port + 2s + r.
  const std::uint16_t port_of[2][2] = {
      {static_cast<std::uint16_t>(opt.base_port),
       static_cast<std::uint16_t>(opt.base_port + 1)},
      {static_cast<std::uint16_t>(opt.base_port + 2),
       static_cast<std::uint16_t>(opt.base_port + 3)}};
  pid_t pid_of[2][2] = {{-1, -1}, {-1, -1}};
  const auto spawn_replica = [&](int s, int r) -> pid_t {
    const std::string& file = s == 0 ? opt.shard0 : opt.shard1;
    const std::string log = opt.log_dir + "/chaosfleet_s" + std::to_string(s) +
                            "r" + std::to_string(r) + ".log";
    return spawn({opt.serve_bin, file, "--port",
                  std::to_string(port_of[s][r]), "--workers", "2",
                  "--shard-id", std::to_string(s), "--shard-count", "2",
                  "--drain-ms", "200"},
                 log);
  };
  const auto teardown = [&] {
    for (int s = 0; s < 2; ++s) {
      for (int r = 0; r < 2; ++r) kill_and_reap(pid_of[s][r]);
    }
  };

  for (int s = 0; s < 2; ++s) {
    for (int r = 0; r < 2; ++r) {
      pid_of[s][r] = spawn_replica(s, r);
      if (pid_of[s][r] < 0) {
        std::fprintf(stderr, "chaosfleet: fork failed; skipping\n");
        teardown();
        return kSkipExit;
      }
    }
  }
  for (int s = 0; s < 2; ++s) {
    for (int r = 0; r < 2; ++r) {
      if (!wait_ready(port_of[s][r], 15000)) {
        std::fprintf(stderr, "replica s%dr%d never became ready (see %s)\n", s,
                     r, opt.log_dir.c_str());
        teardown();
        return 1;
      }
    }
  }
  std::printf("chaosfleet: 2x2 fleet up on ports %u..%u\n", port_of[0][0],
              port_of[1][1]);

  int exit_code = 1;
  try {
    // In-process router over the subprocess fleet; the front door is real
    // TCP so kDegraded travels the wire. label_cache_capacity < n keeps
    // cold misses (and therefore fetch/failover traffic) flowing through
    // the healthy phases.
    shard::RouterOptions ro;
    ro.transport.port = 0;
    ro.transport.workers = 4;
    ro.transport.drain_deadline_ms = 200;
    ro.shards = {{{"127.0.0.1", port_of[0][0]}, {"127.0.0.1", port_of[0][1]}},
                 {{"127.0.0.1", port_of[1][0]}, {"127.0.0.1", port_of[1][1]}}};
    ro.replica.client.connect_timeout_ms = 400;
    ro.replica.client.recv_timeout_ms = 600;
    ro.replica.client.send_timeout_ms = 600;
    ro.replica.breaker_cooldown_ms = 300;
    ro.replica.seed = opt.seed;
    ro.label_cache_capacity = n < 16 ? n : n - 16;
    ro.probe_interval_ms = 200;
    shard::Router router(ro);
    router.start();
    std::printf("chaosfleet: router on port %u (label cache %zu of %u)\n",
                router.port(), ro.label_cache_capacity, n);

    // Vertex ownership under the same ring the shards assert; the hot set
    // (what the shard-loss phase queries) takes a slice of each shard.
    const shard::Partitioner partitioner(2);
    std::vector<Vertex> all, hot, hot_shard1;
    unsigned hot_per_shard[2] = {0, 0};
    for (Vertex v = 0; v < n; ++v) {
      all.push_back(v);
      const std::uint32_t owner = partitioner.owner(v);
      if (hot_per_shard[owner] < 10) {
        ++hot_per_shard[owner];
        hot.push_back(v);
        if (owner == 1) hot_shard1.push_back(v);
      }
    }
    if (hot_shard1.empty()) {
      std::fprintf(stderr, "ring assigned no hot vertices to shard 1?\n");
      teardown();
      return 1;
    }

    Loadgen lg(graph, router.port(), opt.seed, opt.eps);
    Tally total;

    // Warm: touch every vertex once so the cache learns each label's
    // epoch. Not part of the SLO math (it is setup, not load).
    for (Vertex v = 0; v < n; ++v) {
      server::Request req;
      req.opcode = server::Opcode::kDist;
      req.pairs.emplace_back(v, (v + 1) % n);
      const server::Response resp = lg.client.call_idempotent(req);
      if (!resp.ok()) {
        std::fprintf(stderr, "warm query for v=%u failed: %s\n", v,
                     resp.text.c_str());
        teardown();
        return 1;
      }
    }
    std::printf("chaosfleet: cache warmed (%u vertices)\n", n);

    total.merge(lg.burst("healthy", 100, all, 2));

    ::kill(pid_of[1][0], SIGKILL);
    ::waitpid(pid_of[1][0], nullptr, 0);
    pid_of[1][0] = -1;
    std::printf("chaosfleet: SIGKILL shard1 replica0\n");
    total.merge(lg.burst("replica", 120, all, 2));

    ::kill(pid_of[0][0], SIGSTOP);
    std::printf("chaosfleet: SIGSTOP shard0 replica0\n");
    total.merge(lg.burst("pause", 60, all, 2));
    ::kill(pid_of[0][0], SIGCONT);
    std::printf("chaosfleet: SIGCONT shard0 replica0\n");

    // Re-pin the hot set (shard 1 is still reachable through its last
    // replica) so the shard-loss burst finds every label it needs cached.
    for (Vertex v : hot) {
      server::Request req;
      req.opcode = server::Opcode::kDist;
      req.pairs.emplace_back(v, hot[0]);
      (void)lg.client.call_idempotent(req);
    }

    ::kill(pid_of[1][1], SIGKILL);
    ::waitpid(pid_of[1][1], nullptr, 0);
    pid_of[1][1] = -1;
    std::printf("chaosfleet: SIGKILL shard1 replica1 — whole shard 1 down\n");

    // Canary GET_LABEL: in production the first cache-miss fetch discovers
    // the dead shard; with the hot set fully cached we trigger that
    // discovery deterministically. Its failure is expected and not load.
    {
      server::ClientOptions copt;
      copt.connect_timeout_ms = 2000;
      copt.recv_timeout_ms = 3000;
      copt.send_timeout_ms = 3000;
      server::Client canary(copt);
      canary.connect("127.0.0.1", router.port());
      server::Request req;
      req.opcode = server::Opcode::kGetLabel;
      req.pairs.emplace_back(hot_shard1[0], 0);
      const server::Response resp = canary.call(req);
      if (resp.answered()) {
        std::fprintf(stderr,
                     "canary GET_LABEL for a dead shard's vertex answered "
                     "(%s)?\n",
                     server::status_name(resp.status));
        teardown();
        return 1;
      }
    }

    const Tally shard_loss = lg.burst("shard", 150, hot, 2);
    total.merge(shard_loss);

    // Restart one shard-1 replica; the router must return to 100%
    // non-degraded service within its recovery machinery (probe interval +
    // breaker half-open), generously bounded here at 15s of sweeps.
    pid_of[1][0] = spawn_replica(1, 0);
    if (pid_of[1][0] < 0 || !wait_ready(port_of[1][0], 15000)) {
      std::fprintf(stderr, "restarted shard1 replica0 never became ready\n");
      teardown();
      return 1;
    }
    std::printf("chaosfleet: shard1 replica0 restarted\n");
    bool recovered = false;
    const auto recovery_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    while (std::chrono::steady_clock::now() < recovery_deadline) {
      Tally sweep;
      for (Vertex v : hot_shard1) {
        server::Request req;
        req.opcode = server::Opcode::kDist;
        req.pairs.emplace_back(v, hot_shard1[0]);
        ++sweep.attempted;
        server::Response resp;
        try {
          resp = lg.client.call_idempotent(req);
        } catch (const std::exception&) {
          ++sweep.failed;
          continue;
        }
        if (resp.status == server::Status::kOk) ++sweep.ok;
        else if (resp.status == server::Status::kDegraded) ++sweep.degraded;
        else ++sweep.failed;
      }
      total.merge(sweep);
      if (sweep.ok == sweep.attempted) {
        recovered = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
    std::printf("phase recovery %s\n", recovered ? "clean (all ok)" : "FAILED");

    const std::string prom = router.prometheus();
    if (!opt.prom_dump.empty()) {
      std::string werr;
      if (!atomic_write_file(opt.prom_dump, prom, &werr)) {
        std::fprintf(stderr, "cannot write --prom-dump: %s\n", werr.c_str());
      }
    }

    router.stop();
    teardown();

    // --- The SLO verdict. -------------------------------------------------
    const double availability =
        total.attempted == 0
            ? 0.0
            : static_cast<double>(total.answered()) /
                  static_cast<double>(total.attempted);
    const std::uint64_t degraded_metric =
        prom_total(prom, "fsdl_degraded_responses_total");
    std::printf(
        "chaosfleet summary: attempted=%llu answered=%llu (ok=%llu "
        "degraded=%llu) failed=%llu availability=%.4f violations=%llu "
        "degraded_metric=%llu\n",
        static_cast<unsigned long long>(total.attempted),
        static_cast<unsigned long long>(total.answered()),
        static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.degraded),
        static_cast<unsigned long long>(total.failed), availability,
        static_cast<unsigned long long>(total.violations),
        static_cast<unsigned long long>(degraded_metric));

    bool pass = true;
    const auto gate = [&](bool ok_cond, const char* what) {
      if (!ok_cond) {
        std::fprintf(stderr, "SLO FAIL: %s\n", what);
        pass = false;
      }
    };
    gate(availability >= 0.99, ">= 99% of requests answered");
    gate(total.violations == 0, "zero verification violations");
    gate(shard_loss.degraded > 0, "shard-loss phase served degraded answers");
    gate(total.epoch_zero_degraded == 0,
         "every degraded response names an epoch >= 1");
    gate(degraded_metric > 0,
         "fsdl_degraded_responses_total > 0 in the router dump");
    gate(recovered, "100% non-degraded service after the restart");
    std::printf("chaosfleet: %s\n", pass ? "PASS" : "FAIL");
    exit_code = pass ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaosfleet error: %s\n", e.what());
    teardown();
    return 1;
  }
  return exit_code;
}
