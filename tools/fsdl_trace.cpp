// fsdl_trace — offline query-cost profiler.
//
//   fsdl_trace <scheme.fsdl> [options]
//   fsdl_trace --grid R C [--preset compact|faithful] [--eps E] [--c C]
//              [options]
//
//   options: [--queries Q] [--faults LIST] [--fault-pool K] [--seed S]
//            [--check] [--csv]
//
// Replays a synthetic workload against a labeling (loaded from disk or
// built in-process on a 2-d grid) and attributes wall time to the paper's
// cost stages, one table row per fault-set size in LIST (comma-separated,
// e.g. "0,1,2,4"):
//
//   prepare   PreparedFaults construction — the once-per-fault-set
//             O(label·|F|²) certification term of Lemma 2.6
//   assemble  per-query endpoint filtering + sketch-graph H build
//             (Lemma 2.3 protected-ball checks for s and t)
//   dijkstra  per-query search over H (the (1+1/ε)^{2α} sketch term,
//             Lemma 2.4/2.6)
//
// alongside the matching work counters (sketch size, pb_checks,
// relaxations). This needs no tracing build: the per-stage micros live in
// the always-on QueryStats. `coverage` = (prepare + assemble + dijkstra) /
// end-to-end wall for the row's whole workload; with --check the exit
// status is nonzero unless aggregate coverage lands in [0.9, 1.1] — the
// self-test that the stage accounting explains where the time goes.
//
// Second mode — distributed-trace stitching:
//
//   fsdl_trace --stitch LOG [LOG...] [--expect-services a,b,c]
//              [--expect-fetch-shards N]
//
// Ingests JSON-lines event logs written by N processes (fsdl_loadgen
// --trace-log, fsdl_router --trace-log, fsdl_serve --trace-log; slow-query
// reports share the schema) and joins span records by trace id into one
// cross-process tree per trace, with per-hop timings and a straggler
// report naming the shard that dominated each scatter-gather. The --expect
// flags turn the stitcher into a CI gate: exit nonzero unless at least one
// trace is fully stitched (every parent resolves), covers all the listed
// services, and fans out to at least N distinct shards.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "core/serialize.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "obs/trace.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace fsdl;

struct Options {
  std::string scheme_path;
  Vertex grid_rows = 0;
  Vertex grid_cols = 0;
  std::string preset = "compact";
  double eps = 0.5;
  unsigned c_value = 2;
  unsigned queries = 200;
  std::vector<unsigned> fault_sizes = {0, 1, 2, 4};
  unsigned fault_pool = 4;
  std::uint64_t seed = 1;
  bool check = false;
  bool csv = false;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "usage: fsdl_trace <scheme.fsdl> [options]\n"
      "       fsdl_trace --grid R C [--preset compact|faithful] [--eps E]\n"
      "                  [--c C] [options]\n"
      "       fsdl_trace --stitch LOG [LOG...] [--expect-services a,b,c]\n"
      "                  [--expect-fetch-shards N]\n"
      "options: [--queries Q] [--faults LIST] [--fault-pool K] [--seed S]\n"
      "         [--check] [--csv]\n");
  std::exit(2);
}

std::vector<unsigned> parse_sweep(const char* text) {
  std::vector<unsigned> out;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < 0) usage("--faults wants a comma-separated list");
    out.push_back(static_cast<unsigned>(v));
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') usage("--faults wants a comma-separated list");
  }
  if (out.empty()) usage("--faults list is empty");
  return out;
}

/// One fault set of `target` faults; mixes in edge faults when the graph is
/// available (same 30/70 split as fsdl_loadgen).
FaultSet make_faults(Rng& rng, Vertex n, const Graph* graph, unsigned target) {
  FaultSet f;
  unsigned guard = 0;
  while (f.size() < target && ++guard < 20 * target + 20) {
    if (graph != nullptr && rng.chance(0.3)) {
      const Vertex a = rng.vertex(n);
      const auto nb = graph->neighbors(a);
      if (!nb.empty()) f.add_edge(a, nb[rng.below(nb.size())]);
    } else {
      f.add_vertex(rng.vertex(n));
    }
  }
  return f;
}

struct RowTotals {
  double wall_us = 0.0;     // end-to-end: prepares + queries
  double prepare_us = 0.0;  // sum over pool constructions
  double assemble_us = 0.0;
  double dijkstra_us = 0.0;
  // Per-query counter sums (construction-time counters subtracted out so
  // the row shows marginal per-query work, not the amortized |F|² part).
  std::size_t sketch_vertices = 0;
  std::size_t sketch_edges = 0;
  std::size_t pb_checks = 0;
  std::size_t relaxations = 0;
  std::size_t queries = 0;
  std::size_t prepares = 0;

  double stage_us() const { return prepare_us + assemble_us + dijkstra_us; }
};

RowTotals run_row(const ForbiddenSetOracle& oracle, const Graph* graph,
                  unsigned fault_size, const Options& opt, Rng& rng) {
  const Vertex n = oracle.scheme().num_vertices();
  RowTotals row;
  WallTimer wall;

  std::vector<PreparedFaults> pool;
  pool.reserve(opt.fault_pool);
  for (unsigned k = 0; k < opt.fault_pool; ++k) {
    const FaultSet faults = make_faults(rng, n, graph, fault_size);
    pool.push_back(oracle.prepare(faults));
    row.prepare_us += pool.back().prepare_us();
    ++row.prepares;
  }

  for (unsigned q = 0; q < opt.queries; ++q) {
    const PreparedFaults& prepared = pool[q % pool.size()];
    const Vertex s = rng.vertex(n);
    const Vertex t = rng.vertex(n);
    const QueryResult r = prepared.query(oracle.label(s), oracle.label(t));
    const QueryStats& base = prepared.prepare_stats();
    row.assemble_us += r.stats.assemble_us;
    row.dijkstra_us += r.stats.dijkstra_us;
    row.sketch_vertices += r.stats.sketch_vertices;
    row.sketch_edges += r.stats.sketch_edges;
    row.pb_checks += r.stats.pb_checks - base.pb_checks;
    row.relaxations += r.stats.dijkstra_relaxations;
    ++row.queries;
  }
  row.wall_us = wall.elapsed_us();
  return row;
}

// --- trace stitching (--stitch) -------------------------------------------

constexpr const char* kZeroSpan = "0000000000000000";

/// One span record from an event log. Slow-query records are counted per
/// trace but carry no span id, so they annotate rather than nest.
struct SpanRec {
  std::string svc;
  std::string name;
  std::string span;
  std::string parent;
  std::string shard;  // "" unless a scatter fetch span
  std::string pid;
  std::uint64_t ts = 0;  // wall-clock start, epoch micros
  double dur_us = 0.0;
};

struct TraceTree {
  std::vector<SpanRec> spans;
  std::size_t slow_queries = 0;
};

struct StitchOptions {
  std::vector<std::string> logs;
  std::vector<std::string> expect_services;
  unsigned expect_fetch_shards = 0;
};

void print_span_subtree(
    const TraceTree& t, std::size_t idx,
    const std::unordered_map<std::string, std::vector<std::size_t>>& children,
    int depth) {
  const SpanRec& s = t.spans[idx];
  std::printf("  %*s%s", depth * 2, "", s.name.c_str());
  if (!s.shard.empty()) std::printf(" shard=%s", s.shard.c_str());
  std::printf("  %.1fus  svc=%s pid=%s\n", s.dur_us, s.svc.c_str(),
              s.pid.c_str());
  const auto kids = children.find(s.span);
  if (kids == children.end()) return;
  for (std::size_t k : kids->second) {
    print_span_subtree(t, k, children, depth + 1);
  }
}

int run_stitch(const StitchOptions& opt) {
  std::map<std::string, TraceTree> traces;  // trace id (32 hex) -> tree
  std::size_t total_lines = 0, bad_lines = 0, span_records = 0;
  for (const std::string& path : opt.logs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "error: cannot read event log %s\n", path.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      ++total_lines;
      JsonlRecord rec;
      std::string error;
      if (!parse_jsonl(line, rec, error)) {
        // A torn line (process killed mid-write) should not sink the whole
        // report; it is counted and failed loudly only if nothing parses.
        ++bad_lines;
        std::fprintf(stderr, "warning: %s: unparsable line: %s\n",
                     path.c_str(), error.c_str());
        continue;
      }
      const std::string& trace = rec.get("trace");
      if (trace.empty()) continue;
      const std::string& kind = rec.get("kind");
      if (kind == "slow_query") {
        ++traces[trace].slow_queries;
        continue;
      }
      if (kind != "span") continue;
      SpanRec s;
      s.svc = rec.get("svc");
      s.name = rec.get("name");
      s.span = rec.get("span");
      s.parent = rec.get("parent");
      s.shard = rec.get("shard");
      s.pid = rec.get("pid");
      s.ts = std::strtoull(rec.get("ts").c_str(), nullptr, 10);
      s.dur_us = std::strtod(rec.get("dur_us").c_str(), nullptr);
      traces[trace].spans.push_back(std::move(s));
      ++span_records;
    }
  }

  bool expectations_met = false;
  const bool have_expectations =
      !opt.expect_services.empty() || opt.expect_fetch_shards > 0;
  for (auto& [trace_id, tree] : traces) {
    // Completion order in, start order out.
    std::stable_sort(tree.spans.begin(), tree.spans.end(),
                     [](const SpanRec& a, const SpanRec& b) {
                       return a.ts < b.ts;
                     });
    std::set<std::string> known, services, fetch_shards;
    for (const SpanRec& s : tree.spans) known.insert(s.span);
    std::unordered_map<std::string, std::vector<std::size_t>> children;
    std::vector<std::size_t> roots, orphans;
    bool stitched = true;
    double fetch_total = 0.0;
    const SpanRec* straggler = nullptr;
    for (std::size_t i = 0; i < tree.spans.size(); ++i) {
      const SpanRec& s = tree.spans[i];
      services.insert(s.svc);
      if (s.name == "router.fetch" && !s.shard.empty()) {
        fetch_shards.insert(s.shard);
        fetch_total += s.dur_us;
        if (straggler == nullptr || s.dur_us > straggler->dur_us) {
          straggler = &s;
        }
      }
      if (s.parent.empty() || s.parent == kZeroSpan) {
        roots.push_back(i);
      } else if (known.count(s.parent) != 0) {
        children[s.parent].push_back(i);
      } else {
        // A span whose parent never made it to any log: the tree has a
        // hole — show the fragment, but the trace is not fully stitched.
        orphans.push_back(i);
        stitched = false;
      }
    }

    std::string service_list;
    for (const std::string& svc : services) {
      if (!service_list.empty()) service_list += ',';
      service_list += svc;
    }
    std::printf("trace %s: %zu spans, %zu processes (%s)%s%s\n",
                trace_id.c_str(), tree.spans.size(), services.size(),
                service_list.c_str(), stitched ? "" : " [INCOMPLETE]",
                tree.slow_queries > 0 ? " [slow-query]" : "");
    for (std::size_t r : roots) print_span_subtree(tree, r, children, 0);
    if (!orphans.empty()) {
      std::printf("  (orphaned spans, parent not found in any log:)\n");
      for (std::size_t o : orphans) print_span_subtree(tree, o, children, 1);
    }
    if (fetch_shards.size() > 1 && straggler != nullptr) {
      std::printf(
          "  straggler: shard %s dominated the scatter-gather "
          "(%.1fus of %.1fus total fetch time across %zu shards)\n",
          straggler->shard.c_str(), straggler->dur_us, fetch_total,
          fetch_shards.size());
    }

    bool ok = stitched;
    for (const std::string& want : opt.expect_services) {
      if (services.count(want) == 0) ok = false;
    }
    if (fetch_shards.size() < opt.expect_fetch_shards) ok = false;
    if (ok && !tree.spans.empty()) expectations_met = true;
  }

  std::printf("%zu traces, %zu spans, %zu lines (%zu unparsable)\n",
              traces.size(), span_records, total_lines, bad_lines);
  if (total_lines == 0 || (bad_lines == total_lines && total_lines > 0)) {
    std::fprintf(stderr, "error: no parsable event-log lines\n");
    return 1;
  }
  if (have_expectations && !expectations_met) {
    std::fprintf(stderr,
                 "error: no trace satisfied the expectations (services, "
                 "fetch fan-out, and full stitching)\n");
    return 1;
  }
  return 0;
}

int stitch_main(int argc, char** argv) {
  StitchOptions opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* {
      if (k + 1 >= argc) usage("missing argument value");
      return argv[++k];
    };
    if (arg == "--stitch") continue;
    if (arg == "--expect-services") {
      opt.expect_services.clear();
      const char* p = next();
      std::string svc;
      for (; *p != '\0'; ++p) {
        if (*p == ',') {
          if (!svc.empty()) opt.expect_services.push_back(svc);
          svc.clear();
        } else {
          svc += *p;
        }
      }
      if (!svc.empty()) opt.expect_services.push_back(svc);
    } else if (arg == "--expect-fetch-shards") {
      opt.expect_fetch_shards = static_cast<unsigned>(std::atoi(next()));
    } else if (!arg.empty() && arg[0] == '-') {
      usage("unknown --stitch option");
    } else {
      opt.logs.push_back(arg);
    }
  }
  if (opt.logs.empty()) usage("--stitch needs at least one event log");
  return run_stitch(opt);
}

}  // namespace

int main(int argc, char** argv) {
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--stitch") == 0) return stitch_main(argc, argv);
  }
  Options opt;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto next = [&]() -> const char* {
      if (k + 1 >= argc) usage("missing argument value");
      return argv[++k];
    };
    if (arg == "--grid") {
      opt.grid_rows = static_cast<Vertex>(std::atol(next()));
      opt.grid_cols = static_cast<Vertex>(std::atol(next()));
    } else if (arg == "--preset") opt.preset = next();
    else if (arg == "--eps") opt.eps = std::strtod(next(), nullptr);
    else if (arg == "--c") opt.c_value = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--queries") opt.queries = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--faults") opt.fault_sizes = parse_sweep(next());
    else if (arg == "--fault-pool") opt.fault_pool = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--check") opt.check = true;
    else if (arg == "--csv") opt.csv = true;
    else if (!arg.empty() && arg[0] == '-') usage("unknown option");
    else if (opt.scheme_path.empty()) opt.scheme_path = arg;
    else usage("more than one scheme path");
  }
  const bool have_grid = opt.grid_rows > 0 && opt.grid_cols > 0;
  if (opt.scheme_path.empty() == !have_grid) {
    usage("need exactly one of <scheme.fsdl> or --grid R C");
  }
  if (opt.fault_pool == 0) opt.fault_pool = 1;
  if (opt.queries == 0) usage("--queries must be > 0");

  try {
    Graph graph;
    const Graph* graph_ptr = nullptr;
    ForbiddenSetLabeling scheme = [&] {
      if (!opt.scheme_path.empty()) return load_labeling(opt.scheme_path);
      graph = make_grid2d(opt.grid_rows, opt.grid_cols);
      graph_ptr = &graph;
      SchemeParams params = opt.preset == "faithful"
                                ? SchemeParams::faithful(opt.eps)
                                : SchemeParams::compact(opt.eps, opt.c_value);
      WallTimer build_timer;
      auto built = ForbiddenSetLabeling::build(graph, params);
      std::fprintf(stderr, "fsdl_trace: built %ux%u grid scheme in %.2fs\n",
                   opt.grid_rows, opt.grid_cols,
                   build_timer.elapsed_seconds());
      return built;
    }();
    const ForbiddenSetOracle oracle(scheme);
    // Decode every label up front: label-decode cost is startup work, not a
    // query stage, and would otherwise pollute the coverage check.
    oracle.warm();

    Rng rng(opt.seed);
    Table table({"|F|", "queries", "prepare_us/F", "assemble_us/q",
                 "dijkstra_us/q", "wall_us/q", "sketch_V/q", "sketch_E/q",
                 "pb_checks/q", "relax/q", "coverage"});
    double total_wall = 0.0;
    double total_stage = 0.0;
    for (unsigned f : opt.fault_sizes) {
      const RowTotals row = run_row(oracle, graph_ptr, f, opt, rng);
      total_wall += row.wall_us;
      total_stage += row.stage_us();
      const double nq = static_cast<double>(row.queries);
      table.row()
          .cell(static_cast<unsigned long long>(f))
          .cell(static_cast<unsigned long long>(row.queries))
          .cell(row.prepare_us / static_cast<double>(row.prepares), 1)
          .cell(row.assemble_us / nq, 1)
          .cell(row.dijkstra_us / nq, 1)
          .cell(row.wall_us / nq, 1)
          .cell(static_cast<double>(row.sketch_vertices) / nq, 1)
          .cell(static_cast<double>(row.sketch_edges) / nq, 1)
          .cell(static_cast<double>(row.pb_checks) / nq, 1)
          .cell(static_cast<double>(row.relaxations) / nq, 1)
          .cell(row.stage_us() / row.wall_us, 3);
    }

    const double coverage = total_wall > 0 ? total_stage / total_wall : 0.0;
    if (opt.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout,
                  "fsdl_trace: per-stage query cost (n=" +
                      std::to_string(scheme.num_vertices()) +
                      ", eps=" + std::to_string(scheme.params().epsilon) + ")");
      std::printf("stage sum %.1fus / wall %.1fus -> coverage %.3f\n",
                  total_stage, total_wall, coverage);
    }
#if FSDL_TRACE_ENABLED
    if (obs::level() >= obs::Level::kCounters) {
      std::printf("--- obs counters ---\n");
      const obs::CounterSnapshot snap = obs::snapshot_counters();
      for (std::size_t k = 0; k < obs::kNumCounters; ++k) {
        std::printf("%s: %llu\n",
                    obs::counter_name(static_cast<obs::Counter>(k)),
                    static_cast<unsigned long long>(snap.values[k]));
      }
    }
#endif
    if (opt.check && (coverage < 0.9 || coverage > 1.1)) {
      std::fprintf(stderr,
                   "fsdl_trace: coverage %.3f outside [0.9, 1.1] — stage "
                   "accounting does not explain the wall time\n",
                   coverage);
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
