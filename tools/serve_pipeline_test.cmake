# End-to-end serving pipeline: build a grid labeling, start fsdl_serve,
# drive it with fsdl_loadgen (4 threads, DIST + BATCH + STATS, fault churn,
# every answer verified against the exact G\F baseline), shut down with
# SIGINT and check the metrics dump appears.
function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

set(graph ${WORK_DIR}/serve_test_graph.edges)
set(scheme ${WORK_DIR}/serve_test_scheme.fsdl)
set(log ${WORK_DIR}/serve_test_server.log)
set(prom ${WORK_DIR}/serve_test_metrics.prom)

run_checked(${FSDL_BIN} gen grid 8 8 ${graph})
run_checked(${FSDL_BIN} build ${graph} ${scheme} --eps 1.0)

file(REMOVE ${prom})

# The server runs in the background; shell orchestration handles the PID,
# port discovery from the startup line, and the SIGINT shutdown. The tiny
# slow-query threshold makes every request log a per-stage report, and the
# periodic flusher (plus the final dump at shutdown) must leave a Prometheus
# textfile behind.
execute_process(
  COMMAND sh -ec "\
    '${SERVE_BIN}' '${scheme}' --port 0 --workers 4 --cache 8 \
        --metrics-dump '${prom}' --metrics-interval 0.5 \
        --slow-query-us 1 > '${log}' 2> '${log}.err' & \
    pid=$!; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${log}' && break; sleep 0.1; \
    done; \
    port=$(sed -n 's/.*port=\\([0-9][0-9]*\\).*/\\1/p' '${log}'); \
    test -n \"$port\" || { kill $pid; echo 'no port in server log'; exit 1; }; \
    '${LOADGEN_BIN}' --port $port --threads 4 --requests 60 \
        --fault-pool 3 --faults 2 --churn 0.2 --stats-every 20 \
        --verify '${graph}' --eps 1.0 --seed 7; \
    '${LOADGEN_BIN}' --port $port --threads 4 --requests 20 --batch 8 \
        --fault-pool 3 --faults 2 --churn 0.2 --stats-every 10 \
        --verify '${graph}' --eps 1.0 --seed 8; \
    kill -INT $pid; \
    wait $pid"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve pipeline failed (${rc}):\n${out}\n${err}")
endif()

file(READ ${log} server_log)
if(NOT server_log MATCHES "cache_hit_rate")
  message(FATAL_ERROR "server shutdown dump missing metrics:\n${server_log}")
endif()
if(NOT out MATCHES "0 violations")
  message(FATAL_ERROR "loadgen reported violations:\n${out}")
endif()
if(NOT EXISTS ${prom})
  message(FATAL_ERROR "fsdl_serve --metrics-dump left no file at ${prom}")
endif()
file(READ ${prom} prom_text)
if(NOT prom_text MATCHES "fsdl_requests_total" OR
   NOT prom_text MATCHES "fsdl_stage_work_total")
  message(FATAL_ERROR "metrics dump is not the expected Prometheus "
                      "exposition:\n${prom_text}")
endif()
# The slow-query log is JSON lines in the event-log schema: one flat object
# per report with stable keys, parseable by fsdl_trace.
file(READ ${log}.err server_err)
if(NOT server_err MATCHES "\"kind\":\"slow_query\"" OR
   NOT server_err MATCHES "\"op\":\"DIST\"" OR
   NOT server_err MATCHES "\"total_us\":")
  message(FATAL_ERROR "no JSON slow-query report despite --slow-query-us 1:\n"
                      "${server_err}")
endif()
