// fsdl_crashtest — crash-consistency torture orchestrator for the
// persistence and I/O paths, driven by the failpoint registry
// (util/failpoint.hpp).
//
// Three phases, each gating an invariant the stack promises:
//
//   A. Save-path abort sweep. Enumerate every failpoint hit of
//      save_labeling(path) (mkstemp, each write(2), fsync, close, rename,
//      dir-fsync, completion), then for every (point, hit-index) fork a
//      child that SIGKILLs itself exactly there. After each kill the store
//      file must be byte-identical to the complete OLD labeling or the
//      complete NEW one — never missing, truncated, or torn — and a
//      restarted loader must CRC-validate it and serve correct distances
//      from it. An in-process errno:EIO sweep over the same hit-points
//      then asserts every failed save reports the error AND leaves the old
//      file intact, and that EINTR/short-write injections are retried to a
//      successful, complete save.
//
//   B. Reload under fault. An admin server hot-reloads (RELOAD opcode —
//      the same Server::reload() that SIGHUP drives in fsdl_serve) while
//      failpoints inject an open failure, a torn read, an allocation
//      failure, a snapshot-build failure, and CRC bit rot. Every failure
//      must leave the old snapshot serving (verified distances, epoch
//      unchanged) and be classified correctly in
//      fsdl_label_reloads_total{result=ok|crc_failed|error}; the armed
//      points must show up in fsdl_failpoint_hits_total{point}.
//
//   C. Socket storm. Verified query load through a real server on both
//      data planes while EINTR storms and short reads/writes hammer every
//      socket site (client connect/send/recv, thread-plane send_all/recv,
//      reactor recv/try_flush). Gate: zero violations — every answer equals
//      the local oracle's answer on the same labeling.
//
//   fsdl_crashtest [--work-dir DIR] [--seed S] [--emit-corpus DIR]
//
// --emit-corpus DIR additionally writes torn-file artifacts (truncations
// at every header/section boundary, CRC-flipped trailers, bit-flipped
// bodies) for seeding the fuzz_serialize corpus with real crash shapes.
#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "core/serialize.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "util/failpoint.hpp"
#include "util/rng.hpp"

namespace {

using namespace fsdl;

int g_failures = 0;

#define CHECK(cond, ...)                               \
  do {                                                 \
    if (!(cond)) {                                     \
      std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__); \
      std::fprintf(stderr, __VA_ARGS__);               \
      std::fprintf(stderr, "\n");                      \
      ++g_failures;                                    \
    }                                                  \
  } while (0)

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(2);
  }
}

/// The two labeling versions every phase flips between, plus their exact
/// serialized bytes (what "complete-old" / "complete-new" means on disk).
struct Fixture {
  Graph graph;
  ForbiddenSetLabeling old_scheme;
  ForbiddenSetLabeling new_scheme;
  std::string old_bytes;
  std::string new_bytes;
  std::string path;  // the store file under torture
  double old_eps = 1.0;
  double new_eps = 0.5;
};

Fixture make_fixture(const std::string& work_dir) {
  Fixture fix;
  fix.graph = make_grid2d(8, 8);
  fix.old_scheme = ForbiddenSetLabeling::build(
      fix.graph, SchemeParams::faithful(fix.old_eps));
  fix.new_scheme = ForbiddenSetLabeling::build(
      fix.graph, SchemeParams::faithful(fix.new_eps));
  std::ostringstream oss_old(std::ios::binary);
  save_labeling(fix.old_scheme, oss_old);
  fix.old_bytes = oss_old.str();
  std::ostringstream oss_new(std::ios::binary);
  save_labeling(fix.new_scheme, oss_new);
  fix.new_bytes = oss_new.str();
  fix.path = work_dir + "/store.fsdl";
  return fix;
}

/// Every failpoint on the save_labeling(path) route, in program order.
const char* kSavePoints[] = {
    "serialize.save.alloc",   "atomic_file.mkstemp",
    "atomic_file.write",      "atomic_file.fsync",
    "atomic_file.close",      "atomic_file.rename",
    "atomic_file.dir_fsync",  "atomic_file.dir_fsync.sync",
    "atomic_file.done",
};

/// Points where an injected hard error must NOT fail the save (best-effort
/// directory persistence, post-completion marker).
bool best_effort_point(const std::string& point) {
  return point == "atomic_file.dir_fsync" ||
         point == "atomic_file.dir_fsync.sync" ||
         point == "atomic_file.done";
}

/// Remove `store.fsdl.tmp.*` leftovers a killed child may strand. Returns
/// how many there were (stale tmps are allowed; a torn `path` is not).
unsigned sweep_stale_tmps(const std::string& work_dir) {
  unsigned stale = 0;
  DIR* dir = ::opendir(work_dir.c_str());
  if (dir == nullptr) return 0;
  while (dirent* e = ::readdir(dir)) {
    const std::string name = e->d_name;
    if (name.rfind("store.fsdl.tmp.", 0) == 0) {
      ::unlink((work_dir + "/" + name).c_str());
      ++stale;
    }
  }
  ::closedir(dir);
  return stale;
}

/// The Phase A invariant: the store is byte-identical to complete-old or
/// complete-new, and a fresh loader serves correct distances from it.
void verify_store(const Fixture& fix, Rng& rng, const char* what) {
  std::string bytes;
  if (!read_file(fix.path, bytes)) {
    CHECK(false, "%s: store file missing", what);
    return;
  }
  const bool is_old = bytes == fix.old_bytes;
  const bool is_new = bytes == fix.new_bytes;
  CHECK(is_old || is_new,
        "%s: store is torn (%zu bytes, old=%zu new=%zu)", what, bytes.size(),
        fix.old_bytes.size(), fix.new_bytes.size());
  if (!is_old && !is_new) return;
  try {
    // Restarted-loader check: CRC sweep + parse + a few served queries.
    const ForbiddenSetLabeling loaded = load_labeling(fix.path);
    const ForbiddenSetOracle oracle(loaded);
    const double eps = is_old ? fix.old_eps : fix.new_eps;
    const Vertex n = fix.graph.num_vertices();
    for (int q = 0; q < 4; ++q) {
      const Vertex s = rng.vertex(n);
      const Vertex t = rng.vertex(n);
      FaultSet f;
      const Vertex x = rng.vertex(n);
      if (x != s && x != t) f.add_vertex(x);
      const Dist got = oracle.distance(s, t, f);
      const Dist exact = distance_avoiding(fix.graph, s, t, f);
      if (exact == kInfDist || got == kInfDist) {
        CHECK(got == exact, "%s: infinity mismatch s=%u t=%u", what, s, t);
      } else {
        CHECK(got >= exact && static_cast<double>(got) <=
                                  (1.0 + eps) * static_cast<double>(exact),
              "%s: stretch violation s=%u t=%u got=%u exact=%u", what, s, t,
              got, exact);
      }
    }
  } catch (const std::exception& e) {
    CHECK(false, "%s: restarted loader rejected an intact store: %s", what,
          e.what());
  }
}

// ---------------------------------------------------------------- Phase A

void phase_a(const Fixture& fix, const std::string& work_dir,
             std::uint64_t seed) {
  Rng rng(seed);

  // Count pass: arm every save point with `off` so evaluate() counts hits
  // without injecting, and record how many times each point is reached.
  {
    std::string spec;
    for (const char* p : kSavePoints) spec += std::string(p) + "=off;";
    const std::string err = failpoint::arm(spec);
    CHECK(err.empty(), "count-pass arm failed: %s", err.c_str());
  }
  write_file(fix.path, fix.old_bytes);
  save_labeling(fix.new_scheme, fix.path);
  std::vector<std::pair<std::string, std::uint64_t>> hit_counts;
  std::uint64_t total_hits = 0;
  for (const char* p : kSavePoints) {
    const std::uint64_t h = failpoint::hits(p);
    CHECK(h > 0, "save path never reached failpoint %s", p);
    hit_counts.emplace_back(p, h);
    total_hits += h;
  }
  failpoint::disarm_all();

  // Abort sweep: SIGKILL a forked child at every single hit of every
  // point; the parent asserts complete-old-or-complete-new every time.
  unsigned aborts = 0;
  for (const auto& [point, hits] : hit_counts) {
    for (std::uint64_t k = 1; k <= hits; ++k) {
      write_file(fix.path, fix.old_bytes);
      std::fflush(nullptr);
      const pid_t pid = ::fork();
      if (pid == 0) {
        failpoint::disarm_all();
        const std::string err =
            failpoint::arm(point + "=abort@nth:" + std::to_string(k));
        if (!err.empty()) ::_exit(4);
        try {
          save_labeling(fix.new_scheme, fix.path);
        } catch (...) {
        }
        ::_exit(3);  // the abort must have fired before we got here
      }
      CHECK(pid > 0, "fork failed: %s", std::strerror(errno));
      if (pid < 0) return;
      int status = 0;
      ::waitpid(pid, &status, 0);
      CHECK(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
            "child for %s hit %llu did not die by SIGKILL (status=%d)",
            point.c_str(), static_cast<unsigned long long>(k), status);
      const std::string what = "abort@" + point;
      verify_store(fix, rng, what.c_str());
      ++aborts;
    }
  }
  const unsigned stale = sweep_stale_tmps(work_dir);

  // Errno sweep (in-process): EIO at each hit must fail the save loudly
  // and leave the old file byte-intact — except at the best-effort points,
  // where the save must still complete.
  unsigned errnos = 0;
  for (const auto& [point, hits] : hit_counts) {
    for (std::uint64_t k = 1; k <= hits; ++k) {
      write_file(fix.path, fix.old_bytes);
      const std::string err =
          failpoint::arm(point + "=errno:EIO@nth:" + std::to_string(k));
      CHECK(err.empty(), "errno arm failed: %s", err.c_str());
      bool saved = true;
      std::string message;
      try {
        save_labeling(fix.new_scheme, fix.path);
      } catch (const std::exception& e) {
        saved = false;
        message = e.what();
      }
      failpoint::disarm_all();
      if (best_effort_point(point)) {
        CHECK(saved, "EIO at best-effort %s failed the save: %s",
              point.c_str(), message.c_str());
      } else {
        CHECK(!saved, "EIO at %s hit %llu did not fail the save",
              point.c_str(), static_cast<unsigned long long>(k));
        CHECK(!saved && !message.empty(), "EIO at %s produced no message",
              point.c_str());
      }
      std::string bytes;
      CHECK(read_file(fix.path, bytes), "store missing after EIO at %s",
            point.c_str());
      CHECK(bytes == (saved ? fix.new_bytes : fix.old_bytes),
            "store not byte-intact after EIO at %s hit %llu", point.c_str(),
            static_cast<unsigned long long>(k));
      ++errnos;
    }
  }
  sweep_stale_tmps(work_dir);

  // Retry semantics: EINTR at write/fsync and short writes must be
  // absorbed — the save completes and the file is the complete new bytes.
  const char* retry_specs[] = {
      "atomic_file.write=errno:EINTR@nth:1",
      "atomic_file.fsync=errno:EINTR@nth:1",
      "atomic_file.write=short:512",
      "atomic_file.write=short:1",
  };
  for (const char* spec : retry_specs) {
    write_file(fix.path, fix.old_bytes);
    const std::string err = failpoint::arm(spec);
    CHECK(err.empty(), "retry arm failed: %s", err.c_str());
    bool saved = true;
    try {
      save_labeling(fix.new_scheme, fix.path);
    } catch (const std::exception& e) {
      saved = false;
      CHECK(false, "save under \"%s\" failed: %s", spec, e.what());
    }
    const std::uint64_t fires = failpoint::fires("atomic_file.write") +
                                failpoint::fires("atomic_file.fsync");
    CHECK(fires > 0, "retry spec \"%s\" never fired", spec);
    failpoint::disarm_all();
    std::string bytes;
    if (saved && read_file(fix.path, bytes)) {
      CHECK(bytes == fix.new_bytes, "save under \"%s\" left a torn file",
            spec);
    }
  }

  std::printf("phase A: %u abort kills + %u errno injections across %llu "
              "hit-points (%u stale tmps cleaned), store never torn\n",
              aborts, errnos, static_cast<unsigned long long>(total_hits),
              stale);
}

// ---------------------------------------------------------------- Phase B

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

void phase_b(Fixture& fix, std::uint64_t seed) {
  Rng rng(seed + 1);
  write_file(fix.path, fix.old_bytes);

  server::ServerOptions opt;
  opt.workers = 2;
  opt.cache_capacity = 16;
  opt.label_path = fix.path;
  opt.admin = true;
  server::Server srv(fix.old_scheme, opt);
  srv.start();
  server::Client client;
  client.connect("127.0.0.1", srv.port());

  const ForbiddenSetOracle local(fix.old_scheme);
  auto serving_ok = [&](const char* what) {
    const Vertex n = fix.graph.num_vertices();
    const Vertex s = rng.vertex(n);
    const Vertex t = rng.vertex(n);
    FaultSet f;
    const Vertex x = rng.vertex(n);
    if (x != s && x != t) f.add_vertex(x);
    const Dist got = client.dist(s, t, f);
    CHECK(got == local.distance(s, t, f),
          "%s: old snapshot answered wrong distance s=%u t=%u", what, s, t);
  };

  // Clean hot reload over the wire (the admin RELOAD opcode drives the
  // same Server::reload() path SIGHUP does in fsdl_serve).
  const std::string reply = client.admin_reload();
  CHECK(contains(reply, "epoch=2"), "clean RELOAD reply: %s", reply.c_str());
  CHECK(srv.metrics().reloads(server::ReloadResult::kOk) == 1,
        "clean reload not counted ok");

  struct FaultCase {
    const char* spec;
    const char* expect_in_error;
    server::ReloadResult classified;
  };
  const FaultCase cases[] = {
      {"serialize.load.crc=errno:EIO@nth:1", "CRC32",
       server::ReloadResult::kCrcFailed},
      {"serialize.load.read=errno:EIO@nth:1", "truncated",
       server::ReloadResult::kError},
      {"serialize.load.alloc=errno:ENOMEM@nth:1", "alloc",
       server::ReloadResult::kError},
      {"server.reload.publish=errno:EIO@nth:1", "alloc",
       server::ReloadResult::kError},
      {"serialize.load.open=errno:EIO@nth:1", "cannot open",
       server::ReloadResult::kError},
  };
  std::uint64_t expect_errors = 0;
  std::uint64_t expect_crc = 0;
  for (const FaultCase& c : cases) {
    const std::uint64_t epoch_before = srv.label_epoch();
    const std::string err = failpoint::arm(c.spec);
    CHECK(err.empty(), "arm %s: %s", c.spec, err.c_str());
    const std::string reload_error = srv.reload();
    CHECK(!reload_error.empty(), "reload under %s did not fail", c.spec);
    CHECK(contains(reload_error, c.expect_in_error),
          "reload under %s: error \"%s\" lacks \"%s\"", c.spec,
          reload_error.c_str(), c.expect_in_error);
    if (c.classified == server::ReloadResult::kCrcFailed) ++expect_crc;
    else ++expect_errors;
    CHECK(srv.metrics().reloads(c.classified) ==
              (c.classified == server::ReloadResult::kCrcFailed
                   ? expect_crc
                   : expect_errors),
          "reload under %s misclassified", c.spec);
    CHECK(srv.label_epoch() == epoch_before,
          "failed reload under %s bumped the epoch", c.spec);
    serving_ok(c.spec);
    // Export check on the last case, while the point is still armed: the
    // armed run must be observable in the Prometheus exposition.
    if (std::string(c.spec).rfind("serialize.load.open", 0) == 0) {
      const std::string prom = client.metrics();
      CHECK(contains(prom, "fsdl_label_reloads_total{result=\"ok\"} 1"),
            "prometheus reload ok counter wrong");
      CHECK(contains(prom,
                     "fsdl_label_reloads_total{result=\"crc_failed\"} 1"),
            "prometheus reload crc_failed counter wrong");
      CHECK(contains(prom, "fsdl_label_reloads_total{result=\"error\"} 4"),
            "prometheus reload error counter wrong");
      CHECK(contains(
                prom,
                "fsdl_failpoint_hits_total{point=\"serialize.load.open\"} 1"),
            "fsdl_failpoint_hits_total missing the armed point");
    }
    failpoint::disarm_all();
  }

  // With every fault disarmed the same file reloads cleanly again.
  CHECK(srv.reload().empty(), "post-fault reload failed");
  CHECK(srv.metrics().reloads(server::ReloadResult::kOk) == 2,
        "post-fault reload not counted ok");
  serving_ok("post-fault");
  srv.stop();

  std::printf("phase B: 2 clean + %zu faulted reloads, old snapshot served "
              "through every failure, counters classified ok=2 "
              "crc_failed=%llu error=%llu\n",
              std::size(cases), static_cast<unsigned long long>(expect_crc),
              static_cast<unsigned long long>(expect_errors));
}

// ---------------------------------------------------------------- Phase C

void phase_c(const Fixture& fix, server::DataPlane plane,
             std::uint64_t seed) {
  const bool reactor = plane == server::DataPlane::kEpollReactor;
  server::ServerOptions opt;
  opt.workers = 4;
  opt.cache_capacity = 32;
  opt.data_plane = plane;
  server::Server srv(fix.old_scheme, opt);
  srv.start();

  // EINTR storms must use every:K >= 2: a correctly-retrying site would
  // spin forever under every:1 (the retry is itself the next hit).
  std::string storm =
      "client.send=short:3@every:2;client.recv=errno:EINTR@every:3;"
      "frame_server.send=short:5@every:2;frame_server.recv=errno:EINTR@every:3";
  if (reactor) {
    storm += ";reactor.recv=errno:EINTR@every:3;reactor.send=short:7@every:2";
  }
  const std::string err = failpoint::arm(storm);
  CHECK(err.empty(), "storm arm failed: %s", err.c_str());

  const ForbiddenSetOracle local(fix.old_scheme);
  server::Client client;
  client.connect("127.0.0.1", srv.port());
  Rng rng(seed + (reactor ? 2 : 3));
  const Vertex n = fix.graph.num_vertices();
  unsigned answered = 0;
  for (int q = 0; q < 250; ++q) {
    const Vertex s = rng.vertex(n);
    const Vertex t = rng.vertex(n);
    FaultSet f;
    const std::size_t num_faults = rng.below(4);
    while (f.size() < num_faults) {
      const Vertex x = rng.vertex(n);
      if (x != s && x != t) f.add_vertex(x);
    }
    try {
      if (q % 10 == 9) {
        // Exercise multi-frame responses under the storm too.
        std::vector<std::pair<Vertex, Vertex>> pairs = {
            {s, t}, {t, s}, {s, s}};
        const std::vector<Dist> got = client.batch(pairs, f);
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          CHECK(got[i] == local.distance(pairs[i].first, pairs[i].second, f),
                "storm batch violation (%s plane) q=%d i=%zu",
                reactor ? "reactor" : "thread", q, i);
        }
      } else {
        const Dist got = client.dist(s, t, f);
        CHECK(got == local.distance(s, t, f),
              "storm violation (%s plane) q=%d s=%u t=%u",
              reactor ? "reactor" : "thread", q, s, t);
      }
      ++answered;
    } catch (const std::exception& e) {
      CHECK(false, "storm query failed (%s plane) q=%d: %s",
            reactor ? "reactor" : "thread", q, e.what());
    }
  }
  CHECK(answered == 250, "storm answered %u/250", answered);
  CHECK(failpoint::fires("client.send") > 0, "client.send storm never fired");
  CHECK(failpoint::fires("client.recv") > 0, "client.recv storm never fired");
  if (reactor) {
    CHECK(failpoint::fires("reactor.recv") > 0,
          "reactor.recv storm never fired");
    CHECK(failpoint::fires("reactor.send") > 0,
          "reactor.send storm never fired");
  } else {
    CHECK(failpoint::fires("frame_server.recv") > 0,
          "frame_server.recv storm never fired");
    CHECK(failpoint::fires("frame_server.send") > 0,
          "frame_server.send storm never fired");
  }
  failpoint::disarm_all();
  srv.stop();

  std::printf("phase C (%s plane): 250/250 storm queries answered, zero "
              "violations\n",
              reactor ? "reactor" : "thread");
}

// ------------------------------------------------------------- corpus

void emit_corpus(const std::string& dir) {
  ::mkdir(dir.c_str(), 0755);
  // A deliberately small labeling: fuzz seeds should be structural shapes
  // for the mutator to bend, not megabytes of label bits (the CI fuzz run
  // caps inputs at 64 KiB anyway).
  const Graph g = make_grid2d(4, 4);
  const auto scheme =
      ForbiddenSetLabeling::build(g, SchemeParams::faithful(1.0));
  std::ostringstream os(std::ios::binary);
  save_labeling(scheme, os);
  const std::string bytes = os.str();
  // v3 layout: magic[4] version[4] body_size[8] body[N] crc[4].
  const std::size_t header = 16;
  const std::size_t body = bytes.size() - header - 4;
  auto emit = [&](const std::string& name, std::string artifact) {
    write_file(dir + "/" + name, artifact);
  };
  const std::size_t cuts[] = {2,          4,          8,
                              12,         header,     header + body / 3,
                              header + body - 1, header + body,
                              header + body + 2};
  for (const std::size_t cut : cuts) {
    char name[64];
    std::snprintf(name, sizeof name, "torn_trunc_%zu.fsdl", cut);
    emit(name, bytes.substr(0, cut));
  }
  std::string crc_flip = bytes;
  crc_flip.back() = static_cast<char>(crc_flip.back() ^ 0x01);
  emit("torn_crc_flip.fsdl", crc_flip);
  std::string body_flip = bytes;
  body_flip[header + body / 2] =
      static_cast<char>(body_flip[header + body / 2] ^ 0x80);
  emit("torn_body_flip.fsdl", body_flip);
  std::string version_bump = bytes;
  version_bump[4] = static_cast<char>(version_bump[4] + 1);
  emit("torn_version_bump.fsdl", version_bump);
  std::printf("corpus: wrote %zu torn artifacts to %s\n",
              std::size(cuts) + 3, dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string work_dir;
  std::string corpus_dir;
  std::uint64_t seed = 42;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--work-dir" && k + 1 < argc) {
      work_dir = argv[++k];
    } else if (arg == "--emit-corpus" && k + 1 < argc) {
      corpus_dir = argv[++k];
    } else if (arg == "--seed" && k + 1 < argc) {
      seed = std::strtoull(argv[++k], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: fsdl_crashtest [--work-dir DIR] [--seed S] "
                   "[--emit-corpus DIR]\n");
      return 2;
    }
  }
  if (work_dir.empty()) {
    char tmpl[] = "/tmp/fsdl_crashtest.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed: %s\n", std::strerror(errno));
      return 2;
    }
    work_dir = tmpl;
  } else {
    ::mkdir(work_dir.c_str(), 0755);  // ok if it already exists
  }

  Fixture fix = make_fixture(work_dir);
  std::printf("fixture: grid 8x8, old=%zuB (eps=%.1f) new=%zuB (eps=%.1f), "
              "store=%s\n",
              fix.old_bytes.size(), fix.old_eps, fix.new_bytes.size(),
              fix.new_eps, fix.path.c_str());

  if (!corpus_dir.empty()) emit_corpus(corpus_dir);

  // Phase A first: it forks, and fork is only safe while this process has
  // no server/client threads (the label builder joins its pool).
  phase_a(fix, work_dir, seed);
  phase_b(fix, seed);
  phase_c(fix, server::DataPlane::kThreadPerConnection, seed);
  phase_c(fix, server::DataPlane::kEpollReactor, seed);

  std::remove(fix.path.c_str());
  if (g_failures > 0) {
    std::fprintf(stderr, "fsdl_crashtest: %d FAILURE(S)\n", g_failures);
    return 1;
  }
  std::printf("fsdl_crashtest: all phases passed\n");
  return 0;
}
