# End-to-end hardening pipeline, three acts:
#
#   1. Corruption: a label file with one byte changed must be rejected at
#      load with a CRC error (never decoded into wrong-answer labels).
#   2. Chaos: fsdl_loadgen drives fsdl_serve through the fsdl_chaos proxy,
#      which drops/delays/truncates/bit-flips traffic for a window. With
#      retries armed the run must finish with ZERO verification violations
#      (corruption surfaces as errors, not wrong distances) and the server
#      must survive. Part of the traffic carries the trace-context wire
#      extension (--trace-sample 0.2), so mangled extension bytes exercise
#      the "malformed trace-context" rejection path under fire too. After
#      the window, a strict run (no tolerated transport errors) proves
#      full recovery.
#   3. Overload: a 1-worker server with a zero-length waiting line under
#      6 concurrent clients must shed with OVERLOADED, visible both to the
#      clients (sheds_seen) and in the Prometheus metrics.
function(run_checked)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
  set(LAST_OUTPUT "${out}" PARENT_SCOPE)
endfunction()

set(graph ${WORK_DIR}/chaos_graph.edges)
set(scheme ${WORK_DIR}/chaos_scheme.fsdl)
set(bad_scheme ${WORK_DIR}/chaos_scheme_bad.fsdl)
set(slog ${WORK_DIR}/chaos_server.log)
set(plog ${WORK_DIR}/chaos_proxy.log)
set(olog ${WORK_DIR}/chaos_overload.log)
set(prom ${WORK_DIR}/chaos_overload_metrics.prom)

run_checked(${FSDL_BIN} gen grid 8 8 ${graph})
run_checked(${FSDL_BIN} build ${graph} ${scheme} --eps 1.0)

# --- Act 1: bit-rot in the label file is caught by the CRC trailer. -------
# Offset 25 lands inside the body (16-byte header + params); the byte is
# replaced by its value + 1 mod 256, so the file always actually changes.
execute_process(
  COMMAND sh -ec "\
    cp '${scheme}' '${bad_scheme}'; \
    b=$(od -An -tu1 -j25 -N1 '${bad_scheme}' | tr -d ' '); \
    printf \"$(printf '\\\\%03o' $(( (b + 1) % 256 )))\" | \
      dd of='${bad_scheme}' bs=1 seek=25 count=1 conv=notrunc 2>/dev/null; \
    if timeout 10 '${SERVE_BIN}' '${bad_scheme}' --port 0 \
        2>'${WORK_DIR}/crc_err.txt'; \
    then echo 'corrupt labeling file was accepted'; exit 1; fi; \
    grep -q 'CRC32 mismatch' '${WORK_DIR}/crc_err.txt'"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corrupt label file not rejected (${rc}):\n${out}\n${err}")
endif()

# --- Act 2: seeded chaos window, then recovery. ---------------------------
execute_process(
  COMMAND sh -ec "\
    '${SERVE_BIN}' '${scheme}' --port 0 --workers 4 --cache 8 \
        --recv-timeout-ms 2000 --send-timeout-ms 2000 --drain-ms 500 \
        > '${slog}' 2> '${slog}.err' & \
    spid=$!; \
    trap 'kill $spid $cpid 2>/dev/null || true' EXIT; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${slog}' && break; sleep 0.1; \
    done; \
    sport=$(sed -n 's/.*port=\\([0-9][0-9]*\\).*/\\1/p' '${slog}'); \
    test -n \"$sport\" || { kill $spid; echo 'no server port'; exit 1; }; \
    '${CHAOS_BIN}' --upstream-port $sport --seed 13 --drop-p 0.03 \
        --delay-p 0.03 --delay-ms 30 --truncate-p 0.03 --flip-p 0.04 \
        --chaos-s 4 > '${plog}' 2>&1 & \
    cpid=$!; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${plog}' && break; sleep 0.1; \
    done; \
    cport=$(sed -n 's/.*port=\\([0-9][0-9]*\\).*/\\1/p' '${plog}'); \
    test -n \"$cport\" || { kill $spid $cpid; echo 'no proxy port'; exit 1; }; \
    '${LOADGEN_BIN}' --port $cport --threads 4 --requests 40 \
        --fault-pool 3 --faults 2 --churn 0.2 --stats-every 0 \
        --verify '${graph}' --eps 1.0 --seed 7 \
        --trace-sample 0.2 \
        --retries 5 --timeout-ms 400 --allow-transport-errors; \
    sleep 5; \
    echo '=== recovery ==='; \
    '${LOADGEN_BIN}' --port $cport --threads 4 --requests 30 \
        --fault-pool 3 --faults 2 --churn 0.2 --stats-every 10 \
        --verify '${graph}' --eps 1.0 --seed 8 \
        --trace-sample 0.2 \
        --retries 3 --timeout-ms 2000; \
    kill -INT $spid; \
    wait $spid; \
    kill $cpid 2>/dev/null || true"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos pipeline failed (${rc}):\n${out}\n${err}")
endif()

# Both the chaos run and the recovery run must report zero violations:
# injected corruption may cost requests, never correctness.
string(REGEX MATCHALL "verified against exact baseline[^\n]*" verdicts "${out}")
list(LENGTH verdicts n_verdicts)
if(NOT n_verdicts EQUAL 2)
  message(FATAL_ERROR "expected 2 verification verdicts, got ${n_verdicts}:\n${out}")
endif()
foreach(v IN LISTS verdicts)
  if(NOT v MATCHES "0 violations")
    message(FATAL_ERROR "violations under chaos: ${v}\n${out}")
  endif()
endforeach()
string(REGEX MATCH "=== recovery ===.*" recovery_out "${out}")
if(NOT recovery_out MATCHES "transport_errors=0")
  message(FATAL_ERROR "recovery run after chaos was not clean:\n${recovery_out}")
endif()
# The server survived the chaos window: its graceful-shutdown metrics dump
# made it into the log.
file(READ ${slog} server_log)
if(NOT server_log MATCHES "cache_hit_rate")
  message(FATAL_ERROR "server did not shut down cleanly after chaos:\n${server_log}")
endif()

# --- Act 3: overload is shed with OVERLOADED, not queued unboundedly. -----
execute_process(
  COMMAND sh -ec "\
    '${SERVE_BIN}' '${scheme}' --port 0 --workers 1 --max-queued 0 \
        --backlog 8 --metrics-dump '${prom}' --metrics-interval 0.3 \
        > '${olog}' 2> '${olog}.err' & \
    opid=$!; \
    trap 'kill $opid 2>/dev/null || true' EXIT; \
    for k in $(seq 1 100); do \
      grep -q 'port=' '${olog}' && break; sleep 0.1; \
    done; \
    oport=$(sed -n 's/.*port=\\([0-9][0-9]*\\).*/\\1/p' '${olog}'); \
    test -n \"$oport\" || { kill $opid; echo 'no server port'; exit 1; }; \
    '${LOADGEN_BIN}' --port $oport --threads 6 --requests 200 --batch 8 \
        --fault-pool 2 --faults 2 --stats-every 0 --n 64 --seed 9 \
        --retries 8 --timeout-ms 1000 --allow-transport-errors; \
    kill -INT $opid; \
    wait $opid"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "overload pipeline failed (${rc}):\n${out}\n${err}")
endif()
if(NOT out MATCHES "sheds_seen=[1-9]")
  message(FATAL_ERROR "clients observed no OVERLOADED sheds:\n${out}")
endif()
file(READ ${olog} overload_log)
if(NOT overload_log MATCHES "backlog=8")
  message(FATAL_ERROR "effective backlog not logged at startup:\n${overload_log}")
endif()
if(NOT EXISTS ${prom})
  message(FATAL_ERROR "no metrics dump from the overload server")
endif()
file(READ ${prom} prom_text)
if(NOT prom_text MATCHES "fsdl_failure_events_total{event=\"sheds\"} [1-9]")
  message(FATAL_ERROR "shed events missing from Prometheus metrics:\n${prom_text}")
endif()
