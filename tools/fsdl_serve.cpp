// fsdl_serve — the query service daemon.
//
//   fsdl_serve <scheme.fsdl> [--port P] [--workers N] [--cache C] [--warm]
//              [--backlog B] [--recv-timeout-ms T] [--send-timeout-ms T]
//              [--request-deadline-ms D] [--max-queued Q] [--drain-ms D]
//              [--data-plane reactor|thread] [--reactor-threads N]
//              [--batch-window-us U] [--watchdog-ms MS]
//              [--watchdog-stall-ms MS] [--watchdog-abort-ms MS]
//              [--metrics-dump FILE] [--metrics-interval S] [--admin]
//              [--slow-query-us T] [--trace-level off|counters|spans]
//              [--shard-id I --shard-count K]
//   fsdl_serve <graph.edges> --build [--build-threads N] [--build-eps E]
//              [--build-compact C] [...same serving flags]
//   fsdl_serve --health HOST:PORT        one-shot readiness probe
//   fsdl_serve --fleet-stats HOST:PORT   one-shot FLEET_STATS probe (router)
//
// Loads a serialized labeling (fsdl build) — or, with --build, an edge-list
// graph whose labels are constructed at startup on --build-threads workers
// (default 0 = hardware concurrency; cold-start wall time is logged) —
// shares one read-only oracle across a worker pool, and answers DIST /
// BATCH / STATS / METRICS frames on 127.0.0.1:P (P=0 picks an ephemeral
// port, printed on stdout). SIGINT or SIGTERM triggers a graceful shutdown:
// stop accepting, drain in-flight requests, dump the metrics snapshot.
//
// High availability plumbing:
//   SIGHUP                 hot-reload the label file the server was started
//                          from: load + CRC-validate in the background, then
//                          atomically swap; in-flight queries finish on the
//                          old labels. A corrupt file is rejected and the
//                          old labels keep serving. (File-backed servers
//                          only; --build has no file to reload.)
//   --admin                also accept the RELOAD opcode over the wire
//                          (off by default — a network peer should not be
//                          able to force disk reads unless opted in).
//   --health HOST:PORT     probe mode: send one HEALTH frame and print the
//                          reply. Exit 0 = ready, 1 = alive but not ready
//                          (loading/draining), 2 = unreachable. What a
//                          load balancer or supervisor calls.
//
// Sharding plumbing (see src/shard/):
//   --shard-id I --shard-count K
//                          assert that the loaded label file is shard I of a
//                          K-way split (fsdl shard_split) and refuse to
//                          start otherwise. Deployment armor: a supervisor
//                          that starts `fsdl_serve part.shard2of4 --shard-id
//                          2 --shard-count 4` can never accidentally serve
//                          the wrong partition because a copy step shuffled
//                          files. The file itself is authoritative either
//                          way — the server always serves exactly the
//                          partition recorded in the (CRC-covered) label
//                          file and reports it as `shard=I/K` in HEALTH.
//
// Observability plumbing:
//   --metrics-dump FILE    write the Prometheus text exposition to FILE
//                          every --metrics-interval seconds (default 5) and
//                          once at shutdown — point a node_exporter textfile
//                          collector (or any file scraper) at it.
//   --slow-query-us T      log requests slower than T microseconds as one
//                          JSON line (event-log schema; span tree at
//                          --trace-level spans in trace builds).
//   --trace-level L        runtime level of the compiled-in tracer; only
//                          meaningful when built with -DFSDL_TRACE=ON.
//   --trace-log FILE       append distributed-tracing span records (JSON
//                          lines, svc="shard") for sampled or slow requests;
//                          stitch across processes with fsdl_trace --stitch.
//                          Needs -DFSDL_TRACE=ON.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "core/serialize.hpp"
#include "graph/io.hpp"
#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/replica_client.hpp"
#include "server/server.hpp"
#include "util/atomic_file.hpp"
#include "util/failpoint.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

// Self-pipe: the signal handler writes one byte; main polls it. The byte
// value carries which event fired: 't' = terminate (SIGINT/SIGTERM),
// 'h' = hot reload (SIGHUP).
int g_shutdown_pipe[2] = {-1, -1};

void on_terminate(int) {
  const char byte = 't';
  // write() is async-signal-safe; best effort.
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

void on_hup(int) {
  const char byte = 'h';
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: fsdl_serve <scheme.fsdl> [--port P] [--workers N]\n"
               "                  [--cache C] [--warm] [--backlog B]\n"
               "                  [--recv-timeout-ms T] [--send-timeout-ms "
               "T]\n"
               "                  [--request-deadline-ms D] [--max-queued "
               "Q]\n"
               "                  [--drain-ms D]\n"
               "                  [--data-plane reactor|thread]\n"
               "                  [--reactor-threads N] [--batch-window-us "
               "U]\n"
               "                  [--watchdog-ms MS] [--watchdog-stall-ms "
               "MS]\n"
               "                  [--watchdog-abort-ms MS]\n"
               "                  [--metrics-dump FILE] [--metrics-interval "
               "S]\n"
               "                  [--slow-query-us T]\n"
               "                  [--trace-level off|counters|spans]\n"
               "                  [--trace-log FILE]\n"
               "                  [--shard-id I --shard-count K]\n"
               "                  [--failpoints SPEC]   (also: env "
               "FSDL_FAILPOINTS)\n"
               "       fsdl_serve <graph.edges> --build [--build-threads N]\n"
               "                  [--build-eps E] [--build-compact C] [...]\n"
               "       fsdl_serve --health HOST:PORT\n"
               "       fsdl_serve --fleet-stats HOST:PORT\n");
  std::exit(2);
}

/// --health HOST:PORT probe: one HEALTH round-trip, reply on stdout — e.g.
/// "ready epoch=1 n=64 shard=0/2 plane=reactor uptime_s=12 conns=3" (the
/// state may also be loading/draining, or degraded when the watchdog sees a
/// stalled loop). Exit codes: 0 ready, 1 alive-but-not-ready (includes
/// degraded), 2 unreachable.
int run_health_probe(const std::string& target) {
  using namespace fsdl::server;
  try {
    const std::vector<Endpoint> eps = parse_endpoints(target);
    ClientOptions copt;
    copt.connect_timeout_ms = 2000;
    copt.recv_timeout_ms = 2000;
    copt.send_timeout_ms = 2000;
    Client client(copt);
    client.connect(eps[0].host, eps[0].port);
    const std::string reply = client.health();
    std::printf("%s\n", reply.c_str());
    return reply.rfind("ready", 0) == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "unreachable: %s\n", e.what());
    return 2;
  }
}

/// --fleet-stats HOST:PORT probe: one FLEET_STATS round-trip against a
/// router, merged Prometheus exposition on stdout. Exit 0 on success.
int run_fleet_stats_probe(const std::string& target) {
  using namespace fsdl::server;
  try {
    const std::vector<Endpoint> eps = parse_endpoints(target);
    ClientOptions copt;
    copt.connect_timeout_ms = 2000;
    copt.recv_timeout_ms = 5000;
    copt.send_timeout_ms = 2000;
    Client client(copt);
    client.connect(eps[0].host, eps[0].port);
    std::printf("%s", client.fleet_stats().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fleet-stats failed: %s\n", e.what());
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsdl;
  {
    const std::string error = failpoint::arm_from_env();
    if (!error.empty()) {
      std::fprintf(stderr, "fsdl_serve: FSDL_FAILPOINTS: %s\n", error.c_str());
      return 2;
    }
  }
  if (argc < 2) usage();
  if (std::string(argv[1]) == "--health") {
    if (argc != 3) usage("--health takes exactly one HOST:PORT");
    return run_health_probe(argv[2]);
  }
  if (std::string(argv[1]) == "--fleet-stats") {
    if (argc != 3) usage("--fleet-stats takes exactly one HOST:PORT");
    return run_fleet_stats_probe(argv[2]);
  }
  const std::string scheme_path = argv[1];
  server::ServerOptions options;
  std::string metrics_path;
  double metrics_interval_s = 5.0;
  bool build_from_graph = false;
  unsigned build_threads = 0;
  double build_eps = 1.0;
  long build_compact = -1;
  long expect_shard_id = -1;
  long expect_shard_count = -1;
  for (int k = 2; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--build") {
      build_from_graph = true;
    } else if (arg == "--build-threads" && k + 1 < argc) {
      build_threads = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--build-eps" && k + 1 < argc) {
      build_eps = std::strtod(argv[++k], nullptr);
    } else if (arg == "--build-compact" && k + 1 < argc) {
      build_compact = std::strtol(argv[++k], nullptr, 10);
    } else if (arg == "--port" && k + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++k]));
    } else if (arg == "--workers" && k + 1 < argc) {
      options.workers = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--cache" && k + 1 < argc) {
      options.cache_capacity = static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--warm") {
      options.warm_labels = true;
    } else if (arg == "--backlog" && k + 1 < argc) {
      options.listen_backlog = std::atoi(argv[++k]);
    } else if (arg == "--recv-timeout-ms" && k + 1 < argc) {
      options.recv_timeout_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--send-timeout-ms" && k + 1 < argc) {
      options.send_timeout_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--request-deadline-ms" && k + 1 < argc) {
      options.request_deadline_ms = std::strtod(argv[++k], nullptr);
    } else if (arg == "--max-queued" && k + 1 < argc) {
      options.max_queued_connections =
          static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--drain-ms" && k + 1 < argc) {
      options.drain_deadline_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--data-plane" && k + 1 < argc) {
      const std::string plane = argv[++k];
      if (plane == "reactor") {
        options.data_plane = server::DataPlane::kEpollReactor;
      } else if (plane == "thread") {
        options.data_plane = server::DataPlane::kThreadPerConnection;
      } else {
        usage("--data-plane must be 'reactor' or 'thread'");
      }
    } else if (arg == "--reactor-threads" && k + 1 < argc) {
      options.reactor_threads = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--batch-window-us" && k + 1 < argc) {
      options.batch_window_us = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--watchdog-ms" && k + 1 < argc) {
      options.watchdog_interval_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--watchdog-stall-ms" && k + 1 < argc) {
      options.watchdog_stall_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--watchdog-abort-ms" && k + 1 < argc) {
      options.watchdog_abort_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--shard-id" && k + 1 < argc) {
      expect_shard_id = std::strtol(argv[++k], nullptr, 10);
    } else if (arg == "--shard-count" && k + 1 < argc) {
      expect_shard_count = std::strtol(argv[++k], nullptr, 10);
    } else if (arg == "--admin") {
      options.admin = true;
    } else if (arg == "--failpoints" && k + 1 < argc) {
      const std::string error = failpoint::arm(argv[++k]);
      if (!error.empty()) usage(error.c_str());
    } else if (arg == "--metrics-dump" && k + 1 < argc) {
      metrics_path = argv[++k];
    } else if (arg == "--metrics-interval" && k + 1 < argc) {
      metrics_interval_s = std::strtod(argv[++k], nullptr);
    } else if (arg == "--slow-query-us" && k + 1 < argc) {
      options.slow_query_us = std::strtod(argv[++k], nullptr);
    } else if (arg == "--trace-level" && k + 1 < argc) {
      const std::string level = argv[++k];
      if (level == "off") obs::set_level(obs::Level::kOff);
      else if (level == "counters") obs::set_level(obs::Level::kCounters);
      else if (level == "spans") obs::set_level(obs::Level::kSpans);
      else usage("unknown trace level");
#if !FSDL_TRACE_ENABLED
      std::fprintf(stderr,
                   "fsdl_serve: warning: built without FSDL_TRACE, "
                   "--trace-level has no effect\n");
#endif
    } else if (arg == "--trace-log" && k + 1 < argc) {
      const char* path = argv[++k];
      if (!obs::open_event_log(path, "shard")) {
        std::fprintf(stderr,
                     "fsdl_serve: warning: cannot open trace log %s%s\n",
                     path,
                     FSDL_TRACE_ENABLED
                         ? ""
                         : " (built without FSDL_TRACE, --trace-log has no "
                           "effect)");
      }
    } else {
      usage("unknown option");
    }
  }
  if (metrics_interval_s <= 0) usage("--metrics-interval must be > 0");
  if ((expect_shard_id >= 0) != (expect_shard_count >= 0)) {
    usage("--shard-id and --shard-count must be given together");
  }
  if (expect_shard_id >= 0 && build_from_graph) {
    usage("--shard-id/--shard-count require a label file (not --build)");
  }

  try {
    auto scheme = [&] {
      if (!build_from_graph) return load_labeling(scheme_path);
      const Graph g = load_graph(scheme_path);
      const SchemeParams params =
          build_compact >= 0
              ? SchemeParams::compact(build_eps,
                                      static_cast<unsigned>(build_compact))
              : SchemeParams::faithful(build_eps);
      BuildOptions build_options;
      build_options.threads = build_threads;
      const WallTimer build_timer;
      auto built = ForbiddenSetLabeling::build(g, params, build_options);
      std::printf("fsdl_serve: built labels n=%u in %.2fs (threads=%u)\n",
                  g.num_vertices(), build_timer.elapsed_seconds(),
                  resolve_threads(build_threads));
      return built;
    }();
    const unsigned n = scheme.num_vertices();
    const double eps = scheme.params().epsilon;
    const shard::PartitionInfo part = scheme.partition();
    if (expect_shard_id >= 0 &&
        (part.shard_id != static_cast<std::uint32_t>(expect_shard_id) ||
         part.shard_count != static_cast<std::uint32_t>(expect_shard_count))) {
      std::fprintf(stderr,
                   "error: %s is shard %u/%u but this server was started "
                   "with --shard-id %ld --shard-count %ld\n",
                   scheme_path.c_str(), part.shard_id, part.shard_count,
                   expect_shard_id, expect_shard_count);
      return 1;
    }
    // Only a file-backed server has something to reload on SIGHUP/RELOAD.
    if (!build_from_graph) options.label_path = scheme_path;
    server::Server srv(std::move(scheme), options);

    if (::pipe(g_shutdown_pipe) != 0) {
      std::fprintf(stderr, "error: pipe() failed\n");
      return 1;
    }
    std::signal(SIGINT, on_terminate);
    std::signal(SIGTERM, on_terminate);
    std::signal(SIGHUP, on_hup);

    srv.start();
    // Server::start() normalizes listen_backlog <= 0 to its default; log
    // the effective value the listener actually got.
    const int effective_backlog =
        options.listen_backlog <= 0 ? 64 : options.listen_backlog;
    std::printf("fsdl_serve: n=%u eps=%.3g shard=%u/%u workers=%u cache=%zu "
                "backlog=%d plane=%s port=%u%s\n",
                n, eps, part.shard_id, part.shard_count, options.workers,
                options.cache_capacity, effective_backlog,
                options.data_plane == server::DataPlane::kEpollReactor
                    ? "reactor"
                    : "thread",
                srv.port(), options.admin ? " admin=on" : "");
    std::fflush(stdout);

    // Wait for signal bytes; with --metrics-dump the wait doubles as the
    // flush period (poll timeout), so no dedicated flusher thread.
    const int timeout_ms =
        metrics_path.empty() ? -1
                             : static_cast<int>(metrics_interval_s * 1000.0);
    const auto flush_metrics = [&] {
      std::string error;
      if (!atomic_write_file(metrics_path, srv.prometheus(), &error)) {
        std::fprintf(stderr, "fsdl_serve: cannot write metrics to %s: %s\n",
                     metrics_path.c_str(), error.c_str());
      }
    };
    for (;;) {
      struct pollfd pfd{g_shutdown_pipe[0], POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (rc == 0) {  // metrics flush tick
        flush_metrics();
        continue;
      }
      char byte = 't';
      if (::read(g_shutdown_pipe[0], &byte, 1) <= 0) break;
      if (byte != 'h') break;  // terminate
      // SIGHUP: hot-reload the label file. Queries keep flowing the whole
      // time; on failure the old labels keep serving.
      const WallTimer reload_timer;
      const std::string error = srv.reload();
      if (error.empty()) {
        std::printf("fsdl_serve: reloaded %s epoch=%llu in %.2fs\n",
                    scheme_path.c_str(),
                    static_cast<unsigned long long>(srv.label_epoch()),
                    reload_timer.elapsed_seconds());
      } else {
        std::fprintf(stderr, "fsdl_serve: reload failed (%s); still serving "
                             "epoch=%llu\n",
                     error.c_str(),
                     static_cast<unsigned long long>(srv.label_epoch()));
      }
      std::fflush(stdout);
      std::fflush(stderr);
    }
    std::printf("\nfsdl_serve: shutting down...\n");
    srv.stop();
    if (!metrics_path.empty()) flush_metrics();
    std::printf("%s", srv.metrics().render(srv.cache_stats()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
