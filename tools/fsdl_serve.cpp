// fsdl_serve — the query service daemon.
//
//   fsdl_serve <scheme.fsdl> [--port P] [--workers N] [--cache C] [--warm]
//
// Loads a serialized labeling (fsdl build), shares one read-only oracle
// across a worker pool, and answers DIST / BATCH / STATS frames on
// 127.0.0.1:P (P=0 picks an ephemeral port, printed on stdout). SIGINT or
// SIGTERM triggers a graceful shutdown: stop accepting, drain in-flight
// requests, dump the metrics snapshot.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/oracle.hpp"
#include "core/serialize.hpp"
#include "server/server.hpp"

namespace {

// Self-pipe: the signal handler writes one byte; main blocks on read().
int g_shutdown_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write() is async-signal-safe; best effort.
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: fsdl_serve <scheme.fsdl> [--port P] [--workers N]\n"
               "                  [--cache C] [--warm]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsdl;
  if (argc < 2) usage();
  const std::string scheme_path = argv[1];
  server::ServerOptions options;
  for (int k = 2; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--port" && k + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++k]));
    } else if (arg == "--workers" && k + 1 < argc) {
      options.workers = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--cache" && k + 1 < argc) {
      options.cache_capacity = static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--warm") {
      options.warm_labels = true;
    } else {
      usage("unknown option");
    }
  }

  try {
    const auto scheme = load_labeling(scheme_path);
    const ForbiddenSetOracle oracle(scheme);
    server::Server srv(oracle, options);

    if (::pipe(g_shutdown_pipe) != 0) {
      std::fprintf(stderr, "error: pipe() failed\n");
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    srv.start();
    std::printf("fsdl_serve: n=%u eps=%.3g workers=%u cache=%zu port=%u\n",
                scheme.num_vertices(), scheme.params().epsilon,
                options.workers, options.cache_capacity, srv.port());
    std::fflush(stdout);

    char byte;
    while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::printf("\nfsdl_serve: shutting down...\n");
    srv.stop();
    std::printf("%s", srv.metrics().render(srv.cache_stats()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
