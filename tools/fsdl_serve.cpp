// fsdl_serve — the query service daemon.
//
//   fsdl_serve <scheme.fsdl> [--port P] [--workers N] [--cache C] [--warm]
//              [--backlog B] [--recv-timeout-ms T] [--send-timeout-ms T]
//              [--request-deadline-ms D] [--max-queued Q] [--drain-ms D]
//              [--metrics-dump FILE] [--metrics-interval S]
//              [--slow-query-us T] [--trace-level off|counters|spans]
//   fsdl_serve <graph.edges> --build [--build-threads N] [--build-eps E]
//              [--build-compact C] [...same serving flags]
//
// Loads a serialized labeling (fsdl build) — or, with --build, an edge-list
// graph whose labels are constructed at startup on --build-threads workers
// (default 0 = hardware concurrency; cold-start wall time is logged) —
// shares one read-only oracle across a worker pool, and answers DIST /
// BATCH / STATS / METRICS frames on 127.0.0.1:P (P=0 picks an ephemeral
// port, printed on stdout). SIGINT or SIGTERM triggers a graceful shutdown:
// stop accepting, drain in-flight requests, dump the metrics snapshot.
//
// Observability plumbing:
//   --metrics-dump FILE    write the Prometheus text exposition to FILE
//                          every --metrics-interval seconds (default 5) and
//                          once at shutdown — point a node_exporter textfile
//                          collector (or any file scraper) at it.
//   --slow-query-us T      log requests slower than T microseconds with
//                          per-stage breakdown (span tree in trace builds).
//   --trace-level L        runtime level of the compiled-in tracer; only
//                          meaningful when built with -DFSDL_TRACE=ON.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "core/serialize.hpp"
#include "graph/io.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

namespace {

// Self-pipe: the signal handler writes one byte; main polls it.
int g_shutdown_pipe[2] = {-1, -1};

void on_signal(int) {
  const char byte = 1;
  // write() is async-signal-safe; best effort.
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: fsdl_serve <scheme.fsdl> [--port P] [--workers N]\n"
               "                  [--cache C] [--warm] [--backlog B]\n"
               "                  [--recv-timeout-ms T] [--send-timeout-ms "
               "T]\n"
               "                  [--request-deadline-ms D] [--max-queued "
               "Q]\n"
               "                  [--drain-ms D]\n"
               "                  [--metrics-dump FILE] [--metrics-interval "
               "S]\n"
               "                  [--slow-query-us T]\n"
               "                  [--trace-level off|counters|spans]\n"
               "       fsdl_serve <graph.edges> --build [--build-threads N]\n"
               "                  [--build-eps E] [--build-compact C] [...]\n");
  std::exit(2);
}

/// Write atomically (tmp + rename) so a scraper never reads a torn file.
bool dump_metrics(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok && std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fsdl;
  if (argc < 2) usage();
  const std::string scheme_path = argv[1];
  server::ServerOptions options;
  std::string metrics_path;
  double metrics_interval_s = 5.0;
  bool build_from_graph = false;
  unsigned build_threads = 0;
  double build_eps = 1.0;
  long build_compact = -1;
  for (int k = 2; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--build") {
      build_from_graph = true;
    } else if (arg == "--build-threads" && k + 1 < argc) {
      build_threads = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--build-eps" && k + 1 < argc) {
      build_eps = std::strtod(argv[++k], nullptr);
    } else if (arg == "--build-compact" && k + 1 < argc) {
      build_compact = std::strtol(argv[++k], nullptr, 10);
    } else if (arg == "--port" && k + 1 < argc) {
      options.port = static_cast<std::uint16_t>(std::atoi(argv[++k]));
    } else if (arg == "--workers" && k + 1 < argc) {
      options.workers = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--cache" && k + 1 < argc) {
      options.cache_capacity = static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--warm") {
      options.warm_labels = true;
    } else if (arg == "--backlog" && k + 1 < argc) {
      options.listen_backlog = std::atoi(argv[++k]);
    } else if (arg == "--recv-timeout-ms" && k + 1 < argc) {
      options.recv_timeout_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--send-timeout-ms" && k + 1 < argc) {
      options.send_timeout_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--request-deadline-ms" && k + 1 < argc) {
      options.request_deadline_ms = std::strtod(argv[++k], nullptr);
    } else if (arg == "--max-queued" && k + 1 < argc) {
      options.max_queued_connections =
          static_cast<std::size_t>(std::atol(argv[++k]));
    } else if (arg == "--drain-ms" && k + 1 < argc) {
      options.drain_deadline_ms = static_cast<unsigned>(std::atoi(argv[++k]));
    } else if (arg == "--metrics-dump" && k + 1 < argc) {
      metrics_path = argv[++k];
    } else if (arg == "--metrics-interval" && k + 1 < argc) {
      metrics_interval_s = std::strtod(argv[++k], nullptr);
    } else if (arg == "--slow-query-us" && k + 1 < argc) {
      options.slow_query_us = std::strtod(argv[++k], nullptr);
    } else if (arg == "--trace-level" && k + 1 < argc) {
      const std::string level = argv[++k];
      if (level == "off") obs::set_level(obs::Level::kOff);
      else if (level == "counters") obs::set_level(obs::Level::kCounters);
      else if (level == "spans") obs::set_level(obs::Level::kSpans);
      else usage("unknown trace level");
#if !FSDL_TRACE_ENABLED
      std::fprintf(stderr,
                   "fsdl_serve: warning: built without FSDL_TRACE, "
                   "--trace-level has no effect\n");
#endif
    } else {
      usage("unknown option");
    }
  }
  if (metrics_interval_s <= 0) usage("--metrics-interval must be > 0");

  try {
    const auto scheme = [&] {
      if (!build_from_graph) return load_labeling(scheme_path);
      const Graph g = load_graph(scheme_path);
      const SchemeParams params =
          build_compact >= 0
              ? SchemeParams::compact(build_eps,
                                      static_cast<unsigned>(build_compact))
              : SchemeParams::faithful(build_eps);
      BuildOptions build_options;
      build_options.threads = build_threads;
      const WallTimer build_timer;
      auto built = ForbiddenSetLabeling::build(g, params, build_options);
      std::printf("fsdl_serve: built labels n=%u in %.2fs (threads=%u)\n",
                  g.num_vertices(), build_timer.elapsed_seconds(),
                  resolve_threads(build_threads));
      return built;
    }();
    const ForbiddenSetOracle oracle(scheme);
    server::Server srv(oracle, options);

    if (::pipe(g_shutdown_pipe) != 0) {
      std::fprintf(stderr, "error: pipe() failed\n");
      return 1;
    }
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    srv.start();
    // Server::start() normalizes listen_backlog <= 0 to its default; log
    // the effective value the listener actually got.
    const int effective_backlog =
        options.listen_backlog <= 0 ? 64 : options.listen_backlog;
    std::printf("fsdl_serve: n=%u eps=%.3g workers=%u cache=%zu backlog=%d "
                "port=%u\n",
                scheme.num_vertices(), scheme.params().epsilon,
                options.workers, options.cache_capacity, effective_backlog,
                srv.port());
    std::fflush(stdout);

    // Wait for the shutdown byte; with --metrics-dump the wait doubles as
    // the flush period (poll timeout), so no dedicated flusher thread.
    const int timeout_ms =
        metrics_path.empty() ? -1
                             : static_cast<int>(metrics_interval_s * 1000.0);
    for (;;) {
      struct pollfd pfd{g_shutdown_pipe[0], POLLIN, 0};
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (rc > 0) break;  // signal arrived
      if (!dump_metrics(metrics_path, srv.prometheus())) {
        std::fprintf(stderr, "fsdl_serve: cannot write metrics to %s\n",
                     metrics_path.c_str());
      }
    }
    std::printf("\nfsdl_serve: shutting down...\n");
    srv.stop();
    if (!metrics_path.empty()) dump_metrics(metrics_path, srv.prometheus());
    std::printf("%s", srv.metrics().render(srv.cache_stats()).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
