#include <gtest/gtest.h>

#include "core/labeling.hpp"
#include "core/oracle.hpp"
#include "graph/fault_view.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace fsdl {
namespace {

class PreparedFaultsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = make_grid2d(11, 11);
    scheme_ = std::make_unique<ForbiddenSetLabeling>(
        ForbiddenSetLabeling::build(g_, SchemeParams::faithful(1.0)));
    oracle_ = std::make_unique<ForbiddenSetOracle>(*scheme_);
  }
  Graph g_;
  std::unique_ptr<ForbiddenSetLabeling> scheme_;
  std::unique_ptr<ForbiddenSetOracle> oracle_;
};

TEST_F(PreparedFaultsTest, MatchesOneShotQueriesExactly) {
  Rng rng(91);
  for (int round = 0; round < 10; ++round) {
    FaultSet f;
    for (unsigned k = 0; k < 1 + rng.below(5); ++k) {
      if (rng.chance(0.3)) {
        const Vertex a = rng.vertex(g_.num_vertices());
        const auto nb = g_.neighbors(a);
        if (!nb.empty()) f.add_edge(a, nb[rng.below(nb.size())]);
      } else {
        f.add_vertex(rng.vertex(g_.num_vertices()));
      }
    }
    const PreparedFaults prepared = oracle_->prepare(f);
    for (int q = 0; q < 25; ++q) {
      const Vertex s = rng.vertex(g_.num_vertices());
      const Vertex t = rng.vertex(g_.num_vertices());
      const QueryResult one_shot = oracle_->query(s, t, f);
      const QueryResult amortized =
          prepared.query(oracle_->label(s), oracle_->label(t));
      ASSERT_EQ(amortized.distance, one_shot.distance)
          << "s=" << s << " t=" << t << " |F|=" << f.size();
      ASSERT_EQ(amortized.waypoints, one_shot.waypoints);
    }
  }
}

TEST_F(PreparedFaultsTest, EmptyFaultSet) {
  const FaultSet none;
  const PreparedFaults prepared = oracle_->prepare(none);
  EXPECT_EQ(prepared.num_centers(), 0u);
  EXPECT_EQ(prepared.query(oracle_->label(0), oracle_->label(120)).distance,
            oracle_->distance(0, 120, none));
}

TEST_F(PreparedFaultsTest, ForbiddenEndpointsStillDetected) {
  FaultSet f;
  f.add_vertex(60);
  const PreparedFaults prepared = oracle_->prepare(f);
  EXPECT_EQ(prepared.query(oracle_->label(60), oracle_->label(0)).distance,
            kInfDist);
  EXPECT_EQ(prepared.query(oracle_->label(0), oracle_->label(60)).distance,
            kInfDist);
}

TEST_F(PreparedFaultsTest, QueryEndpointEqualsFaultEdgeEndpoint) {
  // s is itself a protected-ball center (endpoint of a forbidden edge):
  // the prepared path must not double-count its label.
  FaultSet f;
  f.add_edge(0, 1);
  const PreparedFaults prepared = oracle_->prepare(f);
  const QueryResult a = prepared.query(oracle_->label(0), oracle_->label(120));
  const QueryResult b = oracle_->query(0, 120, f);
  EXPECT_EQ(a.distance, b.distance);
  const Dist exact = distance_avoiding(g_, 0, 120, f);
  EXPECT_GE(a.distance, exact);
  EXPECT_LE(static_cast<double>(a.distance), 2.0 * exact);
}

TEST_F(PreparedFaultsTest, SameVertexQuery) {
  FaultSet f;
  f.add_vertex(5);
  const PreparedFaults prepared = oracle_->prepare(f);
  const QueryResult qr = prepared.query(oracle_->label(9), oracle_->label(9));
  EXPECT_EQ(qr.distance, 0u);
}

TEST_F(PreparedFaultsTest, PreparedReducesPerQueryWork) {
  FaultSet f;
  Rng rng(92);
  for (int k = 0; k < 8; ++k) f.add_vertex(rng.vertex(g_.num_vertices()));
  const PreparedFaults prepared = oracle_->prepare(f);
  const QueryResult amortized =
      prepared.query(oracle_->label(0), oracle_->label(120));
  const QueryResult one_shot = oracle_->query(0, 120, f);
  // The one-shot path re-filters every fault label per query; the prepared
  // path only filters the two endpoint labels (stats carry the shared
  // preparation work, so the counters coincide on the first query).
  EXPECT_EQ(amortized.distance, one_shot.distance);
  EXPECT_LE(amortized.stats.edges_considered, one_shot.stats.edges_considered);
}

}  // namespace
}  // namespace fsdl
