#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metric/doubling.hpp"
#include "metric/exact_doubling.hpp"
#include "util/rng.hpp"

namespace fsdl {
namespace {

TEST(MinBallCover, PathIntervals) {
  const Graph g = make_path(30);
  // B(15, 2r) is an interval of 4r+1 vertices; two r-balls cover it.
  for (Dist r : {1u, 2u, 3u}) {
    EXPECT_EQ(min_ball_cover(g, 15, r), 2u) << "r=" << r;
  }
  // At the boundary the interval is one-sided and a single ball suffices.
  EXPECT_EQ(min_ball_cover(g, 0, 1), 1u);
}

TEST(MinBallCover, SingletonWhenRadiusCoversEverything) {
  const Graph g = make_cycle(8);
  EXPECT_EQ(min_ball_cover(g, 0, 4), 1u);  // one 4-ball is the whole cycle
}

TEST(ExactDoubling, PathIsDimensionOne) {
  const auto d = exact_doubling_dimension(make_path(24));
  EXPECT_EQ(d.worst_cover, 2u);
  EXPECT_DOUBLE_EQ(d.alpha, 1.0);
}

TEST(ExactDoubling, CycleIsDimensionOne) {
  const auto d = exact_doubling_dimension(make_cycle(20));
  EXPECT_LE(d.worst_cover, 3u);  // wraparound can force a third ball
  EXPECT_LE(d.alpha, 1.6);
}

TEST(ExactDoubling, GridIsAboutTwo) {
  const auto d = exact_doubling_dimension(make_grid2d(5, 5));
  EXPECT_GE(d.alpha, 1.5);
  EXPECT_LE(d.alpha, 3.0);  // 2^3 = 8 balls, above the asymptotic 2^2
}

TEST(ExactDoubling, LowerBoundFamilyRespectsAlphaBound) {
  // Theorem 3.1: every member of F_{n,α} (subgraph of G_{p,d} containing
  // H_{p,d}) has doubling dimension <= α = 2d.
  Rng rng(5);
  for (int k = 0; k < 3; ++k) {
    const Graph g = make_between_grid(3, 2, 0.5, rng);
    const auto d = exact_doubling_dimension(g);
    EXPECT_LE(d.alpha, 4.0 + 1e-9) << "family member exceeded alpha = 2d";
  }
}

TEST(ExactDoubling, EstimatorUpperBoundsExact) {
  // The greedy sampling estimator over-counts (it is a packing, not an
  // optimal cover), so estimate + slack >= exact must hold.
  Rng rng(6);
  for (const Graph& g :
       {make_path(24), make_cycle(16), make_grid2d(4, 5),
        make_balanced_tree(2, 3)}) {
    const auto exact = exact_doubling_dimension(g);
    const auto est = estimate_doubling_dimension(g, 60, rng);
    EXPECT_GE(est.alpha + 1.0, exact.alpha);
  }
}

TEST(ExactDoubling, StarIsLowDimensional) {
  // With arbitrary cover centers, one hub-centered 1-ball covers any
  // B(v, 2) of a star — high degree alone does not raise the doubling
  // dimension (unlike the packing-based estimate).
  const auto star = exact_doubling_dimension(make_caterpillar(1, 16));
  EXPECT_LE(star.worst_cover, 2u);
}

TEST(ExactDoubling, DimensionGrowsFrom2DTo3D) {
  const auto plane = exact_doubling_dimension(make_grid2d(5, 5));
  const auto cube = exact_doubling_dimension(make_grid3d(3, 3, 3));
  EXPECT_GT(cube.worst_cover, plane.worst_cover);
}

TEST(ExactDoubling, RejectsDisconnected) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  EXPECT_THROW(exact_doubling_dimension(b.build()), std::invalid_argument);
}

TEST(MinBallCover, RejectsOversizedBall) {
  const Graph g = make_grid2d(12, 12);
  EXPECT_THROW(min_ball_cover(g, 70, 6), std::invalid_argument);
}

}  // namespace
}  // namespace fsdl
