#include <gtest/gtest.h>

#include "graph/dijkstra.hpp"
#include "util/rng.hpp"

namespace fsdl {
namespace {

TEST(SketchGraph, InternIsIdempotent) {
  SketchGraph h;
  const auto a = h.intern(100);
  const auto b = h.intern(200);
  EXPECT_NE(a, b);
  EXPECT_EQ(h.intern(100), a);
  EXPECT_EQ(h.num_vertices(), 2u);
  EXPECT_EQ(h.external_id(a), 100u);
  EXPECT_EQ(h.find(200), b);
  EXPECT_EQ(h.find(300), SketchGraph::kNoIndex);
}

TEST(SketchShortestPath, SimpleChain) {
  SketchGraph h;
  const auto a = h.intern(0), b = h.intern(1), c = h.intern(2);
  h.add_edge(a, b, 4);
  h.add_edge(b, c, 5);
  std::vector<SketchGraph::Index> path;
  EXPECT_EQ(sketch_shortest_path(h, a, c, &path), 9u);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.front(), a);
  EXPECT_EQ(path.back(), c);
}

TEST(SketchShortestPath, PrefersCheaperRoute) {
  SketchGraph h;
  const auto a = h.intern(0), b = h.intern(1), c = h.intern(2);
  h.add_edge(a, c, 10);
  h.add_edge(a, b, 3);
  h.add_edge(b, c, 3);
  EXPECT_EQ(sketch_shortest_path(h, a, c), 6u);
}

TEST(SketchShortestPath, ParallelEdgesTakeMinimum) {
  SketchGraph h;
  const auto a = h.intern(0), b = h.intern(1);
  h.add_edge(a, b, 7);
  h.add_edge(a, b, 3);
  EXPECT_EQ(sketch_shortest_path(h, a, b), 3u);
}

TEST(SketchShortestPath, DisconnectedIsInf) {
  SketchGraph h;
  const auto a = h.intern(0);
  const auto b = h.intern(1);
  EXPECT_EQ(sketch_shortest_path(h, a, b), kInfDist);
}

TEST(SketchShortestPath, SourceEqualsTarget) {
  SketchGraph h;
  const auto a = h.intern(5);
  std::vector<SketchGraph::Index> path;
  EXPECT_EQ(sketch_shortest_path(h, a, a, &path), 0u);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], a);
}

// Property check against Bellman-Ford on random sketch graphs.
TEST(SketchShortestPath, MatchesBellmanFordOnRandomGraphs) {
  Rng rng(33);
  for (int iter = 0; iter < 30; ++iter) {
    const std::size_t n = 2 + rng.below(20);
    SketchGraph h;
    for (Vertex v = 0; v < n; ++v) h.intern(v);
    std::vector<std::tuple<std::size_t, std::size_t, Dist>> edges;
    const std::size_t m = rng.below(3 * n);
    for (std::size_t e = 0; e < m; ++e) {
      const auto a = static_cast<SketchGraph::Index>(rng.below(n));
      const auto b = static_cast<SketchGraph::Index>(rng.below(n));
      if (a == b) continue;
      const Dist w = 1 + static_cast<Dist>(rng.below(50));
      h.add_edge(a, b, w);
      edges.emplace_back(a, b, w);
    }
    // Bellman-Ford from vertex 0.
    std::vector<std::uint64_t> bf(n, ~0ULL);
    bf[0] = 0;
    for (std::size_t round = 0; round < n; ++round) {
      for (const auto& [a, b, w] : edges) {
        if (bf[a] != ~0ULL && bf[a] + w < bf[b]) bf[b] = bf[a] + w;
        if (bf[b] != ~0ULL && bf[b] + w < bf[a]) bf[a] = bf[b] + w;
      }
    }
    for (std::size_t t = 0; t < n; ++t) {
      const Dist d = sketch_shortest_path(h, 0, static_cast<SketchGraph::Index>(t));
      if (bf[t] == ~0ULL) {
        EXPECT_EQ(d, kInfDist);
      } else {
        EXPECT_EQ(static_cast<std::uint64_t>(d), bf[t]);
      }
    }
  }
}

TEST(SketchShortestPath, PathEdgesExistWithMatchingWeights) {
  Rng rng(34);
  SketchGraph h;
  for (Vertex v = 0; v < 15; ++v) h.intern(v);
  for (int e = 0; e < 40; ++e) {
    const auto a = static_cast<SketchGraph::Index>(rng.below(15));
    const auto b = static_cast<SketchGraph::Index>(rng.below(15));
    if (a != b) h.add_edge(a, b, 1 + static_cast<Dist>(rng.below(9)));
  }
  std::vector<SketchGraph::Index> path;
  const Dist d = sketch_shortest_path(h, 0, 14, &path);
  if (d == kInfDist) return;
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    Dist best = kInfDist;
    for (const auto& arc : h.arcs(path[k])) {
      if (arc.to == path[k + 1]) best = std::min(best, arc.weight);
    }
    ASSERT_NE(best, kInfDist) << "path uses nonexistent edge";
    sum += best;
  }
  EXPECT_EQ(sum, d);
}

}  // namespace
}  // namespace fsdl
